// Ablation (Sec. 5.1) — post-pruning fine-tuning without regularization.
//
// The paper recovers ~0.3% accuracy (and for mild ratios ends *above* the
// dense baseline) by adding fine-tuning epochs after training. This bench
// compares PruneTrain with and without a fine-tuning tail on the ResNet50
// proxy at two regularization strengths.
//
// Expected shape: fine-tuning never hurts and typically recovers part of
// the pruning-induced accuracy drop; the architecture stays fixed.
#include <iostream>

#include "bench/common.h"

using namespace pt;
using namespace pt::bench;

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(36);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("ablation_finetune");
    return 0;
  }
  const std::int64_t epochs = effective_epochs(flags);
  const ProxyCase c = cifar_case("resnet50", false);
  data::SyntheticImageDataset ds(c.data);

  Table t({"ratio", "fine-tune epochs", "val acc", "inference MFLOPs",
           "channels"});
  for (float ratio : {0.2f, 0.3f}) {
    for (std::int64_t ft : {std::int64_t{0}, epochs / 4}) {
      auto net = build_net(c);
      auto cfg = proxy_train_config(epochs, ratio, core::PrunePolicy::kPruneTrain);
      cfg.fine_tune_epochs = ft;
      core::PruneTrainer trainer(net, ds, cfg);
      const auto r = trainer.run();
      t.add_row({fmt(ratio, 2), std::to_string(ft), fmt(r.final_test_acc, 3),
                 fmt(r.final_inference_flops / 1e6, 3),
                 std::to_string(r.final_channels)});
    }
  }
  emit(t, flags, "Ablation: post-pruning fine-tuning, " + c.label);
  return 0;
}
