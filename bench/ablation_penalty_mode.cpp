// Ablation (Sec. 4.1) — global vs size-normalized group-lasso penalty.
//
// The paper argues for a single *global* penalty coefficient: early layers
// have fewer channels but larger feature maps, so a uniform per-group
// penalty preferentially removes the computation- and memory-expensive
// channels. Prior work instead scales each group's penalty with
// sqrt(group size), which targets parameter count. This bench trains the
// ResNet50 proxy both ways at the same Eq. 3 ratio and compares what each
// penalty actually buys: FLOPs, activation memory, parameters, accuracy.
//
// Expected shape: at a matched pruning budget, the global penalty removes
// at least as much computation/activation memory per removed parameter as
// the size-normalized penalty.
#include <iostream>

#include "bench/common.h"

using namespace pt;
using namespace pt::bench;

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(36);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("ablation_penalty_mode");
    return 0;
  }
  const std::int64_t epochs = effective_epochs(flags);
  const ProxyCase c = cifar_case("resnet50", false);
  data::SyntheticImageDataset ds(c.data);
  const Shape input{c.data.channels, c.data.height, c.data.width};

  Table t({"penalty", "ratio", "val acc", "inf FLOPs kept", "act. memory kept",
           "params kept"});

  // Dense reference for normalization.
  auto dense_net = build_net(c);
  const ModelCost dense = model_cost(dense_net, input);

  for (bool normalized : {false, true}) {
    for (float ratio : {0.2f, 0.3f}) {
      auto net = build_net(c);
      auto cfg = proxy_train_config(epochs, ratio, core::PrunePolicy::kPruneTrain);
      cfg.size_normalized_penalty = normalized;
      core::PruneTrainer trainer(net, ds, cfg);
      const auto r = trainer.run();
      const ModelCost pruned = model_cost(net, input);
      t.add_row({normalized ? "size-normalized" : "global (paper)", fmt(ratio, 2),
                 fmt(r.final_test_acc, 3),
                 fmt(r.final_inference_flops / dense.inference_flops, 3),
                 fmt(pruned.activation_bytes / dense.activation_bytes, 3),
                 fmt(pruned.params / dense.params, 3)});
    }
  }
  emit(t, flags, "Ablation: global vs size-normalized group-lasso penalty, " +
                     c.label);
  return 0;
}
