// Gradient-codec compression bench: real encoded wire bytes per exchange
// and wall-clock seconds per training step for every registered codec, at
// several pruned widths (fractions of channel rows zeroed, as group-lasso
// regularization leaves them before surgery removes them).
//
//   $ ./comm_compression [--steps N] [--batch N] [--out BENCH.json]
//
// Three sanity flags are written to BENCH_comm_compression.json and gated
// by run_bench_suite.sh:
//
//  1. dense_bitwise_reference: the dense codec's exchange must equal a
//     hand-rolled weighted-average loop (the pre-codec exchange) bit for
//     bit, over several randomized rounds.
//  2. convergence_within_tol: 2-replica training with the twobit codec
//     (error feedback on) must track the dense loss trajectory.
//  3. wire_reduction_4x: at the final pruned width, twobit and
//     live_channel must each ship >= 4x fewer bytes than dense at full
//     width — the Fig. 11 multiplicative saving measured on real encoded
//     payloads, not the analytical model.
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <map>
#include <vector>

#include "bench/common.h"
#include "dist/allreduce.h"
#include "dist/cluster.h"
#include "dist/codec.h"
#include "dist/codec_zoo.h"
#include "nn/loss.h"
#include "optim/sgd.h"
#include "telemetry/bench_export.h"

namespace {

using pt::Tensor;

pt::graph::Network build_model() {
  pt::models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = 8;
  cfg.width_mult = 0.5f;
  cfg.seed = 21;
  return pt::models::build_resnet_basic(8, cfg);
}

std::vector<pt::graph::Network> build_replicas(int n) {
  std::vector<pt::graph::Network> nets;
  nets.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) nets.push_back(build_model());
  return nets;
}

pt::cost::CommSpec spec_for(int gpus) {
  pt::cost::CommSpec s;
  s.gpus = gpus;
  return s;
}

pt::data::Batch make_batch(std::int64_t n, std::uint64_t seed) {
  pt::Rng rng(seed);
  pt::data::Batch b;
  b.images = Tensor::randn({n, 3, 8, 8}, rng);
  for (std::int64_t i = 0; i < n; ++i) {
    b.labels.push_back(static_cast<std::int64_t>(rng.uniform_int(8)));
  }
  return b;
}

void fill_grads(pt::graph::Network& net, std::uint64_t seed) {
  pt::Rng rng(seed);
  for (pt::nn::Param* p : net.params()) {
    Tensor r = Tensor::randn({p->grad.numel()}, rng);
    std::copy(r.data(), r.data() + r.numel(), p->grad.data());
  }
}

/// Zeroes the trailing (1 - live) fraction of channel rows of every >=2-D
/// parameter — the state group-lasso leaves channels in before surgery
/// removes them. Row 0 always survives (the min-channel floor).
void zero_dead_rows(pt::graph::Network& net, double live) {
  for (pt::nn::Param* p : net.params()) {
    if (p->value.shape().rank() < 2) continue;
    const std::int64_t rows = p->value.shape()[0];
    const std::int64_t row_len = p->value.numel() / rows;
    std::int64_t keep = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(rows) * live));
    if (keep < 1) keep = 1;
    std::fill(p->value.data() + keep * row_len,
              p->value.data() + rows * row_len, 0.f);
  }
}

/// Real encoded bytes for one 2-replica exchange at the given live width.
pt::dist::ExchangeStats measure_wire(const std::string& codec_name,
                                     double live) {
  pt::dist::Cluster c(build_replicas(2), spec_for(2));
  for (int r = 0; r < 2; ++r) zero_dead_rows(c.replica(r), live);
  c.set_codec(pt::dist::CodecRegistry::global().create(codec_name));
  fill_grads(c.replica(0), 40);
  fill_grads(c.replica(1), 41);
  return c.exchange_gradients({1.0, 1.0});
}

double time_steps(const std::string& codec_name, std::int64_t steps,
                  std::int64_t batch) {
  pt::dist::Cluster c(build_replicas(2), spec_for(2));
  c.set_codec(pt::dist::CodecRegistry::global().create(codec_name));
  pt::optim::SGD opt(0.05f, 0.9f);
  for (int i = 0; i < 2; ++i) c.step(make_batch(batch, 7), opt);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < steps; ++i) {
    c.step(make_batch(batch, 100 + static_cast<std::uint64_t>(i)), opt);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() /
         static_cast<double>(steps);
}

/// The dense codec's exchange vs the pre-codec weighted-average loop,
/// bitwise, over several randomized rounds and weight vectors.
bool check_dense_reference() {
  pt::graph::Network a = build_model(), b = build_model();
  pt::dist::DenseCodec codec;
  codec.bind(a, 2);
  std::vector<pt::graph::Network*> nets{&a, &b};
  for (int round = 0; round < 3; ++round) {
    fill_grads(a, 300 + static_cast<std::uint64_t>(2 * round));
    fill_grads(b, 301 + static_cast<std::uint64_t>(2 * round));
    const std::vector<double> w = {1.0 + round, 1.0};
    const double total = w[0] + w[1];
    auto pa = a.params();
    auto pb = b.params();
    std::vector<std::vector<float>> expected;
    for (std::size_t i = 0; i < pa.size(); ++i) {
      std::vector<float> avg(static_cast<std::size_t>(pa[i]->grad.numel()));
      for (std::int64_t q = 0; q < pa[i]->grad.numel(); ++q) {
        double acc = w[0] * static_cast<double>(pa[i]->grad.data()[q]) +
                     w[1] * static_cast<double>(pb[i]->grad.data()[q]);
        avg[static_cast<std::size_t>(q)] = static_cast<float>(acc / total);
      }
      expected.push_back(std::move(avg));
    }
    pt::dist::exchange_gradients(codec, nets, w,
                                 pt::exec::ExecContext::serial());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      if (std::memcmp(pa[i]->grad.data(), expected[i].data(),
                      sizeof(float) * expected[i].size()) != 0 ||
          std::memcmp(pb[i]->grad.data(), expected[i].data(),
                      sizeof(float) * expected[i].size()) != 0) {
        return false;
      }
    }
  }
  return true;
}

/// 2-replica training: twobit with error feedback must track dense. A
/// fixed batch (memorization) gives a deterministic decreasing loss —
/// fresh random labels every step would leave nothing to learn.
bool check_convergence(std::int64_t batch, double* dense_loss,
                       double* twobit_loss) {
  const pt::data::Batch fixed = make_batch(batch, 900);
  auto run = [&](const std::string& name) {
    pt::dist::Cluster c(build_replicas(2), spec_for(2));
    c.set_codec(pt::dist::CodecRegistry::global().create(name));
    pt::optim::SGD opt(0.05f, 0.9f);
    double first = 0, last = 0;
    for (int step = 0; step < 40; ++step) {
      const auto r = c.step(fixed, opt);
      if (step == 0) first = r.loss;
      last = r.loss;
    }
    return std::pair<double, double>(first, last);
  };
  const auto [dense_first, dense_last] = run("dense");
  const auto [twobit_first, twobit_last] = run("twobit");
  *dense_loss = dense_last;
  *twobit_loss = twobit_last;
  return twobit_last < twobit_first && dense_last < dense_first &&
         std::abs(twobit_last - dense_last) / dense_last < 0.5;
}

}  // namespace

int main(int argc, char** argv) {
  pt::CliFlags flags;
  flags.define("steps", "16", "timed steps per codec");
  flags.define("batch", "16", "global mini-batch size");
  flags.define("out", "BENCH_comm_compression.json",
               "output artifact path (BENCH_*.json format)");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("comm_compression");
    return 0;
  }
  const std::int64_t steps = flags.get_int("steps");
  const std::int64_t batch = flags.get_int("batch");
  const std::vector<double> widths = {1.0, 0.5, 0.25, 0.125};
  const std::vector<std::string> codecs =
      pt::dist::CodecRegistry::global().names();

  std::cout << "comm_compression: ResNet-8(w0.5)/8x8, 2 replicas, batch "
            << batch << "\n";

  // Wire bytes per exchange, per codec, per pruned width.
  std::map<std::string, std::vector<double>> wire;
  double dense_full = 0;
  for (const auto& name : codecs) {
    for (double live : widths) {
      const auto stats = measure_wire(name, live);
      wire[name].push_back(stats.wire_bytes);
      if (name == "dense" && live == 1.0) dense_full = stats.wire_bytes;
    }
  }
  std::cout << "  wire bytes per exchange (live width columns:";
  for (double w : widths) std::cout << " " << pt::fmt(w, 3);
  std::cout << ")\n";
  for (const auto& name : codecs) {
    std::cout << "    " << name << ":";
    for (double b : wire[name]) std::cout << " " << pt::fmt(b / 1e3, 1) << "KB";
    std::cout << "\n";
  }

  // Seconds per training step per codec (full width; encode/decode cost).
  std::map<std::string, double> sec_per_step;
  for (const auto& name : codecs) {
    sec_per_step[name] = time_steps(name, steps, batch);
    std::cout << "  " << name << ": "
              << pt::fmt(sec_per_step[name] * 1e3, 2) << " ms/step\n";
  }

  const bool dense_ref = check_dense_reference();
  std::cout << "  dense codec bitwise == pre-codec exchange: "
            << (dense_ref ? "yes" : "NO — REFERENCE VIOLATED") << "\n";

  double dense_loss = 0, twobit_loss = 0;
  const bool converges = check_convergence(batch, &dense_loss, &twobit_loss);
  std::cout << "  twobit convergence (40 steps): loss "
            << pt::fmt(twobit_loss, 4) << " vs dense " << pt::fmt(dense_loss, 4)
            << (converges ? "" : "  — OUT OF TOLERANCE") << "\n";

  // Fig. 11 multiplicative saving on real payloads: compressed bytes at
  // the final pruned width vs dense at full width.
  const double final_w = widths.back();
  const double twobit_final = wire["twobit"].back();
  const double live_final = wire["live_channel"].back();
  const double red_twobit = dense_full / twobit_final;
  const double red_live = dense_full / live_final;
  const bool reduction_ok = red_twobit >= 4.0 && red_live >= 4.0;
  std::cout << "  reduction vs dense@full at live width " << pt::fmt(final_w, 3)
            << ": twobit " << pt::fmt(red_twobit, 1) << "x, live_channel "
            << pt::fmt(red_live, 1) << "x"
            << (reduction_ok ? "" : "  — BELOW 4x") << "\n";

  pt::telemetry::Json j = pt::telemetry::Json::object();
  j["schema"] = pt::telemetry::Json("pt-telemetry-bench");
  j["name"] = pt::telemetry::Json("comm_compression");
  j["model"] = pt::telemetry::Json("resnet8 w0.5 8x8");
  j["replicas"] = pt::telemetry::Json(static_cast<std::int64_t>(2));
  j["batch"] = pt::telemetry::Json(batch);
  j["steps"] = pt::telemetry::Json(steps);
  j["skipped"] = pt::telemetry::Json(false);
  {
    pt::telemetry::Json w_arr = pt::telemetry::Json::array();
    for (double w : widths) w_arr.push_back(pt::telemetry::Json(w));
    j["live_widths"] = std::move(w_arr);
  }
  for (const auto& name : codecs) {
    pt::telemetry::Json arr = pt::telemetry::Json::array();
    for (double b : wire[name]) arr.push_back(pt::telemetry::Json(b));
    j["wire_bytes_" + name] = std::move(arr);
    j["seconds_per_step_" + name] = pt::telemetry::Json(sec_per_step[name]);
  }
  j["wire_reduction_twobit"] = pt::telemetry::Json(red_twobit);
  j["wire_reduction_live_channel"] = pt::telemetry::Json(red_live);
  j["dense_loss_40_steps"] = pt::telemetry::Json(dense_loss);
  j["twobit_loss_40_steps"] = pt::telemetry::Json(twobit_loss);
  j["dense_bitwise_reference"] = pt::telemetry::Json(dense_ref);
  j["convergence_within_tol"] = pt::telemetry::Json(converges);
  j["wire_reduction_4x"] = pt::telemetry::Json(reduction_ok);
  pt::telemetry::bench_export(j, flags.get("out"));
  std::cout << "  wrote " << flags.get("out") << "\n";
  return (dense_ref && converges && reduction_ok) ? 0 : 1;
}
