#include "bench/common.h"

#include <iostream>
#include <stdexcept>

#include "cost/flops.h"
#include "cost/memory.h"

namespace pt::bench {

ModelCost model_cost(graph::Network& net, const Shape& input,
                     std::int64_t batch) {
  const cost::FlopsModel flops(net, input);
  const cost::MemoryModel mem(net, input);
  ModelCost c;
  c.inference_flops = flops.inference_flops();
  c.training_flops = flops.training_flops();
  c.activation_bytes = mem.breakdown().activations_per_sample;
  c.memory_bytes = mem.training_bytes(batch);
  c.bn_traffic_per_sample = mem.bn_traffic_per_sample();
  c.params = static_cast<double>(net.num_params());
  return c;
}

ProxyCase cifar_case(const std::string& model, bool cifar100) {
  ProxyCase c;
  c.model = model;
  c.data = cifar100 ? data::SyntheticSpec::cifar100_like()
                    : data::SyntheticSpec::cifar10_like();
  if (model == "resnet50") {
    c.width_mult = 0.0625f;
  } else if (model == "vgg11" || model == "vgg13") {
    c.width_mult = 0.125f;
  } else {
    c.width_mult = 0.25f;
  }
  c.label = model + "/" + c.data.name;
  return c;
}

ProxyCase imagenet_case() {
  ProxyCase c;
  c.model = "resnet50-imagenet";
  c.width_mult = 0.0625f;
  c.data = data::SyntheticSpec::imagenet_like();
  c.label = "resnet50/" + c.data.name;
  return c;
}

graph::Network build_net(const ProxyCase& c, std::uint64_t seed) {
  models::ModelConfig cfg;
  cfg.in_channels = c.data.channels;
  cfg.image_h = c.data.height;
  cfg.image_w = c.data.width;
  cfg.classes = c.data.classes;
  cfg.width_mult = c.width_mult;
  cfg.seed = seed;
  return models::build_by_name(c.model, cfg);
}

core::TrainConfig proxy_train_config(std::int64_t epochs, float ratio,
                                     core::PrunePolicy policy) {
  core::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 64;
  cfg.base_lr = 0.1f;
  cfg.lr_milestones = {epochs / 2, (3 * epochs) / 4};
  cfg.policy = policy;
  // Dense baselines pass ratio 0 (no lasso term); keep the default ratio so
  // validate() passes — the dense policy never reads it.
  cfg.lasso_ratio = ratio > 0.f ? ratio : core::TrainConfig{}.lasso_ratio;
  cfg.lasso_boost = kLassoBoost;
  cfg.reconfig_interval = std::max<std::int64_t>(2, epochs / 6);
  cfg.one_shot_epoch = epochs / 2;
  cfg.eval_interval = 5;
  return cfg;
}

CliFlags standard_flags(std::int64_t default_epochs) {
  CliFlags flags;
  flags.define("epochs", std::to_string(default_epochs),
               "training epochs per run");
  flags.define("quick", "false", "halve epochs for a fast smoke run");
  flags.define("csv", "", "also write results to this CSV file");
  return flags;
}

std::int64_t effective_epochs(const CliFlags& flags) {
  std::int64_t epochs = flags.get_int("epochs");
  if (flags.get_bool("quick")) epochs = std::max<std::int64_t>(10, epochs / 2);
  return epochs;
}

void emit(const Table& table, const CliFlags& flags, const std::string& name) {
  std::cout << "== " << name << " ==\n";
  table.print(flags.get("csv"));
  std::cout << std::endl;
}

}  // namespace pt::bench
