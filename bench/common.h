// Shared proxy-scale experiment definitions for the benchmark harness.
//
// Every bench reproduces one table or figure of the paper at *proxy scale*:
// the same architectures (width-scaled), the same training protocol
// (SGD+momentum, multi-step LR decay, Eq. 3 lambda with the documented
// time-compression boost), and synthetic stand-ins for CIFAR-10/100 and
// ImageNet (see DESIGN.md). The canonical cases here keep all benches
// consistent with each other and with the test suite.
#pragma once

#include <string>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "util/cli.h"
#include "util/table.h"

namespace pt::bench {

/// One model-on-dataset proxy experiment.
struct ProxyCase {
  std::string label;           ///< e.g. "ResNet32/SynthCIFAR10"
  std::string model;           ///< builder name
  float width_mult = 0.25f;
  data::SyntheticSpec data;
};

/// Canonical proxies for the paper's CIFAR experiments.
/// Models: resnet20/32/56 at width 0.25, resnet50 at width 0.0625,
/// vgg11/13 at width 0.125 — sized for single-core training.
ProxyCase cifar_case(const std::string& model, bool cifar100);

/// Canonical proxy for ResNet50-on-ImageNet: ImageNet-stem bottleneck
/// ResNet at width 0.0625 on the 16x16 SynthImageNet dataset.
ProxyCase imagenet_case();

/// Builds the network for a case.
graph::Network build_net(const ProxyCase& c, std::uint64_t seed = 21);

/// Model cost through the shared cost:: entry points — the one way bench
/// drivers read a model's cost (no per-driver FLOP arithmetic).
struct ModelCost {
  double inference_flops = 0;        ///< per sample
  double training_flops = 0;         ///< per sample, fwd + bwd
  double activation_bytes = 0;       ///< stored forward outputs, per sample
  double memory_bytes = 0;           ///< training context at `batch`
  double bn_traffic_per_sample = 0;  ///< DRAM bytes per sample
  double params = 0;                 ///< parameter scalars
};

ModelCost model_cost(graph::Network& net, const Shape& input,
                     std::int64_t batch = 64);

/// Canonical training protocol for proxy runs: `epochs` epochs with LR
/// decays at 50% and 75%, batch 64, lr 0.1, reconfiguration every
/// `epochs/6` epochs, Eq. 3 ratio `ratio` with the canonical lasso boost.
core::TrainConfig proxy_train_config(std::int64_t epochs, float ratio,
                                     core::PrunePolicy policy);

/// The canonical proxy time-compression factor (see TrainConfig docs).
constexpr float kLassoBoost = 150.f;

/// Standard bench CLI: --epochs, --quick, --csv. Returns configured flags.
CliFlags standard_flags(std::int64_t default_epochs);

/// Epochs after applying --quick (halves epochs, min 10).
std::int64_t effective_epochs(const CliFlags& flags);

/// Prints a table plus an optional CSV (path from --csv, "" = none).
void emit(const Table& table, const CliFlags& flags, const std::string& name);

}  // namespace pt::bench
