// Elastic-membership overhead bench: what does the heartbeat poll, the
// participant re-shard, and the straggler EWMA cost per step, and what does
// a failure/rejoin cycle cost in modeled resync traffic?
//
//   $ ./elastic_overhead [--steps N] [--batch N] [--replicas N] [--out BENCH.json]
//
// Three things are measured and written to BENCH_elastic_overhead.json:
//
//  1. Equivalence (always, on any machine): with nobody failing, an
//     ElasticCluster step must be bitwise-identical to a fixed Cluster step
//     — membership tracking is bookkeeping, never numerics. Reported as
//     determinism_bitwise_elastic_vs_fixed (run_bench_suite.sh fails the
//     suite when it is false).
//  2. Steady-state overhead: mean seconds per step for the fixed cluster vs
//     the elastic cluster on the same replicas/batches, and the relative
//     overhead of the membership machinery.
//  3. Churn cost: a kill at 1/3 of the run and a rejoin at 2/3 — live-ring
//     comm bytes before/during/after, plus the resync bytes the rejoiner
//     pulls (the modeled price of elasticity).
#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "dist/cluster.h"
#include "dist/elastic.h"
#include "nn/loss.h"
#include "optim/sgd.h"
#include "telemetry/bench_export.h"

namespace {

using pt::Tensor;

pt::graph::Network build_model() {
  pt::models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = 8;
  cfg.width_mult = 0.5f;
  cfg.seed = 21;
  return pt::models::build_resnet_basic(8, cfg);
}

std::vector<pt::graph::Network> build_replicas(int n) {
  std::vector<pt::graph::Network> nets;
  nets.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) nets.push_back(build_model());
  return nets;
}

pt::cost::CommSpec spec_for(int gpus) {
  pt::cost::CommSpec s;
  s.gpus = gpus;
  return s;
}

pt::data::Batch make_batch(std::int64_t n, std::uint64_t seed) {
  pt::Rng rng(seed);
  pt::data::Batch b;
  b.images = Tensor::randn({n, 3, 8, 8}, rng);
  for (std::int64_t i = 0; i < n; ++i) {
    b.labels.push_back(static_cast<std::int64_t>(rng.uniform_int(8)));
  }
  return b;
}

bool params_bitwise_equal(pt::graph::Network& a, pt::graph::Network& b) {
  auto pa = a.params();
  auto pb = b.params();
  if (pa.size() != pb.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i]->value.numel() != pb[i]->value.numel()) return false;
    if (std::memcmp(pa[i]->value.data(), pb[i]->value.data(),
                    sizeof(float) *
                        static_cast<std::size_t>(pa[i]->value.numel())) != 0) {
      return false;
    }
  }
  return true;
}

/// All-healthy elastic steps must be the fixed cluster's steps, bit for bit.
bool check_equivalence(int replicas, std::int64_t batch) {
  pt::dist::Cluster fixed(build_replicas(replicas), spec_for(replicas));
  pt::dist::ElasticCluster elastic(build_replicas(replicas),
                                   spec_for(replicas));
  pt::optim::SGD opt_a(0.05f, 0.9f);
  pt::optim::SGD opt_b(0.05f, 0.9f);
  for (int step = 0; step < 3; ++step) {
    const auto b = make_batch(batch, 1000 + static_cast<std::uint64_t>(step));
    fixed.step(b, opt_a);
    elastic.step(b, opt_b);
  }
  for (int r = 0; r < replicas; ++r) {
    if (!params_bitwise_equal(fixed.replica(r), elastic.replica(r))) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pt::CliFlags flags;
  flags.define("steps", "24", "timed steps per cluster variant");
  flags.define("batch", "16", "global mini-batch size");
  flags.define("replicas", "4", "simulated data-parallel replicas");
  flags.define("out", "BENCH_elastic_overhead.json",
               "output artifact path (BENCH_*.json format)");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("elastic_overhead");
    return 0;
  }
  const std::int64_t steps = flags.get_int("steps");
  const std::int64_t batch = flags.get_int("batch");
  const int replicas = static_cast<int>(flags.get_int("replicas"));

  const bool equivalent = check_equivalence(replicas, batch);
  std::cout << "elastic_overhead: ResNet-8(w0.5)/8x8, " << replicas
            << " replicas, batch " << batch << ", " << steps << " steps\n";
  std::cout << "  all-healthy elastic step bitwise == fixed cluster step: "
            << (equivalent ? "yes" : "NO — DETERMINISM VIOLATED") << "\n";

  // Steady state: same replicas, same batches, membership tracking off
  // (fixed Cluster) vs on (ElasticCluster, nobody failing).
  auto time_fixed = [&]() {
    pt::dist::Cluster c(build_replicas(replicas), spec_for(replicas));
    pt::optim::SGD opt(0.05f, 0.9f);
    for (int i = 0; i < 2; ++i) c.step(make_batch(batch, 7), opt);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < steps; ++i) {
      c.step(make_batch(batch, 100 + static_cast<std::uint64_t>(i)), opt);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count() /
           static_cast<double>(steps);
  };
  auto time_elastic = [&]() {
    pt::dist::ElasticCluster c(build_replicas(replicas), spec_for(replicas));
    pt::optim::SGD opt(0.05f, 0.9f);
    for (int i = 0; i < 2; ++i) c.step(make_batch(batch, 7), opt);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < steps; ++i) {
      c.step(make_batch(batch, 100 + static_cast<std::uint64_t>(i)), opt);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count() /
           static_cast<double>(steps);
  };
  const double fixed_s = time_fixed();
  const double elastic_s = time_elastic();
  const double overhead_pct = (elastic_s / fixed_s - 1.0) * 100.0;
  std::cout << "  fixed cluster:   " << pt::fmt(fixed_s * 1e3, 2)
            << " ms/step\n";
  std::cout << "  elastic cluster: " << pt::fmt(elastic_s * 1e3, 2)
            << " ms/step  (" << pt::fmt(overhead_pct, 1)
            << "% membership overhead)\n";

  // Churn: kill one replica at steps/3, rejoin it at 2*steps/3; track the
  // live-ring comm bytes and the fenced resync traffic.
  pt::dist::MembershipConfig mc;
  mc.suspect_threshold = 1;
  mc.min_live_fraction = 1.0 / static_cast<double>(replicas);
  pt::dist::ElasticCluster churn(build_replicas(replicas), spec_for(replicas),
                                 mc);
  const std::int64_t kill_at = steps / 3;
  const std::int64_t rejoin_at = 2 * steps / 3;
  churn.schedule_departure(replicas - 1, kill_at);
  churn.schedule_rejoin(replicas - 1, rejoin_at);
  pt::optim::SGD opt(0.05f, 0.9f);
  double bytes_full = 0;
  double bytes_degraded = 0;
  for (std::int64_t i = 0; i < steps; ++i) {
    const auto r =
        churn.step(make_batch(batch, 500 + static_cast<std::uint64_t>(i)), opt);
    if (r.live_replicas == replicas) {
      bytes_full += r.comm_bytes_per_gpu;
    } else {
      bytes_degraded += r.comm_bytes_per_gpu;
    }
  }
  std::cout << "  churn run: kill@" << kill_at << " rejoin@" << rejoin_at
            << ", resync " << pt::fmt(churn.resync_bytes_total() / 1e6, 2)
            << " MB, comm " << pt::fmt((bytes_full + bytes_degraded) / 1e6, 2)
            << " MB total\n";

  pt::telemetry::Json j = pt::telemetry::Json::object();
  j["schema"] = pt::telemetry::Json("pt-telemetry-bench");
  j["name"] = pt::telemetry::Json("elastic_overhead");
  j["model"] = pt::telemetry::Json("resnet8 w0.5 8x8");
  j["replicas"] = pt::telemetry::Json(static_cast<std::int64_t>(replicas));
  j["batch"] = pt::telemetry::Json(batch);
  j["steps"] = pt::telemetry::Json(steps);
  j["determinism_bitwise_elastic_vs_fixed"] = pt::telemetry::Json(equivalent);
  j["skipped"] = pt::telemetry::Json(false);
  j["fixed_seconds_per_step"] = pt::telemetry::Json(fixed_s);
  j["elastic_seconds_per_step"] = pt::telemetry::Json(elastic_s);
  j["membership_overhead_percent"] = pt::telemetry::Json(overhead_pct);
  j["churn_kill_step"] = pt::telemetry::Json(kill_at);
  j["churn_rejoin_step"] = pt::telemetry::Json(rejoin_at);
  j["churn_resync_bytes"] = pt::telemetry::Json(
      static_cast<std::int64_t>(churn.resync_bytes_total()));
  j["churn_comm_bytes_full_ring"] = pt::telemetry::Json(bytes_full);
  j["churn_comm_bytes_degraded_ring"] = pt::telemetry::Json(bytes_degraded);
  pt::telemetry::bench_export(j, flags.get("out"));
  std::cout << "  wrote " << flags.get("out") << "\n";
  return equivalent ? 0 : 1;
}
