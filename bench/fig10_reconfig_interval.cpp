// Fig. 10 — sensitivity of the final compression/accuracy tradeoff to the
// network reconfiguration interval (the one hyper-parameter PruneTrain
// adds beyond the regularization strength).
//
// Expected shape (paper): accuracy and inference FLOPs are insensitive to
// the interval across a wide range (they sweep 10/20/30-epoch intervals).
#include <iostream>

#include "bench/common.h"

using namespace pt;
using namespace pt::bench;

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(48);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("fig10_reconfig_interval");
    return 0;
  }
  const std::int64_t epochs = effective_epochs(flags);
  // Proxy intervals scaled to the run length the same way the paper's
  // 10/20/30 relate to its 182-epoch runs.
  const std::vector<std::int64_t> intervals = {epochs / 12, epochs / 6, epochs / 4};

  for (const char* model : {"resnet20", "resnet50"}) {
    const ProxyCase c = cifar_case(model, false);
    data::SyntheticImageDataset ds(c.data);
    Table t({"interval (epochs)", "ratio", "val acc", "inference MFLOPs",
             "training GFLOPs"});
    for (std::int64_t interval : intervals) {
      for (float ratio : {0.15f, 0.3f}) {
        auto net = build_net(c);
        auto cfg = proxy_train_config(epochs, ratio, core::PrunePolicy::kPruneTrain);
        cfg.reconfig_interval = std::max<std::int64_t>(1, interval);
        core::PruneTrainer trainer(net, ds, cfg);
        const auto r = trainer.run();
        t.add_row({std::to_string(cfg.reconfig_interval), fmt(ratio, 2),
                   fmt(r.final_test_acc, 3),
                   fmt(r.final_inference_flops / 1e6, 3),
                   fmt(r.total_train_flops / 1e9, 2)});
      }
    }
    emit(t, flags,
         std::string("Fig 10: reconfiguration-interval sensitivity, ") + c.label);
  }
  return 0;
}
