// Fig. 11 — projected per-epoch allreduce communication cost of model
// updates during ResNet50/ImageNet-proxy training, normalized to the dense
// baseline, for three regularization strengths, with and without dynamic
// mini-batch adjustment.
//
// Expected shape (paper): per-epoch cost falls at every reconfiguration as
// the gradient buffer shrinks; stronger regularization + dynamic batches
// (fewer updates/epoch) push later epochs lower, averaging ~50%+ savings.
#include <iostream>

#include "bench/common.h"
#include "cost/comm.h"

using namespace pt;
using namespace pt::bench;

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(36);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("fig11_comm_cost");
    return 0;
  }
  const std::int64_t epochs = effective_epochs(flags);
  // Wider-than-canonical proxy (as in fig9): dynamic mini-batch growth
  // needs prunable early-layer activation memory to open capacity headroom.
  ProxyCase c = imagenet_case();
  c.width_mult = 0.125f;
  data::SyntheticImageDataset ds(c.data);
  const std::vector<float> ratios = {0.1f, 0.2f, 0.25f};

  // Dense baseline per-epoch communication volume.
  double dense_epoch_bytes = 0;
  {
    auto net = build_net(c);
    auto cfg = proxy_train_config(1, 0.f, core::PrunePolicy::kDense);
    core::PruneTrainer trainer(net, ds, cfg);
    const auto r = trainer.run();
    dense_epoch_bytes = r.epochs[0].comm_bytes_per_gpu;
  }

  for (bool dynamic : {false, true}) {
    Table t({"epoch", "ratio=0.1", "ratio=0.2", "ratio=0.25"});
    std::vector<core::TrainResult> runs;
    for (float ratio : ratios) {
      auto net = build_net(c);
      auto cfg = proxy_train_config(epochs, ratio, core::PrunePolicy::kPruneTrain);
      if (dynamic) {
        cfg.dynamic_batch.enabled = true;
        cfg.dynamic_batch.granularity = 16;
        cfg.dynamic_batch.max_batch = 256;
        cfg.dynamic_batch.device_memory_bytes =
            model_cost(net, {c.data.channels, c.data.height, c.data.width},
                       cfg.batch_size)
                .memory_bytes;
      }
      core::PruneTrainer trainer(net, ds, cfg);
      runs.push_back(trainer.run());
    }
    double avg_saving = 0;
    std::int64_t count = 0;
    for (std::int64_t e = 0; e < epochs; e += 2) {
      std::vector<std::string> row = {std::to_string(e)};
      for (const auto& r : runs) {
        const double norm = r.epochs[std::size_t(e)].comm_bytes_per_gpu /
                            dense_epoch_bytes;
        row.push_back(fmt(norm, 3));
      }
      t.add_row(std::move(row));
    }
    for (const auto& r : runs) {
      for (const auto& es : r.epochs) {
        avg_saving += 1.0 - es.comm_bytes_per_gpu / dense_epoch_bytes;
        ++count;
      }
    }
    emit(t, flags,
         std::string("Fig 11: per-epoch allreduce cost normalized to dense (") +
             (dynamic ? "with" : "without") + " dynamic mini-batch); avg saving " +
             fmt(100.0 * avg_saving / double(count), 1) + "%");
  }

  // Codec corollary: the normalized trajectories above shrink the payload
  // by *pruning* (smaller gradient buffer) and by *batch growth* (fewer
  // updates per epoch); a gradient codec multiplies a third, independent
  // factor onto the same wire volume. bench/comm_compression measures the
  // real encoded bytes — this table is the analytical projection.
  {
    Table ct({"live_fraction", "dense", "twobit", "live_channel"});
    for (double lf : {1.0, 0.5, 0.25, 0.125}) {
      ct.add_row(
          {fmt(lf, 3),
           fmt(cost::CommModel::compression_factor(cost::CommCodec::kDense, lf),
               4),
           fmt(cost::CommModel::compression_factor(cost::CommCodec::kTwoBit, lf),
               4),
           fmt(cost::CommModel::compression_factor(
                   cost::CommCodec::kLiveChannel, lf),
               4)});
    }
    emit(ct, flags,
         "Fig 11 corollary: codec wire-volume multipliers (applied on top of "
         "the pruned payload and update count)");
  }
  return 0;
}
