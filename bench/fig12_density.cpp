// Fig. 12 — per-layer channel density and intra-channel weight density of
// the trained ResNet50/ImageNet proxy.
//
// Expected shape (paper): channel density (in-density x out-density) varies
// strongly by layer; even within surviving channels roughly half the
// individual weights are near zero — exploitable unstructured sparsity.
#include <iostream>

#include "bench/common.h"
#include "prune/sparsity_monitor.h"

using namespace pt;
using namespace pt::bench;

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(36);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("fig12_density");
    return 0;
  }
  const std::int64_t epochs = effective_epochs(flags);
  const ProxyCase c = imagenet_case();
  data::SyntheticImageDataset ds(c.data);

  auto net = build_net(c);
  auto cfg = proxy_train_config(epochs, 0.25f, core::PrunePolicy::kPruneTrain);
  // No structural reconfiguration: keep the full index space so layer
  // densities are reported against the original widths, as in the paper.
  cfg.reconfig_interval = epochs + 1;
  core::PruneTrainer trainer(net, ds, cfg);
  trainer.run();

  // Paper uses a looser effective threshold when reporting density ("near
  // zero"); stay with the pruning threshold and a 100x "near-zero" level.
  Table t({"layer", "channel density", "weight density (1e-4)",
           "weight density (1e-2)"});
  const auto strict = prune::layer_densities(net, 1e-4f);
  const auto loose = prune::layer_densities(net, 1e-2f);
  double ch_avg = 0, w_avg = 0;
  for (std::size_t i = 0; i < strict.size(); ++i) {
    t.add_row({strict[i].name, fmt(strict[i].channel_density, 3),
               fmt(strict[i].weight_density, 3), fmt(loose[i].weight_density, 3)});
    ch_avg += strict[i].channel_density;
    w_avg += loose[i].weight_density;
  }
  emit(t, flags,
       "Fig 12: per-layer channel / weight density, ResNet50 proxy (avg channel "
       "density " +
           fmt(ch_avg / double(strict.size()), 3) + ", avg near-zero weight density " +
           fmt(w_avg / double(strict.size()), 3) + ")");
  return 0;
}
