// Fig. 2 — FLOPs-per-iteration trajectory, pruned-FLOPs phase breakdown,
// and the one-time-reconfiguration overhead comparison.
//
// (a) FLOPs/iteration (normalized to dense) per epoch for three
//     regularization strengths on the ResNet50/CIFAR10 proxy;
// (b) breakdown of the total pruned FLOPs by training phase (thirds of the
//     run, mirroring the paper's 1-90 / 91-200 / 201-300 split);
// (c) relative training FLOPs if the network were reconfigured exactly
//     once at epoch E (computed from the same trajectory, with the paper's
//     optimistic assumption that the best E were known a priori),
//     normalized to continuous PruneTrain.
//
// Expected shape (paper): most FLOPs are pruned in the first third of
// training; one-shot reconfiguration costs >= ~1.25x PruneTrain regardless
// of E.
#include <iostream>
#include <vector>

#include "bench/common.h"

using namespace pt;
using namespace pt::bench;

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(48);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("fig2_flops_trajectory");
    return 0;
  }
  const std::int64_t epochs = effective_epochs(flags);
  const std::vector<float> ratios = {0.1f, 0.2f, 0.3f};
  const ProxyCase c = cifar_case("resnet50", /*cifar100=*/false);

  std::vector<core::TrainResult> runs;
  for (float ratio : ratios) {
    auto net = build_net(c);
    auto cfg = proxy_train_config(epochs, ratio, core::PrunePolicy::kPruneTrain);
    data::SyntheticImageDataset ds(c.data);
    core::PruneTrainer trainer(net, ds, cfg);
    runs.push_back(trainer.run());
  }

  // (a) normalized FLOPs per training iteration over epochs.
  Table a({"epoch", "ratio=0.1", "ratio=0.2", "ratio=0.3"});
  const double dense = runs[0].epochs.front().flops_per_sample_train;
  for (std::int64_t e = 0; e < epochs; ++e) {
    a.add_row({std::to_string(e),
               fmt(runs[0].epochs[std::size_t(e)].flops_per_sample_train / dense, 3),
               fmt(runs[1].epochs[std::size_t(e)].flops_per_sample_train / dense, 3),
               fmt(runs[2].epochs[std::size_t(e)].flops_per_sample_train / dense, 3)});
  }
  emit(a, flags, "Fig 2a: FLOPs per training iteration (normalized to dense), " +
                     c.label);

  // (b) share of the total pruned FLOPs removed in each third of training.
  Table b({"ratio", "phase1", "phase2", "phase3", "final acc"});
  for (std::size_t r = 0; r < ratios.size(); ++r) {
    const auto& es = runs[r].epochs;
    const double total_pruned = dense - es.back().flops_per_sample_train;
    auto pruned_by = [&](std::int64_t e) {
      return dense - es[std::size_t(e)].flops_per_sample_train;
    };
    const std::int64_t t1 = epochs / 3, t2 = 2 * epochs / 3;
    double p1 = pruned_by(t1), p2 = pruned_by(t2) - pruned_by(t1),
           p3 = total_pruned - pruned_by(t2);
    if (total_pruned <= 0) p1 = p2 = p3 = 0;
    auto pct = [&](double v) {
      return total_pruned > 0 ? fmt(100.0 * v / total_pruned, 1) + "%"
                              : "n/a";
    };
    b.add_row({fmt(ratios[r], 2), pct(p1), pct(p2), pct(p3),
               fmt(runs[r].final_test_acc, 3)});
  }
  emit(b, flags, "Fig 2b: pruned-FLOPs breakdown by training phase");

  // (c) one-shot reconfiguration at epoch E vs continuous PruneTrain.
  Table ctab({"reconfig epoch", "ratio=0.1", "ratio=0.2", "ratio=0.3"});
  for (std::int64_t e = epochs / 8; e < epochs; e += std::max<std::int64_t>(1, epochs / 8)) {
    std::vector<std::string> row = {std::to_string(e)};
    for (const auto& run : runs) {
      double continuous = 0;
      for (const auto& es : run.epochs) continuous += es.flops_per_sample_train;
      // One-shot: dense until E, then the model PruneTrain had at E.
      const double after = run.epochs[std::size_t(e)].flops_per_sample_train;
      const double oneshot =
          dense * double(e) + after * double(epochs - e);
      row.push_back(fmt(oneshot / continuous, 3));
    }
    ctab.add_row(std::move(row));
  }
  emit(ctab, flags,
       "Fig 2c: one-time reconfiguration training FLOPs relative to PruneTrain");
  return 0;
}
