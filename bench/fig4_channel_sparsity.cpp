// Fig. 4 — per-output-channel max-|w| trajectories over training epochs
// for three convolution layers of one residual path, plus the revival
// statistics that justify early pruning.
//
// Expected shape (paper): channels that fall below the 1e-4 threshold stay
// there ("zeroed channels rarely revive"); revivals, if any, hover near the
// threshold.
#include <algorithm>
#include <iostream>

#include "bench/common.h"
#include "prune/sparsity_monitor.h"

using namespace pt;
using namespace pt::bench;

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(40);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("fig4_channel_sparsity");
    return 0;
  }
  const std::int64_t epochs = effective_epochs(flags);
  const ProxyCase c = cifar_case("resnet50", false);

  auto net = build_net(c);
  auto cfg = proxy_train_config(epochs, 0.25f, core::PrunePolicy::kPruneTrain);
  cfg.reconfig_interval = epochs + 1;  // watch raw sparsification, no surgery
  cfg.record_sparsity = true;
  data::SyntheticImageDataset ds(c.data);
  core::PruneTrainer trainer(net, ds, cfg);
  trainer.run();

  const auto* mon = trainer.sparsity_monitor();
  // The paper shows the three convolutions of one mid-network residual
  // path; at proxy width the equivalent layers are in stage 1 (the paper's
  // layer-5..7 path in stage 0 is only 4 channels wide here).
  for (int conv_idx : {16, 17, 18}) {
    const auto& h = mon->history()[std::size_t(conv_idx)];
    Table t({"epoch", "zeroed channels", "min max|w|", "median max|w|"});
    for (std::size_t e = 0; e < h.max_abs.size(); e += 2) {
      const auto& row = h.max_abs[e];
      std::vector<float> sorted(row);
      std::sort(sorted.begin(), sorted.end());
      std::int64_t zeroed = 0;
      for (float v : row) zeroed += v <= 1e-4f ? 1 : 0;
      t.add_row({std::to_string(h.epochs[e]), std::to_string(zeroed),
                 fmt(sorted.front(), 6), fmt(sorted[sorted.size() / 2], 4)});
    }
    emit(t, flags,
         "Fig 4: output-channel sparsity of conv layer " + std::to_string(conv_idx) +
             " (" + h.name + ", " + std::to_string(h.max_abs[0].size()) +
             " channels)");
  }

  Table rev({"threshold", "revivals (10x threshold)", "channel-epochs observed"});
  std::int64_t observed = 0;
  for (const auto& h : mon->history()) {
    for (const auto& row : h.max_abs) observed += std::int64_t(row.size());
  }
  rev.add_row({"1e-4", std::to_string(mon->count_revivals(1e-4f)),
               std::to_string(observed)});
  emit(rev, flags, "Fig 4 (companion): zeroed-channel revivals across all convs");
  return 0;
}
