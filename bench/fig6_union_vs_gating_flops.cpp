// Fig. 6 — inference FLOPs of channel union vs. channel gating at
// different pruning intensities, for the ResNet32 and ResNet50 proxies.
//
// One model is trained per architecture; pruning intensity is then swept
// by raising the zeroing threshold, and FLOPs are computed analytically
// for both schemes from the channel analysis:
//   union:  every conv processes the union keep-set of its channel vars;
//   gating: residual-path boundary convs process only their own dense
//           channels (the gather/scatter packed form).
//
// Expected shape (paper): union costs only ~1-6% more FLOPs than gating at
// every intensity, and the gap does not grow with depth.
#include <algorithm>
#include <iostream>

#include <map>

#include "bench/common.h"
#include "cost/flops.h"
#include "nn/conv2d.h"
#include "prune/channel_analysis.h"

using namespace pt;
using namespace pt::bench;

namespace {

struct SchemeFlops {
  double union_flops = 0;
  double gating_flops = 0;
};

SchemeFlops scheme_flops(graph::Network& net, const Shape& input, float threshold) {
  const auto analysis = prune::analyze_channels(net, threshold);
  Shape batched({1, input[0], input[1], input[2]});
  const auto shapes = cost::infer_shapes(net, batched);

  // Boundary conv roles: first conv of a path reads the stage var; last
  // conv of a path writes it.
  std::map<int, bool> is_first, is_last;
  for (const auto& blk : net.info.blocks) {
    if (blk.removed) continue;
    is_first[blk.path_convs.front()] = true;
    is_last[blk.path_convs.back()] = true;
  }

  SchemeFlops out;
  for (int id : net.nodes_of_type<nn::Conv2d>()) {
    const auto& conv = net.layer_as<nn::Conv2d>(id);
    const Shape& oshape = shapes[std::size_t(id)];
    const auto& keep_in = analysis.keep_of(net.node(id).inputs[0]);
    const auto& keep_out = analysis.keep_of(id);
    const double u_in = keep_in.empty() ? double(conv.in_channels())
                                        : double(keep_in.size());
    const double u_out = keep_out.empty() ? double(conv.out_channels())
                                          : double(keep_out.size());
    out.union_flops += cost::conv2d_forward_flops(u_out, u_in, conv.kernel(),
                                                  oshape[2], oshape[3]);

    double g_in = u_in, g_out = u_out;
    if (is_first.count(id) != 0) {
      g_in = double(prune::dense_in_channels(conv, threshold).size());
      if (g_in == 0) g_in = 1;
    }
    if (is_last.count(id) != 0) {
      g_out = double(prune::dense_out_channels(conv, threshold).size());
      if (g_out == 0) g_out = 1;
    }
    out.gating_flops += cost::conv2d_forward_flops(g_out, g_in, conv.kernel(),
                                                   oshape[2], oshape[3]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(36);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("fig6_union_vs_gating_flops");
    return 0;
  }
  const std::int64_t epochs = effective_epochs(flags);

  for (const char* model : {"resnet32", "resnet50"}) {
    const ProxyCase c = cifar_case(model, false);
    auto net = build_net(c);
    // Ratio 0.15 keeps both proxies in the stable sparsification regime
    // (stronger ratios collapse the narrow basic-block ResNet32 proxy).
    auto cfg = proxy_train_config(epochs, 0.15f, core::PrunePolicy::kPruneTrain);
    cfg.reconfig_interval = epochs + 1;  // keep full width: sweep thresholds below
    cfg.final_reconfigure = false;
    data::SyntheticImageDataset ds(c.data);
    core::PruneTrainer trainer(net, ds, cfg);
    trainer.run();

    const Shape input{c.data.channels, c.data.height, c.data.width};
    cost::FlopsModel dense(net, input);
    const double dense_conv = scheme_flops(net, input, 0.f).union_flops;

    // Pruning intensities are expressed as quantiles of the distribution of
    // per-group max-|w| (the trained sparsity plus progressively more
    // aggressive thresholds), so the sweep spans the same relative
    // intensities for every architecture regardless of weight scale.
    // Quantiles are taken over the *surviving* group-max distribution
    // (groups already at zero would otherwise pin every quantile to the
    // base threshold).
    std::vector<float> group_maxes;
    for (int id : net.nodes_of_type<nn::Conv2d>()) {
      const auto& conv = net.layer_as<nn::Conv2d>(id);
      for (std::int64_t k = 0; k < conv.out_channels(); ++k) {
        const float m = conv.out_channel_max_abs(k);
        if (m > 1e-4f) group_maxes.push_back(m);
      }
      for (std::int64_t ci = 0; ci < conv.in_channels(); ++ci) {
        const float m = conv.in_channel_max_abs(ci);
        if (m > 1e-4f) group_maxes.push_back(m);
      }
    }
    std::sort(group_maxes.begin(), group_maxes.end());
    auto quantile = [&](double q) {
      if (group_maxes.empty()) return 1e-4f;  // fully sparsified model
      const auto idx =
          static_cast<std::size_t>(q * double(group_maxes.size() - 1));
      return std::max(1e-4f, group_maxes[idx]);
    };

    Table t({"intensity", "threshold", "union FLOPs", "gating FLOPs",
             "union overhead"});
    for (double q : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
      const float thr = q == 0.0 ? 1e-4f : quantile(q);
      const auto f = scheme_flops(net, input, thr);
      t.add_row({fmt(q, 1), fmt(thr, 4), fmt(f.union_flops / dense_conv, 3),
                 fmt(f.gating_flops / dense_conv, 3),
                 fmt(100.0 * (f.union_flops - f.gating_flops) /
                         std::max(1.0, f.gating_flops),
                     2) + "%"});
    }
    emit(t, flags,
         std::string("Fig 6: union vs gating conv FLOPs (normalized to dense), ") +
             c.label);
  }
  return 0;
}
