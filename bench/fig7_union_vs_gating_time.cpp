// Fig. 7 — per-residual-block execution time of channel union vs channel
// gating for ResNet50 (ImageNet geometry), including gating's tensor-
// reshaping overhead.
//
// No training is needed: sparsity is synthesized by zeroing a deterministic
// random subset of channel groups at the rate the paper's trained models
// exhibit (~40-50%), then the same sparse model is materialized two ways
// (union-reconfigured vs gated) and timed per block on the roofline device
// model; real CPU forward times are reported as a cross-check.
//
// Expected shape (paper): union beats gating on every block; gating's
// reshape overhead is largest in early blocks (8x larger activations).
#include <iostream>

#include "bench/common.h"
#include "cost/device.h"
#include "nn/conv2d.h"
#include "prune/gating.h"
#include "prune/reconfigure.h"
#include "util/logging.h"

using namespace pt;
using namespace pt::bench;

namespace {

/// Zeroes ~`frac` of every conv's output channel groups (and matching
/// input channel groups of downstream convs are left to the union rule),
/// reproducing trained-model sparsity without training.
void synthesize_sparsity(graph::Network& net, double frac, std::uint64_t seed) {
  Rng rng(seed);
  for (int id : net.nodes_of_type<nn::Conv2d>()) {
    if (id == net.info.first_conv) continue;
    auto& conv = net.layer_as<nn::Conv2d>(id);
    const std::int64_t len = conv.in_channels() * conv.kernel() * conv.kernel();
    for (std::int64_t k = 0; k < conv.out_channels(); ++k) {
      if (rng.uniform() < frac && k + 1 < conv.out_channels()) {
        float* w = conv.weight().value.data() + k * len;
        for (std::int64_t q = 0; q < len; ++q) w[q] = 0.f;
      }
    }
    const std::int64_t rs = conv.kernel() * conv.kernel();
    for (std::int64_t c = 0; c < conv.in_channels(); ++c) {
      if (rng.uniform() < frac && c + 1 < conv.in_channels()) {
        for (std::int64_t k = 0; k < conv.out_channels(); ++k) {
          float* w = conv.weight().value.data() + (k * conv.in_channels() + c) * rs;
          for (std::int64_t q = 0; q < rs; ++q) w[q] = 0.f;
        }
      }
    }
  }
}

/// Sum of modeled times of the given nodes.
struct BlockTime {
  double conv_s = 0;
  double reshape_s = 0;
};

BlockTime block_time(const std::vector<cost::LayerTime>& times,
                     const graph::ResidualBlockInfo& blk, graph::Network& net) {
  BlockTime out;
  for (const auto& lt : times) {
    bool in_block = false;
    for (int id : blk.path_nodes) in_block |= lt.node == id;
    // Gating select/scatter nodes are appended after construction; match by
    // name prefix instead.
    for (int id : blk.path_convs) {
      const auto& name = net.node(id).layer ? net.node(id).layer->name() : "";
      if (!name.empty() && lt.name.rfind(name + ".gate", 0) == 0) in_block = true;
    }
    if (!in_block) continue;
    out.conv_s += lt.forward_s;
    out.reshape_s += lt.reshape_s;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(0);
  flags.define("width", "0.5", "ResNet50 width multiplier");
  flags.define("sparsity", "0.45", "fraction of channel groups zeroed");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("fig7_union_vs_gating_time");
    return 0;
  }
  const float width = static_cast<float>(flags.get_double("width"));
  const double sparsity = flags.get_double("sparsity");

  models::ModelConfig mc;
  mc.image_h = 32;
  mc.image_w = 32;
  mc.classes = 16;
  mc.width_mult = width;
  mc.seed = 77;

  auto make_pruned = [&](bool gated) {
    auto net = models::build_resnet50(mc, /*imagenet_stem=*/true);
    synthesize_sparsity(net, sparsity, 99);
    prune::Reconfigurer rec(net, 1e-4f);
    rec.reconfigure();
    if (gated) prune::apply_channel_gating(net, 1e-4f);
    return net;
  };
  auto union_net = make_pruned(false);
  auto gated_net = make_pruned(true);

  const Shape input{3, 32, 32};
  const std::int64_t batch = 32;
  cost::DeviceModel dev(cost::DeviceSpec::v100());
  const auto t_union = dev.layer_times(union_net, input, batch, false);
  const auto t_gated = dev.layer_times(gated_net, input, batch, false);

  Table t({"block", "conv (U) us", "conv (G) us", "reshape (G) us",
           "speedup U over G"});
  for (std::size_t b = 0; b < union_net.info.blocks.size(); ++b) {
    const auto& blk_u = union_net.info.blocks[b];
    const auto& blk_g = gated_net.info.blocks[b];
    if (blk_u.removed || blk_g.removed) continue;
    const BlockTime u = block_time(t_union, blk_u, union_net);
    const BlockTime g = block_time(t_gated, blk_g, gated_net);
    const double ut = u.conv_s;
    const double gt = g.conv_s + g.reshape_s;
    t.add_row({std::to_string(b + 1), fmt(ut * 1e6, 2), fmt(g.conv_s * 1e6, 2),
               fmt(g.reshape_s * 1e6, 2), fmt(gt / ut, 2)});
  }
  emit(t, flags,
       "Fig 7: per-block modeled time (V100 roofline), union vs gating, "
       "ResNet50-ImageNet proxy");

  // Cross-check with real single-core forward wall time.
  Rng rng(5);
  Tensor x = Tensor::randn({batch, 3, 32, 32}, rng);
  auto time_net = [&](graph::Network& net) {
    net.forward(x, false);  // warm-up
    Timer timer;
    for (int i = 0; i < 3; ++i) net.forward(x, false);
    return timer.seconds() / 3.0;
  };
  Table w({"scheme", "forward wall time (ms)"});
  w.add_row({"channel union", fmt(time_net(union_net) * 1e3, 2)});
  w.add_row({"channel gating", fmt(time_net(gated_net) * 1e3, 2)});
  emit(w, flags, "Fig 7 (cross-check): measured CPU forward time");
  return 0;
}
