// Fig. 8 — accuracy-vs-cost tradeoff curves: PruneTrain vs SSL vs the
// dense baseline on the ResNet32 and ResNet50 proxies, CIFAR10- and
// CIFAR100-like datasets.
//
// (a/c) inference FLOPs vs validation accuracy for a lasso-ratio sweep;
// (b/d) training FLOPs and BN DRAM traffic vs validation accuracy for
//       PruneTrain (SSL's training cost is ~3x the baseline by protocol —
//       reported in the table for completeness).
//
// Expected shape (paper): PruneTrain and SSL reach comparable
// accuracy-vs-inference-FLOPs points, but PruneTrain pays a fraction of
// the training cost; at mild ratios PruneTrain can beat the dense
// baseline's accuracy.
#include <iostream>

#include "bench/common.h"

using namespace pt;
using namespace pt::bench;

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(36);
  flags.define("ratios", "0.15,0.3", "comma-separated lasso penalty ratios");
  flags.define("models", "resnet20,resnet50", "comma-separated model names");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("fig8_tradeoff_curves");
    return 0;
  }
  const std::int64_t epochs = effective_epochs(flags);

  std::vector<float> ratios;
  {
    std::string s = flags.get("ratios");
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const std::size_t comma = s.find(',', pos);
      ratios.push_back(std::stof(s.substr(pos, comma - pos)));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }
  std::vector<std::string> model_names;
  {
    std::string s = flags.get("models");
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const std::size_t comma = s.find(',', pos);
      model_names.push_back(s.substr(pos, comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }

  for (bool cifar100 : {false, true}) {
    Table t({"model", "method", "ratio", "val acc", "inference MFLOPs",
             "training GFLOPs", "BN traffic GB"});
    for (const auto& model : model_names) {
      const ProxyCase c = cifar_case(model, cifar100);
      data::SyntheticImageDataset ds(c.data);

      // Dense baseline point.
      {
        auto net = build_net(c);
        auto cfg = proxy_train_config(epochs, 0.f, core::PrunePolicy::kDense);
        core::PruneTrainer trainer(net, ds, cfg);
        const auto r = trainer.run();
        t.add_row({model, "Base", "-", fmt(r.final_test_acc, 3),
                   fmt(r.final_inference_flops / 1e6, 3),
                   fmt(r.total_train_flops / 1e9, 2),
                   fmt(r.total_bn_traffic / 1e9, 2)});
      }
      for (float ratio : ratios) {
        for (auto policy : {core::PrunePolicy::kPruneTrain, core::PrunePolicy::kSSL}) {
          auto net = build_net(c);
          auto cfg = proxy_train_config(epochs, ratio, policy);
          core::PruneTrainer trainer(net, ds, cfg);
          const auto r = trainer.run();
          t.add_row({model, core::to_string(policy), fmt(ratio, 2),
                     fmt(r.final_test_acc, 3),
                     fmt(r.final_inference_flops / 1e6, 3),
                     fmt(r.total_train_flops / 1e9, 2),
                     fmt(r.total_bn_traffic / 1e9, 2)});
        }
      }
    }
    emit(t, flags,
         std::string("Fig 8: accuracy vs cost tradeoffs, ") +
             (cifar100 ? "SynthCIFAR100" : "SynthCIFAR10"));
  }
  return 0;
}
