// Fig. 9 — per-device training-memory requirement across epochs with
// dynamic mini-batch adjustment, for (a) the ResNet50/ImageNet proxy
// against a fixed device-memory capacity and (b) the ResNet50/CIFAR100
// proxy normalized to the initial requirement.
//
// Expected shape (paper): memory falls as pruning proceeds; the adjuster
// grows the batch in steps whenever headroom opens, keeping utilization
// near capacity.
#include <iostream>

#include "bench/common.h"

using namespace pt;
using namespace pt::bench;

namespace {

void run_case(const ProxyCase& c, std::int64_t epochs, std::int64_t batch0,
              std::int64_t granularity, std::int64_t max_batch,
              const CliFlags& flags, const std::string& title, bool normalized) {
  auto net = build_net(c);
  // Capacity = what the initial model needs at the starting batch (the
  // paper starts at the largest batch that fits the device).
  const double capacity =
      model_cost(net, {c.data.channels, c.data.height, c.data.width}, batch0)
          .memory_bytes;

  auto cfg = proxy_train_config(epochs, 0.3f, core::PrunePolicy::kPruneTrain);
  cfg.batch_size = batch0;
  cfg.dynamic_batch.enabled = true;
  cfg.dynamic_batch.granularity = granularity;
  cfg.dynamic_batch.max_batch = max_batch;
  cfg.dynamic_batch.device_memory_bytes = capacity;
  data::SyntheticImageDataset ds(c.data);
  core::PruneTrainer trainer(net, ds, cfg);
  const auto r = trainer.run();

  Table t({"epoch", "batch", normalized ? "memory (normalized)" : "memory MB",
           "capacity util"});
  for (std::size_t e = 0; e < r.epochs.size(); e += 2) {
    const auto& es = r.epochs[e];
    t.add_row({std::to_string(es.epoch), std::to_string(es.batch_size),
               normalized ? fmt(es.memory_bytes / r.epochs[0].memory_bytes, 3)
                          : fmt(es.memory_bytes / 1e6, 2),
               fmt(es.memory_bytes / capacity, 3)});
  }
  emit(t, flags, title);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(36);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("fig9_memory_requirement");
    return 0;
  }
  const std::int64_t epochs = effective_epochs(flags);

  // Wider-than-canonical proxies: training-memory savings come from
  // pruning the early, large-feature layers, which need enough channels to
  // have redundancy to remove.
  ProxyCase inet = imagenet_case();
  inet.width_mult = 0.125f;
  ProxyCase c100 = cifar_case("resnet50", true);
  c100.width_mult = 0.125f;

  run_case(inet, epochs, /*batch0=*/64, /*granularity=*/16,
           /*max_batch=*/256, flags,
           "Fig 9a: ResNet50/SynthImageNet memory per training iteration "
           "(capacity-bound, batch starts at 64)",
           /*normalized=*/false);
  run_case(c100, epochs, /*batch0=*/128,
           /*granularity=*/16, /*max_batch=*/320, flags,
           "Fig 9b: ResNet50/SynthCIFAR100 normalized memory requirement "
           "(batch starts at 128)",
           /*normalized=*/true);
  return 0;
}
