// Hot-path thread-scaling bench: one conv-heavy training step (forward,
// backward, SGD) on the exec::ExecContext pool at 1/2/4 threads.
//
//   $ ./hotpath_scaling [--steps N] [--batch N] [--out BENCH.json]
//
// Two things are measured and written to BENCH_hotpath_scaling.json:
//
//  1. Determinism (always, on any machine): the logits and every parameter
//     gradient of a 4-thread step must be bitwise-identical to a 1-thread
//     step — the exec API's core contract.
//  2. Scaling (only when the machine has >= 2 hardware threads): mean
//     seconds per training step at 1, 2, and 4 threads, and the speedup
//     over the serial baseline. Single-core runners skip the timing
//     honestly (skipped=true + reason) instead of reporting timeslicing
//     noise as scaling.
#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "exec/context.h"
#include "nn/loss.h"
#include "optim/sgd.h"
#include "telemetry/bench_export.h"

namespace {

using pt::Tensor;

/// The conv-heavy proxy: a width-scaled ResNet-20 on CIFAR-shaped inputs,
/// the same model family quickstart trains.
pt::graph::Network build_model() {
  pt::models::ModelConfig cfg;
  cfg.image_h = 32;
  cfg.image_w = 32;
  cfg.classes = 10;
  cfg.width_mult = 0.5f;
  cfg.seed = 21;
  return pt::models::build_resnet_basic(20, cfg);
}

/// One training step: forward, loss, backward, SGD.
double train_step(pt::graph::Network& net, pt::exec::ExecContext& ctx,
                  const Tensor& images, const std::vector<std::int64_t>& labels,
                  pt::optim::SGD& opt) {
  net.zero_grad();
  pt::nn::SoftmaxCrossEntropy loss;
  Tensor out = net.forward(ctx, images, true);
  const double l = loss.forward(out, labels);
  net.backward(ctx, loss.backward());
  opt.step(net.params());
  return l;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<std::size_t>(a.numel())) == 0;
}

/// Runs one identical step on 1 and 4 threads and compares every output
/// bit. Returns true when they match.
bool check_determinism(const Tensor& images,
                       const std::vector<std::int64_t>& labels) {
  auto net1 = build_model();
  auto net4 = build_model();
  pt::exec::ExecContext ctx1(1);
  pt::exec::ExecContext ctx4(4);
  pt::optim::SGD opt1(0.1f), opt4(0.1f);
  const double l1 = train_step(net1, ctx1, images, labels, opt1);
  const double l4 = train_step(net4, ctx4, images, labels, opt4);
  if (l1 != l4) return false;
  auto p1 = net1.params();
  auto p4 = net4.params();
  if (p1.size() != p4.size()) return false;
  for (std::size_t i = 0; i < p1.size(); ++i) {
    if (!bitwise_equal(p1[i]->value, p4[i]->value)) return false;
    if (!bitwise_equal(p1[i]->grad, p4[i]->grad)) return false;
  }
  return true;
}

/// Mean seconds per step over `steps` timed steps (after 2 warm-up steps
/// that grow the workspace arena to steady state).
double time_steps(int threads, std::int64_t steps, const Tensor& images,
                  const std::vector<std::int64_t>& labels) {
  auto net = build_model();
  pt::exec::ExecContext ctx(threads);
  pt::optim::SGD opt(0.1f);
  for (int i = 0; i < 2; ++i) train_step(net, ctx, images, labels, opt);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < steps; ++i) {
    train_step(net, ctx, images, labels, opt);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() /
         static_cast<double>(steps);
}

}  // namespace

int main(int argc, char** argv) {
  pt::CliFlags flags;
  flags.define("steps", "10", "timed training steps per thread count");
  flags.define("batch", "32", "mini-batch size (>= 4 so chunks stay busy)");
  flags.define("out", "BENCH_hotpath_scaling.json",
               "output artifact path (BENCH_*.json format)");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("hotpath_scaling");
    return 0;
  }
  const std::int64_t steps = flags.get_int("steps");
  const std::int64_t batch = flags.get_int("batch");

  pt::Rng rng(17);
  Tensor images = Tensor::randn({batch, 3, 32, 32}, rng);
  std::vector<std::int64_t> labels(static_cast<std::size_t>(batch));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::int64_t>(i) % 10;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const bool deterministic = check_determinism(images, labels);
  std::cout << "hotpath_scaling: ResNet-20(w0.5)/32x32, batch " << batch
            << ", " << steps << " steps, " << hw << " hardware thread(s)\n";
  std::cout << "  4-thread step bitwise == 1-thread step: "
            << (deterministic ? "yes" : "NO — DETERMINISM VIOLATED") << "\n";

  pt::telemetry::Json j = pt::telemetry::Json::object();
  j["schema"] = pt::telemetry::Json("pt-telemetry-bench");
  j["name"] = pt::telemetry::Json("hotpath_scaling");
  j["model"] = pt::telemetry::Json("resnet20 w0.5 32x32");
  j["batch"] = pt::telemetry::Json(batch);
  j["steps"] = pt::telemetry::Json(steps);
  j["hardware_threads"] = pt::telemetry::Json(static_cast<std::int64_t>(hw));
  j["determinism_bitwise_1_vs_4"] = pt::telemetry::Json(deterministic);

  const bool single_core = hw < 2;
  j["skipped"] = pt::telemetry::Json(single_core);
  if (single_core) {
    // Timeslicing one core across pool workers measures the scheduler, not
    // the pool: report the serial baseline only, flagged as skipped.
    j["skip_reason"] = pt::telemetry::Json(
        "single hardware thread: scaling timings would measure timeslicing, "
        "not parallel speedup (determinism still validated above)");
    const double s1 = time_steps(1, steps, images, labels);
    pt::telemetry::Json results = pt::telemetry::Json::array();
    pt::telemetry::Json row = pt::telemetry::Json::object();
    row["threads"] = pt::telemetry::Json(std::int64_t{1});
    row["seconds_per_step"] = pt::telemetry::Json(s1);
    row["speedup_vs_1"] = pt::telemetry::Json(1.0);
    results.push_back(row);
    j["results"] = results;
    std::cout << "  scaling: SKIPPED (single core); serial step "
              << pt::fmt(s1 * 1e3, 2) << " ms\n";
  } else {
    pt::telemetry::Json results = pt::telemetry::Json::array();
    double s1 = 0;
    double s4 = 0;
    pt::Table t({"threads", "ms/step", "speedup"});
    for (int threads : {1, 2, 4}) {
      const double s = time_steps(threads, steps, images, labels);
      if (threads == 1) s1 = s;
      if (threads == 4) s4 = s;
      pt::telemetry::Json row = pt::telemetry::Json::object();
      row["threads"] = pt::telemetry::Json(static_cast<std::int64_t>(threads));
      row["seconds_per_step"] = pt::telemetry::Json(s);
      row["speedup_vs_1"] = pt::telemetry::Json(s1 / s);
      results.push_back(row);
      t.add_row({std::to_string(threads), pt::fmt(s * 1e3, 2),
                 pt::fmt(s1 / s, 2) + "x"});
    }
    j["results"] = results;
    j["speedup_4_vs_1"] = pt::telemetry::Json(s1 / s4);
    t.print();
  }

  pt::telemetry::bench_export(j, flags.get("out"));
  std::cout << "  wrote " << flags.get("out") << "\n";
  return deterministic ? 0 : 1;
}
