// Engine microbenchmarks (google-benchmark): GEMM, im2col, conv forward/
// backward, batch-norm, allreduce, and a full training iteration. These
// are the kernels whose costs the roofline device model abstracts; the
// microbenchmarks keep the engine honest.
#include <benchmark/benchmark.h>

#include "dist/cluster.h"
#include "graph/network.h"
#include "models/builders.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/loss.h"
#include "optim/sgd.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"

namespace pt {
namespace {

void BM_GemmNN(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm_nn(exec::ExecContext::serial(), n, n, n, 1.f, a.data(), b.data(), 0.f,
            c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

void BM_Im2col(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  ConvGeom g{c, 16, 16, 3, 1, 1};
  Rng rng(2);
  Tensor x = Tensor::randn({c, 16, 16}, rng);
  Tensor col({g.col_rows(), g.col_cols()});
  for (auto _ : state) {
    im2col(g, x.data(), col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2col)->Arg(16)->Arg(64);

void BM_ConvForward(benchmark::State& state) {
  const std::int64_t ch = state.range(0);
  Rng rng(3);
  nn::Conv2d conv(ch, ch, 3, 1, 1, rng);
  Tensor x = Tensor::randn({8, ch, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward)->Arg(8)->Arg(32);

void BM_ConvBackward(benchmark::State& state) {
  const std::int64_t ch = state.range(0);
  Rng rng(4);
  nn::Conv2d conv(ch, ch, 3, 1, 1, rng);
  Tensor x = Tensor::randn({8, ch, 16, 16}, rng);
  Tensor y = conv.forward(x, true);
  Tensor dy = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    conv.zero_grad();
    Tensor dx = conv.backward(dy);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_ConvBackward)->Arg(8)->Arg(32);

void BM_BatchNormTraining(benchmark::State& state) {
  const std::int64_t ch = state.range(0);
  Rng rng(5);
  nn::BatchNorm2d bn(ch);
  Tensor x = Tensor::randn({16, ch, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = bn.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * x.numel() * 4 * 3);
}
BENCHMARK(BM_BatchNormTraining)->Arg(16)->Arg(64);

void BM_AllreduceGradients(benchmark::State& state) {
  const int replicas = static_cast<int>(state.range(0));
  models::ModelConfig mc;
  mc.image_h = 8;
  mc.image_w = 8;
  mc.classes = 4;
  mc.width_mult = 0.25f;
  std::vector<graph::Network> nets;
  for (int i = 0; i < replicas; ++i) {
    nets.push_back(models::build_resnet_basic(8, mc));
  }
  cost::CommSpec spec;
  spec.gpus = replicas;
  dist::Cluster cluster(std::move(nets), spec);
  std::vector<double> weights(static_cast<std::size_t>(replicas), 1.0);
  for (auto _ : state) {
    cluster.exchange_gradients(weights);
  }
}
BENCHMARK(BM_AllreduceGradients)->Arg(2)->Arg(4);

void BM_TrainingIteration(benchmark::State& state) {
  models::ModelConfig mc;
  mc.image_h = 8;
  mc.image_w = 8;
  mc.classes = 10;
  mc.width_mult = static_cast<float>(state.range(0)) / 100.f;
  auto net = models::build_resnet_basic(20, mc);
  Rng rng(6);
  Tensor x = Tensor::randn({32, 3, 8, 8}, rng);
  std::vector<std::int64_t> labels;
  for (int i = 0; i < 32; ++i) labels.push_back(i % 10);
  optim::SGD opt(0.1f, 0.9f);
  nn::SoftmaxCrossEntropy loss;
  for (auto _ : state) {
    Tensor out = net.forward(x, true);
    loss.forward(out, labels);
    net.zero_grad();
    net.backward(loss.backward());
    opt.step(net.params());
  }
}
BENCHMARK(BM_TrainingIteration)->Arg(25)->Arg(50);

}  // namespace
}  // namespace pt

BENCHMARK_MAIN();
