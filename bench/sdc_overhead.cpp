// Silent-data-corruption defense bench: what does the per-tensor digest
// pass cost per step at several check intervals, how fast is an injected
// bitflip caught, and does the in-place heal really restore the run bit
// for bit?
//
//   $ ./sdc_overhead [--steps N] [--batch N] [--replicas N] [--out BENCH.json]
//
// Three things are measured and written to BENCH_sdc_overhead.json:
//
//  1. Heal equivalence (always, on any machine): a finite bitflip planted
//     in replica 1's parameters right before a scheduled digest vote must
//     be convicted within one check interval and healed in place, after
//     which every remaining step is bitwise-identical to a fault-free
//     run of the same schedule. Reported as heal_bitwise
//     (run_bench_suite.sh fails the suite when it is false).
//  2. Detection latency: optimizer steps between the corrupting step and
//     the convicting vote, at the configured interval.
//  3. Steady-state overhead: mean seconds per step with the digest vote
//     running every 1 / 4 / 16 steps vs no monitor at all — the price of
//     the defense as a percentage per step.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "dist/elastic.h"
#include "exec/context.h"
#include "optim/sgd.h"
#include "robust/fault.h"
#include "robust/integrity.h"
#include "telemetry/bench_export.h"

namespace {

using pt::Tensor;

pt::graph::Network build_model() {
  pt::models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = 8;
  cfg.width_mult = 0.5f;
  cfg.seed = 21;
  return pt::models::build_resnet_basic(8, cfg);
}

std::vector<pt::graph::Network> build_replicas(int n) {
  std::vector<pt::graph::Network> nets;
  nets.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) nets.push_back(build_model());
  return nets;
}

pt::cost::CommSpec spec_for(int gpus) {
  pt::cost::CommSpec s;
  s.gpus = gpus;
  return s;
}

pt::data::Batch make_batch(std::int64_t n, std::uint64_t seed) {
  pt::Rng rng(seed);
  pt::data::Batch b;
  b.images = Tensor::randn({n, 3, 8, 8}, rng);
  for (std::int64_t i = 0; i < n; ++i) {
    b.labels.push_back(static_cast<std::int64_t>(rng.uniform_int(8)));
  }
  return b;
}

bool params_bitwise_equal(pt::graph::Network& a, pt::graph::Network& b) {
  auto pa = a.params();
  auto pb = b.params();
  if (pa.size() != pb.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i]->value.numel() != pb[i]->value.numel()) return false;
    if (std::memcmp(pa[i]->value.data(), pb[i]->value.data(),
                    sizeof(float) *
                        static_cast<std::size_t>(pa[i]->value.numel())) != 0) {
      return false;
    }
  }
  return true;
}

/// Digest-votes `c`'s full replica set and heals convicted minorities via
/// ElasticCluster::heal_replica — the same wiring core::PruneTrainer uses.
pt::robust::VoteOutcome vote(pt::robust::IntegrityMonitor& mon,
                             pt::dist::ElasticCluster& c,
                             pt::exec::ExecContext& ctx) {
  std::vector<pt::robust::ReplicaView> views;
  for (int r = 0; r < c.size(); ++r) views.push_back({r, &c.replica(r)});
  return mon.check_replicas(views, ctx, nullptr, [&](int victim, int root) {
    return c.heal_replica(victim, root);
  });
}

}  // namespace

int main(int argc, char** argv) {
  pt::CliFlags flags;
  flags.define("steps", "24", "timed steps per monitor variant");
  flags.define("batch", "16", "global mini-batch size");
  flags.define("replicas", "3", "simulated data-parallel replicas (>= 3 "
               "so a single victim is a strict minority)");
  flags.define("out", "BENCH_sdc_overhead.json",
               "output artifact path (BENCH_*.json format)");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("sdc_overhead");
    return 0;
  }
  const std::int64_t steps = flags.get_int("steps");
  const std::int64_t batch = flags.get_int("batch");
  const int replicas = static_cast<int>(flags.get_int("replicas"));
  pt::exec::ExecContext ctx(2);

  std::cout << "sdc_overhead: ResNet-8(w0.5)/8x8, " << replicas
            << " replicas, batch " << batch << ", " << steps << " steps\n";

  // 1. Heal equivalence + detection latency. A fault-free cluster and a
  // victim cluster run the same schedule; the victim gets a finite bitflip
  // in replica 1's params after step 3 and a digest vote every 4 steps —
  // the vote after step 3 convicts and heals before step 4's forward can
  // fold corrupted gradients into the majority.
  const std::int64_t check_interval = 4;
  const std::int64_t inject_step = 3;
  pt::dist::ElasticCluster clean(build_replicas(replicas), spec_for(replicas));
  pt::dist::ElasticCluster victim(build_replicas(replicas), spec_for(replicas));
  victim.set_fault_injector(pt::robust::FaultInjector::from_string(
      "sdc-param:replica=1,step=" + std::to_string(inject_step), 11));
  pt::robust::IntegrityMonitor monitor(
      pt::robust::IntegrityConfig{check_interval});
  pt::optim::SGD opt_a(0.05f, 0.9f);
  pt::optim::SGD opt_b(0.05f, 0.9f);
  std::int64_t detect_step = -1;
  const std::int64_t heal_run_steps = std::max<std::int64_t>(steps, 12);
  for (std::int64_t i = 0; i < heal_run_steps; ++i) {
    const auto b = make_batch(batch, 1000 + static_cast<std::uint64_t>(i));
    clean.step(ctx, b, opt_a);
    victim.step(ctx, b, opt_b);
    if (monitor.due(victim.steps())) {
      const auto out = vote(monitor, victim, ctx);
      if (out.mismatch && detect_step < 0) detect_step = victim.steps();
    }
  }
  bool heal_bitwise = detect_step >= 0 && monitor.heals() == 1;
  for (int r = 0; r < replicas; ++r) {
    heal_bitwise =
        heal_bitwise && params_bitwise_equal(clean.replica(r), victim.replica(r));
  }
  const std::int64_t latency =
      detect_step >= 0 ? detect_step - inject_step : -1;
  std::cout << "  bitflip on replica 1 @ step " << inject_step
            << ", vote every " << check_interval << ": detected after "
            << latency << " step(s), healed "
            << pt::fmt(monitor.heal_bytes_total() / 1e6, 2) << " MB\n";
  std::cout << "  healed run bitwise == fault-free run: "
            << (heal_bitwise ? "yes" : "NO — HEAL FAILED") << "\n";

  // 2. Steady-state overhead: the same schedule with no monitor, then with
  // a digest vote every 1 / 4 / 16 steps (all votes unanimous — the cost
  // measured is the digest pass itself).
  auto time_with_interval = [&](std::int64_t interval) {
    pt::dist::ElasticCluster c(build_replicas(replicas), spec_for(replicas));
    pt::robust::IntegrityMonitor mon(pt::robust::IntegrityConfig{interval});
    pt::optim::SGD opt(0.05f, 0.9f);
    for (int i = 0; i < 2; ++i) c.step(ctx, make_batch(batch, 7), opt);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < steps; ++i) {
      c.step(ctx, make_batch(batch, 100 + static_cast<std::uint64_t>(i)), opt);
      if (mon.due(c.steps())) (void)vote(mon, c, ctx);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count() /
           static_cast<double>(steps);
  };
  const double base_s = time_with_interval(0);  // interval 0: monitor off
  const std::vector<std::int64_t> intervals = {1, 4, 16};
  std::vector<double> interval_s, interval_pct;
  for (std::int64_t k : intervals) {
    const double s = time_with_interval(k);
    interval_s.push_back(s);
    interval_pct.push_back((s / base_s - 1.0) * 100.0);
  }
  std::cout << "  no monitor:      " << pt::fmt(base_s * 1e3, 2)
            << " ms/step\n";
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    std::cout << "  vote every " << intervals[i] << ":    "
              << pt::fmt(interval_s[i] * 1e3, 2) << " ms/step  ("
              << pt::fmt(interval_pct[i], 1) << "% digest overhead)\n";
  }

  // Modeled digest-exchange traffic for one vote at this topology.
  pt::graph::Network probe = build_model();
  const auto digest = pt::robust::compute_state_digest(probe, ctx);

  pt::telemetry::Json j = pt::telemetry::Json::object();
  j["schema"] = pt::telemetry::Json("pt-telemetry-bench");
  j["name"] = pt::telemetry::Json("sdc_overhead");
  j["model"] = pt::telemetry::Json("resnet8 w0.5 8x8");
  j["replicas"] = pt::telemetry::Json(static_cast<std::int64_t>(replicas));
  j["batch"] = pt::telemetry::Json(batch);
  j["steps"] = pt::telemetry::Json(steps);
  j["skipped"] = pt::telemetry::Json(false);
  j["heal_bitwise"] = pt::telemetry::Json(heal_bitwise);
  j["check_interval"] = pt::telemetry::Json(check_interval);
  j["inject_step"] = pt::telemetry::Json(inject_step);
  j["detect_step"] = pt::telemetry::Json(detect_step);
  j["detection_latency_steps"] = pt::telemetry::Json(latency);
  j["heal_bytes"] = pt::telemetry::Json(monitor.heal_bytes_total());
  j["digest_wire_bytes"] = pt::telemetry::Json(digest.wire_bytes());
  j["digest_tensors"] =
      pt::telemetry::Json(static_cast<std::int64_t>(digest.tensors.size()));
  j["baseline_seconds_per_step"] = pt::telemetry::Json(base_s);
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const std::string k = std::to_string(intervals[i]);
    j["digest_seconds_per_step_interval_" + k] =
        pt::telemetry::Json(interval_s[i]);
    j["digest_overhead_percent_interval_" + k] =
        pt::telemetry::Json(interval_pct[i]);
  }
  pt::telemetry::bench_export(j, flags.get("out"));
  std::cout << "  wrote " << flags.get("out") << "\n";
  return heal_bitwise ? 0 : 1;
}
