// Serving under load across a hot swap: a PruneTrain run produces a dense
// initial generation and a pruned final generation; the serving runtime
// starts on the dense weights, and the pruned checkpoint lands mid-trace.
// Measured: throughput and p99 latency (modeled ticks, 1 tick = 1 ms)
// before vs after the swap, plus two sanity flags the suite gates on:
//
//   zero_dropped — every admitted request completed; the swap boundary
//                  lost nothing (the ISSUE 8 structural invariant).
//   swap_speedup — the pruned generation priced cheaper per batch than the
//                  dense one (modeled service time fell at the swap).
//
//   $ ./serve_load [--epochs N] [--qps N] [--deadline-ms N]
//                  [--duration-ms N] [--out BENCH.json]
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "ckpt/checkpoint.h"
#include "serve/server.h"
#include "telemetry/bench_export.h"

namespace fs = std::filesystem;

namespace {

struct Window {
  std::int64_t served = 0;
  double p99 = 0;
  double qps = 0;
};

Window window_stats(const std::vector<pt::serve::Response>& responses,
                    pt::serve::Tick from, pt::serve::Tick to) {
  Window w;
  std::vector<pt::serve::Tick> lat;
  for (const auto& r : responses) {
    if (r.shed || r.completion < from || r.completion >= to) continue;
    lat.push_back(r.completion - r.arrival);
  }
  w.served = static_cast<std::int64_t>(lat.size());
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    w.p99 = static_cast<double>(
        lat[std::min(lat.size() - 1,
                     static_cast<std::size_t>(0.99 * double(lat.size())))]);
    w.qps = 1000.0 * double(w.served) /
            double(std::max<pt::serve::Tick>(1, to - from));
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  pt::CliFlags flags;
  flags.define("epochs", "16", "PruneTrain epochs producing the pruned gen");
  flags.define("qps", "200", "offered load, requests per modeled second");
  flags.define("deadline-ms", "80", "per-request relative deadline");
  flags.define("duration-ms", "6000", "trace length in modeled ms");
  flags.define("quick", "false", "halve the training epochs");
  flags.define("out", "BENCH_serve_load.json",
               "output artifact path (BENCH_*.json format)");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("serve_load");
    return 0;
  }
  const bool quick = flags.get_bool("quick");
  const std::int64_t epochs =
      std::max<long>(6, quick ? flags.get_int("epochs") / 2
                              : flags.get_int("epochs"));
  const double qps = std::max(1.0, flags.get_double("qps"));
  const pt::serve::Tick deadline =
      std::max<long>(1, flags.get_int("deadline-ms"));
  const pt::serve::Tick duration =
      std::max<long>(1000, flags.get_int("duration-ms"));
  const std::int64_t max_batch = 8;

  // 1. Produce the two generations: the dense initial model, and the same
  // model after a PruneTrain proxy run (reconfigured + compacted).
  pt::bench::ProxyCase c = pt::bench::cifar_case("resnet32", false);
  pt::data::SyntheticImageDataset ds(c.data);
  const pt::Shape input{c.data.channels, c.data.height, c.data.width};
  auto dense = pt::bench::build_net(c);
  auto pruned = pt::bench::build_net(c);
  {
    auto cfg = pt::bench::proxy_train_config(epochs, 0.25f,
                                             pt::core::PrunePolicy::kPruneTrain);
    pt::core::PruneTrainer trainer(pruned, ds, cfg);
    trainer.run();
  }
  const pt::bench::ModelCost dense_cost = pt::bench::model_cost(dense, input);
  const pt::bench::ModelCost pruned_cost = pt::bench::model_cost(pruned, input);
  std::cout << "serve_load: " << c.label << ", dense "
            << pt::fmt(dense_cost.inference_flops / 1e6, 3)
            << " MFLOPs -> pruned "
            << pt::fmt(pruned_cost.inference_flops / 1e6, 3)
            << " MFLOPs after " << epochs << " epochs\n";

  const fs::path dir =
      fs::temp_directory_path() / "pt_serve_load_generations";
  fs::remove_all(dir);
  fs::create_directories(dir);
  pt::ckpt::Checkpoint::capture(dense).save(
      (dir / "ckpt-epoch-0.bin").string());
  const fs::path pruned_file = fs::temp_directory_path() / "pt_serve_load_pruned.bin";
  pt::ckpt::Checkpoint::capture(pruned).save(pruned_file.string());

  // 2. Serve one trace across the swap. The modeled worker retires a full
  // dense batch in ~8 ticks; the pruned generation re-prices on publish.
  pt::serve::ServeConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = max_batch;
  cfg.max_queue = 8 * max_batch;
  cfg.poll_interval = 10;
  cfg.flops_per_tick = dense_cost.inference_flops * double(max_batch) / 8.0;

  pt::exec::ExecContext ctx(1);
  pt::serve::ServeRuntime runtime(cfg, ctx);
  runtime.add_model("resnet32", dir.string(), input);
  const pt::serve::Tick swap_at = duration / 2;
  runtime.schedule(swap_at, [&] {
    fs::copy_file(pruned_file, dir / "ckpt-epoch-999.bin",
                  fs::copy_options::overwrite_existing);
  });

  pt::serve::TraceSpec spec;
  spec.model = "resnet32";
  spec.mean_interarrival = 1000.0 / qps;
  spec.end = duration;
  spec.deadline = deadline;
  spec.input = input;
  spec.seed = 17;
  const auto trace = pt::serve::synthesize_trace({spec});
  const auto report = runtime.run(trace);

  // 3. Flags + windows.
  const bool zero_dropped =
      report.dropped == 0 &&
      report.responses.size() == trace.size() &&
      report.admitted == report.completed;
  bool swap_speedup = false;
  pt::serve::Tick swap_tick = swap_at;
  pt::serve::Tick dense_ticks = 0, pruned_ticks = 0;
  if (report.swaps.size() >= 2) {
    dense_ticks = report.swaps.front().record.service_ticks_per_batch;
    pruned_ticks = report.swaps.back().record.service_ticks_per_batch;
    swap_tick = report.swaps.back().tick;
    swap_speedup = pruned_ticks < dense_ticks;
  }
  const Window before = window_stats(report.responses, 0, swap_tick);
  const Window after =
      window_stats(report.responses, swap_tick, report.last_completion + 1);

  pt::Table t({"window", "served", "qps", "p99 ms"});
  t.add_row({"before swap (dense)", std::to_string(before.served),
             pt::fmt(before.qps, 0), pt::fmt(before.p99, 0)});
  t.add_row({"after swap (pruned)", std::to_string(after.served),
             pt::fmt(after.qps, 0), pt::fmt(after.p99, 0)});
  t.print();
  std::cout << "  " << report.requests << " requests: admitted "
            << report.admitted << ", shed " << report.shed << ", dropped "
            << report.dropped << ", batches " << report.batches
            << " (mean size " << pt::fmt(report.mean_batch_size, 2)
            << "), batch service " << dense_ticks << " -> " << pruned_ticks
            << " ticks\n";
  std::cout << "  zero_dropped: " << (zero_dropped ? "yes" : "NO — DROPPED")
            << ", swap_speedup: "
            << (swap_speedup ? "yes" : "NO — PRUNED NOT CHEAPER") << "\n";

  pt::telemetry::Json j = pt::telemetry::Json::object();
  j["schema"] = pt::telemetry::Json("pt-telemetry-bench");
  j["name"] = pt::telemetry::Json("serve_load");
  j["model"] = pt::telemetry::Json(c.label);
  j["epochs"] = pt::telemetry::Json(epochs);
  j["offered_qps"] = pt::telemetry::Json(qps);
  j["deadline_ms"] = pt::telemetry::Json(deadline);
  j["duration_ms"] = pt::telemetry::Json(duration);
  j["workers"] = pt::telemetry::Json(static_cast<std::int64_t>(cfg.workers));
  j["max_batch"] = pt::telemetry::Json(max_batch);
  j["skipped"] = pt::telemetry::Json(false);
  j["zero_dropped"] = pt::telemetry::Json(zero_dropped);
  j["swap_speedup"] = pt::telemetry::Json(swap_speedup);
  j["requests"] = pt::telemetry::Json(report.requests);
  j["admitted"] = pt::telemetry::Json(report.admitted);
  j["shed"] = pt::telemetry::Json(report.shed);
  j["completed"] = pt::telemetry::Json(report.completed);
  j["dropped"] = pt::telemetry::Json(report.dropped);
  j["late"] = pt::telemetry::Json(report.late);
  j["batches"] = pt::telemetry::Json(report.batches);
  j["mean_batch_size"] = pt::telemetry::Json(report.mean_batch_size);
  j["leases_retired"] = pt::telemetry::Json(report.leases_retired);
  j["swap_tick"] = pt::telemetry::Json(swap_tick);
  j["dense_inference_flops"] = pt::telemetry::Json(dense_cost.inference_flops);
  j["pruned_inference_flops"] =
      pt::telemetry::Json(pruned_cost.inference_flops);
  j["dense_batch_service_ticks"] = pt::telemetry::Json(dense_ticks);
  j["pruned_batch_service_ticks"] = pt::telemetry::Json(pruned_ticks);
  j["before_swap_qps"] = pt::telemetry::Json(before.qps);
  j["before_swap_p99_ms"] = pt::telemetry::Json(before.p99);
  j["after_swap_qps"] = pt::telemetry::Json(after.qps);
  j["after_swap_p99_ms"] = pt::telemetry::Json(after.p99);
  pt::telemetry::bench_export(j, flags.get("out"));
  std::cout << "  wrote " << flags.get("out") << "\n";

  fs::remove_all(dir);
  fs::remove(pruned_file);
  return (zero_dropped && swap_speedup) ? 0 : 1;
}
