// Serving resilience under injected faults (ISSUE 10): one trace crosses a
// canary-rejected poisoned generation *and* a runtime-flaky generation that
// triggers an automatic rollback. Measured: throughput/p99 before the first
// fault, during the flaky generation's brief reign, and after the rollback,
// plus the pre-publish canary gate's wall-clock cost per evaluation and
// three sanity flags the suite gates on:
//
//   zero_dropped_under_faults     — every admitted request completed even
//                                   while generations were being rejected,
//                                   indicted and rolled back (ISSUE 8's
//                                   structural invariant must survive the
//                                   fault path).
//   poisoned_generation_never_served — the NaN-headed generation (valid CRC,
//                                   garbage numbers) is observable in no
//                                   response: the canary caught it at the
//                                   gate.
//   rollback_bitwise              — every response formed after the rollback
//                                   tick is bitwise identical to a reference
//                                   run that only ever had generation 1; the
//                                   restored lease serves the same weights
//                                   object, so the bad generation leaves no
//                                   numeric residue.
//
//   $ ./serve_resilience [--qps N] [--deadline-ms N] [--duration-ms N]
//                        [--workers N] [--canary-probes N] [--out BENCH.json]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "ckpt/checkpoint.h"
#include "models/builders.h"
#include "robust/fault.h"
#include "serve/canary.h"
#include "serve/server.h"
#include "telemetry/bench_export.h"
#include "telemetry/metrics.h"

namespace fs = std::filesystem;

namespace {

struct Window {
  std::int64_t served = 0;
  double p99 = 0;
  double qps = 0;
};

Window window_stats(const std::vector<pt::serve::Response>& responses,
                    pt::serve::Tick from, pt::serve::Tick to) {
  Window w;
  std::vector<pt::serve::Tick> lat;
  for (const auto& r : responses) {
    if (r.shed || r.completion < from || r.completion >= to) continue;
    lat.push_back(r.completion - r.arrival);
  }
  w.served = static_cast<std::int64_t>(lat.size());
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    w.p99 = static_cast<double>(
        lat[std::min(lat.size() - 1,
                     static_cast<std::size_t>(0.99 * double(lat.size())))]);
    w.qps = 1000.0 * double(w.served) /
            double(std::max<pt::serve::Tick>(1, to - from));
  }
  return w;
}

const pt::Shape kInput{3, 8, 8};

pt::graph::Network tiny_net(float width, std::uint64_t seed) {
  pt::models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = 8;
  cfg.width_mult = width;
  cfg.seed = seed;
  return pt::models::build_resnet_basic(8, cfg);
}

void write_generation(const fs::path& dir, std::int64_t epoch,
                      pt::graph::Network& net) {
  pt::ckpt::Checkpoint::capture(net).save(
      (dir / ("ckpt-epoch-" + std::to_string(epoch) + ".bin")).string());
}

}  // namespace

int main(int argc, char** argv) {
  pt::CliFlags flags;
  flags.define("qps", "300", "offered load, requests per modeled second");
  flags.define("deadline-ms", "60", "per-request relative deadline");
  flags.define("duration-ms", "4000", "trace length in modeled ms");
  flags.define("workers", "2", "modeled lease-holding workers");
  flags.define("canary-probes", "8", "probe samples per gate evaluation");
  flags.define("quick", "false", "halve the trace length");
  flags.define("out", "BENCH_serve_resilience.json",
               "output artifact path (BENCH_*.json format)");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("serve_resilience");
    return 0;
  }
  const double qps = std::max(1.0, flags.get_double("qps"));
  const pt::serve::Tick deadline =
      std::max<long>(1, flags.get_int("deadline-ms"));
  pt::serve::Tick duration = std::max<long>(1000, flags.get_int("duration-ms"));
  if (flags.get_bool("quick")) duration = std::max<long>(1000, duration / 2);
  const int workers = std::max(1, static_cast<int>(flags.get_int("workers")));
  const pt::serve::Tick poison_at = duration / 4;
  const pt::serve::Tick flaky_at = duration / 2;

  // 1. Three generations of the same tenant. Generation 2's head is
  // poisoned after capture — the file's CRC is valid, its numbers are not,
  // which only the canary's shadow execution can see. Generation 3 is the
  // same width as generation 1 (pricing, admission and batch composition
  // stay identical) but its first served batch emits one NaN logit.
  auto gen1 = tiny_net(0.5f, 21);
  const fs::path dir = fs::temp_directory_path() / "pt_serve_resilience";
  const fs::path ref_dir = fs::temp_directory_path() / "pt_serve_resilience_ref";
  for (const auto& d : {dir, ref_dir}) {
    fs::remove_all(d);
    fs::create_directories(d);
  }
  write_generation(dir, 1, gen1);
  write_generation(ref_dir, 1, gen1);

  pt::serve::TraceSpec spec;
  spec.model = "m";
  spec.mean_interarrival = 1000.0 / qps;
  spec.end = duration;
  spec.deadline = deadline;
  spec.input = kInput;
  spec.seed = 9;
  const auto trace = pt::serve::synthesize_trace({spec});

  pt::serve::ServeConfig cfg;
  cfg.workers = workers;
  cfg.max_batch = 4;
  cfg.max_queue = 256;
  cfg.flops_per_tick = 2e6;
  cfg.poll_interval = 5;
  cfg.canary.probes = std::max<long>(1, flags.get_int("canary-probes"));
  cfg.fault_spec = "flaky-output:epoch=3,count=1";

  pt::telemetry::set_enabled(true);
  pt::telemetry::MetricsRegistry::global().reset();

  // 2. The faulty run: poisoned generation 2 lands at duration/4, flaky
  // generation 3 at duration/2.
  pt::exec::ExecContext ctx(1);
  pt::serve::ServeRuntime rt(cfg, ctx);
  rt.add_model("m", dir.string(), kInput);
  rt.schedule(poison_at, [&] {
    auto bad = tiny_net(0.5f, 22);
    auto inj = pt::robust::FaultInjector::from_string("poison-ckpt:epoch=2", 7);
    inj.poison_network(bad, 2);
    write_generation(dir, 2, bad);
  });
  rt.schedule(flaky_at, [&] {
    auto gen3 = tiny_net(0.5f, 23);
    write_generation(dir, 3, gen3);
  });
  const auto faulty = rt.run(trace);
  auto& reg = pt::telemetry::MetricsRegistry::global();
  const double ctr_quarantined = reg.counter("serve/quarantined_generations");
  const double ctr_rollbacks = reg.counter("serve/rollbacks");
  const double ctr_shed_circuit = reg.counter("serve/shed_circuit_open");
  const double gauge_breaker = reg.gauge("serve/m/breaker_state");
  const double gauge_rollbacks = reg.gauge("serve/m/rollbacks");

  // 3. The reference run: same trace, generation 1 only, no faults.
  pt::serve::ServeConfig ref_cfg = cfg;
  ref_cfg.fault_spec.clear();
  pt::exec::ExecContext ref_ctx(1);
  pt::serve::ServeRuntime ref_rt(ref_cfg, ref_ctx);
  ref_rt.add_model("m", ref_dir.string(), kInput);
  const auto clean = ref_rt.run(trace);

  // 4. Flags.
  const bool zero_dropped_under_faults =
      faulty.dropped == 0 && faulty.responses.size() == trace.size() &&
      faulty.admitted == faulty.completed;
  bool poisoned_generation_never_served = true;
  for (const auto& r : faulty.responses) {
    poisoned_generation_never_served &= r.generation != 2;
  }
  bool rollback_bitwise = faulty.rollbacks.size() == 1 &&
                          clean.responses.size() == faulty.responses.size();
  pt::serve::Tick rollback_tick = 0;
  std::string rollback_reason = "none";
  std::int64_t compared = 0;
  if (rollback_bitwise) {
    const auto& rb = faulty.rollbacks[0];
    rollback_tick = rb.tick;
    rollback_reason = rb.reason;
    rollback_bitwise = rb.from_generation == 3 && rb.to_generation == 1;
    for (std::size_t i = 0; i < trace.size() && rollback_bitwise; ++i) {
      const auto& f = faulty.responses[i];
      const auto& c = clean.responses[i];
      // Batches formed at the rollback tick itself still pinned the bad
      // lease (formation runs before the breach verdict that tick).
      if (f.shed || f.formed <= rb.tick) continue;
      ++compared;
      rollback_bitwise =
          f.generation == 1 && f.argmax == c.argmax &&
          f.logits.shape() == c.logits.shape() &&
          std::memcmp(f.logits.data(), c.logits.data(),
                      sizeof(float) *
                          static_cast<std::size_t>(f.logits.numel())) == 0;
    }
    rollback_bitwise = rollback_bitwise && compared > 0;
  }

  // 5. Windows around the turbulence, plus the canary's wall-clock cost —
  // the gate shadow-executes `probes` samples per candidate, so its price
  // is what a producer pays per publish attempt.
  const Window before = window_stats(faulty.responses, 0, poison_at);
  // The flaky generation's reign is only a few ticks (the health guard
  // indicts its first NaN batch), but its in-flight batches complete after
  // the rollback tick — so this window selects by served generation, not
  // by completion range.
  Window during_flaky;
  {
    std::vector<pt::serve::Tick> lat;
    pt::serve::Tick last = flaky_at;
    for (const auto& r : faulty.responses) {
      if (r.shed || r.generation != 3) continue;
      lat.push_back(r.completion - r.arrival);
      last = std::max(last, r.completion);
    }
    during_flaky.served = static_cast<std::int64_t>(lat.size());
    if (!lat.empty()) {
      std::sort(lat.begin(), lat.end());
      during_flaky.p99 = static_cast<double>(
          lat[std::min(lat.size() - 1,
                       static_cast<std::size_t>(0.99 * double(lat.size())))]);
      during_flaky.qps = 1000.0 * double(during_flaky.served) /
                         double(std::max<pt::serve::Tick>(1, last - flaky_at));
    }
  }
  const Window after = window_stats(faulty.responses, rollback_tick + 1,
                                    faulty.last_completion + 1);
  double canary_ms_per_eval = 0;
  {
    auto incumbent = std::make_shared<pt::serve::ModelVersion>();
    incumbent->net = tiny_net(0.5f, 21);
    incumbent->service_ticks_per_batch = 8;
    pt::serve::ModelVersion candidate;
    candidate.net = tiny_net(0.5f, 23);
    candidate.service_ticks_per_batch = 8;
    pt::serve::CanaryGate gate(cfg.canary);
    const int reps = 32;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      gate.evaluate(candidate, incumbent.get(), kInput, ctx);
    }
    const auto t1 = std::chrono::steady_clock::now();
    canary_ms_per_eval =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
  }

  pt::Table t({"window", "served", "qps", "p99 ms"});
  t.add_row({"before faults (gen 1)", std::to_string(before.served),
             pt::fmt(before.qps, 0), pt::fmt(before.p99, 0)});
  t.add_row({"flaky reign (gen 3)", std::to_string(during_flaky.served),
             pt::fmt(during_flaky.qps, 0), pt::fmt(during_flaky.p99, 0)});
  t.add_row({"after rollback (gen 1)", std::to_string(after.served),
             pt::fmt(after.qps, 0), pt::fmt(after.p99, 0)});
  t.print();
  std::cout << "  " << faulty.requests << " requests: admitted "
            << faulty.admitted << ", shed " << faulty.shed << " ("
            << faulty.shed_circuit_open << " circuit-open), dropped "
            << faulty.dropped << ", quarantined " << faulty.quarantined
            << ", rollbacks " << faulty.rollbacks.size() << "\n";
  if (!faulty.rollbacks.empty()) {
    const auto& rb = faulty.rollbacks[0];
    std::cout << "  rollback @ " << rb.tick << " ms: generation "
              << rb.from_generation << " -> " << rb.to_generation
              << " (lease epoch " << rb.lease_epoch << ", " << rb.reason
              << ")\n";
  }
  std::cout << "  canary gate: " << pt::fmt(canary_ms_per_eval, 3)
            << " ms per evaluation (" << cfg.canary.probes << " probes)\n";
  std::cout << "  zero_dropped_under_faults: "
            << (zero_dropped_under_faults ? "yes" : "NO — DROPPED")
            << ", poisoned_generation_never_served: "
            << (poisoned_generation_never_served ? "yes" : "NO — SERVED")
            << ", rollback_bitwise: "
            << (rollback_bitwise ? "yes" : "NO — RESIDUE") << "\n";

  pt::telemetry::Json j = pt::telemetry::Json::object();
  j["schema"] = pt::telemetry::Json("pt-telemetry-bench");
  j["name"] = pt::telemetry::Json("serve_resilience");
  j["offered_qps"] = pt::telemetry::Json(qps);
  j["deadline_ms"] = pt::telemetry::Json(deadline);
  j["duration_ms"] = pt::telemetry::Json(duration);
  j["workers"] = pt::telemetry::Json(static_cast<std::int64_t>(workers));
  j["canary_probes"] = pt::telemetry::Json(cfg.canary.probes);
  j["skipped"] = pt::telemetry::Json(false);
  j["zero_dropped_under_faults"] =
      pt::telemetry::Json(zero_dropped_under_faults);
  j["poisoned_generation_never_served"] =
      pt::telemetry::Json(poisoned_generation_never_served);
  j["rollback_bitwise"] = pt::telemetry::Json(rollback_bitwise);
  j["requests"] = pt::telemetry::Json(faulty.requests);
  j["admitted"] = pt::telemetry::Json(faulty.admitted);
  j["shed"] = pt::telemetry::Json(faulty.shed);
  j["shed_circuit_open"] = pt::telemetry::Json(faulty.shed_circuit_open);
  j["completed"] = pt::telemetry::Json(faulty.completed);
  j["dropped"] = pt::telemetry::Json(faulty.dropped);
  j["quarantined"] = pt::telemetry::Json(faulty.quarantined);
  j["rollbacks"] =
      pt::telemetry::Json(static_cast<std::int64_t>(faulty.rollbacks.size()));
  j["rollback_tick"] = pt::telemetry::Json(rollback_tick);
  j["rollback_reason"] = pt::telemetry::Json(rollback_reason);
  j["bitwise_compared_responses"] = pt::telemetry::Json(compared);
  j["canary_ms_per_eval"] = pt::telemetry::Json(canary_ms_per_eval);
  j["before_faults_qps"] = pt::telemetry::Json(before.qps);
  j["before_faults_p99_ms"] = pt::telemetry::Json(before.p99);
  j["flaky_reign_qps"] = pt::telemetry::Json(during_flaky.qps);
  j["flaky_reign_p99_ms"] = pt::telemetry::Json(during_flaky.p99);
  j["after_rollback_qps"] = pt::telemetry::Json(after.qps);
  j["after_rollback_p99_ms"] = pt::telemetry::Json(after.p99);
  j["counter_quarantined_generations"] = pt::telemetry::Json(ctr_quarantined);
  j["counter_rollbacks"] = pt::telemetry::Json(ctr_rollbacks);
  j["counter_shed_circuit_open"] = pt::telemetry::Json(ctr_shed_circuit);
  j["gauge_breaker_state"] = pt::telemetry::Json(gauge_breaker);
  j["gauge_rollbacks"] = pt::telemetry::Json(gauge_rollbacks);
  pt::telemetry::bench_export(j, flags.get("out"));
  std::cout << "  wrote " << flags.get("out") << "\n";

  fs::remove_all(dir);
  fs::remove_all(ref_dir);
  return (zero_dropped_under_faults && poisoned_generation_never_served &&
          rollback_bitwise)
             ? 0
             : 1;
}
