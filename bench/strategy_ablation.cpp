// Sparsifier-zoo ablation: every registered prune::Strategy on the same
// proxy task, protocol, and seed — what does each one cost and buy?
//
//   $ ./strategy_ablation [--epochs N] [--quick] [--out BENCH.json]
//
// For each strategy in the registry (group_lasso, dsd, dst, channel_prop)
// this runs the canonical proxy ResNet-8(w0.5)/8x8 protocol with the same
// aggressive parameters the conformance suite uses, and reports:
//
//  - the loss proxy (final train loss + final test accuracy),
//  - the FLOPs trajectory (per-epoch training FLOPs/sample) and the
//    inference FLOPs kept at the end,
//  - wall-clock seconds per epoch,
//  - `strategy_resume_bitwise`: a mid-run checkpoint resume replayed into a
//    fresh network must reproduce the uninterrupted run bit for bit —
//    serialized strategy state (masks, thresholds, saliency) included.
//    run_bench_suite.sh fails the suite when this flag is false.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench/common.h"
#include "prune/strategy.h"
#include "telemetry/bench_export.h"

namespace fs = std::filesystem;

namespace {

pt::data::SyntheticSpec ablation_data() {
  pt::data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.classes = 8;
  spec.channels = 3;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 256;
  spec.test_samples = 128;
  spec.noise = 0.8f;
  spec.max_shift = 2;
  spec.seed = 5;
  return spec;
}

pt::graph::Network ablation_net() {
  pt::models::ModelConfig mc;
  mc.image_h = 8;
  mc.image_w = 8;
  mc.classes = 8;
  mc.width_mult = 0.5f;
  mc.seed = 21;
  return pt::models::build_resnet_basic(8, mc);
}

/// The conformance suite's parameters: aggressive enough that every
/// strategy visibly acts within a short proxy run.
std::map<std::string, std::string> ablation_params(const std::string& name) {
  if (name == "group_lasso") return {{"ratio", "0.3"}, {"boost", "2000"}};
  if (name == "dsd") {
    return {{"sparsity", "0.5"}, {"sparse_begin", "0.2"}, {"sparse_end", "0.8"}};
  }
  if (name == "dst") {
    return {{"alpha", "2"}, {"threshold_lr", "0.1"}, {"beta", "1"},
            {"init", "0.05"}};
  }
  if (name == "channel_prop") {
    return {{"decay", "0.5"}, {"prune_fraction", "0.5"}, {"warmup", "1"}};
  }
  return {};
}

pt::core::TrainConfig ablation_cfg(const std::string& strategy,
                                   std::int64_t epochs) {
  pt::core::TrainConfig cfg;
  cfg.policy = pt::core::PrunePolicy::kPruneTrain;
  cfg.strategy = strategy;
  cfg.strategy_params = ablation_params(strategy);
  cfg.epochs = epochs;
  cfg.batch_size = 64;
  cfg.base_lr = 0.1f;
  cfg.weight_decay = 1e-4f;
  cfg.lr_milestones = {epochs / 2, 3 * epochs / 4};
  cfg.reconfig_interval = std::max<std::int64_t>(2, epochs / 3);
  cfg.eval_interval = 2;
  return cfg;
}

bool params_bitwise_equal(pt::graph::Network& a, pt::graph::Network& b) {
  auto pa = a.params();
  auto pb = b.params();
  if (pa.size() != pb.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i]->value.numel() != pb[i]->value.numel()) return false;
    if (std::memcmp(pa[i]->value.data(), pb[i]->value.data(),
                    sizeof(float) *
                        static_cast<std::size_t>(pa[i]->value.numel())) != 0) {
      return false;
    }
  }
  return true;
}

struct StrategyRun {
  pt::core::TrainResult result;
  double seconds_per_epoch = 0;
  bool resume_bitwise = false;
};

StrategyRun run_strategy(const std::string& name, std::int64_t epochs) {
  auto data = pt::data::SyntheticImageDataset(ablation_data());
  const fs::path dir =
      fs::temp_directory_path() /
      ("pt_strategy_ablation_" + name + "_" + std::to_string(getpid()));
  fs::remove_all(dir);

  StrategyRun out;
  pt::core::TrainConfig cfg = ablation_cfg(name, epochs);
  cfg.checkpoint_dir = dir.string();
  pt::graph::Network full_net = ablation_net();
  pt::core::PruneTrainer full(full_net, data, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  out.result = full.run();
  out.seconds_per_epoch =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() /
      static_cast<double>(epochs);

  // Mid-run resume into a fresh dense network: the replayed tail must land
  // on the uninterrupted run's weights exactly.
  pt::core::TrainConfig rcfg = ablation_cfg(name, epochs);
  rcfg.resume_from =
      (dir / ("ckpt-epoch-" + std::to_string(epochs / 2) + ".bin")).string();
  pt::graph::Network res_net = ablation_net();
  pt::core::PruneTrainer resumed(res_net, data, rcfg);
  const pt::core::TrainResult r_res = resumed.run();
  out.resume_bitwise =
      params_bitwise_equal(full_net, res_net) &&
      r_res.final_test_acc == out.result.final_test_acc &&
      r_res.final_channels == out.result.final_channels;

  fs::remove_all(dir);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  pt::CliFlags flags;
  flags.define("epochs", "12", "proxy epochs per strategy");
  flags.define("quick", "false", "halve the epochs for a fast smoke run");
  flags.define("out", "BENCH_strategy_ablation.json",
               "output artifact path (BENCH_*.json format)");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("strategy_ablation");
    return 0;
  }
  std::int64_t epochs = flags.get_int("epochs");
  if (flags.get_bool("quick")) epochs = std::max<std::int64_t>(6, epochs / 2);

  const std::vector<std::string> names =
      pt::prune::StrategyRegistry::global().names();
  std::cout << "strategy_ablation: ResNet-8(w0.5)/8x8, " << epochs
            << " epochs, " << names.size() << " strategies\n";

  pt::Table table({"strategy", "final loss", "test acc", "inf FLOPs kept %",
                   "channels", "sec/epoch", "resume bitwise"});
  pt::telemetry::Json strategies = pt::telemetry::Json::object();
  bool all_resume_bitwise = true;
  for (const std::string& name : names) {
    const StrategyRun run = run_strategy(name, epochs);
    const auto& first = run.result.epochs.front();
    const auto& last = run.result.epochs.back();
    const double flops_kept =
        100.0 * run.result.final_inference_flops / first.flops_per_sample_inf;
    all_resume_bitwise = all_resume_bitwise && run.resume_bitwise;

    table.add_row({name, pt::fmt(last.train_loss, 4),
                   pt::fmt(run.result.final_test_acc, 3),
                   pt::fmt(flops_kept, 1),
                   std::to_string(run.result.final_channels),
                   pt::fmt(run.seconds_per_epoch, 3),
                   run.resume_bitwise ? "yes" : "NO"});

    pt::telemetry::Json s = pt::telemetry::Json::object();
    s["final_train_loss"] = pt::telemetry::Json(last.train_loss);
    s["final_reg_loss"] = pt::telemetry::Json(last.lasso_loss);
    s["final_test_acc"] = pt::telemetry::Json(run.result.final_test_acc);
    s["final_channels"] =
        pt::telemetry::Json(static_cast<std::int64_t>(run.result.final_channels));
    s["inference_flops_kept_percent"] = pt::telemetry::Json(flops_kept);
    s["seconds_per_epoch"] = pt::telemetry::Json(run.seconds_per_epoch);
    s["resume_bitwise"] = pt::telemetry::Json(run.resume_bitwise);
    pt::telemetry::Json trajectory = pt::telemetry::Json::array();
    for (const auto& es : run.result.epochs) {
      trajectory.push_back(pt::telemetry::Json(es.flops_per_sample_train));
    }
    s["train_flops_per_sample_trajectory"] = trajectory;
    strategies[name] = s;
  }
  table.print();

  pt::telemetry::Json j = pt::telemetry::Json::object();
  j["schema"] = pt::telemetry::Json("pt-telemetry-bench");
  j["name"] = pt::telemetry::Json("strategy_ablation");
  j["model"] = pt::telemetry::Json("resnet8 w0.5 8x8");
  j["epochs"] = pt::telemetry::Json(epochs);
  j["strategy_resume_bitwise"] = pt::telemetry::Json(all_resume_bitwise);
  j["skipped"] = pt::telemetry::Json(false);
  j["strategies"] = strategies;
  pt::telemetry::bench_export(j, flags.get("out"));
  std::cout << "  strategy state resume bitwise (all strategies): "
            << (all_resume_bitwise ? "yes" : "NO — DETERMINISM VIOLATED")
            << "\n  wrote " << flags.get("out") << "\n";
  return all_resume_bitwise ? 0 : 1;
}
