// Tab. 1 — training FLOPs, modeled training time, inference FLOPs and
// accuracy delta of PruneTrain vs the dense baseline, for four CNNs on the
// CIFAR10/100 proxies and ResNet50 on the ImageNet proxy at three
// regularization strengths.
//
// Expected shape (paper): training FLOPs drop to ~45-70% of dense with
// <2% accuracy loss; measured (modeled) time saving is smaller than the
// FLOPs saving because pruned layers lose data parallelism; inference
// FLOPs drop further than training FLOPs (the model is smallest at the
// end).
#include <iostream>

#include "bench/common.h"
#include "cost/device.h"

using namespace pt;
using namespace pt::bench;

namespace {

struct Row {
  std::string dataset, model;
  core::TrainResult dense, pruned;
};

Row run_pair(const ProxyCase& c, std::int64_t epochs, float ratio) {
  data::SyntheticImageDataset ds(c.data);
  Row row;
  row.dataset = c.data.name;
  row.model = c.model;
  {
    auto net = build_net(c);
    auto cfg = proxy_train_config(epochs, 0.f, core::PrunePolicy::kDense);
    core::PruneTrainer t(net, ds, cfg);
    row.dense = t.run();
  }
  {
    auto net = build_net(c);
    auto cfg = proxy_train_config(epochs, ratio, core::PrunePolicy::kPruneTrain);
    core::PruneTrainer t(net, ds, cfg);
    row.pruned = t.run();
  }
  return row;
}

void add_row(Table& t, const Row& r, const std::string& note) {
  t.add_row({r.dataset, r.model + note,
             fmt(100.0 * (r.pruned.final_test_acc - r.dense.final_test_acc), 1) + "%",
             fmt(100.0 * r.pruned.total_train_flops / r.dense.total_train_flops, 0) +
                 "%",
             fmt(100.0 * r.pruned.total_gpu_time_modeled /
                     r.dense.total_gpu_time_modeled,
                 0) +
                 "%",
             fmt(100.0 * r.pruned.final_inference_flops /
                     r.dense.final_inference_flops,
                 0) +
                 "%",
             fmt(r.dense.final_test_acc, 3)});
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(30);
  flags.define("skip-imagenet", "false", "skip the ImageNet-proxy rows");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("table1_training_cost");
    return 0;
  }
  const std::int64_t epochs = effective_epochs(flags);

  Table t({"dataset", "model", "val acc delta", "train FLOPs", "train time*",
           "inf FLOPs", "base acc"});
  for (bool c100 : {false, true}) {
    for (const char* model : {"resnet32", "resnet50", "vgg11", "vgg13"}) {
      add_row(t, run_pair(cifar_case(model, c100), epochs, 0.25f), "");
    }
  }
  if (!flags.get_bool("skip-imagenet")) {
    for (float ratio : {0.25f, 0.2f, 0.1f}) {
      add_row(t, run_pair(imagenet_case(), epochs, ratio),
              " (ratio " + fmt(ratio, 2) + ")");
    }
  }
  emit(t, flags,
       "Tab 1: PruneTrain cost relative to dense baseline "
       "(* modeled TITAN-Xp roofline time)");
  return 0;
}
