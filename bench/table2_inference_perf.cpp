// Tab. 2 — inference throughput (images/s) of the dense baseline vs the
// PruneTrain-compressed model, at batch sizes 10 and 100.
//
// Both real single-core wall-clock throughput and modeled TITAN-Xp
// throughput are reported. Expected shape (paper): PruneTrain speedup is
// positive but *below* the FLOPs reduction (resource under-utilization at
// small layer sizes), and batch 100 utilizes hardware at least as well as
// batch 10.
#include <iostream>

#include "bench/common.h"
#include "cost/device.h"
#include "prune/materialize.h"
#include "util/logging.h"

using namespace pt;
using namespace pt::bench;

namespace {

double images_per_second(graph::Network& net, const data::SyntheticSpec& spec,
                         std::int64_t batch) {
  Rng rng(3);
  Tensor x = Tensor::randn({batch, spec.channels, spec.height, spec.width}, rng);
  net.forward(x, false);  // warm-up
  Timer t;
  int reps = 0;
  while (t.seconds() < 0.3) {
    net.forward(x, false);
    ++reps;
  }
  return double(reps) * double(batch) / t.seconds();
}

double modeled_images_per_second(graph::Network& net, const data::SyntheticSpec& spec,
                                 std::int64_t batch) {
  cost::DeviceModel dev(cost::DeviceSpec::titan_xp());
  const double t = dev.inference_time(
      net, {spec.channels, spec.height, spec.width}, batch);
  return double(batch) / t;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(30);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("table2_inference_perf");
    return 0;
  }
  const std::int64_t epochs = effective_epochs(flags);

  Table t({"model", "batch", "base img/s (cpu)", "pruned img/s (cpu)",
           "speedup", "modeled speedup*", "FLOPs kept", "val acc"});
  for (const char* model : {"resnet32", "resnet50", "vgg11", "vgg13"}) {
    const ProxyCase c = cifar_case(model, /*cifar100=*/true);
    data::SyntheticImageDataset ds(c.data);
    auto base = build_net(c);
    auto pruned = build_net(c);
    double val_acc = 0;
    {
      // Deep narrow proxies over-prune at strong ratios; 0.15 keeps the
      // model in the paper's accuracy regime.
      auto cfg = proxy_train_config(epochs, 0.15f, core::PrunePolicy::kPruneTrain);
      core::PruneTrainer trainer(pruned, ds, cfg);
      val_acc = trainer.run().final_test_acc;
    }
    // Deploy the way the serving runtime does: materialize the channel-union
    // inference form before measuring (prune::materialize_inference is the
    // shared deployment entry point).
    prune::materialize_inference(pruned, prune::InferenceForm::kChannelUnion);
    const Shape input{c.data.channels, c.data.height, c.data.width};
    const ModelCost cb = model_cost(base, input);
    const ModelCost cp = model_cost(pruned, input);
    for (std::int64_t batch : {10, 100}) {
      const double b_cpu = images_per_second(base, c.data, batch);
      const double p_cpu = images_per_second(pruned, c.data, batch);
      const double b_mod = modeled_images_per_second(base, c.data, batch);
      const double p_mod = modeled_images_per_second(pruned, c.data, batch);
      t.add_row({model, std::to_string(batch), fmt(b_cpu, 0), fmt(p_cpu, 0),
                 fmt(p_cpu / b_cpu, 2) + "x", fmt(p_mod / b_mod, 2) + "x",
                 fmt(cp.inference_flops / cb.inference_flops, 2),
                 fmt(val_acc, 3)});
    }
  }
  emit(t, flags, "Tab 2: inference throughput (* TITAN-Xp roofline model)");
  return 0;
}
