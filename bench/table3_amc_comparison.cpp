// Tab. 3 — PruneTrain vs AMC (AutoML for Model Compression) on
// ResNet56/CIFAR10: accuracy delta, inference FLOPs kept, and removed
// layers.
//
// The AMC row quotes the paper's numbers verbatim (the paper itself takes
// them from He et al. [10] — AMC prunes a *pre-trained* model by
// reinforcement-learned trial and error and cannot remove layers).
// Expected shape: PruneTrain reaches a smaller FLOPs fraction at a smaller
// accuracy delta, and additionally removes whole layers.
#include <iostream>

#include "bench/common.h"
#include "models/builders.h"

using namespace pt;
using namespace pt::bench;

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(36);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("table3_amc_comparison");
    return 0;
  }
  const std::int64_t epochs = effective_epochs(flags);
  const ProxyCase c = cifar_case("resnet56", false);
  data::SyntheticImageDataset ds(c.data);

  core::TrainResult dense;
  std::int64_t convs_total = 0;
  {
    auto net = build_net(c);
    convs_total = models::count_conv_layers(net);
    auto cfg = proxy_train_config(epochs, 0.f, core::PrunePolicy::kDense);
    core::PruneTrainer t(net, ds, cfg);
    dense = t.run();
  }

  Table t({"method", "base acc", "acc delta", "inference FLOPs", "removed layers"});
  // Deep narrow proxies over-prune at strong ratios; report two operating
  // points like the paper's tradeoff discussion.
  for (float ratio : {0.1f, 0.2f}) {
    auto net = build_net(c);
    auto cfg = proxy_train_config(epochs, ratio, core::PrunePolicy::kPruneTrain);
    core::PruneTrainer t2(net, ds, cfg);
    const auto pruned = t2.run();
    t.add_row({"PruneTrain (this repo, ratio " + fmt(ratio, 1) + ")",
               fmt(dense.final_test_acc, 3),
               fmt(100.0 * (pruned.final_test_acc - dense.final_test_acc), 1) + "%",
               fmt(100.0 * pruned.final_inference_flops /
                       dense.final_inference_flops,
                   0) +
                   "%",
               std::to_string(pruned.layers_removed) + " of " +
                   std::to_string(convs_total) + " (" +
                   fmt(100.0 * double(pruned.layers_removed) / double(convs_total),
                       0) +
                   "%)"});
  }
  t.add_row({"PruneTrain (paper)", "94.5%", "-0.5%", "34%", "18 (21%)"});
  t.add_row({"AMC (paper, from He et al.)", "92.8%", "-0.9%", "50%", "not supported"});
  emit(t, flags, "Tab 3: comparison to trial-and-error pruning (ResNet56/CIFAR10)");
  return 0;
}
