// Tab. 4 — PruneTrain with vs without dynamic mini-batch adjustment:
// training time reduction relative to the dense baseline, final inference
// FLOPs, and accuracy delta, on the ResNet50 CIFAR100- and ImageNet-proxy
// workloads.
//
// Expected shape (paper): dynamic adjustment barely moves accuracy and
// final model size, but cuts training time further than naive PruneTrain
// (fewer model updates + better utilization at larger batches).
#include <iostream>

#include "bench/common.h"

using namespace pt;
using namespace pt::bench;

namespace {

struct Outcome {
  core::TrainResult result;
  double modeled_time = 0;  ///< roofline compute + allreduce time
};

Outcome run(const ProxyCase& c, std::int64_t epochs, float ratio,
            core::PrunePolicy policy, bool dynamic) {
  data::SyntheticImageDataset ds(c.data);
  auto net = build_net(c);
  auto cfg = proxy_train_config(epochs, ratio, policy);
  if (dynamic) {
    cfg.dynamic_batch.enabled = true;
    cfg.dynamic_batch.granularity = 16;
    cfg.dynamic_batch.max_batch = 320;
    cfg.dynamic_batch.device_memory_bytes =
        model_cost(net, {c.data.channels, c.data.height, c.data.width},
                   cfg.batch_size)
            .memory_bytes;
  }
  core::PruneTrainer trainer(net, ds, cfg);
  Outcome o;
  o.result = trainer.run();
  o.modeled_time =
      o.result.total_gpu_time_modeled + o.result.epochs.back().comm_time_modeled;
  for (const auto& e : o.result.epochs) o.modeled_time += e.comm_time_modeled;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags = standard_flags(36);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("table4_dynamic_minibatch");
    return 0;
  }
  const std::int64_t epochs = effective_epochs(flags);

  Table t({"dataset", "method", "train time reduction*", "inference FLOPs",
           "val acc delta", "final batch"});
  for (bool imagenet : {false, true}) {
    // Wider-than-canonical proxies (see fig9): batch growth requires
    // prunable early-layer activation memory.
    ProxyCase c = imagenet ? imagenet_case() : cifar_case("resnet50", true);
    c.width_mult = 0.125f;
    const Outcome dense = run(c, epochs, 0.f, core::PrunePolicy::kDense, false);
    const Outcome naive =
        run(c, epochs, 0.3f, core::PrunePolicy::kPruneTrain, false);
    const Outcome adjusted =
        run(c, epochs, 0.3f, core::PrunePolicy::kPruneTrain, true);
    auto add = [&](const char* name, const Outcome& o) {
      t.add_row({c.data.name, name,
                 fmt(100.0 * (1.0 - o.modeled_time / dense.modeled_time), 0) + "%",
                 fmt(100.0 * o.result.final_inference_flops /
                         dense.result.final_inference_flops,
                     0) +
                     "%",
                 fmt(100.0 * (o.result.final_test_acc - dense.result.final_test_acc),
                     1) +
                     "%",
                 std::to_string(o.result.epochs.back().batch_size)});
    };
    add("Naive", naive);
    add("Adjusted", adjusted);
  }
  emit(t, flags,
       "Tab 4: dynamic mini-batch adjustment (* modeled compute+allreduce time "
       "vs dense baseline)");
  return 0;
}
