file(REMOVE_RECURSE
  "CMakeFiles/ablation_finetune.dir/ablation_finetune.cpp.o"
  "CMakeFiles/ablation_finetune.dir/ablation_finetune.cpp.o.d"
  "ablation_finetune"
  "ablation_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
