# Empty compiler generated dependencies file for ablation_finetune.
# This may be replaced when dependencies are built.
