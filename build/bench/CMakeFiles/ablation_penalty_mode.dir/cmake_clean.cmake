file(REMOVE_RECURSE
  "CMakeFiles/ablation_penalty_mode.dir/ablation_penalty_mode.cpp.o"
  "CMakeFiles/ablation_penalty_mode.dir/ablation_penalty_mode.cpp.o.d"
  "ablation_penalty_mode"
  "ablation_penalty_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_penalty_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
