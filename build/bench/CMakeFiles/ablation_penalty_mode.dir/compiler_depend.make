# Empty compiler generated dependencies file for ablation_penalty_mode.
# This may be replaced when dependencies are built.
