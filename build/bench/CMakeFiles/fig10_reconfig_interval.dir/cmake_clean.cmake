file(REMOVE_RECURSE
  "CMakeFiles/fig10_reconfig_interval.dir/fig10_reconfig_interval.cpp.o"
  "CMakeFiles/fig10_reconfig_interval.dir/fig10_reconfig_interval.cpp.o.d"
  "fig10_reconfig_interval"
  "fig10_reconfig_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_reconfig_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
