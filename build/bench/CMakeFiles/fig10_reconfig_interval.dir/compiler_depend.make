# Empty compiler generated dependencies file for fig10_reconfig_interval.
# This may be replaced when dependencies are built.
