
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_density.cpp" "bench/CMakeFiles/fig12_density.dir/fig12_density.cpp.o" "gcc" "bench/CMakeFiles/fig12_density.dir/fig12_density.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pt_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pt_models.dir/DependInfo.cmake"
  "/root/repo/build/src/prune/CMakeFiles/pt_prune.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/pt_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/pt_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/pt_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/pt_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
