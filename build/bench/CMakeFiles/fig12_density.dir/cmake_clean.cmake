file(REMOVE_RECURSE
  "CMakeFiles/fig12_density.dir/fig12_density.cpp.o"
  "CMakeFiles/fig12_density.dir/fig12_density.cpp.o.d"
  "fig12_density"
  "fig12_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
