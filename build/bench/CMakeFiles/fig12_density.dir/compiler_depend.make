# Empty compiler generated dependencies file for fig12_density.
# This may be replaced when dependencies are built.
