file(REMOVE_RECURSE
  "CMakeFiles/fig2_flops_trajectory.dir/fig2_flops_trajectory.cpp.o"
  "CMakeFiles/fig2_flops_trajectory.dir/fig2_flops_trajectory.cpp.o.d"
  "fig2_flops_trajectory"
  "fig2_flops_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_flops_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
