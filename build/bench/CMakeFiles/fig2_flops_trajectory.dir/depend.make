# Empty dependencies file for fig2_flops_trajectory.
# This may be replaced when dependencies are built.
