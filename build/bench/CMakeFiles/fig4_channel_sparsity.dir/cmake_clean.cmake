file(REMOVE_RECURSE
  "CMakeFiles/fig4_channel_sparsity.dir/fig4_channel_sparsity.cpp.o"
  "CMakeFiles/fig4_channel_sparsity.dir/fig4_channel_sparsity.cpp.o.d"
  "fig4_channel_sparsity"
  "fig4_channel_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_channel_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
