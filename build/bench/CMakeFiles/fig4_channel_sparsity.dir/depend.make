# Empty dependencies file for fig4_channel_sparsity.
# This may be replaced when dependencies are built.
