file(REMOVE_RECURSE
  "CMakeFiles/fig6_union_vs_gating_flops.dir/fig6_union_vs_gating_flops.cpp.o"
  "CMakeFiles/fig6_union_vs_gating_flops.dir/fig6_union_vs_gating_flops.cpp.o.d"
  "fig6_union_vs_gating_flops"
  "fig6_union_vs_gating_flops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_union_vs_gating_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
