# Empty compiler generated dependencies file for fig6_union_vs_gating_flops.
# This may be replaced when dependencies are built.
