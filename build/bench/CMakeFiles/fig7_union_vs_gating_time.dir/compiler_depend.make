# Empty compiler generated dependencies file for fig7_union_vs_gating_time.
# This may be replaced when dependencies are built.
