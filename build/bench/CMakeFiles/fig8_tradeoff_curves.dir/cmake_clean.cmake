file(REMOVE_RECURSE
  "CMakeFiles/fig8_tradeoff_curves.dir/fig8_tradeoff_curves.cpp.o"
  "CMakeFiles/fig8_tradeoff_curves.dir/fig8_tradeoff_curves.cpp.o.d"
  "fig8_tradeoff_curves"
  "fig8_tradeoff_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tradeoff_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
