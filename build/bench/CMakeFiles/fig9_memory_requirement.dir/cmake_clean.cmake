file(REMOVE_RECURSE
  "CMakeFiles/fig9_memory_requirement.dir/fig9_memory_requirement.cpp.o"
  "CMakeFiles/fig9_memory_requirement.dir/fig9_memory_requirement.cpp.o.d"
  "fig9_memory_requirement"
  "fig9_memory_requirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_memory_requirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
