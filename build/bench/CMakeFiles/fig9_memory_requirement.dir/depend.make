# Empty dependencies file for fig9_memory_requirement.
# This may be replaced when dependencies are built.
