file(REMOVE_RECURSE
  "CMakeFiles/pt_bench_common.dir/common.cpp.o"
  "CMakeFiles/pt_bench_common.dir/common.cpp.o.d"
  "libpt_bench_common.a"
  "libpt_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
