file(REMOVE_RECURSE
  "libpt_bench_common.a"
)
