# Empty dependencies file for pt_bench_common.
# This may be replaced when dependencies are built.
