file(REMOVE_RECURSE
  "CMakeFiles/table1_training_cost.dir/table1_training_cost.cpp.o"
  "CMakeFiles/table1_training_cost.dir/table1_training_cost.cpp.o.d"
  "table1_training_cost"
  "table1_training_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_training_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
