# Empty compiler generated dependencies file for table1_training_cost.
# This may be replaced when dependencies are built.
