file(REMOVE_RECURSE
  "CMakeFiles/table2_inference_perf.dir/table2_inference_perf.cpp.o"
  "CMakeFiles/table2_inference_perf.dir/table2_inference_perf.cpp.o.d"
  "table2_inference_perf"
  "table2_inference_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_inference_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
