# Empty compiler generated dependencies file for table2_inference_perf.
# This may be replaced when dependencies are built.
