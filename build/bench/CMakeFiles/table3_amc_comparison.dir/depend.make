# Empty dependencies file for table3_amc_comparison.
# This may be replaced when dependencies are built.
