file(REMOVE_RECURSE
  "CMakeFiles/table4_dynamic_minibatch.dir/table4_dynamic_minibatch.cpp.o"
  "CMakeFiles/table4_dynamic_minibatch.dir/table4_dynamic_minibatch.cpp.o.d"
  "table4_dynamic_minibatch"
  "table4_dynamic_minibatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_dynamic_minibatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
