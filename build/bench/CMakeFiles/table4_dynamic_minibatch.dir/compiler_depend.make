# Empty compiler generated dependencies file for table4_dynamic_minibatch.
# This may be replaced when dependencies are built.
