file(REMOVE_RECURSE
  "CMakeFiles/cifar_pruning_sweep.dir/cifar_pruning_sweep.cpp.o"
  "CMakeFiles/cifar_pruning_sweep.dir/cifar_pruning_sweep.cpp.o.d"
  "cifar_pruning_sweep"
  "cifar_pruning_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cifar_pruning_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
