# Empty dependencies file for cifar_pruning_sweep.
# This may be replaced when dependencies are built.
