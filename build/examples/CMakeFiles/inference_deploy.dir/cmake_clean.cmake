file(REMOVE_RECURSE
  "CMakeFiles/inference_deploy.dir/inference_deploy.cpp.o"
  "CMakeFiles/inference_deploy.dir/inference_deploy.cpp.o.d"
  "inference_deploy"
  "inference_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
