# Empty dependencies file for inference_deploy.
# This may be replaced when dependencies are built.
