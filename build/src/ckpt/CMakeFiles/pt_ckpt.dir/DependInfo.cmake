
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/checkpoint.cpp" "src/ckpt/CMakeFiles/pt_ckpt.dir/checkpoint.cpp.o" "gcc" "src/ckpt/CMakeFiles/pt_ckpt.dir/checkpoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/pt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pt_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
