file(REMOVE_RECURSE
  "CMakeFiles/pt_ckpt.dir/checkpoint.cpp.o"
  "CMakeFiles/pt_ckpt.dir/checkpoint.cpp.o.d"
  "libpt_ckpt.a"
  "libpt_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
