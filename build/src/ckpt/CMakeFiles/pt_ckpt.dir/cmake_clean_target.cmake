file(REMOVE_RECURSE
  "libpt_ckpt.a"
)
