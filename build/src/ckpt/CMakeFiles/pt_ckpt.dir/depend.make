# Empty dependencies file for pt_ckpt.
# This may be replaced when dependencies are built.
