file(REMOVE_RECURSE
  "CMakeFiles/pt_core.dir/dynamic_batch.cpp.o"
  "CMakeFiles/pt_core.dir/dynamic_batch.cpp.o.d"
  "CMakeFiles/pt_core.dir/trainer.cpp.o"
  "CMakeFiles/pt_core.dir/trainer.cpp.o.d"
  "libpt_core.a"
  "libpt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
