# Empty compiler generated dependencies file for pt_core.
# This may be replaced when dependencies are built.
