
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/comm.cpp" "src/cost/CMakeFiles/pt_cost.dir/comm.cpp.o" "gcc" "src/cost/CMakeFiles/pt_cost.dir/comm.cpp.o.d"
  "/root/repo/src/cost/device.cpp" "src/cost/CMakeFiles/pt_cost.dir/device.cpp.o" "gcc" "src/cost/CMakeFiles/pt_cost.dir/device.cpp.o.d"
  "/root/repo/src/cost/flops.cpp" "src/cost/CMakeFiles/pt_cost.dir/flops.cpp.o" "gcc" "src/cost/CMakeFiles/pt_cost.dir/flops.cpp.o.d"
  "/root/repo/src/cost/memory.cpp" "src/cost/CMakeFiles/pt_cost.dir/memory.cpp.o" "gcc" "src/cost/CMakeFiles/pt_cost.dir/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/pt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
