file(REMOVE_RECURSE
  "CMakeFiles/pt_cost.dir/comm.cpp.o"
  "CMakeFiles/pt_cost.dir/comm.cpp.o.d"
  "CMakeFiles/pt_cost.dir/device.cpp.o"
  "CMakeFiles/pt_cost.dir/device.cpp.o.d"
  "CMakeFiles/pt_cost.dir/flops.cpp.o"
  "CMakeFiles/pt_cost.dir/flops.cpp.o.d"
  "CMakeFiles/pt_cost.dir/memory.cpp.o"
  "CMakeFiles/pt_cost.dir/memory.cpp.o.d"
  "libpt_cost.a"
  "libpt_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
