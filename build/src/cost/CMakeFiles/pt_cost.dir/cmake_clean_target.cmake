file(REMOVE_RECURSE
  "libpt_cost.a"
)
