# Empty compiler generated dependencies file for pt_cost.
# This may be replaced when dependencies are built.
