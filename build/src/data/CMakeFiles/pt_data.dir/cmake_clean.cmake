file(REMOVE_RECURSE
  "CMakeFiles/pt_data.dir/loader.cpp.o"
  "CMakeFiles/pt_data.dir/loader.cpp.o.d"
  "CMakeFiles/pt_data.dir/synthetic.cpp.o"
  "CMakeFiles/pt_data.dir/synthetic.cpp.o.d"
  "libpt_data.a"
  "libpt_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
