file(REMOVE_RECURSE
  "libpt_data.a"
)
