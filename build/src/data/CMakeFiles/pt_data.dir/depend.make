# Empty dependencies file for pt_data.
# This may be replaced when dependencies are built.
