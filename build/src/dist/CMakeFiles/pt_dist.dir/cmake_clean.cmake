file(REMOVE_RECURSE
  "CMakeFiles/pt_dist.dir/cluster.cpp.o"
  "CMakeFiles/pt_dist.dir/cluster.cpp.o.d"
  "libpt_dist.a"
  "libpt_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
