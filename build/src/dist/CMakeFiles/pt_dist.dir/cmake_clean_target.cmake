file(REMOVE_RECURSE
  "libpt_dist.a"
)
