# Empty compiler generated dependencies file for pt_dist.
# This may be replaced when dependencies are built.
