file(REMOVE_RECURSE
  "CMakeFiles/pt_graph.dir/network.cpp.o"
  "CMakeFiles/pt_graph.dir/network.cpp.o.d"
  "libpt_graph.a"
  "libpt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
