file(REMOVE_RECURSE
  "libpt_graph.a"
)
