# Empty dependencies file for pt_graph.
# This may be replaced when dependencies are built.
