file(REMOVE_RECURSE
  "CMakeFiles/pt_models.dir/builders.cpp.o"
  "CMakeFiles/pt_models.dir/builders.cpp.o.d"
  "libpt_models.a"
  "libpt_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
