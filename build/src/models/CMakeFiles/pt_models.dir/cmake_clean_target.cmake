file(REMOVE_RECURSE
  "libpt_models.a"
)
