# Empty compiler generated dependencies file for pt_models.
# This may be replaced when dependencies are built.
