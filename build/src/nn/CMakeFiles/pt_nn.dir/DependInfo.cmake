
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/pt_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/pt_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/pt_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/pt_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/channel_index.cpp" "src/nn/CMakeFiles/pt_nn.dir/channel_index.cpp.o" "gcc" "src/nn/CMakeFiles/pt_nn.dir/channel_index.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/pt_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/pt_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/pt_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/pt_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/pt_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/pt_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/pt_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/pt_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/pt_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/pt_nn.dir/pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/pt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
