file(REMOVE_RECURSE
  "CMakeFiles/pt_nn.dir/activations.cpp.o"
  "CMakeFiles/pt_nn.dir/activations.cpp.o.d"
  "CMakeFiles/pt_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/pt_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/pt_nn.dir/channel_index.cpp.o"
  "CMakeFiles/pt_nn.dir/channel_index.cpp.o.d"
  "CMakeFiles/pt_nn.dir/conv2d.cpp.o"
  "CMakeFiles/pt_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/pt_nn.dir/layer.cpp.o"
  "CMakeFiles/pt_nn.dir/layer.cpp.o.d"
  "CMakeFiles/pt_nn.dir/linear.cpp.o"
  "CMakeFiles/pt_nn.dir/linear.cpp.o.d"
  "CMakeFiles/pt_nn.dir/loss.cpp.o"
  "CMakeFiles/pt_nn.dir/loss.cpp.o.d"
  "CMakeFiles/pt_nn.dir/pool.cpp.o"
  "CMakeFiles/pt_nn.dir/pool.cpp.o.d"
  "libpt_nn.a"
  "libpt_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
