file(REMOVE_RECURSE
  "libpt_nn.a"
)
