# Empty compiler generated dependencies file for pt_nn.
# This may be replaced when dependencies are built.
