file(REMOVE_RECURSE
  "CMakeFiles/pt_optim.dir/lr_schedule.cpp.o"
  "CMakeFiles/pt_optim.dir/lr_schedule.cpp.o.d"
  "CMakeFiles/pt_optim.dir/sgd.cpp.o"
  "CMakeFiles/pt_optim.dir/sgd.cpp.o.d"
  "libpt_optim.a"
  "libpt_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
