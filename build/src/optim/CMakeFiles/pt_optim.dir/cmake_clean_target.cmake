file(REMOVE_RECURSE
  "libpt_optim.a"
)
