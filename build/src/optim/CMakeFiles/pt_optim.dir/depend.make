# Empty dependencies file for pt_optim.
# This may be replaced when dependencies are built.
