
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prune/channel_analysis.cpp" "src/prune/CMakeFiles/pt_prune.dir/channel_analysis.cpp.o" "gcc" "src/prune/CMakeFiles/pt_prune.dir/channel_analysis.cpp.o.d"
  "/root/repo/src/prune/gating.cpp" "src/prune/CMakeFiles/pt_prune.dir/gating.cpp.o" "gcc" "src/prune/CMakeFiles/pt_prune.dir/gating.cpp.o.d"
  "/root/repo/src/prune/group_lasso.cpp" "src/prune/CMakeFiles/pt_prune.dir/group_lasso.cpp.o" "gcc" "src/prune/CMakeFiles/pt_prune.dir/group_lasso.cpp.o.d"
  "/root/repo/src/prune/reconfigure.cpp" "src/prune/CMakeFiles/pt_prune.dir/reconfigure.cpp.o" "gcc" "src/prune/CMakeFiles/pt_prune.dir/reconfigure.cpp.o.d"
  "/root/repo/src/prune/snapshot.cpp" "src/prune/CMakeFiles/pt_prune.dir/snapshot.cpp.o" "gcc" "src/prune/CMakeFiles/pt_prune.dir/snapshot.cpp.o.d"
  "/root/repo/src/prune/sparsity_monitor.cpp" "src/prune/CMakeFiles/pt_prune.dir/sparsity_monitor.cpp.o" "gcc" "src/prune/CMakeFiles/pt_prune.dir/sparsity_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/pt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/pt_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pt_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
