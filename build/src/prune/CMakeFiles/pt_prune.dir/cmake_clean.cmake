file(REMOVE_RECURSE
  "CMakeFiles/pt_prune.dir/channel_analysis.cpp.o"
  "CMakeFiles/pt_prune.dir/channel_analysis.cpp.o.d"
  "CMakeFiles/pt_prune.dir/gating.cpp.o"
  "CMakeFiles/pt_prune.dir/gating.cpp.o.d"
  "CMakeFiles/pt_prune.dir/group_lasso.cpp.o"
  "CMakeFiles/pt_prune.dir/group_lasso.cpp.o.d"
  "CMakeFiles/pt_prune.dir/reconfigure.cpp.o"
  "CMakeFiles/pt_prune.dir/reconfigure.cpp.o.d"
  "CMakeFiles/pt_prune.dir/snapshot.cpp.o"
  "CMakeFiles/pt_prune.dir/snapshot.cpp.o.d"
  "CMakeFiles/pt_prune.dir/sparsity_monitor.cpp.o"
  "CMakeFiles/pt_prune.dir/sparsity_monitor.cpp.o.d"
  "libpt_prune.a"
  "libpt_prune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_prune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
