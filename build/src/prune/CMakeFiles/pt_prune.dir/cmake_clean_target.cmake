file(REMOVE_RECURSE
  "libpt_prune.a"
)
