# Empty dependencies file for pt_prune.
# This may be replaced when dependencies are built.
