file(REMOVE_RECURSE
  "CMakeFiles/pt_tensor.dir/im2col.cpp.o"
  "CMakeFiles/pt_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/pt_tensor.dir/ops.cpp.o"
  "CMakeFiles/pt_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/pt_tensor.dir/tensor.cpp.o"
  "CMakeFiles/pt_tensor.dir/tensor.cpp.o.d"
  "libpt_tensor.a"
  "libpt_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
