file(REMOVE_RECURSE
  "libpt_tensor.a"
)
