# Empty compiler generated dependencies file for pt_tensor.
# This may be replaced when dependencies are built.
