file(REMOVE_RECURSE
  "CMakeFiles/pt_util.dir/cli.cpp.o"
  "CMakeFiles/pt_util.dir/cli.cpp.o.d"
  "CMakeFiles/pt_util.dir/fileio.cpp.o"
  "CMakeFiles/pt_util.dir/fileio.cpp.o.d"
  "CMakeFiles/pt_util.dir/logging.cpp.o"
  "CMakeFiles/pt_util.dir/logging.cpp.o.d"
  "CMakeFiles/pt_util.dir/rng.cpp.o"
  "CMakeFiles/pt_util.dir/rng.cpp.o.d"
  "CMakeFiles/pt_util.dir/table.cpp.o"
  "CMakeFiles/pt_util.dir/table.cpp.o.d"
  "libpt_util.a"
  "libpt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
