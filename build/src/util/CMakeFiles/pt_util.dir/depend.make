# Empty dependencies file for pt_util.
# This may be replaced when dependencies are built.
