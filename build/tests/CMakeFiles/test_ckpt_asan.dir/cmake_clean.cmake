file(REMOVE_RECURSE
  "CMakeFiles/test_ckpt_asan.dir/ckpt_test.cpp.o"
  "CMakeFiles/test_ckpt_asan.dir/ckpt_test.cpp.o.d"
  "test_ckpt_asan"
  "test_ckpt_asan.pdb"
  "test_ckpt_asan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckpt_asan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
