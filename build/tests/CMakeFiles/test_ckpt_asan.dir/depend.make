# Empty dependencies file for test_ckpt_asan.
# This may be replaced when dependencies are built.
