# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_optim[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_cost[1]_include.cmake")
include("/root/repo/build/tests/test_prune[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_ckpt[1]_include.cmake")
include("/root/repo/build/tests/test_ckpt_asan[1]_include.cmake")
