// Regularization-strength sweep: the workflow of Sec. 5.2 / Fig. 8.
//
//   $ ./cifar_pruning_sweep [--model resnet20|resnet32|resnet50|vgg11|...]
//
// Trains the same architecture at several lasso penalty ratios (plus the
// dense baseline) on the synthetic CIFAR-100 stand-in and prints the
// accuracy / inference-cost / training-cost tradeoff table a practitioner
// would use to pick an operating point.
#include <iostream>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  pt::CliFlags flags;
  flags.define("model", "resnet20", "architecture to sweep");
  flags.define("epochs", "30", "training epochs per point");
  flags.define("width", "0.25", "width multiplier");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("cifar_pruning_sweep");
    return 0;
  }
  const std::int64_t epochs = flags.get_int("epochs");

  pt::data::SyntheticImageDataset dataset(
      pt::data::SyntheticSpec::cifar100_like());
  pt::models::ModelConfig model_cfg;
  model_cfg.image_h = dataset.spec().height;
  model_cfg.image_w = dataset.spec().width;
  model_cfg.classes = dataset.spec().classes;
  model_cfg.width_mult = static_cast<float>(flags.get_double("width"));

  auto run = [&](float ratio, pt::core::PrunePolicy policy) {
    auto net = pt::models::build_by_name(flags.get("model"), model_cfg);
    pt::core::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 64;
    cfg.base_lr = 0.1f;
    cfg.lr_milestones = {epochs / 2, 3 * epochs / 4};
    cfg.policy = policy;
    cfg.lasso_ratio = ratio;
    cfg.lasso_boost = 150.f;
    cfg.reconfig_interval = std::max<std::int64_t>(2, epochs / 6);
    cfg.eval_interval = 5;
    pt::core::PruneTrainer trainer(net, dataset, cfg);
    return trainer.run();
  };

  pt::Table t({"ratio", "test acc", "inference MFLOPs", "training GFLOPs",
               "BN traffic GB", "channels", "layers removed"});
  const auto dense = run(0.f, pt::core::PrunePolicy::kDense);
  t.add_row({"dense", pt::fmt(dense.final_test_acc, 3),
             pt::fmt(dense.final_inference_flops / 1e6, 3),
             pt::fmt(dense.total_train_flops / 1e9, 2),
             pt::fmt(dense.total_bn_traffic / 1e9, 2),
             std::to_string(dense.final_channels), "0"});
  for (float ratio : {0.1f, 0.2f, 0.3f, 0.4f}) {
    const auto r = run(ratio, pt::core::PrunePolicy::kPruneTrain);
    t.add_row({pt::fmt(ratio, 2), pt::fmt(r.final_test_acc, 3),
               pt::fmt(r.final_inference_flops / 1e6, 3),
               pt::fmt(r.total_train_flops / 1e9, 2),
               pt::fmt(r.total_bn_traffic / 1e9, 2),
               std::to_string(r.final_channels),
               std::to_string(r.layers_removed)});
  }
  std::cout << flags.get("model") << " on " << dataset.spec().name << ":\n";
  t.print();
  return 0;
}
