// Simulated multi-GPU data-parallel training (Sec. 2.2): N in-process
// replicas, gradient allreduce every step, with ring-allreduce cost
// accounting — the substrate behind the paper's communication results.
//
//   $ ./distributed_training [--gpus 4] [--epochs 10]
//
// Trains a small ResNet across the replica cluster and prints per-epoch
// loss, accuracy, and the allreduce volume/time a real 4-GPU ring would
// spend, demonstrating that replicas stay bit-identical.
#include <iostream>

#include "dist/cluster.h"
#include "models/builders.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  pt::CliFlags flags;
  flags.define("gpus", "4", "number of simulated GPUs");
  flags.define("epochs", "10", "training epochs");
  flags.define("batch", "64", "global mini-batch size");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("distributed_training");
    return 0;
  }
  const int gpus = static_cast<int>(flags.get_int("gpus"));
  const std::int64_t epochs = flags.get_int("epochs");
  const std::int64_t batch = flags.get_int("batch");

  pt::data::SyntheticImageDataset dataset(
      pt::data::SyntheticSpec::cifar10_like());
  pt::models::ModelConfig model_cfg;
  model_cfg.image_h = dataset.spec().height;
  model_cfg.image_w = dataset.spec().width;
  model_cfg.classes = dataset.spec().classes;
  model_cfg.width_mult = 0.25f;

  // Identical initialization on every replica (same build seed) is the
  // data-parallel contract; the allreduce keeps them in lock-step after.
  std::vector<pt::graph::Network> replicas;
  for (int i = 0; i < gpus; ++i) {
    replicas.push_back(pt::models::build_resnet_basic(20, model_cfg));
  }
  pt::cost::CommSpec comm;
  comm.gpus = gpus;
  pt::dist::Cluster cluster(std::move(replicas), comm);

  pt::optim::SGD opt(0.1f, 0.9f, 1e-4f);
  pt::data::DataLoader loader(dataset, /*seed=*/3);

  pt::Table t({"epoch", "loss", "train acc", "allreduce MB/GPU", "comm ms (modeled)"});
  for (std::int64_t e = 0; e < epochs; ++e) {
    loader.begin_epoch();
    double loss = 0, comm_bytes = 0, comm_time = 0;
    std::int64_t correct = 0, samples = 0, iters = 0;
    while (loader.has_next()) {
      pt::data::Batch b = loader.next(batch);
      if (b.size() < gpus) break;  // final ragged batch smaller than cluster
      const auto r = cluster.step(b, opt);
      loss += r.loss * double(b.size());
      correct += r.correct;
      samples += b.size();
      comm_bytes += r.comm_bytes_per_gpu;
      comm_time += r.comm_time_modeled;
      ++iters;
    }
    t.add_row({std::to_string(e), pt::fmt(loss / double(samples), 3),
               pt::fmt(double(correct) / double(samples), 3),
               pt::fmt(comm_bytes / 1e6, 2), pt::fmt(comm_time * 1e3, 2)});
  }
  t.print();

  // Verify the data-parallel contract held.
  auto p0 = cluster.replica(0).params();
  bool identical = true;
  for (int r = 1; r < cluster.size() && identical; ++r) {
    auto pr = cluster.replica(r).params();
    for (std::size_t i = 0; i < p0.size() && identical; ++i) {
      for (std::int64_t q = 0; q < p0[i]->value.numel(); ++q) {
        if (p0[i]->value.data()[q] != pr[i]->value.data()[q]) {
          identical = false;
          break;
        }
      }
    }
  }
  std::cout << "\nreplicas bit-identical after training: "
            << (identical ? "yes" : "NO (bug!)") << "\n";
  return identical ? 0 : 1;
}
