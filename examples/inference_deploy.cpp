// Deploying a PruneTrained model: train, snapshot, materialize both the
// channel-union and channel-gating inference forms, and compare their
// cost and measured throughput (the Sec. 4.2 / Fig. 6-7 decision in
// miniature).
//
//   $ ./inference_deploy [--epochs 30]
#include <iostream>

#include "core/trainer.h"
#include "cost/device.h"
#include "cost/flops.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "prune/gating.h"
#include "prune/snapshot.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/table.h"

namespace {

double images_per_second(pt::graph::Network& net, const pt::Tensor& x) {
  net.forward(x, false);  // warm-up
  pt::Timer t;
  int reps = 0;
  while (t.seconds() < 0.3) {
    net.forward(x, false);
    ++reps;
  }
  return double(reps) * double(x.shape()[0]) / t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  pt::CliFlags flags;
  flags.define("epochs", "30", "training epochs");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("inference_deploy");
    return 0;
  }
  const std::int64_t epochs = flags.get_int("epochs");

  pt::data::SyntheticImageDataset dataset(
      pt::data::SyntheticSpec::cifar10_like());
  pt::models::ModelConfig model_cfg;
  model_cfg.image_h = dataset.spec().height;
  model_cfg.image_w = dataset.spec().width;
  model_cfg.classes = dataset.spec().classes;
  model_cfg.width_mult = 0.125f;

  auto build = [&] { return pt::models::build_resnet50(model_cfg, false); };

  // Train once with PruneTrain (union reconfiguration happens in-run).
  auto trained = build();
  {
    pt::core::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 64;
    cfg.base_lr = 0.1f;
    cfg.lr_milestones = {epochs / 2, 3 * epochs / 4};
    cfg.policy = pt::core::PrunePolicy::kPruneTrain;
    cfg.lasso_ratio = 0.25f;
    cfg.lasso_boost = 150.f;
    cfg.reconfig_interval = std::max<std::int64_t>(2, epochs / 6);
    cfg.eval_interval = 5;
    pt::core::PruneTrainer trainer(trained, dataset, cfg);
    const auto r = trainer.run();
    std::cout << "trained: test acc " << pt::fmt(r.final_test_acc, 3)
              << ", channels " << r.final_channels << ", layers removed "
              << r.layers_removed << "\n\n";
  }

  // Snapshots let deployments persist/restore trained state; a roundtrip
  // is also a cheap integrity check before measuring.
  const pt::prune::Snapshot snap = pt::prune::save_state(trained);
  pt::prune::load_state(trained, snap);

  // The union model is `trained` itself; the gating transform below then
  // mutates it in place, so union is measured first.
  const pt::Shape input{dataset.spec().channels, dataset.spec().height,
                        dataset.spec().width};
  pt::Rng rng(9);
  pt::Tensor x = pt::Tensor::randn({64, input[0], input[1], input[2]}, rng);

  pt::cost::FlopsModel union_flops(trained, input);
  pt::cost::DeviceModel dev(pt::cost::DeviceSpec::titan_xp());
  const double union_cpu = images_per_second(trained, x);
  const double union_gpu = 64.0 / dev.inference_time(trained, input, 64);

  const auto gstats = pt::prune::apply_channel_gating(trained, 1e-4f);
  pt::cost::FlopsModel gated_flops(trained, input);
  const double gated_cpu = images_per_second(trained, x);
  const double gated_gpu = 64.0 / dev.inference_time(trained, input, 64);

  pt::Table t({"deployment", "MFLOPs", "img/s (cpu)", "img/s (modeled GPU)"});
  t.add_row({"channel union", pt::fmt(union_flops.inference_flops() / 1e6, 3),
             pt::fmt(union_cpu, 0), pt::fmt(union_gpu, 0)});
  t.add_row({"channel gating (" + std::to_string(gstats.selects_inserted) +
                 " gates)",
             pt::fmt(gated_flops.inference_flops() / 1e6, 3),
             pt::fmt(gated_cpu, 0), pt::fmt(gated_gpu, 0)});
  t.print();
  std::cout << "\nunion adds "
            << pt::fmt(100.0 * (union_flops.inference_flops() /
                                    std::max(1.0, gated_flops.inference_flops()) -
                                1.0),
                       2)
            << "% FLOPs but avoids " << gstats.selects_inserted + gstats.scatters_inserted
            << " gather/scatter ops per forward pass\n";
  return 0;
}
