// Deploying a PruneTrained model behind the serving runtime: train with
// checkpointing (generations accumulate as the model prunes), then serve a
// synthetic traffic trace through serve::ServeRuntime while the final,
// pruned generation lands mid-trace — a live hot swap with zero dropped
// requests, measured before vs after the swap.
//
// The modeled serving clock maps 1 tick = 1 ms, so --qps and --deadline-ms
// mean what they say. flops_per_tick is calibrated so one full dense batch
// costs ~8 ticks.
//
//   $ ./inference_deploy [--epochs 8] [--qps 150] [--max-batch 8]
//                        [--deadline-ms 60] [--workers 2]
//                        [--duration-ms 4000] [--fault-spec <spec>]
//                        [--canary-probes 8] [--no-canary]
//
// Besides the hot swap, the run demonstrates the serving-resilience layer
// (ISSUE 10): a quarter of the way in, a *poisoned* generation — valid
// CRC, NaN classifier head — lands in the live directory. With the canary
// gate on (default) it is rejected at the publish boundary and traffic
// never leaves the incumbent; with --no-canary it swaps in, the post-swap
// GenerationHealth guard catches the first NaN batch, and the runtime
// rolls back automatically. Either way the poisoned weights are
// quarantined and zero requests are dropped. --fault-spec feeds the
// robust::FaultInjector grammar into the runtime itself (slow-model,
// flaky-output; pass "help" for the table).
#include <algorithm>
#include <filesystem>
#include <iostream>

#include "ckpt/checkpoint.h"
#include "core/trainer.h"
#include "cost/flops.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "prune/materialize.h"
#include "robust/fault.h"
#include "serve/server.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/table.h"

namespace fs = std::filesystem;

namespace {

struct Window {
  std::int64_t served = 0;
  double p99 = 0;
  double qps = 0;
};

// Latency p99 + served throughput of the responses in [from, to) ticks.
Window window_stats(const std::vector<pt::serve::Response>& responses,
                    pt::serve::Tick from, pt::serve::Tick to) {
  Window w;
  std::vector<pt::serve::Tick> lat;
  for (const auto& r : responses) {
    if (r.shed || r.completion < from || r.completion >= to) continue;
    lat.push_back(r.completion - r.arrival);
  }
  w.served = static_cast<std::int64_t>(lat.size());
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    w.p99 = static_cast<double>(
        lat[std::min(lat.size() - 1,
                     static_cast<std::size_t>(0.99 * double(lat.size())))]);
    w.qps = 1000.0 * double(w.served) / double(std::max<pt::serve::Tick>(1, to - from));
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  pt::CliFlags flags;
  flags.define("epochs", "8", "training epochs (checkpoint every ~third)");
  flags.define("qps", "150", "offered load, requests per modeled second");
  flags.define("max-batch", "8", "dynamic batching cap");
  flags.define("deadline-ms", "60", "per-request relative deadline");
  flags.define("workers", "2", "modeled serving workers");
  flags.define("duration-ms", "4000", "trace length in modeled ms");
  flags.define("fault-spec", "",
               "serve-side fault injection spec (\"help\" prints the grammar)");
  flags.define("canary-probes", "8", "canary probe samples per publish");
  flags.define("no-canary", "false",
               "disable the canary gate (post-swap guards still roll back)");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("inference_deploy");
    return 0;
  }
  if (flags.get("fault-spec") == "help") {
    std::cout << pt::robust::fault_spec_help();
    return 0;
  }
  const std::int64_t epochs = std::max<long>(3, flags.get_int("epochs"));
  const double qps = std::max(1.0, flags.get_double("qps"));
  const std::int64_t max_batch = std::max<long>(1, flags.get_int("max-batch"));
  const pt::serve::Tick deadline = std::max<long>(1, flags.get_int("deadline-ms"));
  const int workers = static_cast<int>(std::max<long>(1, flags.get_int("workers")));
  const pt::serve::Tick duration =
      std::max<long>(100, flags.get_int("duration-ms"));

  pt::data::SyntheticImageDataset dataset(
      pt::data::SyntheticSpec::cifar10_like());
  pt::models::ModelConfig model_cfg;
  model_cfg.image_h = dataset.spec().height;
  model_cfg.image_w = dataset.spec().width;
  model_cfg.classes = dataset.spec().classes;
  model_cfg.width_mult = 0.125f;
  const pt::Shape input{dataset.spec().channels, dataset.spec().height,
                        dataset.spec().width};

  // 1. Train with PruneTrain, checkpointing into a staging directory so the
  // generation chain spans dense-ish early weights to the pruned final model.
  const fs::path root = "inference_deploy_ckpts";
  const fs::path stage = root / "stage";
  const fs::path live = root / "live";
  fs::remove_all(root);
  fs::create_directories(stage);
  fs::create_directories(live);

  auto trained = pt::models::build_resnet50(model_cfg, false);
  {
    pt::core::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 64;
    cfg.base_lr = 0.1f;
    cfg.lr_milestones = {epochs / 2, 3 * epochs / 4};
    cfg.policy = pt::core::PrunePolicy::kPruneTrain;
    cfg.lasso_ratio = 0.25f;
    cfg.lasso_boost = 150.f;
    cfg.reconfig_interval = std::max<std::int64_t>(2, epochs / 4);
    cfg.eval_interval = epochs;
    cfg.checkpoint_dir = stage.string();
    cfg.checkpoint_interval = std::max<std::int64_t>(1, epochs / 3);
    pt::core::PruneTrainer trainer(trained, dataset, cfg);
    const auto r = trainer.run();
    std::cout << "trained: test acc " << pt::fmt(r.final_test_acc, 3)
              << ", channels " << r.final_channels << ", inference MFLOPs "
              << pt::fmt(r.final_inference_flops / 1e6, 3) << "\n";
  }

  const auto generations = pt::ckpt::list_generations(stage.string());
  if (generations.size() < 2) {
    std::cerr << "need >= 2 checkpoint generations, got "
              << generations.size() << "\n";
    return 1;
  }
  const auto& first_gen = generations.front();
  const auto& last_gen = generations.back();

  // 2. Serve: the live directory starts with the earliest (least pruned)
  // generation; the final pruned generation is dropped in mid-trace and the
  // registry poll hot-swaps it under load.
  fs::copy_file(first_gen.path, live / fs::path(first_gen.path).filename());

  pt::exec::ExecContext ctx(1);
  pt::serve::ServeConfig cfg;
  cfg.workers = workers;
  cfg.max_batch = max_batch;
  cfg.max_queue = 4 * max_batch;
  cfg.poll_interval = 10;  // poll the registry every modeled 10 ms
  // Calibrate the modeled worker so one full batch of the *dense* model
  // costs ~8 ticks; the pruned model then prices proportionally cheaper.
  {
    auto dense = pt::models::build_resnet50(model_cfg, false);
    pt::cost::FlopsModel fm(dense, input);
    cfg.flops_per_tick =
        fm.inference_flops() * double(max_batch) / 8.0;
  }
  cfg.fault_spec = flags.get("fault-spec");
  cfg.canary.enabled = !flags.get_bool("no-canary");
  cfg.canary.probes = std::max<long>(1, flags.get_int("canary-probes"));
  pt::serve::ServeRuntime runtime(cfg, ctx);
  runtime.add_model("resnet", live.string(), input);

  // A poisoned generation lands a quarter of the way in: restored from the
  // first checkpoint, classifier head overwritten with NaN, re-saved with a
  // perfectly valid CRC. The canary gate (or, with --no-canary, the
  // post-swap health guard + rollback) must keep it out of every response.
  const std::int64_t poison_epoch = last_gen.epoch + 1;
  runtime.schedule(duration / 4, [&] {
    auto poisoned =
        pt::ckpt::Checkpoint::load(first_gen.path).restore_network();
    auto inj = pt::robust::FaultInjector::from_string("poison-ckpt", 0xbad);
    inj.poison_network(poisoned, poison_epoch);
    pt::ckpt::Checkpoint::capture(poisoned).save(
        (live / ("ckpt-epoch-" + std::to_string(poison_epoch) + ".bin"))
            .string());
  });

  const pt::serve::Tick swap_at = duration / 2;
  runtime.schedule(swap_at, [&] {
    fs::copy_file(last_gen.path, live / fs::path(last_gen.path).filename(),
                  fs::copy_options::overwrite_existing);
  });

  pt::serve::TraceSpec spec;
  spec.model = "resnet";
  spec.mean_interarrival = 1000.0 / qps;
  spec.start = 0;
  spec.end = duration;
  spec.deadline = deadline;
  spec.input = input;
  spec.seed = 42;
  const auto trace = pt::serve::synthesize_trace({spec});

  std::cout << "serving " << trace.size() << " requests over "
            << duration << " modeled ms (" << pt::fmt(qps, 0)
            << " qps offered, deadline " << deadline << " ms, "
            << workers << " workers, max batch " << max_batch << ")\n\n";
  const auto report = runtime.run(trace);

  // 3. Report: swap provenance, then before/after-swap service quality.
  for (const auto& ev : report.swaps) {
    std::cout << "swap @ " << ev.tick << " ms: generation "
              << ev.record.from_generation << " -> " << ev.record.to_generation
              << " (lease epoch " << ev.record.lease_epoch << ", "
              << ev.queued << " queued, " << ev.inflight
              << " batches in flight, "
              << pt::fmt(ev.record.inference_flops / 1e6, 3)
              << " MFLOPs/sample)\n";
  }

  for (const auto& q : runtime.registry().quarantined()) {
    std::cout << "quarantined generation " << q.generation << " ("
              << q.reason
              << (q.canary.detail.empty() ? "" : ": " + q.canary.detail)
              << ")\n";
  }
  for (const auto& rb : report.rollbacks) {
    std::cout << "rollback @ " << rb.tick << " ms: generation "
              << rb.from_generation << " -> " << rb.to_generation
              << " (lease epoch " << rb.lease_epoch << ", " << rb.reason
              << ")\n";
  }

  const pt::serve::Tick split =
      report.swaps.size() > 1 ? report.swaps.back().tick : swap_at;
  const Window before = window_stats(report.responses, 0, split);
  const Window after =
      window_stats(report.responses, split, report.last_completion + 1);

  pt::Table t({"window", "served", "qps", "p99 ms"});
  t.add_row({"before swap", std::to_string(before.served),
             pt::fmt(before.qps, 0), pt::fmt(before.p99, 0)});
  t.add_row({"after swap", std::to_string(after.served), pt::fmt(after.qps, 0),
             pt::fmt(after.p99, 0)});
  t.print();

  std::cout << "\nadmitted " << report.admitted << " / " << report.requests
            << " (shed " << report.shed << "), completed " << report.completed
            << ", dropped " << report.dropped << " (late " << report.late
            << "), batches " << report.batches << " (mean size "
            << pt::fmt(report.mean_batch_size, 2) << "), leases retired "
            << report.leases_retired << "\n";
  std::cout << "resilience: quarantined " << report.quarantined
            << ", rollbacks " << report.rollbacks.size()
            << ", circuit-open sheds " << report.shed_circuit_open << "\n";
  if (report.dropped != 0) {
    std::cerr << "hot swap dropped requests — zero-drop invariant violated\n";
    return 1;
  }
  // The layered invariant: with the canary on, the poisoned generation is
  // never observable at all; with --no-canary it may serve briefly, but a
  // rollback must fire and nothing formed after it may still be poisoned.
  const pt::serve::Tick rollback_tick =
      report.rollbacks.empty() ? 0 : report.rollbacks.back().tick;
  for (const auto& r : report.responses) {
    if (r.shed || r.generation != poison_epoch) continue;
    if (cfg.canary.enabled) {
      std::cerr << "poisoned generation " << poison_epoch
                << " served a response past the canary gate\n";
      return 1;
    }
    if (r.formed > rollback_tick) {
      std::cerr << "poisoned generation " << poison_epoch
                << " still serving after the rollback\n";
      return 1;
    }
  }
  if (!cfg.canary.enabled && report.rollbacks.empty()) {
    std::cerr << "canary disabled but no rollback fired\n";
    return 1;
  }
  if (report.quarantined < 1) {
    std::cerr << "poisoned generation was never quarantined\n";
    return 1;
  }
  return 0;
}
