// Quickstart: train a ResNet with PruneTrain and watch the model shrink.
//
//   $ ./quickstart [--epochs N] [--ratio R] [--checkpoint-dir D] [--resume F]
//
// Builds a CIFAR-style ResNet-20 on the synthetic CIFAR-10 stand-in,
// trains it with group-lasso regularization from iteration 0, and
// reconfigures the network every few epochs. Prints the per-epoch model
// size, cost, and accuracy, then the final summary against the dense
// starting point.
//
// With --checkpoint-dir the trainer writes a crash-safe checkpoint
// (reconfigured model + full training context) after every epoch; after an
// interruption, --resume <dir>/ckpt-latest.bin continues the run exactly
// where it stopped.
//
// --max-rollbacks N arms the training guardian: numerical-health checks
// after every epoch, automatic rollback to the last good checkpoint (with
// an LR cut) on a fatal event, graceful abort with a diagnostic checkpoint
// once the budget is spent. --fault-spec injects deterministic faults to
// watch it work, e.g.:
//
//   $ ./quickstart --checkpoint-dir /tmp/pt --max-rollbacks 2 \
//                  --fault-spec "nan-grad:epoch=7"
//
// --metrics-out <dir> records the run as telemetry: <dir>/manifest.json
// plus one JSONL line per epoch in <dir>/epochs.jsonl (per-layer FLOPs and
// wall-times, sparsity densities, reconfiguration events, counters/spans).
// --no-telemetry forces the telemetry switch off, for overhead A/B runs.
//
// --threads N runs the training hot path on an N-thread execution context
// (0 = all hardware threads). The pool is deterministic: the numbers are
// bitwise-identical at every thread count (see DESIGN.md §9).
//
// --replicas N trains on a simulated elastic data-parallel cluster
// (DESIGN.md §10): batches shard over the live replicas, membership faults
// (kill-replica / flaky-replica / rejoin-replica) exercise permanent
// failure, quorum loss, and checkpointed rejoin. --min-live-fraction,
// --suspect-threshold, and --no-rejoin tune the membership policy:
//
//   $ ./quickstart --replicas 4 --checkpoint-dir /tmp/pt \
//                  --fault-spec "kill-replica:replica=2,step=50"
//
// `--fault-spec help` prints the full fault grammar table.
//
// --sdc-check-interval K arms the integrity monitor (DESIGN.md §12): every
// K optimizer steps each replica digests its state dict (CRC per tensor)
// and the cluster majority-votes; a convicted minority replica is healed
// in place by a fenced state copy — no rollback, no lost steps.
// --keep-checkpoints K retains the last K numbered checkpoint generations
// (0 = all) and a background scrubber re-validates their CRCs so rollback
// can cascade past a torn newest file:
//
//   $ ./quickstart --replicas 3 --checkpoint-dir /tmp/pt \
//                  --sdc-check-interval 4 --keep-checkpoints 3 \
//                  --fault-spec "sdc-param:replica=1,step=3"
//
// --strategy <name> swaps the sparsifier (group_lasso, dsd, dst,
// channel_prop — see DESIGN.md §11); the repeatable --strategy-param k=v
// tunes it, e.g.:
//
//   $ ./quickstart --strategy dst --strategy-param threshold_lr=0.05 \
//                  --strategy-param beta=10
//
// `--strategy help` prints the registry table of strategies and knobs.
//
// --codec <name> swaps the gradient wire format of the simulated
// allreduce (dense, twobit, live_channel — see DESIGN.md §14); the
// repeatable --codec-param k=v tunes it, e.g.:
//
//   $ ./quickstart --replicas 4 --codec twobit \
//                  --codec-param threshold_scale=1.5
//
// `--codec help` prints the registry table of codecs and knobs.
#include <iostream>
#include <memory>
#include <stdexcept>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "dist/codec.h"
#include "models/builders.h"
#include "prune/strategy.h"
#include "robust/fault.h"
#include "telemetry/metrics.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  pt::CliFlags flags;
  flags.define("epochs", "36", "training epochs");
  flags.define("ratio", "0.25", "group-lasso penalty ratio (Eq. 3 target)");
  flags.define("checkpoint-dir", "",
               "write crash-safe per-epoch checkpoints into this directory");
  flags.define("resume", "", "resume from a checkpoint file (e.g. "
               "<dir>/ckpt-latest.bin)");
  flags.define("max-rollbacks", "0",
               "rollback-to-checkpoint budget on fatal health events "
               "(requires --checkpoint-dir)");
  flags.define("fault-spec", "",
               "inject deterministic faults, e.g. 'nan-grad:epoch=7' or "
               "'kill-replica:replica=2,step=50'; 'help' prints the grammar");
  flags.define("strategy", "group_lasso",
               "sparsification strategy (group_lasso, dsd, dst, "
               "channel_prop); 'help' prints the registry table");
  flags.define_list("strategy-param",
                    "strategy parameter as key=value, e.g. "
                    "--strategy-param sparsity=0.4 (see --strategy help)");
  flags.define("codec", "dense",
               "gradient wire format for the simulated allreduce (dense, "
               "twobit, live_channel; needs --replicas > 1); 'help' prints "
               "the registry table");
  flags.define_list("codec-param",
                    "codec parameter as key=value, e.g. "
                    "--codec-param threshold_scale=1.5 (see --codec help)");
  flags.define("replicas", "1",
               "simulated elastic data-parallel replicas (>1 shards every "
               "batch over the live membership; see DESIGN.md section 10)");
  flags.define("min-live-fraction", "0.5",
               "quorum: abort when live replicas fall below "
               "ceil(fraction * replicas)");
  flags.define("suspect-threshold", "3",
               "consecutive missed step-acks before a replica is declared "
               "dead (detection bookkeeping; participation stops at the "
               "first miss)");
  flags.define("no-rejoin", "false",
               "treat replica death as terminal: ignore rejoin-replica "
               "faults and schedules");
  flags.define("sdc-check-interval", "0",
               "digest-vote the replica state dicts every K optimizer "
               "steps and heal convicted minorities in place (0 = off; "
               "see DESIGN.md section 12)");
  flags.define("keep-checkpoints", "0",
               "retain the last K numbered checkpoint generations and "
               "CRC-scrub them after every save (0 = retain all)");
  flags.define("threads", "1",
               "execution threads for the training hot path (0 = all "
               "hardware threads); results are bitwise-identical at any "
               "setting");
  flags.define("metrics-out", "",
               "record telemetry into this directory (manifest.json + "
               "epochs.jsonl, one line per epoch)");
  flags.define("no-telemetry", "false",
               "force the telemetry switch off (ignores --metrics-out)");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("quickstart");
    return 0;
  }
  if (flags.get("fault-spec") == "help") {
    std::cout << pt::robust::fault_spec_help();
    return 0;
  }
  if (flags.get("strategy") == "help") {
    std::cout << pt::prune::StrategyRegistry::global().help();
    return 0;
  }
  if (flags.get("codec") == "help") {
    std::cout << pt::dist::CodecRegistry::global().help();
    return 0;
  }
  const std::int64_t epochs = flags.get_int("epochs");

  // 1. A synthetic CIFAR-10 stand-in (class templates + noise + shifts).
  pt::data::SyntheticImageDataset dataset(
      pt::data::SyntheticSpec::cifar10_like());

  // 2. A width-scaled ResNet-20 matching the dataset geometry.
  pt::models::ModelConfig model_cfg;
  model_cfg.image_h = dataset.spec().height;
  model_cfg.image_w = dataset.spec().width;
  model_cfg.classes = dataset.spec().classes;
  model_cfg.width_mult = 0.5f;
  auto net = pt::models::build_resnet_basic(20, model_cfg);

  // 3. PruneTrain: lasso from iteration 0 (lambda set by Eq. 3), periodic
  //    prune + reconfigure, LR decays at 50%/75% of the run.
  pt::core::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 64;
  cfg.base_lr = 0.1f;
  cfg.lr_milestones = {epochs / 2, 3 * epochs / 4};
  cfg.policy = pt::core::PrunePolicy::kPruneTrain;
  cfg.strategy = flags.get("strategy");
  for (const std::string& kv : flags.get_list("strategy-param")) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::cerr << "--strategy-param expects key=value (got '" << kv << "')\n";
      return 1;
    }
    cfg.strategy_params[kv.substr(0, eq)] = kv.substr(eq + 1);
  }
  cfg.codec = flags.get("codec");
  for (const std::string& kv : flags.get_list("codec-param")) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::cerr << "--codec-param expects key=value (got '" << kv << "')\n";
      return 1;
    }
    cfg.codec_params[kv.substr(0, eq)] = kv.substr(eq + 1);
  }
  if (cfg.strategy == "group_lasso") {
    // The legacy lasso knobs only mean something to group lasso; setting
    // them alongside another strategy is a validation error.
    cfg.lasso_ratio = static_cast<float>(flags.get_double("ratio"));
    cfg.lasso_boost = 150.f;  // proxy-scale time compression (see DESIGN.md)
  }
  cfg.reconfig_interval = std::max<std::int64_t>(2, epochs / 6);
  cfg.eval_interval = 4;
  cfg.checkpoint_dir = flags.get("checkpoint-dir");
  cfg.resume_from = flags.get("resume");
  cfg.max_rollbacks = flags.get_int("max-rollbacks");
  cfg.fault_spec = flags.get("fault-spec");
  cfg.num_threads = flags.get_int("threads");
  cfg.replicas = flags.get_int("replicas");
  cfg.min_live_fraction = flags.get_double("min-live-fraction");
  cfg.suspect_threshold = flags.get_int("suspect-threshold");
  cfg.sdc_check_interval = flags.get_int("sdc-check-interval");
  cfg.keep_checkpoints = flags.get_int("keep-checkpoints");
  cfg.allow_rejoin = !flags.get_bool("no-rejoin");
  if (flags.get_bool("no-telemetry")) {
    pt::telemetry::set_enabled(false);
  } else {
    cfg.metrics_dir = flags.get("metrics-out");
    cfg.run_name = "quickstart";
  }

  std::unique_ptr<pt::core::PruneTrainer> trainer;
  try {
    trainer = std::make_unique<pt::core::PruneTrainer>(net, dataset, cfg);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n(see --strategy help / --codec help)\n";
    return 1;
  }
  pt::core::TrainResult result;
  try {
    result = trainer->run();
  } catch (const pt::robust::TrainingAborted& e) {
    const auto& report = e.report();
    std::cerr << "training aborted by the guardian: " << e.what() << "\n"
              << "  rollbacks: " << report.rollbacks
              << ", faults injected: " << report.faults_injected
              << ", events: " << report.events.size() << "\n"
              << "  diagnostic checkpoint: " << cfg.checkpoint_dir
              << "/ckpt-diagnostic.bin\n";
    return 1;
  }

  pt::Table t({"epoch", "channels", "train FLOPs/sample", "memory MB",
               "batch", "test acc"});
  for (std::size_t e = 0; e < result.epochs.size(); e += 4) {
    const auto& es = result.epochs[e];
    t.add_row({std::to_string(es.epoch), std::to_string(es.channels_alive),
               pt::fmt(es.flops_per_sample_train / 1e6, 2) + "M",
               pt::fmt(es.memory_bytes / 1e6, 1), std::to_string(es.batch_size),
               pt::fmt(es.test_acc, 3)});
  }
  t.print();

  const auto& first = result.epochs.front();
  std::cout << "\nSummary (lambda = " << result.lambda << "):\n"
            << "  training FLOPs vs dense-equivalent: "
            << pt::fmt(100.0 * result.total_train_flops /
                           (first.flops_per_sample_train *
                            double(dataset.train_size()) * double(epochs)),
                       1)
            << "%\n"
            << "  inference FLOPs kept: "
            << pt::fmt(100.0 * result.final_inference_flops /
                           first.flops_per_sample_inf,
                       1)
            << "%\n"
            << "  conv layers removed: " << result.layers_removed << "\n"
            << "  final test accuracy: " << pt::fmt(result.final_test_acc, 3)
            << "\n";
  const auto& report = trainer->recovery_report();
  if (report.faults_injected > 0 || report.rollbacks > 0 ||
      !report.events.empty()) {
    std::cout << "  guardian: " << report.faults_injected
              << " fault(s) injected, " << report.rollbacks
              << " rollback(s), " << report.events.size()
              << " health event(s)\n";
  }
  return 0;
}
