// Telemetry export: fold a recorded run into a one-line benchmark summary.
//
//   $ ./telemetry_export --run /tmp/metrics --name telemetry_smoke \
//                        --out BENCH_telemetry_smoke.json
//
// Reads <run>/epochs.jsonl (written by a trainer run with a metrics
// directory, e.g. `quickstart --metrics-out`), aggregates the cost
// trajectory (total training FLOPs, allreduce bytes, first/last per-sample
// costs, monotonicity of FLOPs and memory), and writes the summary as a
// schema-versioned BENCH_<name>.json document.
#include <iostream>

#include "telemetry/bench_export.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  pt::CliFlags flags;
  flags.define("run", "", "telemetry run directory (contains epochs.jsonl)");
  flags.define("name", "telemetry", "benchmark name recorded in the summary");
  flags.define("out", "", "output path (default: BENCH_<name>.json)");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("telemetry_export");
    return 0;
  }
  const std::string run_dir = flags.get("run");
  if (run_dir.empty()) {
    std::cerr << "telemetry_export: --run <dir> is required\n";
    return 2;
  }
  const std::string name = flags.get("name");
  std::string out = flags.get("out");
  if (out.empty()) out = "BENCH_" + name + ".json";
  try {
    pt::telemetry::bench_export(run_dir, name, out);
  } catch (const std::exception& e) {
    std::cerr << "telemetry_export: " << e.what() << "\n";
    return 1;
  }
  std::cout << "wrote " << out << "\n";
  return 0;
}
