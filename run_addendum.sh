#!/bin/bash
# Re-runs the benches whose parameters were fixed after the main suite
# pass, appending corrected sections to bench_output.txt.
cd /root/repo/build/bench || exit 1
{
echo
echo "########## addendum: benches re-run with corrected parameters ##########"
for b in fig6_union_vs_gating_flops table2_inference_perf table3_amc_comparison table4_dynamic_minibatch fig8_tradeoff_curves; do
  echo "===== bench: $b (rerun) ====="
  timeout 900 ./$b 2>&1
  echo
done
for b in ablation_penalty_mode ablation_finetune; do
  echo "===== bench: $b (quick) ====="
  timeout 600 ./$b --quick 2>&1
  echo
done
echo "ADDENDUM DONE"
} >> /root/repo/bench_output.txt 2>&1
