#!/bin/bash
# Runs every bench binary in sequence, writing the final bench_output.txt.
cd /root/repo/build/bench || exit 1
{
for b in fig7_union_vs_gating_time fig12_density fig4_channel_sparsity \
         fig2_flops_trajectory fig6_union_vs_gating_flops \
         fig9_memory_requirement fig11_comm_cost fig10_reconfig_interval \
         table3_amc_comparison table4_dynamic_minibatch table2_inference_perf \
         fig8_tradeoff_curves table1_training_cost micro_engine; do
  echo "===== bench: $b ====="
  timeout 900 ./$b 2>&1
  echo
done
echo "===== bench: hotpath_scaling ====="
# Exec-context thread scaling: deterministic-parallelism check plus
# seconds/step at 1/2/4 threads (timing skipped on single-core runners).
timeout 900 ./hotpath_scaling --out /root/repo/BENCH_hotpath_scaling.json 2>&1
echo
echo "===== bench: elastic_overhead ====="
# Elastic membership: fixed-vs-elastic step equivalence (bitwise), the
# per-step cost of the heartbeat/re-shard machinery, and the modeled resync
# traffic of a kill/rejoin cycle.
timeout 900 ./elastic_overhead --out /root/repo/BENCH_elastic_overhead.json 2>&1
echo
echo "===== bench: sdc_overhead ====="
# Silent-data-corruption defense: per-step digest-vote overhead at several
# check intervals, detection latency for an injected finite bitflip, and
# the bitwise heal-equivalence flag (heal_bitwise).
timeout 900 ./sdc_overhead --out /root/repo/BENCH_sdc_overhead.json 2>&1
echo
echo "===== bench: strategy_ablation ====="
# Sparsifier zoo: every registered prune::Strategy on the same proxy
# protocol — loss proxy, FLOPs trajectory, sec/epoch, and the bitwise
# checkpoint-resume flag for serialized strategy state.
timeout 900 ./strategy_ablation --quick \
  --out /root/repo/BENCH_strategy_ablation.json 2>&1
echo
echo "===== bench: comm_compression ====="
# Gradient codecs: real encoded wire bytes per exchange and sec/step for
# every registered codec at several pruned widths, the dense-bitwise
# reference check, the twobit convergence ablation, and the >=4x
# wire-reduction flag (Fig. 11 multiplicative saving on real payloads).
timeout 900 ./comm_compression --out /root/repo/BENCH_comm_compression.json 2>&1
echo
echo "===== bench: serve_load ====="
# Serving runtime across a hot swap: dense generation serves until the
# pruned checkpoint lands mid-trace; throughput/p99 before vs after, plus
# the zero_dropped and swap_speedup sanity flags.
timeout 900 ./serve_load --quick --out /root/repo/BENCH_serve_load.json 2>&1
echo
echo "===== bench: serve_resilience ====="
# Serving resilience under injected faults: canary-rejected poisoned
# generation, runtime-flaky generation, automatic rollback; windows around
# the turbulence plus the zero_dropped_under_faults /
# poisoned_generation_never_served / rollback_bitwise flags.
timeout 900 ./serve_resilience --quick --out /root/repo/BENCH_serve_resilience.json 2>&1
echo
echo "===== bench: telemetry_smoke ====="
# Instrumented quickstart: records a short run, then folds the JSONL
# trajectory into BENCH_telemetry_smoke.json (monotone FLOPs/memory flags).
METRICS_DIR=$(mktemp -d /tmp/pt_metrics_smoke.XXXXXX)
timeout 900 ../examples/quickstart --epochs 6 --metrics-out "$METRICS_DIR" 2>&1
timeout 120 ../examples/telemetry_export --run "$METRICS_DIR" \
  --name telemetry_smoke --out /root/repo/BENCH_telemetry_smoke.json 2>&1
rm -rf "$METRICS_DIR"
echo
echo "SUITE DONE"
} > /root/repo/bench_output.txt 2>&1

# Sanity gate: every BENCH_*.json carries pass/fail flags alongside its
# numbers (bitwise determinism, monotone FLOPs/memory). A false flag means a
# correctness property was violated while benching — fail the suite loudly
# instead of shipping bad numbers in a green run.
FAILED_FLAGS=0
for artifact in /root/repo/BENCH_*.json; do
  [ -e "$artifact" ] || continue
  for flag in determinism_bitwise_1_vs_4 determinism_bitwise_elastic_vs_fixed \
              flops_monotone_nonincreasing memory_monotone_nonincreasing \
              strategy_resume_bitwise heal_bitwise zero_dropped \
              swap_speedup convergence_within_tol dense_bitwise_reference \
              wire_reduction_4x zero_dropped_under_faults \
              poisoned_generation_never_served rollback_bitwise; do
    if grep -q "\"$flag\"[[:space:]]*:[[:space:]]*false" "$artifact"; then
      echo "SANITY FLAG FAILED: $flag in $artifact" | tee -a /root/repo/bench_output.txt
      FAILED_FLAGS=$((FAILED_FLAGS + 1))
    fi
  done
done
if [ "$FAILED_FLAGS" -gt 0 ]; then
  echo "bench suite: $FAILED_FLAGS sanity flag(s) failed" | tee -a /root/repo/bench_output.txt
  exit 1
fi
