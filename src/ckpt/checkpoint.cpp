#include "ckpt/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "ckpt/serialize.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/channel_index.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pool.h"
#include "util/fileio.h"

namespace pt::ckpt {
namespace {

constexpr char kMagic[8] = {'P', 'T', 'C', 'K', 'P', 'T', '0', '1'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

void Checkpoint::set_section(const std::string& name,
                             std::vector<std::uint8_t> bytes) {
  sections_[name] = std::move(bytes);
}

const std::vector<std::uint8_t>* Checkpoint::section(
    const std::string& name) const {
  auto it = sections_.find(name);
  return it == sections_.end() ? nullptr : &it->second;
}

Checkpoint Checkpoint::capture(graph::Network& net) {
  Checkpoint ck;
  ck.nodes_.reserve(net.num_nodes());
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    graph::Node& n = net.node(static_cast<int>(i));
    NodeRecord rec;
    rec.kind = static_cast<std::uint8_t>(n.kind);
    rec.inputs.assign(n.inputs.begin(), n.inputs.end());
    if (n.kind == graph::Node::Kind::kLayer) {
      rec.type = n.layer->type();
      rec.name = n.layer->name();
      if (auto* conv = dynamic_cast<nn::Conv2d*>(n.layer.get())) {
        rec.geom_i = {conv->in_channels(), conv->out_channels(), conv->kernel(),
                      conv->stride(), conv->pad(),
                      conv->has_bias() ? std::int64_t{1} : std::int64_t{0}};
      } else if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(n.layer.get())) {
        rec.geom_i = {bn->channels()};
        rec.geom_f = {bn->bn_momentum(), bn->eps()};
      } else if (auto* fc = dynamic_cast<nn::Linear*>(n.layer.get())) {
        rec.geom_i = {fc->in_features(), fc->out_features(),
                      fc->has_bias() ? std::int64_t{1} : std::int64_t{0}};
      } else if (auto* pool = dynamic_cast<nn::MaxPool2d*>(n.layer.get())) {
        rec.geom_i = {pool->window()};
      } else if (auto* sel = dynamic_cast<nn::ChannelSelect*>(n.layer.get())) {
        rec.indices = sel->indices();
        rec.geom_i = {sel->in_channels()};
      } else if (auto* sc = dynamic_cast<nn::ChannelScatter*>(n.layer.get())) {
        rec.indices = sc->indices();
        rec.geom_i = {sc->out_channels()};
      } else if (dynamic_cast<nn::ReLU*>(n.layer.get()) != nullptr ||
                 dynamic_cast<nn::GlobalAvgPool*>(n.layer.get()) != nullptr) {
        // stateless, no geometry
      } else {
        throw std::runtime_error("Checkpoint::capture: unsupported layer type " +
                                 rec.type + " (node " + std::to_string(i) + ")");
      }
    }
    ck.nodes_.push_back(std::move(rec));
  }
  ck.output_ = net.output();
  ck.first_conv_ = net.info.first_conv;
  ck.classifier_ = net.info.classifier;
  ck.blocks_ = net.info.blocks;

  for (const nn::StateEntry& e : net.state()) {
    if (e.role == nn::StateRole::kGrad) continue;  // transient
    TensorRecord t;
    t.name = e.name;
    t.role = e.role;
    t.dims = e.tensor->shape().dims();
    t.values.assign(e.tensor->data(), e.tensor->data() + e.tensor->numel());
    ck.tensors_.push_back(std::move(t));
  }
  return ck;
}

graph::Network Checkpoint::restore_network() const {
  graph::Network net;
  Rng init_rng(0);  // layer ctors draw init weights; all overwritten below
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeRecord& rec = nodes_[i];
    graph::Node n;
    n.kind = static_cast<graph::Node::Kind>(rec.kind);
    n.inputs.assign(rec.inputs.begin(), rec.inputs.end());
    if (n.kind == graph::Node::Kind::kLayer) {
      nn::LayerPtr layer;
      auto need = [&](std::size_t count) {
        if (rec.geom_i.size() < count) {
          throw std::runtime_error("checkpoint: bad geometry for node " +
                                   std::to_string(i) + " (" + rec.type + ")");
        }
      };
      if (rec.type == "Conv2d") {
        need(6);
        layer = std::make_shared<nn::Conv2d>(rec.geom_i[0], rec.geom_i[1],
                                             rec.geom_i[2], rec.geom_i[3],
                                             rec.geom_i[4], init_rng,
                                             rec.geom_i[5] != 0);
      } else if (rec.type == "BatchNorm2d") {
        need(1);
        if (rec.geom_f.size() < 2) {
          throw std::runtime_error("checkpoint: bad BN geometry for node " +
                                   std::to_string(i));
        }
        layer = std::make_shared<nn::BatchNorm2d>(rec.geom_i[0], rec.geom_f[0],
                                                  rec.geom_f[1]);
      } else if (rec.type == "Linear") {
        need(3);
        layer = std::make_shared<nn::Linear>(rec.geom_i[0], rec.geom_i[1],
                                             init_rng, rec.geom_i[2] != 0);
      } else if (rec.type == "ReLU") {
        layer = std::make_shared<nn::ReLU>();
      } else if (rec.type == "MaxPool2d") {
        need(1);
        layer = std::make_shared<nn::MaxPool2d>(rec.geom_i[0]);
      } else if (rec.type == "GlobalAvgPool") {
        layer = std::make_shared<nn::GlobalAvgPool>();
      } else if (rec.type == "ChannelSelect") {
        need(1);
        layer = std::make_shared<nn::ChannelSelect>(rec.indices, rec.geom_i[0]);
      } else if (rec.type == "ChannelScatter") {
        need(1);
        layer = std::make_shared<nn::ChannelScatter>(rec.indices, rec.geom_i[0]);
      } else {
        throw std::runtime_error("checkpoint: unknown layer type " + rec.type);
      }
      layer->set_name(rec.name);
      n.layer = std::move(layer);
    }
    net.append_raw(std::move(n));
  }
  net.set_output(output_);
  net.info.first_conv = first_conv_;
  net.info.classifier = classifier_;
  net.info.blocks = blocks_;

  // Load tensors by walking the restored network's state in the same
  // deterministic order capture() used, verifying name/role/shape per entry.
  std::size_t cursor = 0;
  for (const nn::StateEntry& e : net.state()) {
    if (e.role == nn::StateRole::kGrad) continue;
    if (cursor >= tensors_.size()) {
      throw std::runtime_error("checkpoint: tensor table too short at " +
                               e.name);
    }
    const TensorRecord& t = tensors_[cursor++];
    if (t.name != e.name || t.role != e.role) {
      throw std::runtime_error("checkpoint: tensor mismatch, file has '" +
                               t.name + "' (" + nn::to_string(t.role) +
                               ") where network expects '" + e.name + "' (" +
                               nn::to_string(e.role) + ")");
    }
    if (Shape(t.dims) != e.tensor->shape()) {
      throw std::runtime_error("checkpoint: shape mismatch for " + e.name +
                               ": file " + Shape(t.dims).to_string() +
                               " vs network " + e.tensor->shape().to_string());
    }
    std::copy(t.values.begin(), t.values.end(), e.tensor->data());
  }
  if (cursor != tensors_.size()) {
    throw std::runtime_error("checkpoint: " +
                             std::to_string(tensors_.size() - cursor) +
                             " unconsumed tensor records");
  }
  return net;
}

void Checkpoint::save(const std::string& path) const {
  ByteWriter w;
  w.put_bytes(kMagic, sizeof(kMagic));
  w.put<std::uint32_t>(kVersion);

  // Topology block.
  w.put<std::uint64_t>(nodes_.size());
  for (const NodeRecord& rec : nodes_) {
    w.put<std::uint8_t>(rec.kind);
    w.put_vector(rec.inputs);
    w.put_string(rec.type);
    w.put_string(rec.name);
    w.put_vector(rec.geom_i);
    w.put_vector(rec.geom_f);
    w.put_vector(rec.indices);
  }
  w.put<std::int32_t>(output_);
  w.put<std::int32_t>(first_conv_);
  w.put<std::int32_t>(classifier_);
  w.put<std::uint64_t>(blocks_.size());
  for (const graph::ResidualBlockInfo& b : blocks_) {
    w.put_vector(std::vector<std::int32_t>(b.path_nodes.begin(),
                                           b.path_nodes.end()));
    w.put_vector(std::vector<std::int32_t>(b.path_convs.begin(),
                                           b.path_convs.end()));
    w.put<std::int32_t>(b.add_node);
    w.put_vector(std::vector<std::int32_t>(b.shortcut_nodes.begin(),
                                           b.shortcut_nodes.end()));
    w.put<std::int32_t>(b.shortcut_conv);
    w.put<std::uint8_t>(b.removed ? 1 : 0);
  }

  // Named tensor table.
  w.put<std::uint64_t>(tensors_.size());
  for (const TensorRecord& t : tensors_) {
    w.put_string(t.name);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(t.role));
    w.put_vector(t.dims);
    w.put_vector(t.values);
  }

  // Extra sections (trainer state etc).
  w.put<std::uint64_t>(sections_.size());
  for (const auto& [name, bytes] : sections_) {
    w.put_string(name);
    w.put_vector(bytes);
  }

  // CRC footer over everything above, via the shared util::fileio
  // integrity discipline (the telemetry emitter uses the same helpers).
  atomic_write_file_crc32(path, w.take());
}

bool Checkpoint::probe(const std::string& path) {
  try {
    const std::vector<std::uint8_t> bytes = read_file_bytes_crc32(path);
    return bytes.size() >= sizeof(kMagic) + sizeof(std::uint32_t) &&
           std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0;
  } catch (const std::exception&) {
    return false;
  }
}

std::vector<GenerationEntry> list_generations(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<GenerationEntry> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    constexpr const char* kPrefix = "ckpt-epoch-";
    constexpr const char* kSuffix = ".bin";
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.size() <= std::strlen(kPrefix) + std::strlen(kSuffix)) continue;
    if (name.compare(name.size() - std::strlen(kSuffix), std::strlen(kSuffix),
                     kSuffix) != 0) {
      continue;
    }
    const std::string digits = name.substr(
        std::strlen(kPrefix),
        name.size() - std::strlen(kPrefix) - std::strlen(kSuffix));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    GenerationEntry g;
    g.path = entry.path().string();
    g.epoch = std::stoll(digits);
    out.push_back(std::move(g));
  }
  std::sort(out.begin(), out.end(),
            [](const GenerationEntry& a, const GenerationEntry& b) {
              return a.epoch != b.epoch ? a.epoch < b.epoch : a.path < b.path;
            });
  return out;
}

Checkpoint Checkpoint::load(const std::string& path) {
  // Verify the CRC footer before trusting any length field in the body.
  const std::vector<std::uint8_t> bytes = read_file_bytes_crc32(path);
  if (bytes.size() < sizeof(kMagic) + sizeof(std::uint32_t)) {
    throw std::runtime_error("checkpoint: file too short: " + path);
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }

  ByteReader r(bytes.data(), bytes.size());
  char magic[sizeof(kMagic)];
  r.get_bytes(magic, sizeof(magic));
  const auto version = r.get<std::uint32_t>();
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version) + " in " + path);
  }

  Checkpoint ck;
  const auto num_nodes = r.get<std::uint64_t>();
  ck.nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    NodeRecord rec;
    rec.kind = r.get<std::uint8_t>();
    rec.inputs = r.get_vector<std::int32_t>();
    rec.type = r.get_string();
    rec.name = r.get_string();
    rec.geom_i = r.get_vector<std::int64_t>();
    rec.geom_f = r.get_vector<float>();
    rec.indices = r.get_vector<std::int64_t>();
    ck.nodes_.push_back(std::move(rec));
  }
  ck.output_ = r.get<std::int32_t>();
  ck.first_conv_ = r.get<std::int32_t>();
  ck.classifier_ = r.get<std::int32_t>();
  const auto num_blocks = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    graph::ResidualBlockInfo b;
    const auto path_nodes = r.get_vector<std::int32_t>();
    const auto path_convs = r.get_vector<std::int32_t>();
    b.path_nodes.assign(path_nodes.begin(), path_nodes.end());
    b.path_convs.assign(path_convs.begin(), path_convs.end());
    b.add_node = r.get<std::int32_t>();
    const auto shortcut_nodes = r.get_vector<std::int32_t>();
    b.shortcut_nodes.assign(shortcut_nodes.begin(), shortcut_nodes.end());
    b.shortcut_conv = r.get<std::int32_t>();
    b.removed = r.get<std::uint8_t>() != 0;
    ck.blocks_.push_back(std::move(b));
  }

  const auto num_tensors = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < num_tensors; ++i) {
    TensorRecord t;
    t.name = r.get_string();
    t.role = static_cast<nn::StateRole>(r.get<std::uint8_t>());
    t.dims = r.get_vector<std::int64_t>();
    t.values = r.get_vector<float>();
    std::int64_t numel = 1;
    for (std::int64_t d : t.dims) numel *= d;
    if (numel != static_cast<std::int64_t>(t.values.size())) {
      throw std::runtime_error("checkpoint: tensor " + t.name +
                               " payload does not match its shape");
    }
    ck.tensors_.push_back(std::move(t));
  }

  const auto num_sections = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < num_sections; ++i) {
    std::string name = r.get_string();
    ck.sections_[std::move(name)] = r.get_vector<std::uint8_t>();
  }
  if (!r.exhausted()) {
    throw std::runtime_error("checkpoint: trailing bytes in " + path);
  }
  return ck;
}

}  // namespace pt::ckpt
