// Crash-safe checkpointing of reconfigured networks (ISSUE 1 tentpole).
//
// Unlike prune::Snapshot — a positional float blob valid only across
// identical topologies — a Checkpoint is *self-describing*: it serializes
// the full graph structure (live/dead nodes, Add merges, per-layer channel
// extents, NetworkInfo/ResidualBlockInfo) plus a named tensor table built
// from the state-dict API (parameter values, SGD momentum, BN running
// stats). restore_network() rebuilds the exact reconfigured model from the
// file alone, so a PruneTrain run can be resumed after any number of
// structural reconfigurations.
//
// File layout (see DESIGN.md §6 for the byte-level spec):
//
//   [8]  magic "PTCKPT01"
//   [4]  u32 format version
//   topology block      (nodes, kinds, inputs, layer geometry, NetworkInfo)
//   named tensor table  (name, role, shape, f32 payload per entry)
//   extra sections      (opaque named blobs, e.g. the trainer state)
//   [4]  u32 CRC-32 of everything above
//
// Writes go through util::atomic_write_file (write <path>.tmp, fsync,
// rename), and loads verify the CRC before parsing a single field — a
// half-written or bit-flipped file is rejected, never half-applied.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/network.h"

namespace pt::ckpt {

/// One serialized state tensor. `name` is the Network::state() qualified
/// name ("stage1.block0.conv1.weight"); `role` excludes kGrad (gradients
/// are transient and rebuilt as zeros on restore).
struct TensorRecord {
  std::string name;
  nn::StateRole role = nn::StateRole::kParam;
  std::vector<std::int64_t> dims;
  std::vector<float> values;
};

/// In-memory image of a checkpoint file.
class Checkpoint {
 public:
  /// Captures the network's structure and all persistent tensors
  /// (param + momentum + buffer roles) of live layers.
  static Checkpoint capture(graph::Network& net);

  /// Rebuilds the captured network from scratch: same node ids (including
  /// dead placeholders, so NetworkInfo annotations stay valid), same layer
  /// geometry, and every captured tensor loaded back bit-exactly. Throws
  /// std::runtime_error on any structural or shape mismatch.
  graph::Network restore_network() const;

  /// Opaque named payloads riding along with the model — the trainer
  /// serializes its own state (epoch counters, lambda, RNG, stats history)
  /// here without src/ckpt needing to know its types.
  void set_section(const std::string& name, std::vector<std::uint8_t> bytes);
  /// Returns nullptr when the section is absent.
  const std::vector<std::uint8_t>* section(const std::string& name) const;

  /// Serializes and atomically writes the checkpoint file.
  void save(const std::string& path) const;

  /// Reads and verifies (magic, version, CRC) a checkpoint file. Throws
  /// std::runtime_error on I/O failure, bad magic/version, truncation, or
  /// CRC mismatch.
  static Checkpoint load(const std::string& path);

  const std::vector<TensorRecord>& tensors() const { return tensors_; }

  /// Reads and verifies only the file's trailing CRC-32 footer (no parse,
  /// no tensor allocation) — the cheap validity probe consumers like the
  /// serving registry run before committing to a full load. Returns false
  /// on any I/O failure, truncation, or CRC mismatch; never throws.
  static bool probe(const std::string& path);

 private:
  /// Mirror of one graph node, with enough geometry to reconstruct the
  /// layer. `geom_i`/`geom_f`/`indices` are interpreted per layer type.
  struct NodeRecord {
    std::uint8_t kind = 0;            ///< graph::Node::Kind
    std::vector<std::int32_t> inputs;
    std::string type;                 ///< layer type() tag, kLayer only
    std::string name;                 ///< layer hierarchical name
    std::vector<std::int64_t> geom_i;
    std::vector<float> geom_f;
    std::vector<std::int64_t> indices;  ///< ChannelSelect/Scatter only
  };

  std::vector<NodeRecord> nodes_;
  std::int32_t output_ = -1;
  // NetworkInfo mirror.
  std::int32_t first_conv_ = -1;
  std::int32_t classifier_ = -1;
  std::vector<graph::ResidualBlockInfo> blocks_;
  std::vector<TensorRecord> tensors_;
  std::map<std::string, std::vector<std::uint8_t>> sections_;
};

/// One numbered checkpoint file found in a training run's checkpoint
/// directory (the trainer's `ckpt-epoch-<N>.bin` naming).
struct GenerationEntry {
  std::string path;
  std::int64_t epoch = -1;  ///< the <N> in the filename (save-time epoch)
};

/// Lists the numbered checkpoint generations in `dir`, sorted by ascending
/// epoch. Non-matching filenames (ckpt-latest.bin, temp files, diagnostics)
/// are ignored; a missing or unreadable directory yields an empty list.
/// Read-only: nothing is opened, validated, or deleted — pair with
/// Checkpoint::probe / robust::CheckpointScrubber for validity.
std::vector<GenerationEntry> list_generations(const std::string& dir);

}  // namespace pt::ckpt
