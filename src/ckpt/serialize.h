// Little-endian byte-buffer primitives for the checkpoint file format.
//
// ByteWriter appends POD scalars, strings, and vectors into a growable
// buffer; ByteReader parses them back with hard bounds checks (a truncated
// or corrupted buffer throws, it never reads out of range). Both sides must
// agree on the field sequence — the format has no per-field tags, the
// structure is fixed by the checkpoint version.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace pt::ckpt {

class ByteWriter {
 public:
  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void put_string(const std::string& s) {
    put<std::uint64_t>(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void put_bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }

  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(v.size());
    put_bytes(v.data(), v.size() * sizeof(T));
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get<std::uint64_t>();
    // Divide instead of multiplying so a hostile length cannot overflow.
    if (n > remaining() / sizeof(T)) {
      throw std::runtime_error("checkpoint parse: truncated vector");
    }
    std::vector<T> v(static_cast<std::size_t>(n));
    std::memcpy(v.data(), data_ + pos_, static_cast<std::size_t>(n) * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  void get_bytes(void* out, std::size_t size) {
    require(size);
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  void require(std::uint64_t n) const {
    if (n > size_ - pos_) {
      throw std::runtime_error("checkpoint parse: truncated buffer (need " +
                               std::to_string(n) + " bytes at offset " +
                               std::to_string(pos_) + ")");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace pt::ckpt
