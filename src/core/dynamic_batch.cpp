#include "core/dynamic_batch.h"

#include <cmath>

#include "cost/memory.h"

namespace pt::core {

BatchAdjustment DynamicBatchAdjuster::propose(graph::Network& net, Shape input,
                                              std::int64_t current_batch) const {
  // Null exec context on purpose: batch decisions must be identical at
  // every thread count (the §9 determinism contract), so the model here
  // must not include the thread-scaled workspace term.
  cost::MemoryModel mem(net, input);
  BatchAdjustment adj;
  adj.new_batch = current_batch;
  if (cfg_.enabled) {
    std::int64_t candidate = current_batch;
    while (candidate + cfg_.granularity <= cfg_.max_batch &&
           mem.training_bytes(candidate + cfg_.granularity) <=
               cfg_.device_memory_bytes) {
      candidate += cfg_.granularity;
    }
    adj.new_batch = candidate;
  }
  const double growth =
      static_cast<double>(adj.new_batch) / static_cast<double>(current_batch);
  adj.lr_scale = static_cast<float>(
      cfg_.lr_rule == LrScalingRule::kLinear ? growth : std::sqrt(growth));
  adj.memory_bytes = mem.training_bytes(adj.new_batch);
  adj.changed = adj.new_batch != current_batch;
  return adj;
}

}  // namespace pt::core
