// Dynamic mini-batch adjustment (Sec. 4.3): after each reconfiguration,
// re-measure the training-memory context and grow the mini-batch (in
// `granularity` steps) while it fits the device memory — then scale the
// learning rate by the same ratio (the linear scaling rule of Smith et
// al. [19], applied mid-run at arbitrary points).
#pragma once

#include <cstdint>

#include "graph/network.h"

namespace pt::core {

/// Learning-rate adjustment rule applied when the batch grows (Sec. 4.3).
/// CNN training uses the linear rule; the paper notes other domains (e.g.
/// language models) want the square-root rule instead.
enum class LrScalingRule { kLinear, kSqrt };

struct DynamicBatchConfig {
  bool enabled = false;
  double device_memory_bytes = 11.0 * (1ull << 30);  ///< 11 GB (1080 Ti)
  std::int64_t granularity = 32;   ///< adjustment step (paper: 32/GPU)
  std::int64_t max_batch = 1024;   ///< safety cap
  LrScalingRule lr_rule = LrScalingRule::kLinear;
};

struct BatchAdjustment {
  std::int64_t new_batch = 0;
  float lr_scale = 1.f;            ///< new_batch / old_batch
  double memory_bytes = 0;         ///< training context at new batch
  bool changed = false;
};

class DynamicBatchAdjuster {
 public:
  explicit DynamicBatchAdjuster(DynamicBatchConfig cfg) : cfg_(cfg) {}

  /// Proposes a (possibly larger) batch for the current network. The batch
  /// never shrinks below `current_batch` — the model only gets smaller, so
  /// memory per sample only decreases.
  BatchAdjustment propose(graph::Network& net, Shape input,
                          std::int64_t current_batch) const;

  const DynamicBatchConfig& config() const { return cfg_; }

 private:
  DynamicBatchConfig cfg_;
};

}  // namespace pt::core
