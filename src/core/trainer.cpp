#include "core/trainer.h"

#include <cmath>
#include <ctime>
#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "cost/flops.h"
#include "cost/memory.h"
#include "dist/allreduce.h"
#include "dist/codec.h"
#include "models/builders.h"
#include "nn/conv2d.h"
#include "nn/loss.h"
#include "optim/lr_schedule.h"
#include "optim/sgd.h"
#include "prune/reconfigure.h"
#include "prune/strategy.h"
#include "telemetry/metrics.h"
#include "util/logging.h"

namespace pt::core {

namespace {

// Trainer-section (de)serialization. The section rides inside the
// checkpoint as an opaque named blob, so src/ckpt never needs to know
// these types; both sides must agree on the field sequence.

void put_epoch_stats(ckpt::ByteWriter& w, const EpochStats& s) {
  w.put<std::int64_t>(s.epoch);
  w.put<std::int64_t>(s.batch_size);
  w.put<double>(s.lr);
  w.put<double>(s.train_loss);
  w.put<double>(s.train_acc);
  w.put<double>(s.test_acc);
  w.put<double>(s.lasso_loss);
  w.put<double>(s.flops_per_sample_train);
  w.put<double>(s.flops_per_sample_inf);
  w.put<double>(s.epoch_train_flops);
  w.put<double>(s.epoch_bn_traffic);
  w.put<double>(s.memory_bytes);
  w.put<double>(s.comm_bytes_per_gpu);
  w.put<double>(s.comm_time_modeled);
  w.put<double>(s.gpu_time_modeled);
  w.put<double>(s.wall_seconds);
  w.put<std::int64_t>(s.channels_alive);
  w.put<std::int64_t>(s.conv_layers);
  w.put<std::uint8_t>(s.reconfigured ? 1 : 0);
}

EpochStats get_epoch_stats(ckpt::ByteReader& r) {
  EpochStats s;
  s.epoch = r.get<std::int64_t>();
  s.batch_size = r.get<std::int64_t>();
  s.lr = r.get<double>();
  s.train_loss = r.get<double>();
  s.train_acc = r.get<double>();
  s.test_acc = r.get<double>();
  s.lasso_loss = r.get<double>();
  s.flops_per_sample_train = r.get<double>();
  s.flops_per_sample_inf = r.get<double>();
  s.epoch_train_flops = r.get<double>();
  s.epoch_bn_traffic = r.get<double>();
  s.memory_bytes = r.get<double>();
  s.comm_bytes_per_gpu = r.get<double>();
  s.comm_time_modeled = r.get<double>();
  s.gpu_time_modeled = r.get<double>();
  s.wall_seconds = r.get<double>();
  s.channels_alive = r.get<std::int64_t>();
  s.conv_layers = r.get<std::int64_t>();
  s.reconfigured = r.get<std::uint8_t>() != 0;
  return s;
}

void put_result(ckpt::ByteWriter& w, const TrainResult& res) {
  w.put<double>(res.final_test_acc);
  w.put<double>(res.total_train_flops);
  w.put<double>(res.total_bn_traffic);
  w.put<double>(res.total_comm_bytes);
  w.put<double>(res.total_gpu_time_modeled);
  w.put<double>(res.total_wall_seconds);
  w.put<double>(res.final_inference_flops);
  w.put<std::int64_t>(res.layers_removed);
  w.put<std::int64_t>(res.final_channels);
  w.put<float>(res.lambda);
  w.put<std::uint64_t>(res.epochs.size());
  for (const EpochStats& s : res.epochs) put_epoch_stats(w, s);
}

TrainResult get_result(ckpt::ByteReader& r) {
  TrainResult res;
  res.final_test_acc = r.get<double>();
  res.total_train_flops = r.get<double>();
  res.total_bn_traffic = r.get<double>();
  res.total_comm_bytes = r.get<double>();
  res.total_gpu_time_modeled = r.get<double>();
  res.total_wall_seconds = r.get<double>();
  res.final_inference_flops = r.get<double>();
  res.layers_removed = r.get<std::int64_t>();
  res.final_channels = r.get<std::int64_t>();
  res.lambda = r.get<float>();
  const auto n = r.get<std::uint64_t>();
  res.epochs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) res.epochs.push_back(get_epoch_stats(r));
  return res;
}

// The manifest's config dump: the fields that shape the run's trajectory
// (not an exhaustive TrainConfig round-trip — the JSONL records are for
// humans and plotting scripts, the checkpoint is the machine state).
telemetry::Json config_json(const TrainConfig& cfg) {
  telemetry::Json j = telemetry::Json::object();
  j["policy"] = telemetry::Json(to_string(cfg.policy));
  j["strategy"] = telemetry::Json(cfg.strategy);
  telemetry::Json params = telemetry::Json::object();
  for (const auto& [key, value] : cfg.strategy_params) {
    params[key] = telemetry::Json(value);
  }
  j["strategy_params"] = params;
  j["codec"] = telemetry::Json(cfg.codec);
  telemetry::Json cparams = telemetry::Json::object();
  for (const auto& [key, value] : cfg.codec_params) {
    cparams[key] = telemetry::Json(value);
  }
  j["codec_params"] = cparams;
  j["epochs"] = telemetry::Json(cfg.epochs);
  j["batch_size"] = telemetry::Json(cfg.batch_size);
  j["base_lr"] = telemetry::Json(static_cast<double>(cfg.base_lr));
  j["momentum"] = telemetry::Json(static_cast<double>(cfg.momentum));
  j["weight_decay"] = telemetry::Json(static_cast<double>(cfg.weight_decay));
  j["lasso_ratio"] = telemetry::Json(static_cast<double>(cfg.lasso_ratio));
  j["lasso_boost"] = telemetry::Json(static_cast<double>(cfg.lasso_boost));
  j["reconfig_interval"] = telemetry::Json(cfg.reconfig_interval);
  j["threshold"] = telemetry::Json(static_cast<double>(cfg.threshold));
  j["fine_tune_epochs"] = telemetry::Json(cfg.fine_tune_epochs);
  j["eval_interval"] = telemetry::Json(cfg.eval_interval);
  j["num_threads"] = telemetry::Json(cfg.num_threads);
  j["prune_min_channels"] = telemetry::Json(cfg.prune_min_channels);
  j["max_rollbacks"] = telemetry::Json(cfg.max_rollbacks);
  j["fault_spec"] = telemetry::Json(cfg.fault_spec);
  j["replicas"] = telemetry::Json(cfg.replicas);
  j["min_live_fraction"] = telemetry::Json(cfg.min_live_fraction);
  j["sdc_check_interval"] = telemetry::Json(cfg.sdc_check_interval);
  j["keep_checkpoints"] = telemetry::Json(cfg.keep_checkpoints);
  return j;
}

// Round-trips a float through text exactly (9 significant digits), for
// mirroring legacy config fields into strategy parameter strings.
std::string float_param(float v) {
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

}  // namespace

std::string to_string(PrunePolicy policy) {
  switch (policy) {
    case PrunePolicy::kDense: return "Dense";
    case PrunePolicy::kPruneTrain: return "PruneTrain";
    case PrunePolicy::kSSL: return "SSL";
    case PrunePolicy::kOneShot: return "OneShot";
  }
  return "?";
}

void TrainConfig::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("TrainConfig: " + what);
  };
  if (epochs <= 0) {
    fail("epochs must be positive (got " + std::to_string(epochs) + ")");
  }
  if (batch_size <= 0) {
    fail("batch_size must be positive (got " + std::to_string(batch_size) + ")");
  }
  if (!(base_lr > 0.f)) {
    fail("base_lr must be positive (got " + std::to_string(base_lr) + ")");
  }
  if (reconfig_interval < 1) {
    fail("reconfig_interval must be >= 1 (got " +
         std::to_string(reconfig_interval) + ")");
  }
  if (eval_interval < 1) {
    fail("eval_interval must be >= 1 (got " + std::to_string(eval_interval) +
         ")");
  }
  if (checkpoint_interval < 1) {
    fail("checkpoint_interval must be >= 1 (got " +
         std::to_string(checkpoint_interval) + ")");
  }
  if (!(lasso_ratio > 0.f) || !(lasso_ratio < 1.f)) {
    fail("lasso_ratio must lie in (0, 1) (got " + std::to_string(lasso_ratio) +
         ")");
  }
  if (fine_tune_epochs < 0) {
    fail("fine_tune_epochs must be >= 0 (got " +
         std::to_string(fine_tune_epochs) + ")");
  }
  if (num_threads < 0) {
    fail("num_threads must be >= 0 (got " + std::to_string(num_threads) + ")");
  }
  health.validate();
  if (max_rollbacks < 0) {
    fail("max_rollbacks must be >= 0 (got " + std::to_string(max_rollbacks) +
         ")");
  }
  if (max_rollbacks > 0 && checkpoint_dir.empty()) {
    fail("max_rollbacks > 0 requires checkpoint_dir (rollback needs a "
         "checkpoint to roll back to)");
  }
  if (!(rollback_lr_cut > 0.f) || rollback_lr_cut > 1.f) {
    fail("rollback_lr_cut must lie in (0, 1] (got " +
         std::to_string(rollback_lr_cut) + ")");
  }
  if (!(rollback_backoff >= 1.0)) {
    fail("rollback_backoff must be >= 1 (got " +
         std::to_string(rollback_backoff) + ")");
  }
  if (!(rollback_backoff_cap >= 0.0)) {
    fail("rollback_backoff_cap must be >= 0 (got " +
         std::to_string(rollback_backoff_cap) + ")");
  }
  if (prune_min_channels < 1) {
    fail("prune_min_channels must be >= 1 (got " +
         std::to_string(prune_min_channels) + ")");
  }
  if (!fault_spec.empty()) {
    try {
      // Replica-targeted SDC specs naming a worker that does not exist
      // would otherwise arm and never fire — a silently dead test.
      robust::validate_fault_replicas(robust::parse_fault_specs(fault_spec),
                                      static_cast<int>(replicas));
    } catch (const std::invalid_argument& e) {
      fail(std::string("fault_spec: ") + e.what());
    }
  }
  if (sdc_check_interval < 0) {
    fail("sdc_check_interval must be >= 0 (got " +
         std::to_string(sdc_check_interval) + ")");
  }
  if (keep_checkpoints < 0) {
    fail("keep_checkpoints must be >= 0 (got " +
         std::to_string(keep_checkpoints) + ")");
  }
  // Strategy: the name must be registered and the parameters must resolve
  // (unknown keys, unparsable values, and legacy-field contradictions all
  // fail here rather than mid-training).
  try {
    (void)prune::StrategyRegistry::global().create(strategy,
                                                   resolved_strategy_params());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string(e.what()).rfind("TrainConfig:", 0) ==
                                        0
                                    ? e.what()
                                    : "TrainConfig: " + std::string(e.what()));
  }
  if (strategy != "group_lasso" &&
      (policy == PrunePolicy::kSSL || policy == PrunePolicy::kOneShot)) {
    fail("policy " + to_string(policy) +
         " is a group-lasso training protocol; it requires strategy "
         "\"group_lasso\" (got \"" + strategy + "\")");
  }
  if (strategy == "dsd" && fine_tune_epochs > 0) {
    fail("fine_tune_epochs contradicts strategy \"dsd\": DSD already ends "
         "with a dense retraining window — drop the legacy flag or use "
         "strategy_params[\"sparse_end\"] to shape it");
  }
  if (replicas < 1) {
    fail("replicas must be >= 1 (got " + std::to_string(replicas) + ")");
  }
  // Codec: the name must be registered and every parameter must belong to
  // it (same fail-early contract as the strategy block above).
  try {
    (void)dist::CodecRegistry::global().create(codec, codec_params);
  } catch (const std::invalid_argument& e) {
    fail(e.what());
  }
  if (codec != "dense" && replicas <= 1) {
    fail("codec \"" + codec +
         "\" requires replicas > 1 (gradient compression only applies to "
         "the simulated allreduce)");
  }
  if (replicas > 1) {
    if (strategy == "group_lasso" &&
        !prune::strategy_param_bool(resolved_strategy_params(), "proximal")) {
      fail("replicas > 1 requires proximal_update (the elastic cluster "
           "applies group lasso as a per-replica proximal hook)");
    }
    if (!(min_live_fraction > 0.0 && min_live_fraction <= 1.0)) {
      fail("min_live_fraction must lie in (0, 1] (got " +
           std::to_string(min_live_fraction) + ")");
    }
    if (suspect_threshold < 1) {
      fail("suspect_threshold must be >= 1 (got " +
           std::to_string(suspect_threshold) + ")");
    }
  }
}

std::map<std::string, std::string> TrainConfig::resolved_strategy_params()
    const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("TrainConfig: " + what);
  };
  std::map<std::string, std::string> p = strategy_params;
  const TrainConfig defaults;
  if (strategy == "group_lasso") {
    // Back-compat: the legacy lasso fields flow in as defaults. When a
    // legacy field was explicitly moved off its default AND the parameter
    // is also set, the two must agree — silently preferring either side
    // would make old and new spellings diverge.
    const auto contradiction = [&](const char* legacy_name,
                                   const std::string& legacy_value,
                                   const char* key, const std::string& given) {
      fail(std::string(legacy_name) + "=" + legacy_value +
           " contradicts strategy_params[\"" + key + "\"]=" + given +
           " — set only one (the " + legacy_name +
           " field is the deprecated spelling)");
    };
    const auto mirror_float = [&](const char* key, float legacy,
                                  float default_value,
                                  const char* legacy_name) {
      auto it = p.find(key);
      if (it == p.end()) {
        p[key] = float_param(legacy);
        return;
      }
      if (legacy == default_value) return;  // only the param was set
      float given = 0.f;
      try {
        given = std::stof(it->second);
      } catch (const std::exception&) {
        return;  // the registry's create() reports the parse error
      }
      if (given != legacy) {
        contradiction(legacy_name, float_param(legacy), key, it->second);
      }
    };
    const auto mirror_bool = [&](const char* key, bool legacy,
                                 bool default_value, const char* legacy_name) {
      auto it = p.find(key);
      if (it == p.end()) {
        p[key] = legacy ? "true" : "false";
        return;
      }
      if (legacy == default_value) return;
      const bool given =
          it->second == "true" || it->second == "1" || it->second == "yes";
      if (given != legacy) {
        contradiction(legacy_name, legacy ? "true" : "false", key, it->second);
      }
    };
    mirror_float("ratio", lasso_ratio, defaults.lasso_ratio, "lasso_ratio");
    mirror_float("boost", lasso_boost, defaults.lasso_boost, "lasso_boost");
    mirror_bool("proximal", proximal_update, defaults.proximal_update,
                "proximal_update");
    mirror_bool("size_normalized", size_normalized_penalty,
                defaults.size_normalized_penalty, "size_normalized_penalty");
  } else {
    // The legacy lasso knobs mean nothing to other strategies; letting
    // them sit silently set is exactly the contradictory-combination trap
    // the deprecation errors exist for.
    const auto reject = [&](const char* legacy_name, bool changed) {
      if (changed) {
        fail(std::string(legacy_name) +
             " is group-lasso-specific and is not read by strategy \"" +
             strategy + "\" — clear it (use strategy_params for \"" + strategy +
             "\"'s own knobs)");
      }
    };
    reject("lasso_ratio", lasso_ratio != defaults.lasso_ratio);
    reject("lasso_boost", lasso_boost != defaults.lasso_boost);
    reject("size_normalized_penalty",
           size_normalized_penalty != defaults.size_normalized_penalty);
  }
  return p;
}

PruneTrainer::PruneTrainer(graph::Network& net,
                           const data::SyntheticImageDataset& dataset,
                           TrainConfig cfg)
    : net_(&net),
      dataset_(&dataset),
      cfg_(std::move(cfg)),
      loader_(dataset, cfg_.shuffle_seed),
      input_shape_({dataset.spec().channels, dataset.spec().height,
                    dataset.spec().width}),
      batch_size_(cfg_.batch_size) {
  cfg_.validate();
  strategy_ = prune::StrategyRegistry::global().create(
      cfg_.strategy, cfg_.resolved_strategy_params());
  // Like the strategy, the codec exists before any resume load so
  // checkpointed codec state (error-feedback residuals, live-row masks)
  // deserializes into the object the cluster will actually use.
  if (cfg_.replicas > 1) {
    codec_ = dist::CodecRegistry::global().create(cfg_.codec, cfg_.codec_params);
  }
  ctx_ = std::make_unique<exec::ExecContext>(static_cast<int>(cfg_.num_threads));
  fault_ = robust::FaultInjector::from_string(cfg_.fault_spec, cfg_.fault_seed);
  if (cfg_.health_checks) {
    health_ = std::make_unique<robust::HealthMonitor>(cfg_.health);
  }
  if (cfg_.sdc_check_interval > 0) {
    integrity_ = std::make_unique<robust::IntegrityMonitor>(
        robust::IntegrityConfig{cfg_.sdc_check_interval});
  }
  if (!cfg_.checkpoint_dir.empty()) {
    scrubber_ =
        std::make_unique<robust::CheckpointScrubber>(cfg_.keep_checkpoints);
  }
  // Telemetry comes up before any resume load so the profiling flag can be
  // re-applied to the checkpoint-restored network.
  if (!cfg_.metrics_dir.empty()) {
    telemetry::set_enabled(true);
    net_->set_profiling(true);
    telemetry::RunManifest manifest;
    manifest.run_name = cfg_.run_name;
    manifest.git = telemetry::git_describe();
    manifest.created_unix = static_cast<std::int64_t>(std::time(nullptr));
    manifest.seed = cfg_.shuffle_seed;
    manifest.config = config_json(cfg_);
    recorder_ =
        std::make_unique<telemetry::RunRecorder>(cfg_.metrics_dir, manifest);
  }
  if (!cfg_.resume_from.empty()) load_checkpoint_file(cfg_.resume_from);
  if (cfg_.record_sparsity && !monitor_) {
    monitor_ = std::make_unique<prune::SparsityMonitor>(net);
  }
  if (cfg_.replicas > 1) rebuild_cluster();
}

void PruneTrainer::rebuild_cluster() {
  // Carry the injector's fire-state across the rebuild so already-consumed
  // faults don't re-arm; the rebuild itself gives every replica a fresh
  // HEALTHY record ("the failed node was replaced at job restart").
  robust::FaultInjector injector =
      cluster_ ? cluster_->take_fault_injector()
               : robust::FaultInjector::from_string(cfg_.fault_spec,
                                                    cfg_.fault_seed);
  ckpt::Checkpoint image = ckpt::Checkpoint::capture(*net_);
  std::vector<graph::Network> replicas;
  replicas.reserve(static_cast<std::size_t>(cfg_.replicas));
  for (std::int64_t r = 0; r < cfg_.replicas; ++r) {
    replicas.push_back(image.restore_network());
  }
  cost::CommSpec comm = cfg_.comm;
  comm.gpus = static_cast<int>(cfg_.replicas);
  dist::MembershipConfig membership;
  membership.suspect_threshold = static_cast<int>(cfg_.suspect_threshold);
  membership.min_live_fraction = cfg_.min_live_fraction;
  membership.allow_rejoin = cfg_.allow_rejoin;
  cluster_ = std::make_unique<dist::ElasticCluster>(std::move(replicas), comm,
                                                    membership);
  // Share (not copy) the trainer-owned codec: set_codec re-binds it to the
  // rebuilt replica topology, and shape-compatible residual state — loaded
  // from a checkpoint or carried across a rollback — survives the bind.
  if (codec_) cluster_->set_codec(codec_);
  cluster_->set_fault_injector(std::move(injector));
  cluster_fault_fires_seen_ = cluster_->fault_injector().total_fires();
  if (!cfg_.checkpoint_dir.empty()) {
    namespace fs = std::filesystem;
    const fs::path latest = fs::path(cfg_.checkpoint_dir) / "ckpt-latest.bin";
    if (fs::exists(latest)) cluster_->set_resync_checkpoint(latest.string());
  }
}

void PruneTrainer::sync_net_from_cluster() {
  int src = -1;
  for (int r = 0; r < cluster_->size(); ++r) {
    const dist::MemberStatus& m = cluster_->member(r);
    if (m.state == dist::ReplicaState::kHealthy && !m.failed) {
      src = r;
      break;
    }
  }
  if (src < 0) return;  // below quorum; the step already threw
  graph::Network& rep = cluster_->replica(src);
  std::vector<nn::StateEntry> from = rep.state();
  std::vector<nn::StateEntry> to = net_->state();
  bool copied = from.size() == to.size();
  if (copied) {
    for (std::size_t i = 0; i < from.size(); ++i) {
      if (from[i].name != to[i].name ||
          from[i].tensor->numel() != to[i].tensor->numel()) {
        copied = false;
        break;
      }
      std::copy(from[i].tensor->data(),
                from[i].tensor->data() + from[i].tensor->numel(),
                to[i].tensor->data());
    }
  }
  if (!copied) {
    // Topology drifted (should not happen — surgery is applied to both
    // sides in lockstep); rebuild the reference model outright.
    *net_ = ckpt::Checkpoint::capture(rep).restore_network();
    if (recorder_) net_->set_profiling(true);
    ctx_->rebuild_workspace();
  }
}

void PruneTrainer::reconfigure_cluster_replicas(float threshold) {
  if (!cluster_) return;
  for (int r = 0; r < cluster_->size(); ++r) {
    const dist::MemberStatus& m = cluster_->member(r);
    // Live members are bit-identical to *net_ pre-surgery, so the same
    // deterministic surgery lands them on the same topology. A freshly
    // resynced rejoiner (still REJOINING until the next poll) is equally
    // current. Failed replicas stay stale until a rejoin resync.
    const bool current =
        (m.state == dist::ReplicaState::kHealthy && !m.failed) ||
        m.state == dist::ReplicaState::kRejoining;
    if (!current) continue;
    prune::Reconfigurer reconfigurer(cluster_->replica(r), threshold,
                                     cfg_.prune_min_channels);
    reconfigurer.reconfigure();
  }
  // Re-bind the codec against the post-surgery topology: twobit re-sizes
  // its residuals, live_channel recompacts its live-row set — including
  // rows the surgery could *not* remove (min-channel floors, cross-layer
  // unions) that the proximal step has already zeroed. This runs even when
  // the surgery changed nothing, for exactly that reason.
  if (codec_) cluster_->codec().bind(*net_, cluster_->size());
}

double PruneTrainer::evaluate() {
  telemetry::ScopedTimer span("eval");
  const Tensor& images = dataset_->test_images();
  const auto& labels = dataset_->test_labels();
  const std::int64_t n = images.shape()[0];
  const std::int64_t chunk = 64;
  const std::int64_t sample_len =
      images.shape()[1] * images.shape()[2] * images.shape()[3];
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < n; start += chunk) {
    const std::int64_t take = std::min(chunk, n - start);
    Tensor batch({take, images.shape()[1], images.shape()[2], images.shape()[3]});
    std::copy(images.data() + start * sample_len,
              images.data() + (start + take) * sample_len, batch.data());
    Tensor out = net_->forward(*ctx_, batch, false);
    std::vector<std::int64_t> batch_labels(labels.begin() + start,
                                           labels.begin() + start + take);
    nn::SoftmaxCrossEntropy loss;
    loss.forward(out, batch_labels);
    correct += loss.correct();
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

void PruneTrainer::train_epoch(EpochStats& stats, float lambda, float lr,
                               bool sparsify) {
  if (cluster_) {
    train_epoch_dist(stats, lambda, lr, sparsify);
    return;
  }
  telemetry::ScopedTimer span("sgd");
  optim::SGD opt(lr, cfg_.momentum, cfg_.weight_decay);
  nn::SoftmaxCrossEntropy loss;
  prune::StepInfo info;
  info.epoch = epoch_counter_;
  info.lr = lr;
  info.lambda = lambda;
  info.sparsify = sparsify;
  // The topology is fixed within an epoch (reconfiguration happens only at
  // epoch boundaries), so the named parameter view is built once here
  // rather than per iteration.
  const std::vector<nn::NamedParam> named = nn::group_params(net_->state());
  loader_.begin_epoch();
  double loss_sum = 0;
  std::int64_t correct = 0, samples = 0, iteration = 0;
  while (loader_.has_next()) {
    data::Batch batch = loader_.next(batch_size_);
    Tensor out = net_->forward(*ctx_, batch.images, true);
    const double l = loss.forward(out, batch.labels);
    loss_sum += l * static_cast<double>(batch.size());
    correct += loss.correct();
    samples += batch.size();
    net_->zero_grad();
    net_->backward(*ctx_, loss.backward());
    if (fault_.armed() &&
        fault_.corrupt_gradients(*net_, epoch_counter_, iteration)) {
      ++report_.faults_injected;
    }
    strategy_->accumulate_gradients(*net_, info);
    opt.step(named);
    strategy_->post_step_update(*net_, info);
    strategy_->post_step(*net_, info);
    // SDC lands after the update + hooks so nothing overwrites the flipped
    // bit (single device has no vote to convict it — the digest below
    // records it for offline comparison, and tests read it directly).
    if (fault_.armed() && fault_.corrupt_state(*net_, iteration)) {
      ++report_.faults_injected;
    }
    ++iteration;
    if (integrity_ && integrity_->due(iteration)) {
      const std::vector<prune::StrategyStateItem> sstate = strategy_->state();
      const robust::StateDigest digest =
          robust::compute_state_digest(*net_, *ctx_, &sstate);
      if (telemetry::enabled()) {
        telemetry::count("integrity/checks");
        telemetry::gauge("integrity/state_crc",
                         static_cast<double>(digest.state));
      }
    }
  }
  stats.train_loss = loss_sum / static_cast<double>(samples);
  stats.train_acc = static_cast<double>(correct) / static_cast<double>(samples);
  stats.lasso_loss = strategy_->regularization_loss(*net_);
}

void PruneTrainer::train_epoch_dist(EpochStats& stats, float lambda, float lr,
                                    bool sparsify) {
  telemetry::ScopedTimer span("sgd");
  optim::SGD opt(lr, cfg_.momentum, cfg_.weight_decay);
  prune::StepInfo info;
  info.epoch = epoch_counter_;
  info.lr = lr;
  info.lambda = lambda;
  info.sparsify = sparsify;
  // Per-replica hooks run after each replica's optimizer step, in replica
  // order on the stepping thread. Strategy *state* must advance exactly
  // once per optimizer step (replicas hold bit-identical weights after the
  // all-reduce), so post_step_update fires only for the first participant;
  // the weight-mutating post_step runs for every replica so they stay
  // bit-identical. The strategy reads each replica's Network fresh — a
  // rejoin may replace a replica's Network mid-epoch, and a cached view
  // would dangle.
  prune::Strategy* strat = strategy_.get();
  dist::ElasticCluster::PostUpdateHook hook =
      [strat, info](graph::Network& net, bool first) {
        if (first) strat->post_step_update(net, info);
        strat->post_step(net, info);
      };

  loader_.begin_epoch();
  double loss_sum = 0;
  std::int64_t correct = 0, samples = 0;
  try {
    while (loader_.has_next()) {
      data::Batch batch = loader_.next(batch_size_);
      const dist::ElasticStepResult r = cluster_->step(*ctx_, batch, opt, hook);
      loss_sum += r.loss * static_cast<double>(r.processed);
      correct += r.correct;
      samples += r.processed;
      stats.comm_bytes_per_gpu += r.comm_bytes_per_gpu;
      stats.comm_time_modeled += r.comm_time_modeled;
      // Digest vote immediately after the step, before the next batch: a
      // bit flipped this step is caught before the next allreduce can
      // average it into the healthy replicas.
      if (integrity_ && integrity_->due(cluster_->steps())) {
        run_integrity_check();
      }
    }
  } catch (const dist::ReplicaDivergence& e) {
    // Structured guardian pathway: with recovery enabled the rollback loop
    // rebuilds the cluster from the last good checkpoint; without it the
    // divergence propagates as-is. Either way the epoch's end-of-loop
    // accounting is skipped, so credit injected fires here.
    account_cluster_fault_fires();
    robust::HealthEvent ev = e.to_health_event(epoch_counter_);
    report_.events.push_back(ev);
    log_error("guardian: " + ev.describe());
    if (cfg_.max_rollbacks > 0) throw robust::FatalHealthError(std::move(ev));
    throw;
  }
  stats.train_loss = loss_sum / static_cast<double>(samples);
  stats.train_acc = static_cast<double>(correct) / static_cast<double>(samples);

  for (const dist::MembershipTransition& t : cluster_->drain_transitions()) {
    log_warn("cluster: " + t.describe());
  }
  account_cluster_fault_fires();

  // Everything downstream of the epoch (health checks, evaluation, cost
  // models, checkpoints) reads *net_; bring it up to date.
  sync_net_from_cluster();
  stats.lasso_loss = strategy_->regularization_loss(*net_);
}

void PruneTrainer::account_cluster_fault_fires() {
  const std::int64_t fires = cluster_->fault_injector().total_fires();
  report_.faults_injected += fires - cluster_fault_fires_seen_;
  cluster_fault_fires_seen_ = fires;
}

void PruneTrainer::run_integrity_check() {
  std::vector<robust::ReplicaView> views;
  for (int r : cluster_->membership().participants()) {
    views.push_back({r, &cluster_->replica(r)});
  }
  const std::vector<prune::StrategyStateItem> sstate = strategy_->state();
  // Codec residual/mask state steers what every future exchange averages,
  // so it is digested alongside the strategy state. It is one object
  // shared by the whole cluster — every view digests the same bytes — so
  // including it can never split an honest vote.
  const std::vector<prune::StrategyStateItem> cstate =
      codec_ && codec_->stateful() ? codec_->state()
                                   : std::vector<prune::StrategyStateItem>{};
  dist::ElasticCluster* cluster = cluster_.get();
  const robust::VoteOutcome out = integrity_->check_replicas(
      views, *ctx_, &sstate,
      [cluster](int victim, int root) {
        return cluster->heal_replica(victim, root);
      },
      cstate.empty() ? nullptr : &cstate);
  if (out.no_quorum) {
    // A split with no strict majority cannot say which side is corrupt;
    // healing would be a coin flip, so escalate to the guardian instead.
    // This throw aborts the epoch before its end-of-epoch accounting, so
    // credit the injected fires that caused the split first.
    account_cluster_fault_fires();
    robust::HealthEvent ev{robust::EventType::kSdcNoQuorum,
                           robust::Severity::kFatal, epoch_counter_,
                           static_cast<double>(views.size()), out.detail};
    report_.events.push_back(ev);
    log_error("guardian: " + ev.describe());
    throw robust::FatalHealthError(std::move(ev));
  }
  if (out.mismatch) {
    // Convicted minorities were healed in place by a fenced state copy —
    // a warning, not a rollback: no steps were lost.
    robust::HealthEvent ev{robust::EventType::kSdcDetected,
                           robust::Severity::kWarning, epoch_counter_,
                           static_cast<double>(out.healed.size()), out.detail};
    report_.events.push_back(ev);
    log_warn("guardian: " + ev.describe());
  }
}

void PruneTrainer::run_phase(TrainResult& result, const PhaseSpec& spec,
                             float& lambda) {
  // Resume bookkeeping: phases completed before the checkpoint are skipped
  // wholesale; the checkpointed phase re-enters at its first unfinished
  // epoch. The restored model/optimizer/RNG state makes the remaining
  // epochs bitwise-identical to an uninterrupted run.
  const std::int64_t phase = phase_index_;
  std::int64_t start = 0;
  if (resuming_) {
    if (phase < resume_phase_) {
      ++phase_index_;
      return;
    }
    if (phase == resume_phase_) start = resume_epoch_;
  }

  optim::MultiStepLR schedule(cfg_.lr_milestones, cfg_.lr_gamma);
  DynamicBatchAdjuster adjuster(cfg_.dynamic_batch);

  for (std::int64_t e = start; e < spec.epochs; ++e) {
    Timer wall;
    telemetry::ScopedTimer epoch_span("epoch");
    EpochStats stats;
    stats.epoch = epoch_counter_;
    telemetry::ReconfigRecord reconfig_rec;

    const float lr = cfg_.base_lr * lr_scale_ * recovery_lr_scale_ *
                     static_cast<float>(schedule.multiplier_at(e));

    prune::EpochInfo einfo;
    einfo.global_epoch = epoch_counter_;
    einfo.epoch_in_phase = e;
    einfo.phase_epochs = spec.epochs;
    einfo.sparsify = spec.sparsify;
    einfo.periodic_reconfig = spec.periodic_reconfig;
    einfo.one_shot_at = spec.one_shot_at;
    einfo.reconfig_interval = cfg_.reconfig_interval;
    einfo.threshold = cfg_.threshold;
    einfo.min_channels = cfg_.prune_min_channels;
    einfo.lr = lr;
    strategy_->on_epoch_begin(*net_, einfo);

    // Eq. 3: calibrate lambda at the first regularized iteration using the
    // initial classification loss and lasso sum. Only strategies that opt
    // in (group lasso) consume lambda; the probe batch draws from the
    // shared shuffle RNG, so skipping it for other strategies keeps their
    // data order undisturbed.
    if (spec.sparsify && lambda < 0.f && strategy_->wants_lambda_calibration()) {
      loader_.begin_epoch();
      data::Batch probe = loader_.next(std::min<std::int64_t>(batch_size_, 32));
      nn::SoftmaxCrossEntropy loss;
      Tensor out = net_->forward(*ctx_, probe.images, false);
      const double class_loss = loss.forward(out, probe.labels);
      lambda = strategy_->calibrate(class_loss,
                                    strategy_->regularization_loss(*net_));
      result.lambda = lambda;
      if (cfg_.verbose) {
        std::ostringstream os;
        os << to_string(cfg_.policy) << ": calibrated lambda=" << lambda;
        log_info(os.str());
      }
    }

    stats.lr = lr;
    stats.batch_size = batch_size_;
    train_epoch(stats, (spec.sparsify && lambda > 0.f) ? lambda : 0.f, lr,
                spec.sparsify);
    if (monitor_) monitor_->record(epoch_counter_);

    // Guardian: health-check the epoch *before* anything downstream (the
    // checkpoint save in particular — a poisoned model must never become
    // the "last good" state). A fatal event with recovery enabled unwinds
    // to run()'s rollback loop; without recovery it is logged and recorded
    // but the run is left to its fate, matching historical behavior.
    if (health_) {
      const std::vector<robust::HealthEvent> events =
          health_->check_epoch(epoch_counter_, stats.train_loss, *net_);
      for (const robust::HealthEvent& ev : events) {
        report_.events.push_back(ev);
        if (ev.severity == robust::Severity::kFatal) {
          log_error("guardian: " + ev.describe());
        } else {
          log_warn("guardian: " + ev.describe());
        }
      }
      const robust::HealthEvent* fatal = robust::HealthMonitor::first_fatal(events);
      if (fatal != nullptr && cfg_.max_rollbacks > 0) {
        throw robust::FatalHealthError(*fatal);
      }
    }

    // Prune + reconfigure at epoch boundaries, on the strategy's cadence
    // (the default implementation reproduces the paper's periodic /
    // one-shot schedule). After a rollback with skip_offending_reconfig,
    // reconfigurations in the replayed window up to the fault epoch are
    // suppressed.
    const bool suppressed = epoch_counter_ <= skip_reconfig_until_;
    const prune::ReconfigDecision decision =
        strategy_->propose_reconfigure(einfo);
    if (decision.reconfigure && !suppressed) {
      if (health_) {
        const std::vector<robust::HealthEvent> events =
            health_->check_prune(epoch_counter_, *net_, decision.threshold);
        for (const robust::HealthEvent& ev : events) {
          report_.events.push_back(ev);
          log_warn("guardian: " + ev.describe());
        }
      }
      prune::Reconfigurer reconfigurer(*net_, decision.threshold,
                                       cfg_.prune_min_channels);
      prune::ReconfigStats rstats;
      {
        telemetry::ScopedTimer reconfig_span("reconfigure");
        rstats = reconfigurer.reconfigure();
      }
      stats.reconfigured = rstats.changed;
      result.layers_removed += rstats.convs_removed;
      reconfig_rec.happened = true;
      reconfig_rec.channels_before = rstats.channels_before;
      reconfig_rec.channels_after = rstats.channels_after;
      reconfig_rec.convs_removed = rstats.convs_removed;
      reconfig_rec.blocks_removed = rstats.blocks_removed;
      if (telemetry::enabled()) {
        telemetry::count("prune/reconfigurations");
        telemetry::gauge("prune/channels_alive",
                         static_cast<double>(rstats.channels_after));
        std::ostringstream os;
        os << "epoch " << epoch_counter_ << ": channels "
           << rstats.channels_before << " -> " << rstats.channels_after
           << ", convs removed " << rstats.convs_removed
           << ", blocks removed " << rstats.blocks_removed;
        telemetry::event("prune/reconfigure", os.str());
      }
      reconfigure_cluster_replicas(decision.threshold);
      if (rstats.changed) {
        // Surgery may have dropped channels the strategy tracks by index;
        // give it a chance to rebuild (masks, thresholds, saliency).
        strategy_->on_reconfigured(*net_);
        // The arena's buffers are sized for the pre-surgery shapes; drop
        // them so capacity — and the high-water statistic — re-measures the
        // pruned hot loop. No leases are live at an epoch boundary.
        ctx_->rebuild_workspace();
        const auto adj = adjuster.propose(*net_, input_shape_, batch_size_);
        if (adj.changed) {
          if (cfg_.verbose) {
            std::ostringstream os;
            os << "epoch " << epoch_counter_ << ": batch " << batch_size_
               << " -> " << adj.new_batch << " (lr x" << adj.lr_scale << ")";
            log_info(os.str());
          }
          batch_size_ = adj.new_batch;
          lr_scale_ *= adj.lr_scale;
        }
      }
    }

    // Cost accounting for this epoch's *actual* model and batch size.
    cost::FlopsModel flops(*net_, input_shape_);
    cost::MemoryModel mem(*net_, input_shape_, ctx_.get());
    cost::CommModel comm(cfg_.comm);
    cost::DeviceModel device(cfg_.device);
    const std::int64_t samples = dataset_->train_size();
    const std::int64_t iters = loader_.iterations_per_epoch(batch_size_);
    const double model_bytes = static_cast<double>(net_->num_params()) * 4.0;

    stats.flops_per_sample_train = flops.training_flops();
    stats.flops_per_sample_inf = flops.inference_flops();
    stats.epoch_train_flops =
        flops.training_flops() * static_cast<double>(samples);
    stats.epoch_bn_traffic =
        mem.bn_traffic_per_sample() * static_cast<double>(samples);
    stats.memory_bytes = mem.training_bytes(batch_size_);
    if (!cluster_) {
      // The elastic path accumulated per-step comm cost at the live ring
      // size already; the static model would overwrite it with full-ring
      // numbers.
      cost::CommQuery q;
      q.model_bytes = model_bytes;
      q.updates = iters;
      const cost::CommCost cc = comm.cost(q);
      stats.comm_bytes_per_gpu = cc.wire_bytes;
      stats.comm_time_modeled = cc.hierarchical_time;
    }
    stats.gpu_time_modeled =
        device.training_time(*net_, input_shape_, batch_size_) *
        static_cast<double>(iters);
    std::int64_t channels = 0;
    for (int id : net_->nodes_of_type<nn::Conv2d>()) {
      channels += net_->layer_as<nn::Conv2d>(id).out_channels();
    }
    stats.channels_alive = channels;
    stats.conv_layers = models::count_conv_layers(*net_);
    if (cfg_.eval_interval <= 1 || e == spec.epochs - 1 ||
        epoch_counter_ % cfg_.eval_interval == 0) {
      last_test_acc_ = evaluate();
    }
    stats.test_acc = last_test_acc_;
    stats.wall_seconds = wall.seconds();

    result.total_train_flops += stats.epoch_train_flops;
    result.total_bn_traffic += stats.epoch_bn_traffic;
    result.total_comm_bytes += stats.comm_bytes_per_gpu;
    result.total_gpu_time_modeled += stats.gpu_time_modeled;
    result.total_wall_seconds += stats.wall_seconds;

    if (cfg_.verbose) {
      std::ostringstream os;
      os << to_string(cfg_.policy) << " epoch " << epoch_counter_ << ": loss "
         << stats.train_loss << " acc " << stats.train_acc << " test "
         << stats.test_acc << " ch " << stats.channels_alive;
      log_info(os.str());
    }
    result.epochs.push_back(stats);
    if (recorder_) emit_epoch_record(stats, reconfig_rec);
    ++epoch_counter_;

    if (!cfg_.checkpoint_dir.empty() &&
        epoch_counter_ % cfg_.checkpoint_interval == 0) {
      save_checkpoint(result, phase, e + 1, lambda);
    }
  }
  ++phase_index_;
}

void PruneTrainer::emit_epoch_record(const EpochStats& stats,
                                     const telemetry::ReconfigRecord& reconfig) {
  telemetry::EpochRecord rec;
  rec.strategy = cfg_.strategy;
  rec.epoch = stats.epoch;
  rec.batch_size = stats.batch_size;
  rec.lr = stats.lr;
  rec.train_loss = stats.train_loss;
  rec.train_acc = stats.train_acc;
  rec.test_acc = stats.test_acc;
  rec.lasso_loss = stats.lasso_loss;
  rec.flops_per_sample_train = stats.flops_per_sample_train;
  rec.flops_per_sample_inf = stats.flops_per_sample_inf;
  rec.epoch_train_flops = stats.epoch_train_flops;
  rec.epoch_bn_traffic = stats.epoch_bn_traffic;
  rec.memory_bytes = stats.memory_bytes;
  rec.comm_bytes_per_gpu = stats.comm_bytes_per_gpu;
  rec.comm_time_modeled = stats.comm_time_modeled;
  rec.gpu_time_modeled = stats.gpu_time_modeled;
  rec.wall_seconds = stats.wall_seconds;
  rec.channels_alive = stats.channels_alive;
  rec.conv_layers = stats.conv_layers;
  rec.reconfig = reconfig;

  // Per-layer analytical FLOPs are computed on the *current* model, so an
  // epoch that reconfigured reports the post-surgery (smaller) costs; the
  // measured wall-times come from this epoch's execution profile, merged
  // by (stable) node id.
  rec.layers = telemetry::collect_layer_records(*net_, input_shape_);
  for (const prune::LayerDensity& d :
       prune::layer_densities(*net_, cfg_.threshold)) {
    rec.sparsity.push_back({d.name, d.channel_density, d.weight_density});
  }

  // Execution-context statistics: pool throughput and workspace sizing.
  // A flat exec/workspace_allocations gauge across steady-state epochs is
  // the "zero hot-path heap allocations" evidence.
  const exec::WorkspaceStats ws = ctx_->workspace().stats();
  telemetry::gauge("exec/threads", static_cast<double>(ctx_->num_threads()));
  telemetry::gauge("exec/tasks_run",
                   static_cast<double>(ctx_->pool().tasks_run()));
  telemetry::gauge("exec/workspace_reserved_bytes",
                   static_cast<double>(ws.bytes_reserved));
  telemetry::gauge("exec/workspace_high_water_bytes",
                   static_cast<double>(ws.high_water_bytes));
  telemetry::gauge("exec/workspace_allocations",
                   static_cast<double>(ws.heap_allocations));
  telemetry::gauge("exec/workspace_leases", static_cast<double>(ws.leases));

  // Integrity observables: digest checks run, mismatches convicted, heals
  // performed, and the modeled exchange/heal traffic.
  if (integrity_) {
    telemetry::gauge("integrity/checks",
                     static_cast<double>(integrity_->checks()));
    telemetry::gauge("integrity/mismatches",
                     static_cast<double>(integrity_->mismatches()));
    telemetry::gauge("integrity/heals",
                     static_cast<double>(integrity_->heals()));
    telemetry::gauge("integrity/heal_bytes",
                     static_cast<double>(integrity_->heal_bytes_total()));
    telemetry::gauge("integrity/digest_bytes",
                     static_cast<double>(integrity_->digest_bytes_total()));
  }
  if (scrubber_) {
    telemetry::gauge("integrity/ckpt_generations",
                     static_cast<double>(scrubber_->generations().size()));
    telemetry::gauge("integrity/ckpt_evicted",
                     static_cast<double>(scrubber_->evicted()));
  }

  // Strategy-specific observables (threshold means, mask fractions, ...)
  // land in the same gauge namespace as everything else.
  for (const auto& [key, value] : strategy_->metrics()) {
    telemetry::gauge("strategy/" + key, value);
  }

  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  rec.counters = reg.counters();
  rec.gauges = reg.gauges();
  rec.spans = reg.spans();
  recorder_->append(rec);
  // Per-layer times are per-epoch quantities; the registry's counters and
  // spans stay cumulative across the run.
  net_->reset_profile();
}

void PruneTrainer::save_checkpoint(const TrainResult& result, std::int64_t phase,
                                   std::int64_t phase_epochs_done,
                                   float lambda) {
  telemetry::ScopedTimer span("checkpoint");
  namespace fs = std::filesystem;
  fs::create_directories(cfg_.checkpoint_dir);

  ckpt::Checkpoint ck = ckpt::Checkpoint::capture(*net_);

  ckpt::ByteWriter w;
  w.put<std::int64_t>(phase);
  w.put<std::int64_t>(phase_epochs_done);
  w.put<std::int64_t>(epoch_counter_);
  w.put<std::int64_t>(batch_size_);
  w.put<float>(lambda);
  w.put<float>(lr_scale_);
  w.put<double>(last_test_acc_);
  const RngState rng = loader_.rng_state();
  w.put<std::uint64_t>(rng.s0);
  w.put<std::uint64_t>(rng.s1);
  w.put<double>(rng.cached_normal);
  w.put<std::uint8_t>(rng.has_cached_normal ? 1 : 0);
  put_result(w, result);
  ck.set_section("trainer", w.take());

  // Strategy state rides as its own opaque section so rollback/resume
  // replays the sparsifier bitwise (masks, trainable thresholds, saliency
  // EWMAs). The strategy name is stored for a mismatch check on load.
  {
    ckpt::ByteWriter sw;
    sw.put_string(cfg_.strategy);
    const std::vector<prune::StrategyStateItem> items = strategy_->state();
    sw.put<std::uint64_t>(items.size());
    for (const prune::StrategyStateItem& item : items) {
      sw.put_string(item.name);
      sw.put_vector(item.f32);
      sw.put_vector(item.i64);
    }
    ck.set_section("strategy", sw.take());
  }

  // Codec state rides the same way: error-feedback residuals and live-row
  // masks must survive resume/rollback bitwise, or the replayed exchanges
  // diverge from the uninterrupted run. The codec name is stored for a
  // mismatch check on load. Written whenever a codec exists (even when
  // currently stateless) so the load side can verify the name.
  if (codec_) {
    ckpt::ByteWriter cw;
    cw.put_string(cfg_.codec);
    const std::vector<dist::CodecStateItem> items =
        codec_->stateful() ? codec_->state()
                           : std::vector<dist::CodecStateItem>{};
    cw.put<std::uint64_t>(items.size());
    for (const dist::CodecStateItem& item : items) {
      cw.put_string(item.name);
      cw.put_vector(item.f32);
      cw.put_vector(item.i64);
    }
    ck.set_section("codec", cw.take());
  }

  if (monitor_) {
    ckpt::ByteWriter m;
    const auto& history = monitor_->history();
    m.put<std::uint64_t>(history.size());
    for (const auto& h : history) {
      m.put<std::int32_t>(h.node);
      m.put_string(h.name);
      m.put_vector(h.epochs);
      m.put<std::uint64_t>(h.max_abs.size());
      for (const auto& row : h.max_abs) m.put_vector(row);
    }
    ck.set_section("sparsity_monitor", m.take());
  }

  const fs::path dir(cfg_.checkpoint_dir);
  const std::string numbered =
      (dir / ("ckpt-epoch-" + std::to_string(epoch_counter_) + ".bin")).string();
  const std::string latest = (dir / "ckpt-latest.bin").string();
  ck.save(numbered);
  ck.save(latest);
  // Checkpoint-corruption faults strike the freshly written files — the
  // torn-write / bit-rot failure mode find_last_good_checkpoint must
  // survive by falling back to an older intact checkpoint.
  if (fault_.armed() &&
      fault_.corrupt_checkpoint_files({numbered, latest}, epoch_counter_)) {
    ++report_.faults_injected;
  }
  // Generation-chain bookkeeping: register the numbered save (evicting
  // beyond keep_checkpoints) and re-validate every retained generation's
  // CRC, so a later rollback knows which generations are trustworthy
  // without trial-loading each one. Scrubbing runs *after* fault
  // injection — a torn write is caught on the very pass that follows it.
  if (scrubber_) {
    scrubber_->note_saved(numbered, epoch_counter_);
    scrubber_->scrub(*ctx_);
  }
  // Rejoining replicas resync their topology from the freshest save.
  if (cluster_) cluster_->set_resync_checkpoint(latest);
}

void PruneTrainer::load_checkpoint_file(const std::string& path) {
  ckpt::Checkpoint ck = ckpt::Checkpoint::load(path);
  *net_ = ck.restore_network();
  // The restored network starts with profiling off; keep instrumenting
  // when this run records telemetry (resume and rollback paths).
  if (recorder_) net_->set_profiling(true);
  // The restored model's shapes may differ from what the arena was sized
  // for (the checkpoint is post-reconfiguration); re-measure from scratch.
  ctx_->rebuild_workspace();

  const std::vector<std::uint8_t>* section = ck.section("trainer");
  if (section == nullptr) {
    throw std::runtime_error("checkpoint " + path +
                             " has no trainer section (not written by "
                             "PruneTrainer?)");
  }
  ckpt::ByteReader r(*section);
  resume_phase_ = r.get<std::int64_t>();
  resume_epoch_ = r.get<std::int64_t>();
  epoch_counter_ = r.get<std::int64_t>();
  batch_size_ = r.get<std::int64_t>();
  resume_lambda_ = r.get<float>();
  lr_scale_ = r.get<float>();
  last_test_acc_ = r.get<double>();
  RngState rng;
  rng.s0 = r.get<std::uint64_t>();
  rng.s1 = r.get<std::uint64_t>();
  rng.cached_normal = r.get<double>();
  rng.has_cached_normal = r.get<std::uint8_t>() != 0;
  loader_.set_rng_state(rng);
  resume_result_ = get_result(r);
  resuming_ = true;

  // Strategy state: absent in pre-strategy checkpoints (the sparsifier then
  // starts fresh, which is exactly what those checkpoints' runs did).
  if (const std::vector<std::uint8_t>* strat = ck.section("strategy")) {
    ckpt::ByteReader sr(*strat);
    const std::string saved_name = sr.get_string();
    if (saved_name != cfg_.strategy) {
      throw std::runtime_error("checkpoint " + path +
                               " was written by strategy '" + saved_name +
                               "' but this run uses '" + cfg_.strategy + "'");
    }
    const auto n_items = sr.get<std::uint64_t>();
    std::vector<prune::StrategyStateItem> items;
    for (std::uint64_t i = 0; i < n_items; ++i) {
      prune::StrategyStateItem item;
      item.name = sr.get_string();
      item.f32 = sr.get_vector<float>();
      item.i64 = sr.get_vector<std::int64_t>();
      items.push_back(std::move(item));
    }
    strategy_->load_state(items);
  }

  // Codec state: absent in pre-codec checkpoints (and in single-device
  // runs, which have no exchange to compress). A name mismatch fails
  // loudly — silently dropping another codec's residuals would make the
  // resumed run diverge from the uninterrupted one without a trace.
  if (const std::vector<std::uint8_t>* csec = ck.section("codec")) {
    ckpt::ByteReader cr(*csec);
    const std::string saved_codec = cr.get_string();
    if (codec_ && saved_codec != codec_->name()) {
      throw std::runtime_error("checkpoint " + path +
                               " was written by codec '" + saved_codec +
                               "' but this run uses '" + codec_->name() + "'");
    }
    const auto n_items = cr.get<std::uint64_t>();
    std::vector<dist::CodecStateItem> items;
    for (std::uint64_t i = 0; i < n_items; ++i) {
      dist::CodecStateItem item;
      item.name = cr.get_string();
      item.f32 = cr.get_vector<float>();
      item.i64 = cr.get_vector<std::int64_t>();
      items.push_back(std::move(item));
    }
    if (codec_ && !items.empty()) codec_->load_state(items);
  }

  if (cfg_.record_sparsity) {
    monitor_ = std::make_unique<prune::SparsityMonitor>(*net_);
    if (const std::vector<std::uint8_t>* mon = ck.section("sparsity_monitor")) {
      ckpt::ByteReader mr(*mon);
      std::vector<prune::SparsityMonitor::ConvHistory> history(
          static_cast<std::size_t>(mr.get<std::uint64_t>()));
      for (auto& h : history) {
        h.node = mr.get<std::int32_t>();
        h.name = mr.get_string();
        h.epochs = mr.get_vector<std::int64_t>();
        h.max_abs.resize(static_cast<std::size_t>(mr.get<std::uint64_t>()));
        for (auto& row : h.max_abs) row = mr.get_vector<float>();
      }
      monitor_->set_history(std::move(history));
    }
  }
}

TrainResult PruneTrainer::run() {
  telemetry::ScopedTimer run_span("train");
  try {
    if (cfg_.max_rollbacks <= 0) return run_attempt();

    robust::RecoveryConfig rc;
    rc.max_rollbacks = cfg_.max_rollbacks;
    rc.lr_cut = cfg_.rollback_lr_cut;
    rc.backoff_base = cfg_.rollback_backoff;
    rc.backoff_cap = cfg_.rollback_backoff_cap;
    rc.skip_offending_reconfig = cfg_.rollback_skip_reconfig;
    robust::RecoveryPolicy policy(rc);

    for (;;) {
      try {
        return run_attempt();
      } catch (const robust::FatalHealthError& err) {
        const robust::RecoveryPolicy::Decision decision =
            policy.on_fatal(err.event());
        if (decision.action ==
            robust::RecoveryPolicy::Decision::Action::kAbort) {
          report_.aborted = true;
          save_diagnostic_checkpoint();
          log_error("guardian: rollback budget (" +
                    std::to_string(cfg_.max_rollbacks) +
                    ") exhausted; aborting with diagnostic checkpoint");
          throw robust::TrainingAborted(
              "training aborted after " + std::to_string(policy.rollbacks()) +
                  " rollbacks: " + err.event().describe(),
              report_);
        }
        rollback(decision, err.event());
      }
    }
  } catch (const dist::ClusterDegraded& err) {
    // Quorum loss is not a rollback-recoverable fault: restoring a
    // checkpoint cannot revive dead workers. Checkpoint-and-abort so the
    // operator gets the model plus a serialized guardian report instead of
    // a crash or a silent small-batch run.
    robust::HealthEvent ev = err.event();
    if (ev.epoch < 0) ev.epoch = epoch_counter_;
    report_.events.push_back(ev);
    report_.aborted = true;
    save_diagnostic_checkpoint();
    log_error("guardian: " + ev.describe() +
              "; aborting with diagnostic checkpoint");
    throw robust::TrainingAborted("training aborted: " + ev.describe(),
                                  report_);
  }
}

void PruneTrainer::rollback(robust::RecoveryPolicy::Decision decision,
                            const robust::HealthEvent& cause) {
  // The scrubber's verdicts let the selection skip checkpoints already
  // known corrupt without paying a trial load; either way the decision
  // records the generation actually restored and how many newer corrupt
  // generations were cascaded past.
  const robust::RollbackTarget target =
      robust::find_rollback_target(cfg_.checkpoint_dir, scrubber_.get());
  const std::string& path = target.path;
  if (path.empty()) {
    report_.aborted = true;
    save_diagnostic_checkpoint();
    throw robust::TrainingAborted("rollback: no loadable checkpoint in '" +
                                      cfg_.checkpoint_dir +
                                      "' (cause: " + cause.describe() + ")",
                                  report_);
  }
  decision.checkpoint = path;
  decision.generation = target.generation;
  decision.cascaded_past = target.skipped_corrupt;
  if (target.skipped_corrupt > 0) {
    std::ostringstream cs;
    cs << "rollback cascaded past " << target.skipped_corrupt
       << " corrupt checkpoint(s) to generation " << target.generation << " ("
       << path << ")";
    robust::HealthEvent ev{robust::EventType::kCheckpointCascade,
                           robust::Severity::kWarning, epoch_counter_,
                           static_cast<double>(target.skipped_corrupt),
                           cs.str()};
    report_.events.push_back(ev);
    log_warn("guardian: " + ev.describe());
    if (telemetry::enabled()) {
      telemetry::event("health/checkpoint-cascade", ev.describe());
    }
  }
  // load_checkpoint_file restores the model, optimizer momentum, BN stats,
  // shuffle-RNG state, counters, and partial statistics, and sets the
  // resume_* bookkeeping — the retry re-enters the schedule exactly as a
  // crash-resume would, just in-process.
  load_checkpoint_file(path);
  // The retry runs on a fresh cluster built from the restored model; the
  // injector's fire-state survives so consumed faults stay consumed.
  if (cluster_) rebuild_cluster();
  recovery_lr_scale_ = decision.lr_scale;
  skip_reconfig_until_ = decision.skip_reconfig ? cause.epoch : -1;
  ++report_.rollbacks;
  report_.backoff_seconds += decision.backoff_seconds;
  report_.last_checkpoint = path;
  if (health_) health_->reset_window();
  std::ostringstream os;
  os << "guardian: rollback #" << decision.attempt << " -> " << path << " (lr x"
     << decision.lr_scale << ", modeled backoff " << decision.backoff_seconds
     << "s) after " << cause.describe();
  log_warn(os.str());
}

void PruneTrainer::save_diagnostic_checkpoint() {
  if (cfg_.checkpoint_dir.empty()) return;
  try {
    namespace fs = std::filesystem;
    fs::create_directories(cfg_.checkpoint_dir);
    ckpt::Checkpoint ck = ckpt::Checkpoint::capture(*net_);
    ck.set_section("guardian", robust::serialize_report(report_));
    const std::string path =
        (fs::path(cfg_.checkpoint_dir) / "ckpt-diagnostic.bin").string();
    ck.save(path);
    log_info("guardian: diagnostic checkpoint written to " + path);
  } catch (const std::exception& e) {
    // The abort path must stay reachable even on a dead disk.
    log_error(std::string("guardian: diagnostic checkpoint failed: ") +
              e.what());
  }
}

void PruneTrainer::ensure_initial_checkpoint(const TrainResult& result,
                                             float lambda) {
  if (cfg_.max_rollbacks <= 0 || initial_ckpt_saved_) return;
  save_checkpoint(result, resuming_ ? resume_phase_ : 0,
                  resuming_ ? resume_epoch_ : 0, lambda);
  initial_ckpt_saved_ = true;
}

TrainResult PruneTrainer::run_attempt() {
  TrainResult result;
  float lambda = -1.f;  // calibrated lazily at the first regularized epoch
  phase_index_ = 0;     // each attempt traverses the schedule from the top

  // The number of run_phase calls preceding the fine-tune phase; used to
  // tell whether a checkpoint was taken after the main phases (and thus
  // after the post-phase reconfiguration passes, which must not re-run on
  // a model that has trained past them).
  const std::int64_t main_phases = cfg_.policy == PrunePolicy::kSSL ? 2 : 1;

  if (resuming_) {
    // Continue from the partial statistics and calibrated lambda the
    // checkpoint carried; the epochs that re-run append to resume_result_.
    result = resume_result_;
    lambda = resume_lambda_;
  }

  switch (cfg_.policy) {
    case PrunePolicy::kDense:
      ensure_initial_checkpoint(result, lambda);
      run_phase(result, {cfg_.epochs, false, false, -1}, lambda);
      break;
    case PrunePolicy::kPruneTrain:
      ensure_initial_checkpoint(result, lambda);
      run_phase(result, {cfg_.epochs, true, true, -1}, lambda);
      break;
    case PrunePolicy::kSSL: {
      // Calibrate lambda from the *random-init* losses (Eq. 3), exactly as
      // PruneTrain does — the paper applies its calibration mechanism to
      // SSL too. Calibrating after dense pre-training would be degenerate:
      // the converged classification loss would make lambda ~0. A resumed
      // run restores the calibrated value instead (the probe's RNG draws
      // are already baked into the restored shuffle state).
      if (!resuming_) {
        loader_.begin_epoch();
        data::Batch probe = loader_.next(std::min<std::int64_t>(batch_size_, 32));
        nn::SoftmaxCrossEntropy loss;
        Tensor out = net_->forward(*ctx_, probe.images, false);
        const double class_loss = loss.forward(out, probe.labels);
        lambda = strategy_->calibrate(class_loss,
                                      strategy_->regularization_loss(*net_));
        result.lambda = lambda;
        net_->clear_context();
      }
      // The rollback anchor is saved *after* the calibration so the probe's
      // RNG draws and lambda are baked in — re-calibrating from a partially
      // trained model would be degenerate (converged loss => lambda ~ 0).
      ensure_initial_checkpoint(result, lambda);
      // Phase 1: dense pre-training (counts toward training cost).
      run_phase(result, {cfg_.epochs, false, false, -1}, lambda);
      // Phase 2: sparsify on the dense architecture; prune only at the end.
      // Skip the end-of-phase prune when resuming past it (a later-phase
      // checkpoint already reflects it).
      run_phase(result, {cfg_.epochs, true, false, -1}, lambda);
      if (!(resuming_ && resume_phase_ > 1)) {
        prune::Reconfigurer reconfigurer(*net_, cfg_.threshold,
                                         cfg_.prune_min_channels);
        const auto rstats = reconfigurer.reconfigure();
        result.layers_removed += rstats.convs_removed;
        reconfigure_cluster_replicas(cfg_.threshold);
        if (rstats.changed) strategy_->on_reconfigured(*net_);
      }
      break;
    }
    case PrunePolicy::kOneShot:
      ensure_initial_checkpoint(result, lambda);
      run_phase(result, {cfg_.epochs, true, false, cfg_.one_shot_epoch}, lambda);
      break;
  }

  // Final pruning pass so the reported inference model is fully compacted
  // (a no-op if the last reconfiguration already caught everything). A
  // checkpoint taken during fine-tuning postdates this pass, so resuming
  // from one must not repeat it on the fine-tuned weights.
  const bool resumed_past_main = resuming_ && resume_phase_ >= main_phases;
  if (cfg_.policy != PrunePolicy::kDense && cfg_.final_reconfigure &&
      !resumed_past_main) {
    prune::Reconfigurer reconfigurer(*net_, cfg_.threshold,
                                     cfg_.prune_min_channels);
    const auto rstats = reconfigurer.reconfigure();
    result.layers_removed += rstats.convs_removed;
    reconfigure_cluster_replicas(cfg_.threshold);
    if (rstats.changed) strategy_->on_reconfigured(*net_);
  }

  // Optional fine-tuning on the pruned architecture: extra epochs without
  // regularization, at the final decayed learning rate (Sec. 5.1). When
  // resuming into this phase, the restored lr_scale_ already carries the
  // decay multiplier — applying it again would square the decay.
  if (cfg_.fine_tune_epochs > 0 && cfg_.policy != PrunePolicy::kDense) {
    optim::MultiStepLR schedule(cfg_.lr_milestones, cfg_.lr_gamma);
    const float saved_scale = lr_scale_;
    if (!resumed_past_main) {
      lr_scale_ *= static_cast<float>(schedule.multiplier_at(cfg_.epochs));
    }
    float no_lambda = 0.f;
    run_phase(result, {cfg_.fine_tune_epochs, false, false, -1}, no_lambda);
    lr_scale_ = saved_scale;
  }

  cost::FlopsModel flops(*net_, input_shape_);
  result.final_inference_flops = flops.inference_flops();
  result.final_test_acc = evaluate();
  std::int64_t channels = 0;
  for (int id : net_->nodes_of_type<nn::Conv2d>()) {
    channels += net_->layer_as<nn::Conv2d>(id).out_channels();
  }
  result.final_channels = channels;
  return result;
}

}  // namespace pt::core
