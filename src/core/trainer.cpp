#include "core/trainer.h"

#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "cost/flops.h"
#include "cost/memory.h"
#include "models/builders.h"
#include "nn/conv2d.h"
#include "nn/loss.h"
#include "optim/lr_schedule.h"
#include "optim/sgd.h"
#include "prune/group_lasso.h"
#include "prune/reconfigure.h"
#include "util/logging.h"

namespace pt::core {

std::string to_string(PrunePolicy policy) {
  switch (policy) {
    case PrunePolicy::kDense: return "Dense";
    case PrunePolicy::kPruneTrain: return "PruneTrain";
    case PrunePolicy::kSSL: return "SSL";
    case PrunePolicy::kOneShot: return "OneShot";
  }
  return "?";
}

PruneTrainer::PruneTrainer(graph::Network& net,
                           const data::SyntheticImageDataset& dataset,
                           TrainConfig cfg)
    : net_(&net),
      dataset_(&dataset),
      cfg_(std::move(cfg)),
      loader_(dataset, cfg_.shuffle_seed),
      input_shape_({dataset.spec().channels, dataset.spec().height,
                    dataset.spec().width}),
      batch_size_(cfg_.batch_size) {
  if (cfg_.record_sparsity) {
    monitor_ = std::make_unique<prune::SparsityMonitor>(net);
  }
}

double PruneTrainer::evaluate() {
  const Tensor& images = dataset_->test_images();
  const auto& labels = dataset_->test_labels();
  const std::int64_t n = images.shape()[0];
  const std::int64_t chunk = 64;
  const std::int64_t sample_len =
      images.shape()[1] * images.shape()[2] * images.shape()[3];
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < n; start += chunk) {
    const std::int64_t take = std::min(chunk, n - start);
    Tensor batch({take, images.shape()[1], images.shape()[2], images.shape()[3]});
    std::copy(images.data() + start * sample_len,
              images.data() + (start + take) * sample_len, batch.data());
    Tensor out = net_->forward(batch, false);
    std::vector<std::int64_t> batch_labels(labels.begin() + start,
                                           labels.begin() + start + take);
    nn::SoftmaxCrossEntropy loss;
    loss.forward(out, batch_labels);
    correct += loss.correct();
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

void PruneTrainer::train_epoch(EpochStats& stats, float lambda, float lr) {
  prune::GroupLassoRegularizer reg(*net_);
  reg.set_size_normalized(cfg_.size_normalized_penalty);
  optim::SGD opt(lr, cfg_.momentum, cfg_.weight_decay);
  nn::SoftmaxCrossEntropy loss;
  loader_.begin_epoch();
  double loss_sum = 0;
  std::int64_t correct = 0, samples = 0;
  while (loader_.has_next()) {
    data::Batch batch = loader_.next(batch_size_);
    Tensor out = net_->forward(batch.images, true);
    const double l = loss.forward(out, batch.labels);
    loss_sum += l * static_cast<double>(batch.size());
    correct += loss.correct();
    samples += batch.size();
    net_->zero_grad();
    net_->backward(loss.backward());
    if (lambda > 0.f && !cfg_.proximal_update) reg.add_gradients(lambda);
    opt.step(net_->params());
    if (lambda > 0.f && cfg_.proximal_update) reg.apply_proximal(lr * lambda);
  }
  stats.train_loss = loss_sum / static_cast<double>(samples);
  stats.train_acc = static_cast<double>(correct) / static_cast<double>(samples);
  stats.lasso_loss = reg.loss();
}

void PruneTrainer::run_phase(TrainResult& result, std::int64_t epochs,
                             bool regularize, bool reconfig,
                             std::int64_t one_shot_at, float& lambda) {
  optim::MultiStepLR schedule(cfg_.lr_milestones, cfg_.lr_gamma);
  DynamicBatchAdjuster adjuster(cfg_.dynamic_batch);

  for (std::int64_t e = 0; e < epochs; ++e) {
    Timer wall;
    EpochStats stats;
    stats.epoch = epoch_counter_;

    // Eq. 3: calibrate lambda at the first regularized iteration using the
    // initial classification loss and lasso sum.
    if (regularize && lambda < 0.f) {
      loader_.begin_epoch();
      data::Batch probe = loader_.next(std::min<std::int64_t>(batch_size_, 32));
      nn::SoftmaxCrossEntropy loss;
      Tensor out = net_->forward(probe.images, false);
      const double class_loss = loss.forward(out, probe.labels);
      prune::GroupLassoRegularizer reg(*net_);
      reg.set_size_normalized(cfg_.size_normalized_penalty);
      lambda = prune::calibrate_lambda(cfg_.lasso_ratio, class_loss, reg.loss()) *
               cfg_.lasso_boost;
      result.lambda = lambda;
      if (cfg_.verbose) {
        std::ostringstream os;
        os << to_string(cfg_.policy) << ": calibrated lambda=" << lambda
           << " (ratio " << cfg_.lasso_ratio << ")";
        log_info(os.str());
      }
    }

    const float lr = cfg_.base_lr * lr_scale_ *
                     static_cast<float>(schedule.multiplier_at(e));
    stats.lr = lr;
    stats.batch_size = batch_size_;
    train_epoch(stats, regularize ? lambda : 0.f, lr);
    if (monitor_) monitor_->record(epoch_counter_);

    // Periodic (or one-shot) prune + reconfigure at epoch boundaries.
    const bool periodic_hit =
        reconfig && cfg_.reconfig_interval > 0 &&
        (e + 1) % cfg_.reconfig_interval == 0;
    const bool one_shot_hit = one_shot_at >= 0 && (e + 1) == one_shot_at;
    if (periodic_hit || one_shot_hit) {
      prune::Reconfigurer reconfigurer(*net_, cfg_.threshold);
      const auto rstats = reconfigurer.reconfigure();
      stats.reconfigured = rstats.changed;
      result.layers_removed += rstats.convs_removed;
      if (rstats.changed) {
        const auto adj = adjuster.propose(*net_, input_shape_, batch_size_);
        if (adj.changed) {
          if (cfg_.verbose) {
            std::ostringstream os;
            os << "epoch " << epoch_counter_ << ": batch " << batch_size_
               << " -> " << adj.new_batch << " (lr x" << adj.lr_scale << ")";
            log_info(os.str());
          }
          batch_size_ = adj.new_batch;
          lr_scale_ *= adj.lr_scale;
        }
      }
    }

    // Cost accounting for this epoch's *actual* model and batch size.
    cost::FlopsModel flops(*net_, input_shape_);
    cost::MemoryModel mem(*net_, input_shape_);
    cost::CommModel comm(cfg_.comm);
    cost::DeviceModel device(cfg_.device);
    const std::int64_t samples = dataset_->train_size();
    const std::int64_t iters = loader_.iterations_per_epoch(batch_size_);
    const double model_bytes = static_cast<double>(net_->num_params()) * 4.0;

    stats.flops_per_sample_train = flops.training_flops();
    stats.flops_per_sample_inf = flops.inference_flops();
    stats.epoch_train_flops =
        flops.training_flops() * static_cast<double>(samples);
    stats.epoch_bn_traffic =
        mem.bn_traffic_per_sample() * static_cast<double>(samples);
    stats.memory_bytes = mem.training_bytes(batch_size_);
    stats.comm_bytes_per_gpu = comm.bytes_per_epoch(model_bytes, iters);
    stats.comm_time_modeled = comm.time_per_epoch(model_bytes, iters);
    stats.gpu_time_modeled =
        device.training_time(*net_, input_shape_, batch_size_) *
        static_cast<double>(iters);
    std::int64_t channels = 0;
    for (int id : net_->nodes_of_type<nn::Conv2d>()) {
      channels += net_->layer_as<nn::Conv2d>(id).out_channels();
    }
    stats.channels_alive = channels;
    stats.conv_layers = models::count_conv_layers(*net_);
    if (cfg_.eval_interval <= 1 || e == epochs - 1 ||
        epoch_counter_ % cfg_.eval_interval == 0) {
      last_test_acc_ = evaluate();
    }
    stats.test_acc = last_test_acc_;
    stats.wall_seconds = wall.seconds();

    result.total_train_flops += stats.epoch_train_flops;
    result.total_bn_traffic += stats.epoch_bn_traffic;
    result.total_comm_bytes += stats.comm_bytes_per_gpu;
    result.total_gpu_time_modeled += stats.gpu_time_modeled;
    result.total_wall_seconds += stats.wall_seconds;

    if (cfg_.verbose) {
      std::ostringstream os;
      os << to_string(cfg_.policy) << " epoch " << epoch_counter_ << ": loss "
         << stats.train_loss << " acc " << stats.train_acc << " test "
         << stats.test_acc << " ch " << stats.channels_alive;
      log_info(os.str());
    }
    result.epochs.push_back(stats);
    ++epoch_counter_;
  }
}

TrainResult PruneTrainer::run() {
  TrainResult result;
  float lambda = -1.f;  // calibrated lazily at the first regularized epoch

  switch (cfg_.policy) {
    case PrunePolicy::kDense:
      run_phase(result, cfg_.epochs, false, false, -1, lambda);
      break;
    case PrunePolicy::kPruneTrain:
      run_phase(result, cfg_.epochs, true, true, -1, lambda);
      break;
    case PrunePolicy::kSSL: {
      // Calibrate lambda from the *random-init* losses (Eq. 3), exactly as
      // PruneTrain does — the paper applies its calibration mechanism to
      // SSL too. Calibrating after dense pre-training would be degenerate:
      // the converged classification loss would make lambda ~0.
      {
        loader_.begin_epoch();
        data::Batch probe = loader_.next(std::min<std::int64_t>(batch_size_, 32));
        nn::SoftmaxCrossEntropy loss;
        Tensor out = net_->forward(probe.images, false);
        const double class_loss = loss.forward(out, probe.labels);
        prune::GroupLassoRegularizer reg(*net_);
        reg.set_size_normalized(cfg_.size_normalized_penalty);
        lambda = prune::calibrate_lambda(cfg_.lasso_ratio, class_loss, reg.loss()) *
                 cfg_.lasso_boost;
        result.lambda = lambda;
        net_->clear_context();
      }
      // Phase 1: dense pre-training (counts toward training cost).
      run_phase(result, cfg_.epochs, false, false, -1, lambda);
      // Phase 2: sparsify on the dense architecture; prune only at the end.
      run_phase(result, cfg_.epochs, true, false, -1, lambda);
      prune::Reconfigurer reconfigurer(*net_, cfg_.threshold);
      const auto rstats = reconfigurer.reconfigure();
      result.layers_removed += rstats.convs_removed;
      break;
    }
    case PrunePolicy::kOneShot:
      run_phase(result, cfg_.epochs, true, false, cfg_.one_shot_epoch, lambda);
      break;
  }

  // Final pruning pass so the reported inference model is fully compacted
  // (a no-op if the last reconfiguration already caught everything).
  if (cfg_.policy != PrunePolicy::kDense && cfg_.final_reconfigure) {
    prune::Reconfigurer reconfigurer(*net_, cfg_.threshold);
    const auto rstats = reconfigurer.reconfigure();
    result.layers_removed += rstats.convs_removed;
  }

  // Optional fine-tuning on the pruned architecture: extra epochs without
  // regularization, at the final decayed learning rate (Sec. 5.1).
  if (cfg_.fine_tune_epochs > 0 && cfg_.policy != PrunePolicy::kDense) {
    optim::MultiStepLR schedule(cfg_.lr_milestones, cfg_.lr_gamma);
    const float saved_scale = lr_scale_;
    lr_scale_ *= static_cast<float>(schedule.multiplier_at(cfg_.epochs));
    float no_lambda = 0.f;
    run_phase(result, cfg_.fine_tune_epochs, false, false, -1, no_lambda);
    lr_scale_ = saved_scale;
  }

  cost::FlopsModel flops(*net_, input_shape_);
  result.final_inference_flops = flops.inference_flops();
  result.final_test_acc = evaluate();
  std::int64_t channels = 0;
  for (int id : net_->nodes_of_type<nn::Conv2d>()) {
    channels += net_->layer_as<nn::Conv2d>(id).out_channels();
  }
  result.final_channels = channels;
  return result;
}

}  // namespace pt::core
