// PruneTrainer: the paper's Algorithm 1 plus the baseline training
// protocols it is compared against.
//
// Policies:
//  - kDense:      plain SGD training, no regularization, no pruning.
//  - kPruneTrain: group-lasso regularization from iteration 0 (lambda set
//                 by Eq. 3 at the first forward), periodic reconfiguration
//                 every `reconfig_interval` epochs, optional dynamic
//                 mini-batch adjustment.
//  - kSSL:        Wen et al.'s protocol: first train the dense model to
//                 completion, then train again with group lasso on the
//                 dense architecture, pruning only at the very end. Costs
//                 roughly 3x PruneTrain's compute (Sec. 5.2).
//  - kOneShot:    Alvarez & Salzmann's: regularize from scratch but
//                 reconfigure exactly once, at `one_shot_epoch` (Fig. 2c).
//
// Every epoch records the cost metrics the paper's figures are drawn from:
// FLOPs/iteration, training FLOPs spent, BN DRAM traffic, memory context,
// allreduce volume, modeled GPU time, and wall-clock.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/dynamic_batch.h"
#include "cost/comm.h"
#include "dist/elastic.h"
#include "exec/context.h"
#include "cost/device.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "graph/network.h"
#include "prune/sparsity_monitor.h"
#include "prune/strategy.h"
#include "robust/fault.h"
#include "robust/health.h"
#include "robust/integrity.h"
#include "robust/recovery.h"
#include "telemetry/record.h"

namespace pt::core {

enum class PrunePolicy { kDense, kPruneTrain, kSSL, kOneShot };

std::string to_string(PrunePolicy policy);

struct TrainConfig {
  std::int64_t epochs = 40;
  std::int64_t batch_size = 32;
  float base_lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  std::vector<std::int64_t> lr_milestones = {};  ///< fractions handled by caller
  double lr_gamma = 0.1;

  PrunePolicy policy = PrunePolicy::kPruneTrain;

  /// Sparsification strategy, by prune::StrategyRegistry name. The default
  /// reproduces the pre-strategy trainer bitwise; the zoo adds "dsd",
  /// "dst", and "channel_prop" (src/prune/strategy_zoo.h).
  std::string strategy = "group_lasso";
  /// Per-strategy parameters (string key/value; see `--strategy help` or
  /// StrategyRegistry::help() for each strategy's keys and defaults).
  /// For group_lasso the legacy fields below (lasso_ratio, lasso_boost,
  /// proximal_update, size_normalized_penalty) are mirrored in as defaults;
  /// setting both a legacy field and its parameter to different values is
  /// a validation error.
  std::map<std::string, std::string> strategy_params;

  /// Gradient wire format for the simulated allreduce, by
  /// dist::CodecRegistry name ("dense", "twobit", "live_channel"; see
  /// `--codec help`). Only meaningful with replicas > 1 — validate()
  /// rejects a non-dense codec on a single device. The dense default
  /// reproduces the pre-codec exchange bitwise.
  std::string codec = "dense";
  /// Per-codec parameters, validated against the codec's ParamSpec set
  /// (a parameter the configured codec does not declare is an error).
  std::map<std::string, std::string> codec_params;

  float lasso_ratio = 0.2f;           ///< Eq. 3 target penalty ratio
  /// Proxy-scale time compression. Eq. 3's lambda is implicitly matched to
  /// the paper's training horizon (~70k optimizer steps: group-norm decay
  /// per step is ~lr*lambda, and lambda from Eq. 3 makes the total decay
  /// over a full ImageNet/CIFAR run comparable to the initial norms).
  /// Proxy runs here take 10^2-10^3 steps, so lambda is multiplied by this
  /// factor to reproduce the same *fraction-of-run* sparsification
  /// trajectory. 1.0 = paper-faithful; see DESIGN.md.
  float lasso_boost = 1.0f;
  /// Use the proximal group-soft-threshold update (exact zeros) instead of
  /// the plain subgradient. Required for boosted-lambda proxy runs; with
  /// the paper's own lambda scale the two are indistinguishable.
  bool proximal_update = true;
  /// Run one final prune+reconfigure pass after training so the reported
  /// model is fully compacted (the default). Analyses that sweep pruning
  /// thresholds over the trained weights (e.g. Fig. 6) disable this to
  /// keep the full channel index space.
  bool final_reconfigure = true;
  std::int64_t reconfig_interval = 5; ///< epochs between reconfigurations
  std::int64_t one_shot_epoch = 20;   ///< kOneShot reconfiguration point
  float threshold = 1e-4f;            ///< zeroing threshold (paper: 1e-4)
  /// Extra epochs trained after the main run *without* group-lasso
  /// regularization, at the final (decayed) learning rate. The paper uses
  /// this to recover ~0.3% accuracy on ImageNet (Sec. 5.1); no pruning or
  /// reconfiguration happens during fine-tuning.
  std::int64_t fine_tune_epochs = 0;
  /// Per-group penalty normalization (Sec. 4.1 ablation). The paper argues
  /// for a single *global* coefficient, which prioritizes pruning the
  /// computation-heavy early layers; prior work scales each group's
  /// penalty by sqrt(group size), which prioritizes model-size reduction.
  bool size_normalized_penalty = false;

  /// Hot-path threads for the trainer's exec::ExecContext: 1 (default) is
  /// fully serial, 0 auto-detects (hardware_concurrency). Any value yields
  /// bitwise-identical training trajectories — the pool's static
  /// partitioning guarantees it (tests/exec_test.cpp asserts this).
  std::int64_t num_threads = 1;

  DynamicBatchConfig dynamic_batch;

  cost::CommSpec comm;                      ///< allreduce accounting
  cost::DeviceSpec device = cost::DeviceSpec::titan_xp();  ///< modeled time

  std::uint64_t shuffle_seed = 7;
  bool record_sparsity = false;  ///< per-epoch channel max-|w| histories
  /// Evaluate test accuracy every k epochs (the final epoch is always
  /// evaluated); other epochs report the last measured value.
  std::int64_t eval_interval = 1;
  bool verbose = false;

  /// Directory for crash-safe checkpoints. Empty (the default) disables
  /// checkpointing. When set, the trainer writes `ckpt-epoch-<N>.bin` plus
  /// a rolling `ckpt-latest.bin` every `checkpoint_interval` epochs, each
  /// via write-temp-then-rename with a CRC-32 footer.
  std::string checkpoint_dir;
  std::int64_t checkpoint_interval = 1;  ///< epochs between checkpoint saves
  /// Path of a checkpoint file to resume from. The trainer replaces the
  /// network with the checkpoint's (reconfigured) model, restores optimizer
  /// momentum, BN statistics, shuffle-RNG state, epoch counters, calibrated
  /// lambda, and partial epoch statistics, then continues the schedule from
  /// the saved epoch. Resuming is bitwise-deterministic: the remaining
  /// epochs reproduce an uninterrupted run exactly (wall-clock aside).
  std::string resume_from;

  // --- Training guardian (src/robust) ---

  /// Run the HealthMonitor after every epoch: NaN/Inf loss, loss-spike
  /// divergence, non-finite gradients/params/BN statistics, and
  /// pruning-collapse warnings before each reconfiguration. Events are
  /// logged and recorded; they only interrupt the run when rollback
  /// recovery is enabled (max_rollbacks > 0).
  bool health_checks = true;
  robust::HealthConfig health;  ///< monitor thresholds

  /// > 0 enables rollback recovery: a fatal health event rolls the run
  /// back to the last good checkpoint (requires checkpoint_dir), cuts the
  /// LR by rollback_lr_cut per attempt, waits a modeled capped-exponential
  /// backoff, and retries — at most this many times, after which run()
  /// writes a diagnostic checkpoint (ckpt-diagnostic.bin) and throws
  /// robust::TrainingAborted.
  std::int64_t max_rollbacks = 0;
  float rollback_lr_cut = 0.5f;      ///< recovery LR multiplier per rollback
  double rollback_backoff = 2.0;     ///< backoff base: min(base^(k-1), cap) s
  double rollback_backoff_cap = 60.0;
  /// Also suppress the periodic reconfigurations that fall inside the
  /// replayed window (rollback epoch, fault epoch] on retry, in case the
  /// prune itself destabilized the run. Reconfigurations already baked
  /// into the restored checkpoint are not undone.
  bool rollback_skip_reconfig = false;

  /// Reconfiguration survival floor: no channel variable is ever sliced
  /// below this many channels (pruning-collapse guard; 1 = historical).
  std::int64_t prune_min_channels = 1;

  /// Fault-injection spec (robust::parse_fault_specs grammar), "" = none.
  /// Deterministic given the spec and fault_seed; used to exercise every
  /// recovery path in tests and demos.
  std::string fault_spec;
  std::uint64_t fault_seed = 0x5eedf0a1ULL;

  // --- Silent-data-corruption defense (src/robust/integrity) ---

  /// > 0 arms the IntegrityMonitor: every this-many steps the trainer
  /// digests the named state (params + momentum + buffers + strategy
  /// state, CRC-32 per tensor). Under an elastic cluster the per-replica
  /// digests are majority-voted — a minority replica is healed in place by
  /// a full state copy from a voted-healthy replica (no rollback burned);
  /// a vote with no strict majority raises a fatal kSdcNoQuorum event for
  /// the guardian. Single-device runs record the digest as telemetry.
  /// 0 (the default) disables the monitor.
  std::int64_t sdc_check_interval = 0;

  /// > 0 bounds the retained checkpoint generation chain: only the newest
  /// this-many numbered checkpoints (ckpt-epoch-<N>.bin) are kept on disk,
  /// and every save triggers a scrub pass that re-validates each retained
  /// generation's CRC-32 footer on the execution context. A rollback then
  /// cascades past generations the scrubber proved corrupt (torn writes,
  /// bit rot) without paying a load attempt. 0 (the default) retains every
  /// generation, the historical behavior; the scrubber still runs whenever
  /// checkpoint_dir is set.
  std::int64_t keep_checkpoints = 0;

  // --- Elastic data-parallel training (src/dist) ---

  /// > 1 trains on a simulated elastic cluster of this many in-process
  /// replicas (dist::ElasticCluster): batches shard over the live set,
  /// gradients allreduce deterministically, and membership faults
  /// (kill/flaky/rejoin-replica in fault_spec) exercise permanent failure
  /// and checkpointed rejoin. 1 (the default) is plain single-device
  /// training. Requires proximal_update: the group-lasso step runs as a
  /// per-replica post-update hook.
  std::int64_t replicas = 1;
  /// Quorum: a step needs >= ceil(min_live_fraction * replicas) live
  /// members, else the run checkpoints-and-aborts via the guardian
  /// (robust::TrainingAborted carrying a kQuorumLoss event).
  double min_live_fraction = 0.5;
  /// Consecutive missed step-acks before a replica is declared DEAD
  /// (detection bookkeeping; participation stops at the first miss).
  std::int64_t suspect_threshold = 3;
  /// Allow DEAD replicas to rejoin (rejoin-replica faults / schedules).
  bool allow_rejoin = true;

  // --- Telemetry (src/telemetry) ---

  /// Run-record directory. Empty (the default) leaves telemetry untouched.
  /// When set, the trainer enables the process-wide telemetry switch and
  /// per-layer network profiling, writes `<metrics_dir>/manifest.json`
  /// before the first epoch, and appends one self-describing JSONL line to
  /// `<metrics_dir>/epochs.jsonl` after every epoch (atomic temp+rename,
  /// like checkpoints).
  std::string metrics_dir;
  std::string run_name = "run";  ///< recorded in the manifest

  /// Throws std::invalid_argument (with the offending field named) when a
  /// field combination cannot produce a valid run. Called by PruneTrainer's
  /// constructor, so a bad config fails fast rather than mid-training.
  void validate() const;

  /// The strategy_params map with the group-lasso legacy fields mirrored
  /// in as defaults (back-compat: configs that only set lasso_ratio /
  /// lasso_boost / proximal_update / size_normalized_penalty keep
  /// working). Throws std::invalid_argument when a legacy field and its
  /// parameter contradict each other, or when a legacy lasso field is set
  /// alongside a non-lasso strategy.
  std::map<std::string, std::string> resolved_strategy_params() const;
};

struct EpochStats {
  std::int64_t epoch = 0;
  std::int64_t batch_size = 0;
  double lr = 0;
  double train_loss = 0;
  double train_acc = 0;
  double test_acc = 0;
  double lasso_loss = 0;             ///< current regularizer sum (no lambda)
  double flops_per_sample_train = 0; ///< current model, fwd+bwd
  double flops_per_sample_inf = 0;   ///< current model, fwd only
  double epoch_train_flops = 0;      ///< flops_per_sample_train * samples
  double epoch_bn_traffic = 0;       ///< bytes
  double memory_bytes = 0;           ///< training context at current batch
  double comm_bytes_per_gpu = 0;     ///< allreduce volume this epoch
  double comm_time_modeled = 0;      ///< hierarchical allreduce time this epoch
  double gpu_time_modeled = 0;       ///< roofline training time this epoch
  double wall_seconds = 0;           ///< actual CPU wall time this epoch
  std::int64_t channels_alive = 0;   ///< sum of conv out-channels
  std::int64_t conv_layers = 0;
  bool reconfigured = false;
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  double final_test_acc = 0;
  double total_train_flops = 0;
  double total_bn_traffic = 0;
  double total_comm_bytes = 0;
  double total_gpu_time_modeled = 0;
  double total_wall_seconds = 0;
  double final_inference_flops = 0;
  std::int64_t layers_removed = 0;     ///< conv layers removed by dead branches
  std::int64_t final_channels = 0;
  float lambda = 0;                    ///< the calibrated penalty coefficient
};

class PruneTrainer {
 public:
  /// Trains `net` in place on `dataset`. The network must match the
  /// dataset's input geometry and class count.
  PruneTrainer(graph::Network& net, const data::SyntheticImageDataset& dataset,
               TrainConfig cfg);

  /// Runs the configured schedule. With max_rollbacks > 0 this is a retry
  /// loop: a fatal health event rolls the run back to the last good
  /// checkpoint and re-enters the schedule (see TrainConfig); when the
  /// budget is exhausted a diagnostic checkpoint is written and
  /// robust::TrainingAborted is thrown.
  TrainResult run();

  /// Test-set top-1 accuracy of the current model.
  double evaluate();

  const prune::SparsityMonitor* sparsity_monitor() const {
    return monitor_ ? monitor_.get() : nullptr;
  }

  /// What the guardian did this run: rollbacks, injected faults, modeled
  /// backoff, every health event. Zero-valued when recovery never engaged.
  const robust::RecoveryReport& recovery_report() const { return report_; }

  /// The SDC monitor (cfg.sdc_check_interval > 0), for checks/heals/bytes
  /// statistics; nullptr when disabled.
  const robust::IntegrityMonitor* integrity_monitor() const {
    return integrity_ ? integrity_.get() : nullptr;
  }

  /// The checkpoint generation scrubber (cfg.checkpoint_dir set), for the
  /// generation ledger; nullptr when checkpointing is off.
  const robust::CheckpointScrubber* checkpoint_scrubber() const {
    return scrubber_ ? scrubber_.get() : nullptr;
  }

  /// The execution context every forward/backward of this trainer runs on
  /// (TrainConfig::num_threads pool + workspace arena). Exposed so tests
  /// and tools can read pool/workspace statistics.
  exec::ExecContext& exec_context() { return *ctx_; }
  const exec::ExecContext& exec_context() const { return *ctx_; }

 private:
  /// One end-to-end pass over the configured schedule; throws
  /// robust::FatalHealthError when the monitor flags a fatal event and
  /// recovery is enabled. run() wraps this in the rollback-retry loop.
  TrainResult run_attempt();

  /// Executes a kRollback decision: resolves the rollback target through
  /// the scrubber's generation ledger (cascading past corrupt files, with
  /// a kCheckpointCascade event when it had to), restores it, applies the
  /// recovery LR scale, optionally arms reconfiguration suppression up to
  /// the fault epoch. The decision comes back annotated with the
  /// checkpoint/generation actually selected. Throws
  /// robust::TrainingAborted if no loadable checkpoint exists.
  void rollback(robust::RecoveryPolicy::Decision decision,
                const robust::HealthEvent& cause);

  /// Digest-vote the cluster's live replicas (called after each elastic
  /// step when due): a convicted minority is healed in place; a no-quorum
  /// split escalates as a fatal kSdcNoQuorum when recovery is enabled.
  void run_integrity_check();

  /// Credits cluster-injected fault fires to the report since the last
  /// call — invoked at epoch end *and* before any mid-epoch escalation
  /// throw, so fires are never lost to an aborted epoch.
  void account_cluster_fault_fires();

  /// Best-effort ckpt-diagnostic.bin: the broken model plus a "guardian"
  /// section holding the serialized RecoveryReport. Never throws.
  void save_diagnostic_checkpoint();

  /// With recovery enabled, guarantees a rollback target exists before the
  /// first epoch runs (a fault in epoch 0 must have somewhere to go).
  void ensure_initial_checkpoint(const TrainResult& result, float lambda);
  /// One full pass over the training set at the current batch size; fills
  /// loss/acc into `stats`. `lambda` == 0 disables the calibrated penalty;
  /// `sparsify` is the phase flag handed to the strategy's step hooks.
  /// Dispatches to train_epoch_dist when an elastic cluster is attached.
  void train_epoch(EpochStats& stats, float lambda, float lr, bool sparsify);
  /// The cfg_.replicas > 1 epoch: shards every batch over the cluster's
  /// live set, accumulates modeled comm cost at the live ring size, syncs
  /// *net_ from a live replica at the end, and converts ReplicaDivergence
  /// into the guardian pathway. ClusterDegraded propagates to run().
  void train_epoch_dist(EpochStats& stats, float lambda, float lr,
                        bool sparsify);

  /// (Re)creates the elastic cluster as cfg_.replicas bit-exact clones of
  /// *net_ with fresh membership (all HEALTHY) — construction, resume, and
  /// rollback all land here; a mid-run reconfiguration must NOT (it would
  /// resurrect the dead — the surgery is applied in place instead). An
  /// existing injector is carried over with its fire-state intact.
  void rebuild_cluster();
  /// Copies the trained state from the first live replica back into *net_
  /// (evaluation, health checks, checkpoints, and cost models all read
  /// *net_).
  void sync_net_from_cluster();
  /// Applies the same reconfiguration surgery just performed on *net_ to
  /// every replica whose state is current (live members and freshly
  /// resynced rejoiners); stale (failed) replicas keep their old topology
  /// until a rejoin resync replays the new one.
  void reconfigure_cluster_replicas(float threshold);

  /// Appends one epochs.jsonl line: the epoch's stats, the reconfiguration
  /// outcome, per-layer FLOPs + measured times, sparsity densities, and a
  /// snapshot of the cumulative telemetry state. Resets the network's
  /// execution profile afterwards (layer times are per-epoch).
  void emit_epoch_record(const EpochStats& stats,
                         const telemetry::ReconfigRecord& reconfig);

  /// What one training phase does, as data instead of positional booleans.
  /// The policy schedules in run_attempt compose phases from these;
  /// everything else (cadence, thresholds) is the strategy's call.
  struct PhaseSpec {
    std::int64_t epochs = 0;
    bool sparsify = false;          ///< strategy hooks active this phase
    bool periodic_reconfig = false; ///< periodic reconfiguration allowed
    std::int64_t one_shot_at = -1;  ///< reconfigure once after this epoch
  };

  /// One training phase: per-epoch strategy hooks, lambda calibration,
  /// health checks, strategy-proposed reconfiguration, cost accounting,
  /// and checkpoints.
  void run_phase(TrainResult& result, const PhaseSpec& spec, float& lambda);

  /// Writes ckpt-epoch-<N>.bin + ckpt-latest.bin into cfg_.checkpoint_dir:
  /// the reconfigured model (via ckpt::Checkpoint::capture) plus a "trainer"
  /// section holding counters, lambda, lr scaling, shuffle-RNG state, and
  /// the partial TrainResult accumulated so far.
  void save_checkpoint(const TrainResult& result, std::int64_t phase,
                       std::int64_t phase_epochs_done, float lambda);

  /// Loads a checkpoint file (cfg_.resume_from, or a rollback target):
  /// replaces *net_ with the checkpointed model and fills the resume_*
  /// members from the trainer section.
  void load_checkpoint_file(const std::string& path);

  graph::Network* net_;
  const data::SyntheticImageDataset* dataset_;
  TrainConfig cfg_;
  /// Built from cfg_.num_threads before any network execution; the
  /// workspace arena is rebuilt whenever the model's shapes change
  /// (reconfiguration, checkpoint restore) so its sizing tracks the
  /// current hot loop. unique_ptr: the context is neither copyable nor
  /// movable (worker threads hold `this`).
  std::unique_ptr<exec::ExecContext> ctx_;
  data::DataLoader loader_;
  /// The configured sparsification strategy (never null). Constructed from
  /// the registry before any resume load so checkpointed strategy state
  /// lands in the right object.
  std::unique_ptr<prune::Strategy> strategy_;
  Shape input_shape_;
  std::int64_t batch_size_;
  float lr_scale_ = 1.f;  ///< cumulative dynamic-batch LR scaling
  std::unique_ptr<prune::SparsityMonitor> monitor_;
  std::int64_t epoch_counter_ = 0;  ///< global epoch index across phases
  double last_test_acc_ = 0;        ///< cached between eval_interval epochs

  // Resume bookkeeping. phase_index_ counts run_phase invocations within
  // run(); a checkpoint records (phase, epochs completed in that phase) so
  // resuming can skip exactly the finished work and re-enter the schedule
  // mid-phase.
  std::int64_t phase_index_ = 0;
  bool resuming_ = false;            ///< a checkpoint was loaded
  std::int64_t resume_phase_ = 0;    ///< phase the checkpoint was taken in
  std::int64_t resume_epoch_ = 0;    ///< epochs already completed in that phase
  float resume_lambda_ = -1.f;       ///< calibrated lambda at save time
  TrainResult resume_result_;        ///< partial stats accumulated pre-crash

  /// Simulated elastic cluster; null when cfg_.replicas <= 1. The trainer
  /// keeps its own fault_ for checkpoint-corruption faults; the cluster's
  /// injector (same spec + seed, independent fire counters) handles the
  /// replica and gradient kinds.
  std::unique_ptr<dist::ElasticCluster> cluster_;
  std::int64_t cluster_fault_fires_seen_ = 0;  ///< for report_.faults_injected
  /// Gradient codec shared with the cluster; null when cfg_.replicas <= 1.
  /// Constructed from the registry before any resume load (like strategy_)
  /// so checkpointed codec state — error-feedback residuals, live-row
  /// masks — lands in the right object, and survives cluster rebuilds so
  /// rollback replay carries the residuals it had at save time.
  std::shared_ptr<dist::GradientCodec> codec_;

  // Guardian state (src/robust).
  robust::FaultInjector fault_;                   ///< disarmed when no spec
  std::unique_ptr<robust::HealthMonitor> health_; ///< null when checks off
  /// SDC digest-vote monitor; null when sdc_check_interval == 0.
  std::unique_ptr<robust::IntegrityMonitor> integrity_;
  /// Checkpoint generation chain + CRC scrubber; null when checkpoint_dir
  /// is empty.
  std::unique_ptr<robust::CheckpointScrubber> scrubber_;
  robust::RecoveryReport report_;
  float recovery_lr_scale_ = 1.f;       ///< lr_cut^rollbacks on retries
  std::int64_t skip_reconfig_until_ = -1;  ///< suppress reconfigs <= this epoch
  bool initial_ckpt_saved_ = false;

  /// Epoch-record emitter (cfg_.metrics_dir); null when telemetry is off.
  std::unique_ptr<telemetry::RunRecorder> recorder_;
};

}  // namespace pt::core
