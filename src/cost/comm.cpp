#include "cost/comm.h"

#include <algorithm>

namespace pt::cost {

double CommModel::compression_factor(CommCodec codec, double live_fraction) {
  switch (codec) {
    case CommCodec::kDense:
      return 1.0;
    case CommCodec::kTwoBit:
      // 2 bits per coordinate instead of 32 (per-tensor scale amortizes
      // to nothing on any real tensor).
      return 2.0 / 32.0;
    case CommCodec::kLiveChannel:
      return std::clamp(live_fraction, 0.0, 1.0);
  }
  return 1.0;
}

CommCost CommModel::cost(const CommQuery& query) const {
  const int members = query.members > 0 ? query.members : spec_.gpus;
  const double payload =
      query.model_bytes * compression_factor(query.codec, query.live_fraction);
  const double updates = static_cast<double>(query.updates);

  CommCost out;
  out.payload_bytes = payload * updates;

  const double p = static_cast<double>(members);
  if (p <= 1) return out;  // nothing to reduce: zero bytes, zero time

  out.wire_bytes = 2.0 * (p - 1.0) / p * payload * updates;

  // 2*(P-1) pipeline steps, each transferring a 1/P chunk. At P=2 this is
  // the honest degenerate ring: 2 steps of a half-payload chunk, i.e. one
  // full exchange — not a free lunch, not a 4-GPU ring either.
  auto ring = [&](int ring_members, double bytes) {
    if (ring_members <= 1) return 0.0;
    const double steps = 2.0 * (ring_members - 1);
    return steps * (spec_.latency + bytes / ring_members / spec_.link_bandwidth);
  };
  out.ring_time = ring(members, payload) * updates;

  // Reduce-scatter+allgather within groups, ring across group leaders over
  // the group-reduced buffer, then broadcast (modeled as one more
  // intra-group allgather-equivalent half ring).
  const int g = std::max(1, std::min(spec_.hierarchy_group, members));
  const int groups = (members + g - 1) / g;
  out.hierarchical_time =
      (ring(g, payload) + ring(groups, payload) + 0.5 * ring(g, payload)) *
      updates;
  return out;
}

}  // namespace pt::cost
