#include "cost/comm.h"

#include <algorithm>

namespace pt::cost {

double CommModel::ring_bytes_per_update(double model_bytes) const {
  return ring_bytes_per_update(model_bytes, spec_.gpus);
}

double CommModel::ring_bytes_per_update(double model_bytes, int members) const {
  const double p = static_cast<double>(members);
  if (p <= 1) return 0.0;
  return 2.0 * (p - 1.0) / p * model_bytes;
}

double CommModel::ring_time_per_update(double model_bytes) const {
  return ring_time_per_update(model_bytes, spec_.gpus);
}

double CommModel::ring_time_per_update(double model_bytes, int members) const {
  const double p = static_cast<double>(members);
  if (p <= 1) return 0.0;
  // 2*(P-1) pipeline steps, each transferring a 1/P chunk. At P=2 this is
  // the honest degenerate ring: 2 steps of a half-model chunk, i.e. one
  // full exchange — not a free lunch, not a 4-GPU ring either.
  const double steps = 2.0 * (p - 1.0);
  return steps * (spec_.latency + model_bytes / p / spec_.link_bandwidth);
}

double CommModel::hierarchical_time_per_update(double model_bytes) const {
  return hierarchical_time_per_update(model_bytes, spec_.gpus);
}

double CommModel::hierarchical_time_per_update(double model_bytes,
                                               int members) const {
  const int p = members;
  if (p <= 1) return 0.0;
  const int g = std::max(1, std::min(spec_.hierarchy_group, p));
  const int groups = (p + g - 1) / g;
  auto ring = [&](int members, double bytes) {
    if (members <= 1) return 0.0;
    const double steps = 2.0 * (members - 1);
    return steps * (spec_.latency + bytes / members / spec_.link_bandwidth);
  };
  // Reduce-scatter+allgather within groups, ring across group leaders over
  // the group-reduced buffer, then broadcast (modeled as one more
  // intra-group allgather-equivalent half ring).
  return ring(g, model_bytes) + ring(groups, model_bytes) +
         0.5 * ring(g, model_bytes);
}

double CommModel::time_per_epoch(double model_bytes, std::int64_t updates,
                                 bool hierarchical) const {
  const double per = hierarchical ? hierarchical_time_per_update(model_bytes)
                                  : ring_time_per_update(model_bytes);
  return per * static_cast<double>(updates);
}

}  // namespace pt::cost
