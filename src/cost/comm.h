// Allreduce communication cost model for data-parallel training (Sec. 2.2,
// Fig. 11): alpha-beta models of ring allreduce and the hierarchical
// variant of Li et al. [26], with compressed-volume terms for the gradient
// codecs (dist::GradientCodec).
//
// Per model update each worker sends/receives 2*(P-1)/P * payload bytes in
// a ring, where the payload is the *encoded* gradient: dense FP32, 2-bit
// quantized (1/16 of dense), or live-channel compacted (live_fraction of
// dense). Cost per epoch is updates/epoch times that — so pruning shrinks
// the per-update volume, dynamic mini-batch adjustment shrinks the update
// *count*, and quantization shrinks the bytes-per-coordinate; the Fig. 11
// reproduction reports the three as one multiplicative saving.
//
// All queries go through one struct-based entry point (CommQuery ->
// CommCost); the per-method overload set this class accumulated through
// PR 5 is gone.
#pragma once

#include <cstdint>

namespace pt::cost {

struct CommSpec {
  int gpus = 4;
  double link_bandwidth = 10e9;  ///< bytes/s per link (NVLink-ish)
  double latency = 5e-6;         ///< per-hop latency, seconds
  int hierarchy_group = 4;       ///< group size for hierarchical allreduce
};

/// Wire encoding of the gradient payload, mirroring the dist codec zoo.
enum class CommCodec {
  kDense,        ///< full FP32 — compression factor 1
  kTwoBit,       ///< 2-bit quantization — factor 2/32 = 1/16
  kLiveChannel,  ///< live-channel compaction — factor = live_fraction
};

/// One allreduce cost query. `members` == 0 means spec().gpus; a degenerate
/// ring (1 member) moves zero bytes in zero time. `updates` scales every
/// output field, so per-epoch cost is the same query with updates = iters.
struct CommQuery {
  double model_bytes = 0;      ///< dense FP32 gradient bytes per update
  int members = 0;             ///< live ring size (0 = spec().gpus)
  double live_fraction = 1.0;  ///< transmitted-element fraction (kLiveChannel)
  CommCodec codec = CommCodec::kDense;
  std::int64_t updates = 1;    ///< model updates to account
};

/// The modeled cost of `updates` allreduces. All fields scale linearly
/// with CommQuery::updates (updates = 1 gives per-update cost).
struct CommCost {
  double payload_bytes = 0;       ///< encoded gradient bytes per update
  double wire_bytes = 0;          ///< ring traffic per worker: 2(P-1)/P * payload
  double ring_time = 0;           ///< flat ring: 2(P-1) steps of (alpha + chunk/BW)
  double hierarchical_time = 0;   ///< two-level ring of Li et al. [26]
};

class CommModel {
 public:
  explicit CommModel(CommSpec spec) : spec_(spec) {}

  /// Encoded-bytes / dense-bytes ratio of a codec: 1 for dense, 1/16 for
  /// 2-bit, live_fraction (clamped to [0, 1]) for live-channel.
  static double compression_factor(CommCodec codec, double live_fraction);

  /// The one cost query. Honest about the edges — 1 member moves zero
  /// bytes in zero time (nothing to reduce), 2 members degenerate to a
  /// single send/recv exchange (2 pipeline steps of a half-payload chunk
  /// each), and the hierarchical variant clamps its group size to the
  /// live count.
  CommCost cost(const CommQuery& query) const;

  const CommSpec& spec() const { return spec_; }

 private:
  CommSpec spec_;
};

}  // namespace pt::cost
