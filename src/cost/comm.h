// Allreduce communication cost model for data-parallel training (Sec. 2.2,
// Fig. 11): alpha-beta models of ring allreduce and the hierarchical
// variant of Li et al. [26].
//
// Per model update each worker sends/receives 2*(P-1)/P * bytes in a ring;
// cost per epoch is iterations/epoch times that, so pruning shrinks the
// per-update volume and dynamic mini-batch adjustment shrinks the update
// *count* — both visible in the Fig. 11 curves.
#pragma once

#include <cstdint>

namespace pt::cost {

struct CommSpec {
  int gpus = 4;
  double link_bandwidth = 10e9;  ///< bytes/s per link (NVLink-ish)
  double latency = 5e-6;         ///< per-hop latency, seconds
  int hierarchy_group = 4;       ///< group size for hierarchical allreduce
};

class CommModel {
 public:
  explicit CommModel(CommSpec spec) : spec_(spec) {}

  /// Bytes each worker moves to allreduce a gradient buffer of
  /// `model_bytes` over a flat ring: 2*(P-1)/P * bytes.
  double ring_bytes_per_update(double model_bytes) const;

  /// Time of one flat ring allreduce: 2*(P-1) steps of (alpha + chunk/BW).
  double ring_time_per_update(double model_bytes) const;

  /// Time of the hierarchical (two-level) allreduce: intra-group ring +
  /// inter-group ring over group leaders + intra-group broadcast.
  double hierarchical_time_per_update(double model_bytes) const;

  /// Degenerate-ring-aware overloads for elastic membership: cost over an
  /// explicit live-member count instead of spec().gpus. Honest about the
  /// edges — 1 member moves zero bytes in zero time (nothing to reduce),
  /// 2 members degenerate to a single send/recv exchange (2 pipeline
  /// steps of a half-model chunk each), and the hierarchical variant
  /// clamps its group size to the live count.
  double ring_bytes_per_update(double model_bytes, int members) const;
  double ring_time_per_update(double model_bytes, int members) const;
  double hierarchical_time_per_update(double model_bytes, int members) const;

  /// Per-epoch cost given updates/epoch.
  double bytes_per_epoch(double model_bytes, std::int64_t updates) const {
    return ring_bytes_per_update(model_bytes) * static_cast<double>(updates);
  }
  double time_per_epoch(double model_bytes, std::int64_t updates,
                        bool hierarchical = true) const;

  const CommSpec& spec() const { return spec_; }

 private:
  CommSpec spec_;
};

}  // namespace pt::cost
