#include "cost/device.h"

#include "cost/flops.h"
#include "nn/batchnorm.h"
#include "nn/channel_index.h"
#include "nn/conv2d.h"
#include "nn/linear.h"

namespace pt::cost {

DeviceSpec DeviceSpec::titan_xp() {
  // FP32 peak ~12.1 TFLOP/s, 547 GB/s GDDR5X.
  return {"TITAN Xp", 12.1e12, 547e9, 1 << 17, 200e9};
}

DeviceSpec DeviceSpec::gtx_1080ti() {
  // FP32 peak ~11.3 TFLOP/s, 484 GB/s.
  return {"GTX 1080 Ti", 11.3e12, 484e9, 1 << 17, 180e9};
}

DeviceSpec DeviceSpec::v100() {
  // FP32 peak ~15.7 TFLOP/s, 900 GB/s HBM2.
  return {"V100", 15.7e12, 900e9, 1 << 17, 350e9};
}

DeviceSpec DeviceSpec::cpu() {
  // Single modern core: ~50 GFLOP/s peak SIMD, ~20 GB/s effective.
  return {"CPU-1core", 50e9, 20e9, 1 << 8, 10e9};
}

namespace {

double roofline(double flops, double bytes, double parallelism,
                const DeviceSpec& spec) {
  const double util = parallelism / (parallelism + spec.p_sat);
  const double compute_t = flops / (spec.peak_flops * util);
  const double memory_t = bytes / spec.mem_bandwidth;
  return std::max(compute_t, memory_t);
}

}  // namespace

std::vector<LayerTime> DeviceModel::layer_times(graph::Network& net, Shape input,
                                                std::int64_t batch,
                                                bool training) const {
  Shape batched({batch, input[0], input[1], input[2]});
  const auto shapes = infer_shapes(net, batched);
  FlopsModel flops(net, input);

  std::vector<LayerTime> out;
  for (const LayerFlops& lf : flops.layers()) {
    const graph::Node& n = net.node(lf.node);
    const Shape& oshape = shapes[static_cast<std::size_t>(lf.node)];
    const double out_elems = static_cast<double>(oshape.numel());
    const double b = static_cast<double>(batch);

    LayerTime lt;
    lt.node = lf.node;
    lt.name = lf.name;
    lt.type = lf.type;

    double in_elems = out_elems;
    double weight_elems = 0;
    if (n.kind == graph::Node::Kind::kLayer) {
      const Shape& ishape = shapes[static_cast<std::size_t>(n.inputs[0])];
      in_elems = static_cast<double>(ishape.numel());
      for (nn::Param* p : n.layer->params()) {
        weight_elems += static_cast<double>(p->value.numel());
      }
    }

    if (n.kind == graph::Node::Kind::kLayer &&
        (dynamic_cast<const nn::ChannelSelect*>(n.layer.get()) != nullptr ||
         dynamic_cast<const nn::ChannelScatter*>(n.layer.get()) != nullptr)) {
      // Pure tensor reshaping: read + write the moved elements at the
      // (lower) reshape bandwidth; this is the gating overhead Fig. 7 shows.
      const double moved = std::min(in_elems, out_elems) * 4.0 * 2.0;
      lt.reshape_s = spec_.reshape_latency + moved / spec_.reshape_bandwidth;
      if (training) lt.reshape_s *= 2.0;  // backward moves the same bytes back
      out.push_back(lt);
      continue;
    }

    const double fwd_bytes = (in_elems + out_elems + weight_elems) * 4.0;
    lt.forward_s = roofline(lf.forward * b, fwd_bytes, out_elems, spec_);
    if (training) {
      // Backward touches dy, dx, activations, and weights+grads.
      const double bwd_bytes = (2.0 * in_elems + out_elems + 2.0 * weight_elems) * 4.0;
      lt.backward_s = roofline(lf.backward * b, bwd_bytes, in_elems, spec_);
    }
    out.push_back(lt);
  }
  return out;
}

double DeviceModel::training_time(graph::Network& net, Shape input,
                                  std::int64_t batch) const {
  double total = 0;
  for (const LayerTime& lt : layer_times(net, input, batch, true)) total += lt.total();
  return total;
}

double DeviceModel::inference_time(graph::Network& net, Shape input,
                                   std::int64_t batch) const {
  double total = 0;
  for (const LayerTime& lt : layer_times(net, input, batch, false)) {
    total += lt.total();
  }
  return total;
}

}  // namespace pt::cost
