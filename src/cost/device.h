// Roofline execution-time model of a training accelerator.
//
// The paper measures wall-clock on TITAN Xp / GTX 1080 Ti / V100 GPUs; this
// repo runs on a CPU, so modeled GPU time is produced by a roofline with a
// parallelism-dependent utilization term:
//
//   time(layer) = max( flops / (peak_flops * util), bytes / bandwidth )
//   util        = p / (p + p_sat)        p = parallel output elements
//
// The utilization term reproduces the paper's key second-order effect: a
// pruned layer saves FLOPs but loses data parallelism, so measured speedup
// lags FLOPs saved (Sec. 5.1), and V100's higher bandwidth makes the
// compute savings more visible than on 1080 Ti (Tab. 1 footnote).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/network.h"

namespace pt::cost {

struct DeviceSpec {
  std::string name;
  double peak_flops = 1e12;    ///< FLOP/s at full utilization
  double mem_bandwidth = 1e11; ///< bytes/s
  double p_sat = 1 << 16;      ///< parallelism at which util reaches 50%
  double reshape_bandwidth = 5e10;  ///< effective bytes/s for gather/scatter
  /// Fixed cost per gather/scatter operation (kernel launch + index setup).
  /// This is what makes channel gating lose even on late layers with tiny
  /// activations (Fig. 7).
  double reshape_latency = 10e-6;

  static DeviceSpec titan_xp();
  static DeviceSpec gtx_1080ti();
  static DeviceSpec v100();
  /// Generic single-core CPU (for sanity comparison with wall clock).
  static DeviceSpec cpu();
};

/// Per-layer modeled execution time.
struct LayerTime {
  int node = -1;
  std::string name;
  std::string type;
  double forward_s = 0;
  double backward_s = 0;
  double reshape_s = 0;  ///< gather/scatter data movement (channel gating)
  double total() const { return forward_s + backward_s + reshape_s; }
};

class DeviceModel {
 public:
  explicit DeviceModel(DeviceSpec spec) : spec_(std::move(spec)) {}

  /// Modeled time of one training iteration at the given batch size.
  double training_time(graph::Network& net, Shape input, std::int64_t batch) const;

  /// Modeled time of one inference pass at the given batch size.
  double inference_time(graph::Network& net, Shape input, std::int64_t batch) const;

  /// Per-layer inference breakdown (Fig. 7 uses this for union vs gating).
  std::vector<LayerTime> layer_times(graph::Network& net, Shape input,
                                     std::int64_t batch, bool training) const;

  const DeviceSpec& spec() const { return spec_; }

 private:
  DeviceSpec spec_;
};

}  // namespace pt::cost
