#include "cost/flops.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/channel_index.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pool.h"
#include "tensor/im2col.h"

namespace pt::cost {

std::vector<Shape> infer_shapes(graph::Network& net, const Shape& input) {
  std::vector<Shape> shapes(net.num_nodes());
  shapes[0] = input;
  for (int id : net.topo_order()) {
    if (id == 0) continue;
    const graph::Node& n = net.node(id);
    if (n.kind == graph::Node::Kind::kLayer) {
      shapes[static_cast<std::size_t>(id)] =
          n.layer->output_shape(shapes[static_cast<std::size_t>(n.inputs[0])]);
    } else if (n.kind == graph::Node::Kind::kAdd) {
      const Shape& a = shapes[static_cast<std::size_t>(n.inputs[0])];
      const Shape& b = shapes[static_cast<std::size_t>(n.inputs[1])];
      if (a != b) {
        throw std::logic_error("infer_shapes: add mismatch " + a.to_string() +
                               " vs " + b.to_string());
      }
      shapes[static_cast<std::size_t>(id)] = a;
    }
  }
  return shapes;
}

double conv2d_forward_flops(double out_channels, double in_channels,
                            std::int64_t kernel, std::int64_t out_h,
                            std::int64_t out_w) {
  const double macs = out_channels * in_channels *
                      static_cast<double>(kernel) * static_cast<double>(kernel) *
                      static_cast<double>(out_h) * static_cast<double>(out_w);
  return 2.0 * macs;
}

double conv2d_backward_flops(double out_channels, double in_channels,
                             std::int64_t kernel, std::int64_t out_h,
                             std::int64_t out_w) {
  return 2.0 *
         conv2d_forward_flops(out_channels, in_channels, kernel, out_h, out_w);
}

FlopsModel::FlopsModel(graph::Network& net, Shape input) {
  Shape batched({1, input[0], input[1], input[2]});
  const auto shapes = infer_shapes(net, batched);
  for (int id : net.topo_order()) {
    if (id == 0) continue;
    const graph::Node& n = net.node(id);
    LayerFlops lf;
    lf.node = id;
    const Shape& out = shapes[static_cast<std::size_t>(id)];
    if (n.kind == graph::Node::Kind::kAdd) {
      lf.name = "add";
      lf.type = "Add";
      lf.forward = static_cast<double>(out.numel());
      lf.backward = 0;  // gradient fan-out is a copy, not arithmetic
    } else {
      const nn::Layer& layer = *n.layer;
      lf.name = layer.name();
      lf.type = layer.type();
      const Shape& in = shapes[static_cast<std::size_t>(n.inputs[0])];
      if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&layer)) {
        lf.forward = conv2d_forward_flops(
            static_cast<double>(conv->out_channels()),
            static_cast<double>(conv->in_channels()), conv->kernel(), out[2],
            out[3]);
        lf.backward = conv2d_backward_flops(
            static_cast<double>(conv->out_channels()),
            static_cast<double>(conv->in_channels()), conv->kernel(), out[2],
            out[3]);
      } else if (const auto* fc = dynamic_cast<const nn::Linear*>(&layer)) {
        const double macs =
            static_cast<double>(fc->in_features()) * fc->out_features();
        lf.forward = 2.0 * macs;
        lf.backward = 4.0 * macs;
      } else if (dynamic_cast<const nn::BatchNorm2d*>(&layer) != nullptr) {
        // mean+var reductions, normalize, affine: ~5 ops/element forward;
        // backward reductions + recompute: ~7 ops/element.
        lf.forward = 5.0 * static_cast<double>(in.numel());
        lf.backward = 7.0 * static_cast<double>(in.numel());
      } else if (dynamic_cast<const nn::ReLU*>(&layer) != nullptr) {
        lf.forward = static_cast<double>(in.numel());
        lf.backward = static_cast<double>(in.numel());
      } else if (const auto* pool = dynamic_cast<const nn::MaxPool2d*>(&layer)) {
        lf.forward = static_cast<double>(out.numel()) * pool->window() *
                     pool->window();
        lf.backward = static_cast<double>(out.numel());
      } else if (dynamic_cast<const nn::GlobalAvgPool*>(&layer) != nullptr) {
        lf.forward = static_cast<double>(in.numel());
        lf.backward = static_cast<double>(in.numel());
      } else if (dynamic_cast<const nn::ChannelSelect*>(&layer) != nullptr ||
                 dynamic_cast<const nn::ChannelScatter*>(&layer) != nullptr) {
        lf.forward = 0;  // pure data movement; charged by the device model
        lf.backward = 0;
      } else {
        throw std::logic_error("FlopsModel: unknown layer type " + layer.type());
      }
    }
    total_forward_ += lf.forward;
    total_backward_ += lf.backward;
    layers_.push_back(std::move(lf));
  }
}

}  // namespace pt::cost
