// Analytic FLOP accounting for a Network, the quantity behind most of the
// paper's results (training FLOPs, inference FLOPs, FLOPs/iteration curves).
//
// Conventions (standard, and what the paper uses):
//  - conv forward: 2 * K*C*R*S * Ho*Wo MAC-FLOPs per sample;
//  - backward adds ~2x forward (dW GEMM + dX GEMM), so training ~= 3x
//    inference for conv/FC layers;
//  - BN / ReLU / pool FLOPs are charged at a few ops per element — they are
//    negligible next to conv but included for completeness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/network.h"

namespace pt::cost {

/// Per-node shape inference: output shape of every live node given the
/// network input shape (batch dim included).
std::vector<Shape> infer_shapes(graph::Network& net, const Shape& input);

/// Forward FLOPs of one conv layer per sample: 2 * K*C*R*S * Ho*Wo.
/// The single place the convention lives — FlopsModel and every analytical
/// sweep (e.g. the Fig. 6 union-vs-gating comparison) call this rather
/// than re-deriving the arithmetic. Channel counts are doubles because
/// sweeps evaluate hypothetical (keep-set-sized) widths.
double conv2d_forward_flops(double out_channels, double in_channels,
                            std::int64_t kernel, std::int64_t out_h,
                            std::int64_t out_w);

/// Backward FLOPs of the same conv: the dW GEMM + dX GEMM, ~2x forward.
double conv2d_backward_flops(double out_channels, double in_channels,
                             std::int64_t kernel, std::int64_t out_h,
                             std::int64_t out_w);

/// FLOP totals for one layer at batch size 1.
struct LayerFlops {
  int node = -1;
  std::string name;
  std::string type;
  double forward = 0;   ///< inference FLOPs per sample
  double backward = 0;  ///< additional backward FLOPs per sample
  double training() const { return forward + backward; }
};

/// Walks the network once and reports per-layer and total FLOPs per sample.
class FlopsModel {
 public:
  /// `input` is the per-sample input shape {C, H, W}.
  FlopsModel(graph::Network& net, Shape input);

  double inference_flops() const { return total_forward_; }
  double training_flops() const { return total_forward_ + total_backward_; }
  const std::vector<LayerFlops>& layers() const { return layers_; }

 private:
  std::vector<LayerFlops> layers_;
  double total_forward_ = 0;
  double total_backward_ = 0;
};

}  // namespace pt::cost
