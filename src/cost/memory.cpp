#include "cost/memory.h"

#include "cost/flops.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "tensor/im2col.h"

namespace pt::cost {

namespace {
constexpr double kBytes = 4.0;  // float32
}

MemoryModel::MemoryModel(graph::Network& net, Shape input,
                         const exec::ExecContext* ctx) {
  // Peak concurrent workspace leases: the forward sample loop holds one
  // im2col buffer per pool thread; backward holds col + dcol. Whichever is
  // larger bounds the arena's in-use bytes.
  const double concurrent_leases =
      std::max(2.0, ctx != nullptr ? static_cast<double>(ctx->num_threads()) : 1.0);
  Shape batched({1, input[0], input[1], input[2]});
  const auto shapes = infer_shapes(net, batched);
  for (int id : net.topo_order()) {
    if (id == 0) continue;
    const graph::Node& n = net.node(id);
    const Shape& out = shapes[static_cast<std::size_t>(id)];
    // Every node output is held for backward (including adds, whose output
    // feeds the next block's layers).
    breakdown_.activations_per_sample += static_cast<double>(out.numel()) * kBytes;
    if (n.kind != graph::Node::Kind::kLayer) continue;
    for (nn::Param* p : n.layer->params()) {
      breakdown_.parameters += static_cast<double>(p->value.numel()) * kBytes;
      breakdown_.optimizer_state +=
          2.0 * static_cast<double>(p->value.numel()) * kBytes;
    }
    if (const auto* conv = dynamic_cast<const nn::Conv2d*>(n.layer.get())) {
      const Shape& in = shapes[static_cast<std::size_t>(n.inputs[0])];
      ConvGeom g{conv->in_channels(), in[2], in[3], conv->kernel(), conv->stride(),
                 conv->pad()};
      const std::size_t col_floats =
          static_cast<std::size_t>(g.col_rows() * g.col_cols());
      breakdown_.workspace =
          std::max(breakdown_.workspace,
                   concurrent_leases *
                       static_cast<double>(
                           exec::Workspace::round_up_capacity(col_floats)) *
                       kBytes);
    }
    if (dynamic_cast<const nn::BatchNorm2d*>(n.layer.get()) != nullptr) {
      const Shape& in = shapes[static_cast<std::size_t>(n.inputs[0])];
      bn_traffic_per_sample_ += 7.0 * static_cast<double>(in.numel()) * kBytes;
    }
  }
}

std::int64_t MemoryModel::max_batch(double capacity_bytes, std::int64_t granularity,
                                    std::int64_t max_batch) const {
  std::int64_t best = granularity;
  for (std::int64_t b = granularity; b <= max_batch; b += granularity) {
    if (training_bytes(b) <= capacity_bytes) {
      best = b;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace pt::cost
