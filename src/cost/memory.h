// Training-memory-context and DRAM-traffic accounting.
//
// Two quantities the paper leans on:
//  1. The *training memory context* (Sec. 2.2): every layer's forward output
//     is live until backward consumes it, so the per-device memory need is
//     roughly sum(activation bytes) * batch + parameter state + workspace.
//     This drives Fig. 9 and dynamic mini-batch adjustment.
//  2. *BN DRAM traffic*: batch norm is memory-bandwidth bound; its cost is
//     bytes moved, not FLOPs (Fig. 8b/d "BN cost [TB]", and the claimed
//     37% BN-traffic saving for ResNet50/ImageNet).
#pragma once

#include <cstdint>

#include "exec/context.h"
#include "graph/network.h"

namespace pt::cost {

/// Byte-level accounting of one training iteration.
struct MemoryBreakdown {
  double activations_per_sample = 0;  ///< stored forward outputs, bytes/sample
  double parameters = 0;              ///< weight bytes
  double optimizer_state = 0;         ///< gradient + momentum bytes
  double workspace = 0;  ///< peak conv scratch bytes (exec::Workspace high water)

  double total(std::int64_t batch) const {
    return activations_per_sample * static_cast<double>(batch) + parameters +
           optimizer_state + workspace;
  }
};

class MemoryModel {
 public:
  /// `input` is the per-sample input shape {C, H, W}. `ctx` is the
  /// execution context the model will run on: the workspace term then
  /// predicts ctx's exec::Workspace high-water mark *exactly* — per-conv
  /// scratch rounded up to the arena's power-of-two size classes, times the
  /// peak concurrent lease count (ctx->num_threads() im2col buffers in the
  /// forward chunks, col+dcol in backward). Null models a single-threaded
  /// context. Assumes batch >= thread count (true of any practical config);
  /// tests/exec_test.cpp asserts model == measured.
  MemoryModel(graph::Network& net, Shape input,
              const exec::ExecContext* ctx = nullptr);

  const MemoryBreakdown& breakdown() const { return breakdown_; }

  /// Training-context bytes for a mini-batch of `batch` samples.
  double training_bytes(std::int64_t batch) const { return breakdown_.total(batch); }

  /// Largest batch that fits in `capacity_bytes`, quantized down to a
  /// multiple of `granularity` and clamped to [granularity, max_batch].
  /// Returns `granularity` even if nothing fits (the run must proceed).
  std::int64_t max_batch(double capacity_bytes, std::int64_t granularity,
                         std::int64_t max_batch) const;

  /// DRAM bytes moved by all BN layers in one training iteration per
  /// sample: ~3 passes forward (mean, variance, normalize+write) and
  /// ~4 passes backward (two reductions, dx compute reads dy and xhat,
  /// write dx), 4 bytes each.
  double bn_traffic_per_sample() const { return bn_traffic_per_sample_; }

 private:
  MemoryBreakdown breakdown_;
  double bn_traffic_per_sample_ = 0;
};

}  // namespace pt::cost
