#include "data/loader.h"

namespace pt::data {

void DataLoader::begin_epoch() {
  const std::int64_t n = dataset_->train_size();
  order_.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) order_[static_cast<std::size_t>(i)] = i;
  // Fisher-Yates with the loader's own deterministic stream.
  for (std::int64_t i = n - 1; i > 0; --i) {
    const std::int64_t j = static_cast<std::int64_t>(
        rng_.uniform_int(static_cast<std::uint64_t>(i + 1)));
    std::swap(order_[static_cast<std::size_t>(i)], order_[static_cast<std::size_t>(j)]);
  }
  cursor_ = 0;
}

Batch DataLoader::next(std::int64_t batch_size) {
  const std::int64_t n = static_cast<std::int64_t>(order_.size());
  const std::int64_t take = std::min(batch_size, n - cursor_);
  std::vector<std::int64_t> idx(order_.begin() + cursor_,
                                order_.begin() + cursor_ + take);
  cursor_ += take;
  Batch b;
  b.images = dataset_->gather_train(idx);
  b.labels.reserve(idx.size());
  for (std::int64_t i : idx) {
    b.labels.push_back(dataset_->train_labels()[static_cast<std::size_t>(i)]);
  }
  return b;
}

std::int64_t DataLoader::iterations_per_epoch(std::int64_t batch_size) const {
  const std::int64_t n = dataset_->train_size();
  return (n + batch_size - 1) / batch_size;
}

}  // namespace pt::data
