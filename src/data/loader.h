// Mini-batch loader with epoch shuffling and *resizable* batch size.
//
// The batch size is a per-epoch parameter rather than a construction-time
// constant because PruneTrain's dynamic mini-batch adjustment (Sec. 4.3)
// grows it at reconfiguration boundaries.
#pragma once

#include <cstdint>
#include <vector>

#include "data/synthetic.h"
#include "util/rng.h"

namespace pt::data {

/// One training mini-batch.
struct Batch {
  Tensor images;
  std::vector<std::int64_t> labels;
  std::int64_t size() const { return images.defined() ? images.shape()[0] : 0; }
};

class DataLoader {
 public:
  DataLoader(const SyntheticImageDataset& dataset, std::uint64_t seed)
      : dataset_(&dataset), rng_(seed) {}

  /// Starts a new epoch: reshuffles and resets the cursor.
  void begin_epoch();

  /// True when the current epoch still has samples left.
  bool has_next() const {
    return cursor_ < static_cast<std::int64_t>(order_.size());
  }

  /// Next mini-batch of up to `batch_size` samples (the final batch of an
  /// epoch may be smaller).
  Batch next(std::int64_t batch_size);

  /// Number of iterations one epoch takes at the given batch size.
  std::int64_t iterations_per_epoch(std::int64_t batch_size) const;

  /// Shuffle-RNG state capture/restore (checkpoint resume). Restoring the
  /// state at an epoch boundary reproduces the exact remaining shuffle
  /// sequence of an uninterrupted run.
  RngState rng_state() const { return rng_.state(); }
  void set_rng_state(const RngState& s) { rng_.set_state(s); }

 private:
  const SyntheticImageDataset* dataset_;
  Rng rng_;
  std::vector<std::int64_t> order_;
  std::int64_t cursor_ = 0;
};

}  // namespace pt::data
