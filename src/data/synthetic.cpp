#include "data/synthetic.h"

#include <cmath>

namespace pt::data {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// One smooth template: sum of `modes` random 2-D cosine modes per channel,
/// normalized to roughly unit RMS.
Tensor make_template(std::int64_t c, std::int64_t h, std::int64_t w, Rng& rng,
                     int modes = 4) {
  Tensor t({c, h, w});
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (int m = 0; m < modes; ++m) {
      const double fy = rng.uniform(0.5, 2.5);
      const double fx = rng.uniform(0.5, 2.5);
      const double py = rng.uniform(0.0, 2.0 * kPi);
      const double px = rng.uniform(0.0, 2.0 * kPi);
      const double amp = rng.normal(0.0, 1.0);
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          t.at(ch, y, x) += static_cast<float>(
              amp * std::cos(2.0 * kPi * fy * y / static_cast<double>(h) + py) *
              std::cos(2.0 * kPi * fx * x / static_cast<double>(w) + px));
        }
      }
    }
  }
  // Normalize to unit RMS so `noise` has a consistent meaning.
  double ss = 0.0;
  for (float v : t.span()) ss += static_cast<double>(v) * v;
  const float scale = static_cast<float>(1.0 / std::sqrt(ss / static_cast<double>(t.numel()) + 1e-12));
  for (float& v : t.span()) v *= scale;
  return t;
}

/// Writes template `tpl` circularly shifted by (dy, dx) plus noise into `out`.
void render_sample(const Tensor& tpl, std::int64_t dy, std::int64_t dx, float noise,
                   Rng& rng, float* out) {
  const std::int64_t c = tpl.shape()[0], h = tpl.shape()[1], w = tpl.shape()[2];
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t y = 0; y < h; ++y) {
      const std::int64_t sy = (y + dy % h + h) % h;
      for (std::int64_t x = 0; x < w; ++x) {
        const std::int64_t sx = (x + dx % w + w) % w;
        out[(ch * h + y) * w + x] =
            tpl.at(ch, sy, sx) + static_cast<float>(rng.normal(0.0, noise));
      }
    }
  }
}

}  // namespace

// Preset difficulty is tuned (see DESIGN.md) so a width-scaled ResNet
// reaches ~90% dense-baseline accuracy with a real generalization gap —
// the regime where group-lasso pruning trades FLOPs against accuracy the
// way the paper's CIFAR/ImageNet runs do.

SyntheticSpec SyntheticSpec::cifar10_like() {
  SyntheticSpec s;
  s.name = "SynthCIFAR10";
  s.classes = 10;
  s.channels = 3;
  s.height = 8;
  s.width = 8;
  s.train_samples = 512;
  s.test_samples = 256;
  s.noise = 0.8f;
  s.max_shift = 2;
  s.seed = 11;
  return s;
}

SyntheticSpec SyntheticSpec::cifar100_like() {
  SyntheticSpec s;
  s.name = "SynthCIFAR100";
  s.classes = 20;
  s.channels = 3;
  s.height = 8;
  s.width = 8;
  s.train_samples = 640;
  s.test_samples = 320;
  s.noise = 0.9f;
  s.max_shift = 2;
  s.seed = 12;
  return s;
}

SyntheticSpec SyntheticSpec::imagenet_like() {
  SyntheticSpec s;
  s.name = "SynthImageNet";
  s.classes = 16;
  s.channels = 3;
  s.height = 16;
  s.width = 16;
  s.train_samples = 512;
  s.test_samples = 256;
  s.noise = 0.8f;
  s.max_shift = 3;
  s.seed = 13;
  return s;
}

SyntheticImageDataset::SyntheticImageDataset(const SyntheticSpec& spec)
    : spec_(spec) {
  Rng rng(spec.seed);
  std::vector<Tensor> templates;
  templates.reserve(static_cast<std::size_t>(spec.classes));
  for (std::int64_t c = 0; c < spec.classes; ++c) {
    templates.push_back(make_template(spec.channels, spec.height, spec.width, rng));
  }
  const std::int64_t sample_len = spec.channels * spec.height * spec.width;
  auto synth = [&](std::int64_t count, Tensor& images,
                   std::vector<std::int64_t>& labels) {
    images = Tensor({count, spec.channels, spec.height, spec.width});
    labels.resize(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      const std::int64_t cls = static_cast<std::int64_t>(rng.uniform_int(
          static_cast<std::uint64_t>(spec.classes)));
      labels[static_cast<std::size_t>(i)] = cls;
      const std::int64_t dy =
          spec.max_shift > 0
              ? static_cast<std::int64_t>(rng.uniform_int(
                    static_cast<std::uint64_t>(2 * spec.max_shift + 1))) -
                    spec.max_shift
              : 0;
      const std::int64_t dx =
          spec.max_shift > 0
              ? static_cast<std::int64_t>(rng.uniform_int(
                    static_cast<std::uint64_t>(2 * spec.max_shift + 1))) -
                    spec.max_shift
              : 0;
      render_sample(templates[static_cast<std::size_t>(cls)], dy, dx, spec.noise, rng,
                    images.data() + i * sample_len);
    }
  };
  synth(spec.train_samples, train_images_, train_labels_);
  synth(spec.test_samples, test_images_, test_labels_);
}

Tensor SyntheticImageDataset::gather_train(
    const std::vector<std::int64_t>& indices) const {
  const Shape& s = train_images_.shape();
  const std::int64_t sample_len = s[1] * s[2] * s[3];
  Tensor batch({static_cast<std::int64_t>(indices.size()), s[1], s[2], s[3]});
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const float* src = train_images_.data() + indices[i] * sample_len;
    float* dst = batch.data() + static_cast<std::int64_t>(i) * sample_len;
    for (std::int64_t q = 0; q < sample_len; ++q) dst[q] = src[q];
  }
  return batch;
}

}  // namespace pt::data
