// Synthetic image-classification datasets standing in for CIFAR-10/100 and
// ImageNet (which are not available offline — see DESIGN.md, substitution
// table).
//
// Each class is a smooth random template (a few random low-frequency cosine
// modes per channel); samples are the class template plus Gaussian pixel
// noise and a random circular shift. This yields a task that a small CNN
// genuinely has to learn (translation variance + noise), while keeping the
// group-lasso sparsification dynamics — which depend on the optimizer and
// regularizer, not on photographic content — intact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace pt::data {

/// Geometry + difficulty knobs of a synthetic dataset.
struct SyntheticSpec {
  std::string name = "synth";
  std::int64_t classes = 10;
  std::int64_t channels = 3;
  std::int64_t height = 16;
  std::int64_t width = 16;
  std::int64_t train_samples = 512;
  std::int64_t test_samples = 256;
  float noise = 0.6f;       ///< pixel noise stddev relative to unit templates
  std::int64_t max_shift = 2;  ///< max circular shift in each spatial dim
  std::uint64_t seed = 1;

  /// CIFAR-10-like proxy (10 classes, 3x16x16).
  static SyntheticSpec cifar10_like();
  /// CIFAR-100-like proxy: more classes, noisier (a harder problem).
  static SyntheticSpec cifar100_like();
  /// ImageNet-like proxy: larger images, more classes.
  static SyntheticSpec imagenet_like();
};

/// In-memory dataset: images [N, C, H, W] plus integer labels.
class SyntheticImageDataset {
 public:
  explicit SyntheticImageDataset(const SyntheticSpec& spec);

  const SyntheticSpec& spec() const { return spec_; }
  std::int64_t train_size() const { return train_images_.shape()[0]; }
  std::int64_t test_size() const { return test_images_.shape()[0]; }

  const Tensor& train_images() const { return train_images_; }
  const std::vector<std::int64_t>& train_labels() const { return train_labels_; }
  const Tensor& test_images() const { return test_images_; }
  const std::vector<std::int64_t>& test_labels() const { return test_labels_; }

  /// Copies the given sample rows into a batch tensor.
  Tensor gather_train(const std::vector<std::int64_t>& indices) const;

 private:
  SyntheticSpec spec_;
  Tensor train_images_;
  std::vector<std::int64_t> train_labels_;
  Tensor test_images_;
  std::vector<std::int64_t> test_labels_;
};

}  // namespace pt::data
