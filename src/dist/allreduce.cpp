#include "dist/allreduce.h"

#include <algorithm>
#include <sstream>

#include "telemetry/metrics.h"

namespace pt::dist {

namespace {

std::string divergence_message(int replica, std::size_t param_count,
                               std::size_t expected_count) {
  std::ostringstream os;
  os << "allreduce: replica " << replica << " diverged: " << param_count
     << " params, group has " << expected_count;
  return os.str();
}

}  // namespace

ReplicaDivergence::ReplicaDivergence(int replica, std::size_t param_count,
                                     std::size_t expected_count)
    : std::logic_error(divergence_message(replica, param_count,
                                          expected_count)),
      replica_(replica),
      param_count_(param_count),
      expected_count_(expected_count) {}

robust::HealthEvent ReplicaDivergence::to_health_event(
    std::int64_t epoch) const {
  return {robust::EventType::kReplicaDivergence, robust::Severity::kFatal,
          epoch, static_cast<double>(replica_), what()};
}

ExchangeStats exchange_gradients(GradientCodec& codec,
                                 const std::vector<graph::Network*>& nets,
                                 const std::vector<double>& weights,
                                 exec::ExecContext& ctx,
                                 const std::vector<int>& ranks) {
  ExchangeStats stats;
  if (weights.size() != nets.size()) {
    throw std::invalid_argument("allreduce: weight count mismatch");
  }
  if (nets.empty()) return stats;
  double total_weight = 0;
  for (double w : weights) total_weight += w;
  if (total_weight <= 0) return stats;

  std::vector<std::vector<nn::Param*>> params;
  params.reserve(nets.size());
  for (graph::Network* n : nets) params.push_back(n->params());
  const std::size_t np = params[0].size();
  for (std::size_t i = 1; i < params.size(); ++i) {
    if (params[i].size() == np) continue;
    const int rank = ranks.empty() ? static_cast<int>(i) : ranks.at(i);
    ReplicaDivergence err(rank, params[i].size(), np);
    if (telemetry::enabled()) {
      telemetry::event("health/replica-divergence", err.what());
    }
    throw err;
  }
  if (codec.sizes().size() != np) {
    throw std::logic_error(
        "exchange: codec '" + codec.name() + "' is bound to " +
        std::to_string(codec.sizes().size()) + " tensors, group has " +
        std::to_string(np) + " (rebind after reconfiguration)");
  }

  // Encode -> decode -> reduce, one tensor at a time. The decoded staging
  // buffers make the averaging loop codec-agnostic: with the dense codec
  // they hold the gradients bit-for-bit, so the weighted average below is
  // bitwise the pre-codec exchange. Summation runs in replica-index order
  // per element (each element is an independent serial chain), so N-thread
  // results match 1-thread results by the pool's chunking contract.
  std::vector<std::vector<float>> decoded(nets.size());
  for (std::size_t i = 0; i < np; ++i) {
    nn::Param* root = params[0][i];
    const std::int64_t n = root->grad.numel();
    if (codec.sizes()[i] != n) {
      throw std::logic_error("exchange: codec '" + codec.name() +
                             "' expects " + std::to_string(codec.sizes()[i]) +
                             " elements for tensor " + std::to_string(i) +
                             ", group has " + std::to_string(n) +
                             " (rebind after reconfiguration)");
    }
    // Per-worker volume: count one participant's contribution per tensor
    // (every participant ships the same encoded sizes).
    bool counted = false;
    for (std::size_t r = 0; r < nets.size(); ++r) {
      if (weights[r] == 0) continue;
      const int rank = ranks.empty() ? static_cast<int>(r) : ranks.at(r);
      WireTensor wire =
          codec.encode(rank, i, params[r][i]->grad.data(), n, ctx);
      decoded[r].resize(static_cast<std::size_t>(n));
      codec.decode(wire, i, decoded[r].data(), ctx);
      if (!counted) {
        stats.wire_bytes += wire.wire_bytes;
        stats.dense_bytes += static_cast<double>(n) * 4.0;
        counted = true;
      }
    }

    ctx.pool().parallel_for(n, [&](std::int64_t begin, std::int64_t end, int) {
      for (std::int64_t q = begin; q < end; ++q) {
        double acc = 0;
        for (std::size_t r = 0; r < nets.size(); ++r) {
          if (weights[r] == 0) continue;
          acc += weights[r] *
                 static_cast<double>(decoded[r][static_cast<std::size_t>(q)]);
        }
        root->grad.data()[q] = static_cast<float>(acc / total_weight);
      }
    });
    for (std::size_t r = 1; r < nets.size(); ++r) {
      std::copy(root->grad.data(), root->grad.data() + n,
                params[r][i]->grad.data());
    }
  }
  return stats;
}

}  // namespace pt::dist
