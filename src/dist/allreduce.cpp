#include "dist/allreduce.h"

#include <algorithm>
#include <sstream>

#include "telemetry/metrics.h"

namespace pt::dist {

namespace {

std::string divergence_message(int replica, std::size_t param_count,
                               std::size_t expected_count) {
  std::ostringstream os;
  os << "allreduce: replica " << replica << " diverged: " << param_count
     << " params, group has " << expected_count;
  return os.str();
}

}  // namespace

ReplicaDivergence::ReplicaDivergence(int replica, std::size_t param_count,
                                     std::size_t expected_count)
    : std::logic_error(divergence_message(replica, param_count,
                                          expected_count)),
      replica_(replica),
      param_count_(param_count),
      expected_count_(expected_count) {}

robust::HealthEvent ReplicaDivergence::to_health_event(
    std::int64_t epoch) const {
  return {robust::EventType::kReplicaDivergence, robust::Severity::kFatal,
          epoch, static_cast<double>(replica_), what()};
}

void allreduce_gradients(const std::vector<graph::Network*>& nets,
                         const std::vector<double>& weights,
                         const std::vector<int>& ranks) {
  if (weights.size() != nets.size()) {
    throw std::invalid_argument("allreduce: weight count mismatch");
  }
  if (nets.empty()) return;
  double total_weight = 0;
  for (double w : weights) total_weight += w;
  if (total_weight <= 0) return;

  std::vector<std::vector<nn::Param*>> params;
  params.reserve(nets.size());
  for (graph::Network* n : nets) params.push_back(n->params());
  const std::size_t np = params[0].size();
  for (std::size_t i = 1; i < params.size(); ++i) {
    if (params[i].size() == np) continue;
    const int rank = ranks.empty() ? static_cast<int>(i) : ranks.at(i);
    ReplicaDivergence err(rank, params[i].size(), np);
    if (telemetry::enabled()) {
      telemetry::event("health/replica-divergence", err.what());
    }
    throw err;
  }

  // Reduce: weighted average into nets[0]'s gradient buffers, then
  // broadcast. Deterministic summation order (replica index order) keeps
  // replicas bit-identical across the run. Zero-weight replicas (failed or
  // empty shards) contribute nothing but still receive the broadcast.
  for (std::size_t i = 0; i < np; ++i) {
    nn::Param* root = params[0][i];
    const std::int64_t n = root->grad.numel();
    for (std::int64_t q = 0; q < n; ++q) {
      double acc = 0;
      for (std::size_t r = 0; r < nets.size(); ++r) {
        if (weights[r] == 0) continue;
        acc += weights[r] * params[r][i]->grad.data()[q];
      }
      root->grad.data()[q] = static_cast<float>(acc / total_weight);
    }
    for (std::size_t r = 1; r < nets.size(); ++r) {
      std::copy(root->grad.data(), root->grad.data() + n,
                params[r][i]->grad.data());
    }
  }
}

}  // namespace pt::dist
