// Shared codec-driven gradient exchange for the simulated clusters.
//
// Both dist::Cluster (fixed membership) and dist::ElasticCluster (elastic
// membership) exchange gradients the same way: every participating replica
// encodes its gradients through the cluster's GradientCodec, the decoded
// payloads are averaged (weighted, in replica-index order) into the first
// network's buffers, and the result is broadcast — deterministic summation
// order keeps every receiving replica bit-identical, and with the `dense`
// codec the arithmetic is bit-for-bit the pre-codec exchange. The only
// structural failure mode is a diverged parameter table (a replica whose
// topology no longer matches the group, e.g. a stale-shape rejoiner that
// skipped its resync fence); that is reported as ReplicaDivergence naming
// the offending replica, not a bare logic_error.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/codec.h"
#include "exec/context.h"
#include "graph/network.h"
#include "robust/health.h"

namespace pt::dist {

/// A replica's parameter table does not match the group's: carries the
/// replica rank and both param counts so the operator can tell *which*
/// worker drifted, and converts to a structured HealthEvent for the
/// guardian pathway.
class ReplicaDivergence : public std::logic_error {
 public:
  ReplicaDivergence(int replica, std::size_t param_count,
                    std::size_t expected_count);

  int replica() const { return replica_; }
  std::size_t param_count() const { return param_count_; }
  std::size_t expected_count() const { return expected_count_; }

  /// Fatal kReplicaDivergence event (caller stamps the epoch).
  robust::HealthEvent to_health_event(std::int64_t epoch = -1) const;

 private:
  int replica_;
  std::size_t param_count_;
  std::size_t expected_count_;
};

/// Bytes one worker contributed to the exchange (sum over its tensors).
struct ExchangeStats {
  double wire_bytes = 0;   ///< encoded bytes as the codec would ship them
  double dense_bytes = 0;  ///< FP32-dense equivalent of the same gradients
};

/// Exchanges every parameter gradient across `nets` through `codec`:
/// participating nets (weights[i] > 0) encode, everyone receives the
/// weighted average of the decoded payloads (weights[i] == 0 means
/// excluded from the reduction but still receiving the broadcast).
/// `ranks` maps index -> replica rank for error reporting and per-replica
/// codec state, and may be empty (identity). The codec must be bound to
/// the nets' current topology. Throws ReplicaDivergence when a net's param
/// table size differs from nets[0]'s; a zero total weight is a no-op.
ExchangeStats exchange_gradients(GradientCodec& codec,
                                 const std::vector<graph::Network*>& nets,
                                 const std::vector<double>& weights,
                                 exec::ExecContext& ctx,
                                 const std::vector<int>& ranks = {});

}  // namespace pt::dist
