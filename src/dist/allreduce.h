// Shared weighted gradient allreduce for the simulated clusters.
//
// Both dist::Cluster (fixed membership) and dist::ElasticCluster (elastic
// membership) average gradients the same way: weighted sum in replica-index
// order into the first network's buffers, then broadcast — deterministic
// summation order keeps every receiving replica bit-identical. The only
// structural failure mode is a diverged parameter table (a replica whose
// topology no longer matches the group, e.g. a stale-shape rejoiner that
// skipped its resync fence); that is reported as ReplicaDivergence naming
// the offending replica, not a bare logic_error.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/network.h"
#include "robust/health.h"

namespace pt::dist {

/// A replica's parameter table does not match the group's: carries the
/// replica rank and both param counts so the operator can tell *which*
/// worker drifted, and converts to a structured HealthEvent for the
/// guardian pathway.
class ReplicaDivergence : public std::logic_error {
 public:
  ReplicaDivergence(int replica, std::size_t param_count,
                    std::size_t expected_count);

  int replica() const { return replica_; }
  std::size_t param_count() const { return param_count_; }
  std::size_t expected_count() const { return expected_count_; }

  /// Fatal kReplicaDivergence event (caller stamps the epoch).
  robust::HealthEvent to_health_event(std::int64_t epoch = -1) const;

 private:
  int replica_;
  std::size_t param_count_;
  std::size_t expected_count_;
};

/// Averages every parameter gradient across `nets`, weighting net i by
/// `weights[i]` (0 = excluded from the reduction but still receives the
/// broadcast). `ranks` maps index -> replica rank for error reporting and
/// may be empty (identity). Throws ReplicaDivergence when a net's param
/// table size differs from nets[0]'s; a zero total weight is a no-op.
void allreduce_gradients(const std::vector<graph::Network*>& nets,
                         const std::vector<double>& weights,
                         const std::vector<int>& ranks = {});

}  // namespace pt::dist
