#include "dist/cluster.h"

#include <stdexcept>

#include "nn/loss.h"
#include "tensor/ops.h"

namespace pt::dist {

Cluster::Cluster(std::vector<graph::Network> replicas, cost::CommSpec comm)
    : replicas_(std::move(replicas)), comm_(comm) {
  if (replicas_.empty()) throw std::invalid_argument("cluster needs >= 1 replica");
  if (static_cast<int>(replicas_.size()) != comm_.spec().gpus) {
    throw std::invalid_argument("comm spec GPU count must match replica count");
  }
}

double Cluster::update_bytes() const {
  auto& net = const_cast<graph::Network&>(replicas_.front());
  const double model_bytes = static_cast<double>(net.num_params()) * 4.0;
  return comm_.ring_bytes_per_update(model_bytes);
}

void Cluster::allreduce_gradients(const std::vector<double>& weights) {
  if (weights.size() != replicas_.size()) {
    throw std::invalid_argument("allreduce: weight count mismatch");
  }
  double total_weight = 0;
  for (double w : weights) total_weight += w;
  if (total_weight <= 0) return;

  std::vector<std::vector<nn::Param*>> params;
  params.reserve(replicas_.size());
  for (auto& r : replicas_) params.push_back(r.params());
  const std::size_t np = params[0].size();
  for (const auto& p : params) {
    if (p.size() != np) throw std::logic_error("allreduce: replica divergence");
  }

  // Reduce: weighted average into replica 0's gradient buffers, then
  // broadcast. Deterministic summation order (replica index order) keeps
  // replicas bit-identical across the run.
  for (std::size_t i = 0; i < np; ++i) {
    nn::Param* root = params[0][i];
    const std::int64_t n = root->grad.numel();
    for (std::int64_t q = 0; q < n; ++q) {
      double acc = 0;
      for (std::size_t r = 0; r < replicas_.size(); ++r) {
        acc += weights[r] * params[r][i]->grad.data()[q];
      }
      root->grad.data()[q] = static_cast<float>(acc / total_weight);
    }
    for (std::size_t r = 1; r < replicas_.size(); ++r) {
      std::copy(root->grad.data(), root->grad.data() + n,
                params[r][i]->grad.data());
    }
  }
}

StepResult Cluster::step(const data::Batch& batch, optim::SGD& opt) {
  const int p = size();
  const std::int64_t total = batch.size();
  if (total < p) {
    throw std::invalid_argument("mini-batch smaller than replica count");
  }
  const Shape& s = batch.images.shape();
  const std::int64_t sample_len = s[1] * s[2] * s[3];

  StepResult result;
  std::vector<double> shard_sizes;
  std::int64_t offset = 0;
  for (int r = 0; r < p; ++r) {
    // Contiguous shard; the first (total % p) replicas take one extra.
    const std::int64_t shard = total / p + (r < total % p ? 1 : 0);
    Tensor images({shard, s[1], s[2], s[3]});
    std::copy(batch.images.data() + offset * sample_len,
              batch.images.data() + (offset + shard) * sample_len, images.data());
    std::vector<std::int64_t> labels(
        batch.labels.begin() + offset, batch.labels.begin() + offset + shard);
    offset += shard;
    shard_sizes.push_back(static_cast<double>(shard));

    graph::Network& net = replicas_[static_cast<std::size_t>(r)];
    net.zero_grad();
    nn::SoftmaxCrossEntropy loss;
    Tensor out = net.forward(images, true);
    result.loss += loss.forward(out, labels) * static_cast<double>(shard);
    result.correct += loss.correct();
    net.backward(loss.backward());
  }
  result.loss /= static_cast<double>(total);

  allreduce_gradients(shard_sizes);
  for (auto& r : replicas_) opt.step(r.params());

  const double model_bytes =
      static_cast<double>(replicas_[0].num_params()) * 4.0;
  result.comm_bytes_per_gpu = comm_.ring_bytes_per_update(model_bytes);
  result.comm_time_modeled = comm_.hierarchical_time_per_update(model_bytes);
  return result;
}

}  // namespace pt::dist
