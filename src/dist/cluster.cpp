#include "dist/cluster.h"

#include <stdexcept>

#include "dist/codec_zoo.h"
#include "nn/loss.h"
#include "telemetry/metrics.h"
#include "tensor/ops.h"

namespace pt::dist {

void FaultPolicy::validate() const {
  if (max_retries < 0) {
    throw std::invalid_argument("FaultPolicy: max_retries must be >= 0 (got " +
                                std::to_string(max_retries) + ")");
  }
  if (!(timeout_seconds >= 0.0)) {
    throw std::invalid_argument(
        "FaultPolicy: timeout_seconds must be >= 0 (got " +
        std::to_string(timeout_seconds) + ")");
  }
}

Cluster::Cluster(std::vector<graph::Network> replicas, cost::CommSpec comm)
    : replicas_(std::move(replicas)), comm_(comm) {
  if (replicas_.empty()) throw std::invalid_argument("cluster needs >= 1 replica");
  if (static_cast<int>(replicas_.size()) != comm_.spec().gpus) {
    throw std::invalid_argument("comm spec GPU count must match replica count");
  }
  set_codec(std::make_shared<DenseCodec>());
}

void Cluster::set_codec(std::shared_ptr<GradientCodec> codec) {
  if (!codec) throw std::invalid_argument("cluster codec must not be null");
  codec_ = std::move(codec);
  codec_->bind(replicas_.front(), size());
}

void Cluster::set_fault_injector(robust::FaultInjector injector,
                                 FaultPolicy policy) {
  policy.validate();
  injector_ = std::move(injector);
  policy_ = policy;
}

double Cluster::update_bytes() const {
  cost::CommQuery q;
  q.model_bytes = static_cast<double>(replicas_.front().num_params()) * 4.0;
  q.members = static_cast<int>(replicas_.size());
  q.live_fraction = codec_->live_fraction();
  q.codec = codec_->cost_kind();
  return comm_.cost(q).wire_bytes;
}

void Cluster::rebind_codec_if_stale() {
  const auto params = replicas_.front().params();
  const auto& sizes = codec_->sizes();
  bool stale = sizes.size() != params.size();
  for (std::size_t i = 0; !stale && i < params.size(); ++i) {
    stale = sizes[i] != params[i]->grad.numel();
  }
  if (stale) codec_->bind(replicas_.front(), size());
}

ExchangeStats Cluster::exchange_gradients(const std::vector<double>& weights,
                                          exec::ExecContext& ctx) {
  rebind_codec_if_stale();
  std::vector<graph::Network*> nets;
  nets.reserve(replicas_.size());
  for (auto& r : replicas_) nets.push_back(&r);
  // Shared helper throws ReplicaDivergence naming the offending replica.
  return dist::exchange_gradients(*codec_, nets, weights, ctx);
}

StepResult Cluster::step(exec::ExecContext& ctx, const data::Batch& batch,
                         optim::SGD& opt) {
  telemetry::ScopedTimer step_span("dist/step");
  const int p = size();
  const std::int64_t total = batch.size();
  if (total <= 0) throw std::invalid_argument("empty mini-batch");
  const Shape& s = batch.images.shape();
  const std::int64_t sample_len = s[1] * s[2] * s[3];
  const std::int64_t step_id = step_counter_++;

  StepResult result;
  std::vector<double> weights(static_cast<std::size_t>(p), 0.0);
  std::int64_t offset = 0;
  int survivors = 0;
  for (int r = 0; r < p; ++r) {
    // Contiguous shard; the first (total % p) replicas take one extra.
    // Batches smaller than the replica count leave trailing shards empty:
    // those replicas skip compute and carry zero allreduce weight — the
    // same degraded-shard path a failed replica takes (dynamic mini-batch
    // shrink can legitimately produce such batches).
    const std::int64_t shard = total / p + (r < total % p ? 1 : 0);
    if (shard == 0) continue;

    // Failure model: a dropped replica, or one delayed past the timeout,
    // fails the attempt (charged timeout_seconds of modeled detection
    // time) and is retried; within-timeout delays are charged as modeled
    // straggler wait on the synchronous step.
    bool ok = true;
    if (injector_.armed()) {
      for (std::int64_t attempt = 0;; ++attempt) {
        const bool dropped = injector_.drop_replica(r, step_id);
        const double delay = dropped ? 0.0 : injector_.replica_delay(r, step_id);
        if (!dropped && delay <= policy_.timeout_seconds) {
          result.fault_wait_seconds += delay;
          ok = true;
          break;
        }
        result.fault_wait_seconds += policy_.timeout_seconds;
        if (attempt >= policy_.max_retries) {
          ok = false;
          break;
        }
        ++result.retries;
      }
    }
    if (!ok) {
      ++result.dropped_replicas;
      offset += shard;
      continue;
    }

    Tensor images({shard, s[1], s[2], s[3]});
    std::copy(batch.images.data() + offset * sample_len,
              batch.images.data() + (offset + shard) * sample_len, images.data());
    std::vector<std::int64_t> labels(
        batch.labels.begin() + offset, batch.labels.begin() + offset + shard);
    offset += shard;

    graph::Network& net = replicas_[static_cast<std::size_t>(r)];
    net.zero_grad();
    nn::SoftmaxCrossEntropy loss;
    Tensor out = net.forward(ctx, images, true);
    result.loss += loss.forward(out, labels) * static_cast<double>(shard);
    result.correct += loss.correct();
    net.backward(ctx, loss.backward());
    if (injector_.armed()) injector_.corrupt_gradients(net, -1, step_id, r);
    weights[static_cast<std::size_t>(r)] = static_cast<double>(shard);
    result.processed += shard;
    ++survivors;
  }
  if (survivors == 0) {
    throw std::runtime_error("cluster step: every replica failed (batch " +
                             std::to_string(total) + ", " + std::to_string(p) +
                             " replicas)");
  }
  result.loss /= static_cast<double>(result.processed);

  exchange_gradients(weights, ctx);
  for (auto& r : replicas_) opt.step(r.params());

  cost::CommQuery comm_query;
  comm_query.model_bytes =
      static_cast<double>(replicas_[0].num_params()) * 4.0;
  comm_query.members = p;
  comm_query.live_fraction = codec_->live_fraction();
  comm_query.codec = codec_->cost_kind();
  const cost::CommCost comm_cost = comm_.cost(comm_query);
  result.comm_bytes_per_gpu = comm_cost.wire_bytes;
  result.comm_time_modeled = comm_cost.hierarchical_time;
  if (telemetry::enabled()) {
    telemetry::count("dist/steps");
    telemetry::count("dist/allreduce_bytes", result.comm_bytes_per_gpu);
    if (result.retries > 0) {
      telemetry::count("dist/retries", static_cast<double>(result.retries));
    }
    if (result.dropped_replicas > 0) {
      telemetry::count("dist/dropped_replicas",
                       static_cast<double>(result.dropped_replicas));
    }
  }
  return result;
}

}  // namespace pt::dist
