// Simulated data-parallel training cluster (Sec. 2.2 "Distributed
// Training"): N replica models trained in-process with a deterministic
// gradient allreduce, standing in for the paper's 4-GPU NCCL setup.
//
// Semantics match synchronous data parallelism exactly: the mini-batch is
// sharded across replicas, each computes local gradients, gradients are
// averaged (weighted by shard size), and every replica applies the same
// optimizer step — so replicas stay bit-identical. Communication *volume*
// is accounted with the ring-allreduce cost model from src/cost.
//
// Fault model (ISSUE 2): an attached robust::FaultInjector can drop or
// delay replicas per step. A delayed replica past the timeout, or a
// dropped one, is retried up to FaultPolicy::max_retries; a replica that
// stays down has its shard reweighted onto the survivors (weight 0 in the
// allreduce, its samples excluded from the loss) — and still receives the
// averaged gradient broadcast plus the common optimizer step, so replicas
// remain bit-identical and the straggler rejoins the next step. Batches
// smaller than the replica count degrade the same way: empty shards simply
// carry zero weight.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cost/comm.h"
#include "data/loader.h"
#include "dist/allreduce.h"
#include "dist/codec.h"
#include "exec/context.h"
#include "graph/network.h"
#include "optim/sgd.h"
#include "robust/fault.h"

namespace pt::dist {

struct StepResult {
  double loss = 0;                 ///< mean loss over *processed* samples
  std::int64_t correct = 0;        ///< correct predictions among processed
  std::int64_t processed = 0;      ///< samples actually trained this step
  double comm_bytes_per_gpu = 0;   ///< ring-allreduce bytes moved per worker
  double comm_time_modeled = 0;    ///< modeled allreduce time (hierarchical)
  std::int64_t retries = 0;        ///< failed replica attempts that were retried
  std::int64_t dropped_replicas = 0;  ///< replicas excluded after max_retries
  double fault_wait_seconds = 0;   ///< modeled straggler / timeout time
};

/// Timeout + retry semantics for replica failures.
struct FaultPolicy {
  std::int64_t max_retries = 2;   ///< re-attempts per replica per step
  double timeout_seconds = 1.0;   ///< modeled detection time per failed attempt

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class Cluster {
 public:
  /// Takes ownership of `replicas`, which must be structurally identical
  /// and identically initialized (build them with the same seed).
  Cluster(std::vector<graph::Network> replicas, cost::CommSpec comm);

  int size() const { return static_cast<int>(replicas_.size()); }
  graph::Network& replica(int i) { return replicas_[static_cast<std::size_t>(i)]; }

  /// Attaches a fault injector (by value; pass {} to disarm). Drop/delay
  /// faults consult it once per (replica, attempt); gradient faults are
  /// applied to the matching replica after its backward pass.
  void set_fault_injector(robust::FaultInjector injector, FaultPolicy policy = {});
  const robust::FaultInjector& fault_injector() const { return injector_; }

  /// One synchronous data-parallel training step on `batch`, executing
  /// every replica's forward/backward on `ctx`. Throws std::runtime_error
  /// if *every* populated shard's replica fails.
  StepResult step(exec::ExecContext& ctx, const data::Batch& batch,
                  optim::SGD& opt);

  /// Context-free shim: single-threaded step on ExecContext::serial().
  StepResult step(const data::Batch& batch, optim::SGD& opt) {
    return step(exec::ExecContext::serial(), batch, opt);
  }

  /// Exchanges every parameter gradient across replicas through the
  /// attached codec, weighting each replica by `weights[i]` (shard sizes;
  /// 0 = excluded). Exposed for testing.
  ExchangeStats exchange_gradients(const std::vector<double>& weights,
                                   exec::ExecContext& ctx);
  ExchangeStats exchange_gradients(const std::vector<double>& weights) {
    return exchange_gradients(weights, exec::ExecContext::serial());
  }

  /// Replaces the gradient codec (default: `dense`) and binds it to the
  /// current replica topology. Shape-compatible codec state (loaded from a
  /// checkpoint) survives the bind.
  void set_codec(std::shared_ptr<GradientCodec> codec);
  GradientCodec& codec() { return *codec_; }

  /// Gradient bytes exchanged per update (per worker), at the codec's
  /// compressed volume.
  double update_bytes() const;

  const cost::CommModel& comm() const { return comm_; }

 private:
  /// Rebinds the codec when pruning surgery changed parameter shapes since
  /// the last bind. Direct Cluster users prune replicas in place and keep
  /// stepping (pre-codec behavior); the trainer additionally rebinds after
  /// every reconfiguration to recompact masks that shape checks can't see
  /// (rows zeroed but not removed).
  void rebind_codec_if_stale();

  std::vector<graph::Network> replicas_;
  cost::CommModel comm_;
  std::shared_ptr<GradientCodec> codec_;
  robust::FaultInjector injector_;
  FaultPolicy policy_;
  std::int64_t step_counter_ = 0;  ///< global step index for fault matching
};

}  // namespace pt::dist
