// Simulated data-parallel training cluster (Sec. 2.2 "Distributed
// Training"): N replica models trained in-process with a deterministic
// gradient allreduce, standing in for the paper's 4-GPU NCCL setup.
//
// Semantics match synchronous data parallelism exactly: the mini-batch is
// sharded across replicas, each computes local gradients, gradients are
// averaged (weighted by shard size), and every replica applies the same
// optimizer step — so replicas stay bit-identical. Communication *volume*
// is accounted with the ring-allreduce cost model from src/cost.
#pragma once

#include <cstdint>
#include <vector>

#include "cost/comm.h"
#include "data/loader.h"
#include "graph/network.h"
#include "optim/sgd.h"

namespace pt::dist {

struct StepResult {
  double loss = 0;                 ///< mini-batch mean loss
  std::int64_t correct = 0;        ///< correct predictions in the mini-batch
  double comm_bytes_per_gpu = 0;   ///< ring-allreduce bytes moved per worker
  double comm_time_modeled = 0;    ///< modeled allreduce time (hierarchical)
};

class Cluster {
 public:
  /// Takes ownership of `replicas`, which must be structurally identical
  /// and identically initialized (build them with the same seed).
  Cluster(std::vector<graph::Network> replicas, cost::CommSpec comm);

  int size() const { return static_cast<int>(replicas_.size()); }
  graph::Network& replica(int i) { return replicas_[static_cast<std::size_t>(i)]; }

  /// One synchronous data-parallel training step on `batch`.
  StepResult step(const data::Batch& batch, optim::SGD& opt);

  /// Averages every parameter gradient across replicas, weighting each
  /// replica by `weights[i]` (shard sizes). Exposed for testing.
  void allreduce_gradients(const std::vector<double>& weights);

  /// Gradient bytes exchanged per update (per worker).
  double update_bytes() const;

  const cost::CommModel& comm() const { return comm_; }

 private:
  std::vector<graph::Network> replicas_;
  cost::CommModel comm_;
};

}  // namespace pt::dist
