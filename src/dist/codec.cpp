#include "dist/codec.h"

#include <stdexcept>

#include "util/table.h"

namespace pt::dist {

namespace {

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

void GradientCodec::bind(graph::Network& reference, int replicas) {
  if (replicas < 1) {
    throw std::invalid_argument("codec bind: replica count must be >= 1 (got " +
                                std::to_string(replicas) + ")");
  }
  const std::vector<nn::Param*> params = reference.params();
  sizes_.clear();
  sizes_.reserve(params.size());
  for (const nn::Param* p : params) sizes_.push_back(p->grad.numel());
  replicas_ = replicas;
}

CodecRegistry& CodecRegistry::global() {
  static CodecRegistry registry = [] {
    CodecRegistry r;
    register_builtin_codecs(r);
    return r;
  }();
  return registry;
}

void CodecRegistry::register_codec(CodecFactory factory) {
  if (find(factory.name) != nullptr) {
    throw std::invalid_argument("gradient codec '" + factory.name +
                                "' is already registered");
  }
  factories_.push_back(std::move(factory));
}

const CodecFactory* CodecRegistry::find(const std::string& name) const {
  for (const CodecFactory& f : factories_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::vector<std::string> CodecRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const CodecFactory& f : factories_) out.push_back(f.name);
  return out;
}

std::unique_ptr<GradientCodec> CodecRegistry::create(
    const std::string& name,
    const std::map<std::string, std::string>& params) const {
  const CodecFactory* factory = find(name);
  if (factory == nullptr) {
    throw std::invalid_argument("unknown gradient codec '" + name +
                                "' (known: " + join_names(names()) + ")");
  }
  std::map<std::string, std::string> resolved;
  for (const prune::ParamSpec& p : factory->params) {
    resolved[p.name] = p.default_value;
  }
  for (const auto& [key, value] : params) {
    if (resolved.find(key) == resolved.end()) {
      std::vector<std::string> known;
      for (const prune::ParamSpec& p : factory->params) known.push_back(p.name);
      throw std::invalid_argument("codec '" + name + "' has no parameter '" +
                                  key + "' (known: " + join_names(known) + ")");
    }
    resolved[key] = value;
  }
  return factory->make(resolved);
}

std::string CodecRegistry::help() const {
  Table t({"codec", "param", "default", "description"});
  for (const CodecFactory& f : factories_) {
    t.add_row({f.name, "", "", f.description});
    for (const prune::ParamSpec& p : f.params) {
      t.add_row({"", p.name, p.default_value, p.help});
    }
  }
  return t.to_text();
}

float codec_param_float(const std::map<std::string, std::string>& params,
                        const std::string& key) {
  auto it = params.find(key);
  if (it == params.end()) {
    throw std::invalid_argument("codec parameter '" + key +
                                "' missing from resolved map");
  }
  try {
    std::size_t pos = 0;
    const float out = std::stof(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("codec parameter '" + key +
                                "' expects a number (got '" + it->second +
                                "')");
  }
}

}  // namespace pt::dist
