// Pluggable gradient codecs for the simulated allreduce (ISSUE 9
// tentpole).
//
// PruneTrain's comm saving is multiplicative: periodic reconfiguration
// shrinks the live channel set (fewer coordinates), dynamic mini-batch
// adjustment shrinks the update count, and a compressed wire format
// shrinks the bytes per coordinate. The GradientCodec interface factors
// the last axis out of the clusters: both dist::Cluster and
// dist::ElasticCluster route every gradient exchange through one
// codec-driven path (allreduce.h's exchange_gradients), and the codec
// decides what actually crosses the simulated wire.
//
// The registry mirrors prune::StrategyRegistry exactly (name -> ParamSpec
// defaults -> factory -> help() table); the built-in zoo (codec_zoo.h)
// ships `dense` (bit-for-bit the reference exchange), `twobit` (2-bit
// quantization with per-replica error-feedback residuals), and
// `live_channel` (prune-aware compaction transmitting only live-channel
// rows).
//
// Determinism contract (DESIGN.md §14):
//
//  * encode/decode run on ExecContext::parallel_for with the pool's static
//    contiguous chunking, and every output element (and residual element)
//    is a function of its own index only — so N-thread exchanges are
//    bitwise-identical to 1-thread ones. The one cross-element reduction
//    (twobit's mean-|v| scale) is summed over *fixed-size blocks* combined
//    in block order, making it invariant to the thread count by
//    construction.
//  * Codec state (residuals, live-row masks) must round-trip through
//    state()/load_state(): the trainer checkpoints it in a name-stamped
//    "codec" section, so crash-resume and guardian rollback-replay
//    reproduce an uninterrupted run bitwise, and the integrity monitor
//    folds it into state digests (as "codec/<name>" pseudo-tensors).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cost/comm.h"
#include "exec/context.h"
#include "graph/network.h"
#include "prune/strategy.h"

namespace pt::dist {

/// Named codec state blobs reuse the strategy serialization shape — the
/// checkpoint "codec" section and the integrity digests treat them the
/// same way the "strategy" section treats strategy state.
using CodecStateItem = prune::StrategyStateItem;
using CodecState = std::vector<CodecStateItem>;

/// One encoded gradient tensor as it would cross the wire. Exactly one
/// payload family is populated per codec: `values` (dense FP32 or
/// compacted live rows), or `packed` (2-bit codes) + `scale`. `wire_bytes`
/// is the modeled on-wire size including per-tensor headers.
struct WireTensor {
  std::int64_t count = 0;             ///< decoded element count
  std::vector<float> values;          ///< FP32 payload
  std::vector<std::uint32_t> packed;  ///< 2-bit codes, 16 per word
  std::vector<std::int64_t> rows;     ///< transmitted row indices (live_channel)
  float scale = 0.f;                  ///< quantization magnitude (twobit)
  double wire_bytes = 0;              ///< modeled bytes on the wire
};

/// A gradient wire format. One codec instance serves the whole cluster:
/// per-replica state (error-feedback residuals) is indexed by replica
/// rank, and bind() is called at cluster attach and again after every
/// reconfiguration so per-tensor metadata (sizes, live-row masks) tracks
/// the current topology.
class GradientCodec {
 public:
  virtual ~GradientCodec() = default;

  /// Registry name (stamped into the checkpoint "codec" section; a resume
  /// with a different codec fails loudly instead of silently mixing
  /// residual state).
  virtual std::string name() const = 0;

  /// The cost-model wire family this codec belongs to.
  virtual cost::CommCodec cost_kind() const = 0;

  /// (Re)binds the codec to `reference`'s parameter topology for a cluster
  /// of `replicas` ranks. Derives per-tensor metadata — element counts,
  /// live-row masks read from the reference weights — and sizes
  /// per-replica state. State that is still shape-compatible (resume,
  /// rollback, a rebind with unchanged topology) is preserved; state whose
  /// shapes no longer match (a reconfiguration) is re-derived/reset.
  /// Overrides must call the base first.
  virtual void bind(graph::Network& reference, int replicas);

  /// Encodes replica `rank`'s gradient tensor `tensor` (`n` elements at
  /// `grad`). May update per-replica codec state (twobit folds the
  /// quantization error into rank's residual). Runs on `ctx` under the
  /// deterministic-chunking contract.
  virtual WireTensor encode(int rank, std::size_t tensor, const float* grad,
                            std::int64_t n, exec::ExecContext& ctx) = 0;

  /// Decodes `wire` (produced by encode for the same `tensor`) into `out`
  /// (sizes()[tensor] floats, fully overwritten).
  virtual void decode(const WireTensor& wire, std::size_t tensor, float* out,
                      exec::ExecContext& ctx) const = 0;

  /// Transmitted-element fraction at the current binding (kLiveChannel's
  /// CommQuery::live_fraction); 1 for non-sparse codecs.
  virtual double live_fraction() const { return 1.0; }

  /// True when state()/load_state() carry anything (the trainer only
  /// writes a checkpoint "codec" section for stateful codecs).
  virtual bool stateful() const { return false; }

  /// Complete serializable state; must make load_state() reproduce this
  /// codec's future behavior bitwise. load_state() may run before bind()
  /// (trainer resume order); bind() then adopts the loaded state if it is
  /// shape-compatible.
  virtual CodecState state() const { return {}; }
  virtual void load_state(const CodecState& items) { (void)items; }

  /// Drops replica `rank`'s per-replica state (twobit residuals). Called
  /// when a rejoiner resyncs: its accumulated quantization error belongs
  /// to gradients that were never averaged and would otherwise leak stale
  /// error into its first synced steps.
  virtual void reset_replica(int rank) { (void)rank; }

  int replicas() const { return replicas_; }
  const std::vector<std::int64_t>& sizes() const { return sizes_; }

 protected:
  std::vector<std::int64_t> sizes_;  ///< grad element count per param tensor
  int replicas_ = 0;
};

/// One registry entry: name, human description, parameter specs (used for
/// validation and the help table), and the factory. ParamSpec is shared
/// with the strategy registry — same {name, default, help} triple.
struct CodecFactory {
  std::string name;
  std::string description;
  std::vector<prune::ParamSpec> params;
  /// Receives the fully resolved parameter map (defaults overlaid with the
  /// caller's values; unknown keys already rejected).
  std::function<std::unique_ptr<GradientCodec>(
      const std::map<std::string, std::string>&)>
      make;
};

/// Name -> factory registry driving TrainConfig::codec validation, the
/// quickstart `--codec help` table, and the comm-compression bench sweep.
class CodecRegistry {
 public:
  /// The process-wide registry with the built-in zoo registered
  /// (codec_zoo.cpp); thread-safe magic-static initialization.
  static CodecRegistry& global();

  void register_codec(CodecFactory factory);
  const CodecFactory* find(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Instantiates `name` with `params` overlaid on the spec defaults.
  /// Throws std::invalid_argument on an unknown codec, an unknown
  /// parameter key, or an unparsable value.
  std::unique_ptr<GradientCodec> create(
      const std::string& name,
      const std::map<std::string, std::string>& params = {}) const;

  /// Renders the registry as an aligned table (codec, parameters,
  /// defaults, help) — the `--codec help` output.
  std::string help() const;

 private:
  std::vector<CodecFactory> factories_;
};

/// Registers the built-in zoo (dense, twobit, live_channel) into
/// `registry`. Called once by CodecRegistry::global(); exposed for tests
/// that build a private registry.
void register_builtin_codecs(CodecRegistry& registry);

/// Typed parameter parsing over the resolved map; throws
/// std::invalid_argument naming the key on a malformed value.
float codec_param_float(const std::map<std::string, std::string>& params,
                        const std::string& key);

}  // namespace pt::dist
