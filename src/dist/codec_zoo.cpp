#include "dist/codec_zoo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pt::dist {

namespace {

/// Fixed summation block for the twobit scale reduction: partial sums are
/// computed per 4096-element block and combined in block order, so the
/// result depends only on the data — never on the thread count.
constexpr std::int64_t kSumBlock = 4096;

/// Per-tensor wire header: element count (u64) — every codec pays it.
constexpr double kHeaderBytes = 8.0;

bool parse_indexed_name(const std::string& name, const char* format, long* a,
                        long* b) {
  int consumed = 0;
  const int matched = std::sscanf(name.c_str(), format, a, b, &consumed);
  return matched == 2 && consumed == static_cast<int>(name.size());
}

}  // namespace

// ---------------------------------------------------------------- dense --

WireTensor DenseCodec::encode(int rank, std::size_t tensor, const float* grad,
                              std::int64_t n, exec::ExecContext& ctx) {
  (void)rank;
  (void)tensor;
  WireTensor wire;
  wire.count = n;
  wire.values.resize(static_cast<std::size_t>(n));
  ctx.pool().parallel_for(n, [&](std::int64_t begin, std::int64_t end, int) {
    std::copy(grad + begin, grad + end, wire.values.data() + begin);
  });
  wire.wire_bytes = static_cast<double>(n) * 4.0 + kHeaderBytes;
  return wire;
}

void DenseCodec::decode(const WireTensor& wire, std::size_t tensor, float* out,
                        exec::ExecContext& ctx) const {
  (void)tensor;
  ctx.pool().parallel_for(wire.count,
                          [&](std::int64_t begin, std::int64_t end, int) {
                            std::copy(wire.values.data() + begin,
                                      wire.values.data() + end, out + begin);
                          });
}

// --------------------------------------------------------------- twobit --

void TwoBitCodec::bind(graph::Network& reference, int replicas) {
  GradientCodec::bind(reference, replicas);
  // Preserve residuals that still match the topology (resume, rollback, a
  // rebind with unchanged shapes); reset on any mismatch — after a
  // reconfiguration the accumulated error belongs to pruned coordinates.
  bool compatible = residual_.size() == static_cast<std::size_t>(replicas);
  for (const auto& per_rank : residual_) {
    if (!compatible) break;
    if (per_rank.size() != sizes_.size()) {
      compatible = false;
      break;
    }
    for (std::size_t t = 0; t < per_rank.size(); ++t) {
      if (static_cast<std::int64_t>(per_rank[t].size()) != sizes_[t]) {
        compatible = false;
        break;
      }
    }
  }
  if (compatible) return;
  residual_.assign(static_cast<std::size_t>(replicas), {});
  for (auto& per_rank : residual_) {
    per_rank.resize(sizes_.size());
    for (std::size_t t = 0; t < sizes_.size(); ++t) {
      per_rank[t].assign(static_cast<std::size_t>(sizes_[t]), 0.f);
    }
  }
}

WireTensor TwoBitCodec::encode(int rank, std::size_t tensor, const float* grad,
                               std::int64_t n, exec::ExecContext& ctx) {
  std::vector<float>& res = residual_.at(static_cast<std::size_t>(rank)).at(tensor);
  if (static_cast<std::int64_t>(res.size()) != n) {
    throw std::logic_error("twobit: residual size mismatch for tensor " +
                           std::to_string(tensor) + " (codec not rebound?)");
  }

  // Scale: mean |grad + residual| over fixed-size blocks, combined in
  // block order — bitwise thread-count invariant.
  const std::int64_t blocks = (n + kSumBlock - 1) / kSumBlock;
  std::vector<double> partial(static_cast<std::size_t>(blocks), 0.0);
  ctx.pool().parallel_for(blocks, [&](std::int64_t b0, std::int64_t b1, int) {
    for (std::int64_t b = b0; b < b1; ++b) {
      const std::int64_t lo = b * kSumBlock;
      const std::int64_t hi = std::min(n, lo + kSumBlock);
      double sum = 0.0;
      for (std::int64_t q = lo; q < hi; ++q) {
        sum += std::abs(static_cast<double>(grad[q]) +
                        static_cast<double>(res[static_cast<std::size_t>(q)]));
      }
      partial[static_cast<std::size_t>(b)] = sum;
    }
  });
  double total = 0.0;
  for (double p : partial) total += p;
  const float scale =
      n > 0 ? static_cast<float>(total / static_cast<double>(n)) *
                  threshold_scale_
            : 0.f;

  // Quantize to {-scale, 0, +scale}, folding the error into the residual.
  // Chunked over whole 16-code words so no word straddles two threads.
  WireTensor wire;
  wire.count = n;
  wire.scale = scale;
  const std::int64_t words = (n + 15) / 16;
  wire.packed.assign(static_cast<std::size_t>(words), 0u);
  ctx.pool().parallel_for(words, [&](std::int64_t w0, std::int64_t w1, int) {
    for (std::int64_t w = w0; w < w1; ++w) {
      std::uint32_t bits = 0;
      const std::int64_t lo = w * 16;
      const std::int64_t hi = std::min(n, lo + 16);
      for (std::int64_t q = lo; q < hi; ++q) {
        const float v = grad[q] + res[static_cast<std::size_t>(q)];
        float decoded = 0.f;
        std::uint32_t code = 0;
        if (scale > 0.f) {
          if (v >= scale) {
            code = 1;
            decoded = scale;
          } else if (v <= -scale) {
            code = 2;
            decoded = -scale;
          }
        }
        res[static_cast<std::size_t>(q)] = v - decoded;
        bits |= code << (2 * (q - lo));
      }
      wire.packed[static_cast<std::size_t>(w)] = bits;
    }
  });
  wire.wire_bytes = static_cast<double>(words) * 4.0 + 4.0 /* scale */ +
                    kHeaderBytes;
  return wire;
}

void TwoBitCodec::decode(const WireTensor& wire, std::size_t tensor,
                         float* out, exec::ExecContext& ctx) const {
  (void)tensor;
  const std::int64_t n = wire.count;
  const std::int64_t words = (n + 15) / 16;
  const float scale = wire.scale;
  ctx.pool().parallel_for(words, [&](std::int64_t w0, std::int64_t w1, int) {
    for (std::int64_t w = w0; w < w1; ++w) {
      const std::uint32_t bits = wire.packed[static_cast<std::size_t>(w)];
      const std::int64_t lo = w * 16;
      const std::int64_t hi = std::min(n, lo + 16);
      for (std::int64_t q = lo; q < hi; ++q) {
        const std::uint32_t code = (bits >> (2 * (q - lo))) & 3u;
        out[q] = code == 1 ? scale : (code == 2 ? -scale : 0.f);
      }
    }
  });
}

CodecState TwoBitCodec::state() const {
  CodecState items;
  for (std::size_t rank = 0; rank < residual_.size(); ++rank) {
    for (std::size_t t = 0; t < residual_[rank].size(); ++t) {
      CodecStateItem item;
      item.name = "residual/r" + std::to_string(rank) + "/t" + std::to_string(t);
      item.f32 = residual_[rank][t];
      items.push_back(std::move(item));
    }
  }
  return items;
}

void TwoBitCodec::load_state(const CodecState& items) {
  residual_.clear();
  for (const CodecStateItem& item : items) {
    long rank = -1, t = -1;
    if (!parse_indexed_name(item.name, "residual/r%ld/t%ld%n", &rank, &t) ||
        rank < 0 || t < 0) {
      throw std::invalid_argument("twobit codec state: unknown item '" +
                                  item.name + "'");
    }
    if (residual_.size() <= static_cast<std::size_t>(rank)) {
      residual_.resize(static_cast<std::size_t>(rank) + 1);
    }
    auto& per_rank = residual_[static_cast<std::size_t>(rank)];
    if (per_rank.size() <= static_cast<std::size_t>(t)) {
      per_rank.resize(static_cast<std::size_t>(t) + 1);
    }
    per_rank[static_cast<std::size_t>(t)] = item.f32;
  }
}

void TwoBitCodec::reset_replica(int rank) {
  if (rank < 0 || static_cast<std::size_t>(rank) >= residual_.size()) return;
  for (std::vector<float>& res : residual_[static_cast<std::size_t>(rank)]) {
    std::fill(res.begin(), res.end(), 0.f);
  }
}

// --------------------------------------------------------- live_channel --

void LiveChannelCodec::bind(graph::Network& reference, int replicas) {
  GradientCodec::bind(reference, replicas);
  const std::vector<nn::Param*> params = reference.params();

  // Row structure is purely topological; re-derive it every bind.
  masks_.assign(params.size(), {});
  for (std::size_t t = 0; t < params.size(); ++t) {
    const Shape& shape = params[t]->value.shape();
    TensorMask& mask = masks_[t];
    if (shape.rank() >= 2 && shape[0] > 0) {
      mask.masked = true;
      mask.rows = shape[0];
      mask.row_len = params[t]->value.numel() / shape[0];
    }
  }

  // Live sets: adopt state loaded from a checkpoint when it still fits the
  // topology (resume/rollback must reuse the interrupted run's mask
  // bitwise); otherwise read the reference weights — a row whose weights
  // are all exactly zero (the proximal operator's doing) is dead. A
  // reconfiguration changes shapes, so its rebind always lands here and
  // recompacts the mask.
  bool adopted = false;
  if (state_loaded_) {
    adopted = true;
    for (const CodecStateItem& item : pending_state_) {
      long t = -1, unused = 0;
      (void)unused;
      int consumed = 0;
      if (std::sscanf(item.name.c_str(), "live_rows/t%ld%n", &t, &consumed) !=
              1 ||
          consumed != static_cast<int>(item.name.size()) || t < 0 ||
          static_cast<std::size_t>(t) >= masks_.size() ||
          !masks_[static_cast<std::size_t>(t)].masked) {
        adopted = false;
        break;
      }
      const TensorMask& mask = masks_[static_cast<std::size_t>(t)];
      for (std::int64_t row : item.i64) {
        if (row < 0 || row >= mask.rows) {
          adopted = false;
          break;
        }
      }
      if (!adopted) break;
    }
    if (adopted) {
      for (const CodecStateItem& item : pending_state_) {
        long t = -1;
        int consumed = 0;
        std::sscanf(item.name.c_str(), "live_rows/t%ld%n", &t, &consumed);
        masks_[static_cast<std::size_t>(t)].live = item.i64;
      }
    }
    state_loaded_ = false;
    pending_state_.clear();
  }
  if (!adopted) {
    for (std::size_t t = 0; t < params.size(); ++t) {
      TensorMask& mask = masks_[t];
      if (!mask.masked) continue;
      mask.live.clear();
      const float* w = params[t]->value.data();
      for (std::int64_t row = 0; row < mask.rows; ++row) {
        const float* lo = w + row * mask.row_len;
        bool live = false;
        for (std::int64_t q = 0; q < mask.row_len; ++q) {
          if (lo[q] != 0.f) {
            live = true;
            break;
          }
        }
        if (live) mask.live.push_back(row);
      }
    }
  }
  refresh_live_fraction();
}

void LiveChannelCodec::refresh_live_fraction() {
  double transmitted = 0.0, total = 0.0;
  for (std::size_t t = 0; t < masks_.size(); ++t) {
    total += static_cast<double>(sizes_[t]);
    const TensorMask& mask = masks_[t];
    transmitted += mask.masked ? static_cast<double>(mask.live.size()) *
                                     static_cast<double>(mask.row_len)
                               : static_cast<double>(sizes_[t]);
  }
  live_fraction_ = total > 0 ? transmitted / total : 1.0;
}

WireTensor LiveChannelCodec::encode(int rank, std::size_t tensor,
                                    const float* grad, std::int64_t n,
                                    exec::ExecContext& ctx) {
  (void)rank;
  const TensorMask& mask = masks_.at(tensor);
  WireTensor wire;
  wire.count = n;
  if (!mask.masked) {
    wire.values.resize(static_cast<std::size_t>(n));
    ctx.pool().parallel_for(n, [&](std::int64_t begin, std::int64_t end, int) {
      std::copy(grad + begin, grad + end, wire.values.data() + begin);
    });
    wire.wire_bytes = static_cast<double>(n) * 4.0 + kHeaderBytes;
    return wire;
  }
  wire.rows = mask.live;
  wire.values.resize(mask.live.size() * static_cast<std::size_t>(mask.row_len));
  const std::int64_t live = static_cast<std::int64_t>(mask.live.size());
  ctx.pool().parallel_for(live, [&](std::int64_t begin, std::int64_t end, int) {
    for (std::int64_t i = begin; i < end; ++i) {
      const std::int64_t row = mask.live[static_cast<std::size_t>(i)];
      std::copy(grad + row * mask.row_len, grad + (row + 1) * mask.row_len,
                wire.values.data() + i * mask.row_len);
    }
  });
  // Payload rows + one u32 row index per transmitted row + header.
  wire.wire_bytes = static_cast<double>(live) *
                        (static_cast<double>(mask.row_len) * 4.0 + 4.0) +
                    kHeaderBytes;
  return wire;
}

void LiveChannelCodec::decode(const WireTensor& wire, std::size_t tensor,
                              float* out, exec::ExecContext& ctx) const {
  const TensorMask& mask = masks_.at(tensor);
  const std::int64_t n = wire.count;
  if (!mask.masked) {
    ctx.pool().parallel_for(n, [&](std::int64_t begin, std::int64_t end, int) {
      std::copy(wire.values.data() + begin, wire.values.data() + end,
                out + begin);
    });
    return;
  }
  ctx.pool().parallel_for(n, [&](std::int64_t begin, std::int64_t end, int) {
    std::fill(out + begin, out + end, 0.f);
  });
  const std::int64_t live = static_cast<std::int64_t>(wire.rows.size());
  ctx.pool().parallel_for(live, [&](std::int64_t begin, std::int64_t end, int) {
    for (std::int64_t i = begin; i < end; ++i) {
      const std::int64_t row = wire.rows[static_cast<std::size_t>(i)];
      std::copy(wire.values.data() + i * mask.row_len,
                wire.values.data() + (i + 1) * mask.row_len,
                out + row * mask.row_len);
    }
  });
}

CodecState LiveChannelCodec::state() const {
  CodecState items;
  for (std::size_t t = 0; t < masks_.size(); ++t) {
    if (!masks_[t].masked) continue;
    CodecStateItem item;
    item.name = "live_rows/t" + std::to_string(t);
    item.i64 = masks_[t].live;
    items.push_back(std::move(item));
  }
  return items;
}

void LiveChannelCodec::load_state(const CodecState& items) {
  pending_state_ = items;
  state_loaded_ = true;
  if (!sizes_.empty()) {
    // Already bound: re-run the adoption logic against the current
    // topology. bind() consumes the pending state.
    const bool had_masks = !masks_.empty();
    if (had_masks) {
      for (const CodecStateItem& item : pending_state_) {
        long t = -1;
        int consumed = 0;
        if (std::sscanf(item.name.c_str(), "live_rows/t%ld%n", &t,
                        &consumed) == 1 &&
            consumed == static_cast<int>(item.name.size()) && t >= 0 &&
            static_cast<std::size_t>(t) < masks_.size() &&
            masks_[static_cast<std::size_t>(t)].masked) {
          masks_[static_cast<std::size_t>(t)].live = item.i64;
        }
      }
      refresh_live_fraction();
    }
  }
}

// ------------------------------------------------------------- registry --

void register_builtin_codecs(CodecRegistry& registry) {
  registry.register_codec(
      {"dense",
       "FP32 passthrough; bit-for-bit the reference exchange",
       {},
       [](const std::map<std::string, std::string>&) {
         return std::make_unique<DenseCodec>();
       }});
  registry.register_codec(
      {"twobit",
       "2-bit threshold quantization with error-feedback residuals (~16x)",
       {{"threshold_scale", "1.0",
         "multiplier on the mean-|v| quantization magnitude"}},
       [](const std::map<std::string, std::string>& params) {
         return std::make_unique<TwoBitCodec>(
             codec_param_float(params, "threshold_scale"));
       }});
  registry.register_codec(
      {"live_channel",
       "transmits only live-channel rows; recompacted at reconfiguration",
       {},
       [](const std::map<std::string, std::string>&) {
         return std::make_unique<LiveChannelCodec>();
       }});
}

}  // namespace pt::dist
