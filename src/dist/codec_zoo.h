// The built-in gradient-codec zoo (ISSUE 9): three wire formats behind the
// GradientCodec interface, all honoring the deterministic-parallelism and
// state round-trip contracts codec.h spells out.
//
//  dense        — FP32 passthrough; bit-for-bit the reference exchange the
//                 clusters shipped before the codec API existed.
//  twobit       — 2-bit threshold quantization with per-replica
//                 error-feedback residuals: v = grad + residual is mapped
//                 to {-s, 0, +s} with s = mean|v| (per tensor), and the
//                 quantization error v - decoded is carried into the next
//                 step. ~16x wire reduction at any width.
//  live_channel — prune-aware compaction: transmits only the rows of
//                 multi-dim parameter tensors whose channel is still live
//                 (any nonzero weight) under the channel-union metadata
//                 read from the reference network at bind time, recompacted
//                 on every reconfiguration. Dead-row gradients are dropped
//                 deterministically (the proximal post-step re-zeros those
//                 channels anyway); 1-D tensors ship dense.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/codec.h"

namespace pt::dist {

/// FP32 passthrough — the reference codec. encode() copies the gradient
/// verbatim and decode() copies it back, so the averaging loop downstream
/// sees bit-for-bit the same inputs as the pre-codec exchange.
class DenseCodec : public GradientCodec {
 public:
  std::string name() const override { return "dense"; }
  cost::CommCodec cost_kind() const override {
    return cost::CommCodec::kDense;
  }
  WireTensor encode(int rank, std::size_t tensor, const float* grad,
                    std::int64_t n, exec::ExecContext& ctx) override;
  void decode(const WireTensor& wire, std::size_t tensor, float* out,
              exec::ExecContext& ctx) const override;
};

/// 2-bit threshold quantization with error feedback. Per (rank, tensor)
/// residuals are the codec's named state ("residual/r<rank>/t<tensor>");
/// they ride the checkpoint "codec" section and the integrity digests, and
/// a rejoining replica's residuals are reset at resync. The per-tensor
/// scale is a mean-|v| reduction summed over fixed 4096-element blocks
/// combined in block order, so it is invariant to the thread count.
class TwoBitCodec : public GradientCodec {
 public:
  /// `threshold_scale` multiplies the mean-|v| quantization magnitude.
  explicit TwoBitCodec(float threshold_scale = 1.f)
      : threshold_scale_(threshold_scale) {}

  std::string name() const override { return "twobit"; }
  cost::CommCodec cost_kind() const override {
    return cost::CommCodec::kTwoBit;
  }
  void bind(graph::Network& reference, int replicas) override;
  WireTensor encode(int rank, std::size_t tensor, const float* grad,
                    std::int64_t n, exec::ExecContext& ctx) override;
  void decode(const WireTensor& wire, std::size_t tensor, float* out,
              exec::ExecContext& ctx) const override;

  bool stateful() const override { return true; }
  CodecState state() const override;
  void load_state(const CodecState& items) override;
  void reset_replica(int rank) override;

  /// rank's error-feedback residual for tensor `tensor` (test access).
  const std::vector<float>& residual(int rank, std::size_t tensor) const {
    return residual_[static_cast<std::size_t>(rank)][tensor];
  }

 private:
  float threshold_scale_;
  /// residual_[rank][tensor] — sized by bind(), preserved across
  /// shape-compatible rebinds, reset on reconfiguration.
  std::vector<std::vector<std::vector<float>>> residual_;
};

/// Prune-aware live-row compaction. bind() reads the reference network's
/// weights and marks a row of every >= 2-D parameter tensor dead when all
/// its weights are exactly zero — the channel-union proximal operator
/// produces exact zeros, and replicas are bit-identical, so every rank
/// derives the same mask. The mask is named state ("live_rows/t<tensor>")
/// so a mid-phase resume reuses the mask of the interrupted run bitwise
/// instead of re-deriving it from further-sparsified weights.
class LiveChannelCodec : public GradientCodec {
 public:
  std::string name() const override { return "live_channel"; }
  cost::CommCodec cost_kind() const override {
    return cost::CommCodec::kLiveChannel;
  }
  void bind(graph::Network& reference, int replicas) override;
  WireTensor encode(int rank, std::size_t tensor, const float* grad,
                    std::int64_t n, exec::ExecContext& ctx) override;
  void decode(const WireTensor& wire, std::size_t tensor, float* out,
              exec::ExecContext& ctx) const override;

  double live_fraction() const override { return live_fraction_; }
  bool stateful() const override { return true; }
  CodecState state() const override;
  void load_state(const CodecState& items) override;

  /// Transmitted row indices of tensor `tensor` (empty when the tensor is
  /// unmasked, i.e. ships dense). Test access.
  const std::vector<std::int64_t>& live_rows(std::size_t tensor) const {
    return masks_[tensor].live;
  }

 private:
  struct TensorMask {
    bool masked = false;           ///< row-maskable (>= 2-D) tensor
    std::int64_t rows = 0;         ///< row count (dim 0)
    std::int64_t row_len = 1;      ///< elements per row
    std::vector<std::int64_t> live;  ///< transmitted rows, ascending
  };

  void refresh_live_fraction();

  std::vector<TensorMask> masks_;
  double live_fraction_ = 1.0;
  /// Mask loaded by load_state() before bind() saw the topology; adopted
  /// by the next bind() when shape-compatible (trainer resume order).
  CodecState pending_state_;
  bool state_loaded_ = false;
};

}  // namespace pt::dist
