#include "dist/elastic.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "ckpt/checkpoint.h"
#include "dist/allreduce.h"
#include "dist/codec_zoo.h"
#include "nn/loss.h"
#include "telemetry/metrics.h"

namespace pt::dist {

namespace {

/// True when both networks expose the same state-dict surface (entry
/// names, roles, and shapes) — the precondition for a bitwise state copy.
bool same_topology(graph::Network& a, graph::Network& b) {
  std::vector<nn::StateEntry> sa = a.state();
  std::vector<nn::StateEntry> sb = b.state();
  if (sa.size() != sb.size()) return false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].name != sb[i].name || sa[i].role != sb[i].role) return false;
    if (sa[i].tensor->shape() != sb[i].tensor->shape()) return false;
  }
  return true;
}

}  // namespace

ElasticCluster::ElasticCluster(std::vector<graph::Network> replicas,
                               cost::CommSpec comm,
                               MembershipConfig membership)
    : replicas_(std::move(replicas)),
      comm_(comm),
      table_(static_cast<int>(replicas_.size()), membership) {
  if (replicas_.empty()) {
    throw std::invalid_argument("elastic cluster needs >= 1 replica");
  }
  if (static_cast<int>(replicas_.size()) != comm_.spec().gpus) {
    throw std::invalid_argument("comm spec GPU count must match replica count");
  }
  set_codec(std::make_shared<DenseCodec>());
}

void ElasticCluster::set_codec(std::shared_ptr<GradientCodec> codec) {
  if (!codec) throw std::invalid_argument("cluster codec must not be null");
  codec_ = std::move(codec);
  codec_->bind(replicas_.front(), size());
}

void ElasticCluster::rebind_codec_if_stale() {
  const auto params = replicas_.front().params();
  const auto& sizes = codec_->sizes();
  bool stale = sizes.size() != params.size();
  for (std::size_t i = 0; !stale && i < params.size(); ++i) {
    stale = sizes[i] != params[i]->grad.numel();
  }
  if (stale) codec_->bind(replicas_.front(), size());
}

int ElasticCluster::live_count() const {
  int live = 0;
  for (int r = 0; r < size(); ++r) {
    const MemberStatus& m = table_.member(r);
    if (m.state == ReplicaState::kHealthy && !m.failed) ++live;
  }
  return live;
}

void ElasticCluster::set_fault_injector(robust::FaultInjector injector) {
  injector_ = std::move(injector);
}

robust::FaultInjector ElasticCluster::take_fault_injector() {
  robust::FaultInjector out = std::move(injector_);
  injector_ = {};
  return out;
}

void ElasticCluster::schedule_departure(int replica, std::int64_t step) {
  table_.schedule_departure(replica, step);
}

void ElasticCluster::schedule_rejoin(int replica, std::int64_t step) {
  table_.schedule_rejoin(replica, step);
}

void ElasticCluster::set_resync_checkpoint(std::string path) {
  resync_ckpt_path_ = std::move(path);
}

double ElasticCluster::update_bytes() const {
  cost::CommQuery q;
  q.model_bytes = static_cast<double>(replicas_.front().num_params()) * 4.0;
  q.members = std::max(1, live_count());
  q.live_fraction = codec_->live_fraction();
  q.codec = codec_->cost_kind();
  return comm_.cost(q).wire_bytes;
}

std::vector<MembershipTransition> ElasticCluster::drain_transitions() {
  std::vector<MembershipTransition> out;
  out.swap(transitions_);
  return out;
}

std::vector<robust::HealthEvent> ElasticCluster::drain_health_events() {
  std::vector<robust::HealthEvent> out;
  out.swap(health_events_);
  return out;
}

std::int64_t ElasticCluster::resync_rejoiner(int r, int root) {
  graph::Network& survivor = replicas_[static_cast<std::size_t>(root)];
  graph::Network& joiner = replicas_[static_cast<std::size_t>(r)];

  // Phase 1 — topology replay. Prefer the last CRC-valid checkpoint (the
  // replica "restarts from disk"); a missing/corrupt file, or shapes gone
  // stale because a reconfiguration happened after the save, fall back to
  // cloning the structure from a survivor via the same state-dict capture.
  bool replayed = false;
  if (!resync_ckpt_path_.empty()) {
    try {
      joiner = ckpt::Checkpoint::load(resync_ckpt_path_).restore_network();
      replayed = same_topology(joiner, survivor);
    } catch (const std::exception&) {
      replayed = false;
    }
  }
  if (!replayed) {
    joiner = ckpt::Checkpoint::capture(survivor).restore_network();
  }

  // The joiner's per-replica codec state (error-feedback residuals) is
  // dropped with its stale model: the accumulated quantization error
  // belongs to gradients the group never averaged.
  codec_->reset_replica(r);

  // Phase 2 — fenced state broadcast: every persistent tensor (params,
  // momentum, BN buffers) plus current gradients, copied bit-exactly from
  // the survivor so the joiner's first synced step matches the group.
  return copy_full_state(root, r);
}

std::int64_t ElasticCluster::copy_full_state(int src_rank, int dst_rank) {
  graph::Network& src_net = replicas_[static_cast<std::size_t>(src_rank)];
  graph::Network& dst_net = replicas_[static_cast<std::size_t>(dst_rank)];
  std::vector<nn::StateEntry> src = src_net.state();
  std::vector<nn::StateEntry> dst = dst_net.state();
  if (src.size() != dst.size()) {
    throw std::logic_error("state broadcast: state-dict size mismatch");
  }
  std::int64_t bytes = 0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i].name != dst[i].name ||
        src[i].tensor->numel() != dst[i].tensor->numel()) {
      throw std::logic_error("state broadcast: state entry mismatch at '" +
                             src[i].name + "'");
    }
    std::copy(src[i].tensor->data(),
              src[i].tensor->data() + src[i].tensor->numel(),
              dst[i].tensor->data());
    bytes += src[i].tensor->numel() * static_cast<std::int64_t>(sizeof(float));
  }
  return bytes;
}

std::int64_t ElasticCluster::heal_replica(int victim, int root) {
  if (victim < 0 || victim >= size() || root < 0 || root >= size() ||
      victim == root) {
    throw std::invalid_argument("heal_replica: bad replica ranks");
  }
  graph::Network& root_net = replicas_[static_cast<std::size_t>(root)];
  graph::Network& victim_net = replicas_[static_cast<std::size_t>(victim)];
  // Digest voting convicts on matching topology stamps, so the structures
  // normally agree; a victim whose structure itself diverged is rebuilt
  // from a root clone before the copy (the rejoin fallback path).
  if (!same_topology(victim_net, root_net)) {
    victim_net = ckpt::Checkpoint::capture(root_net).restore_network();
  }
  const std::int64_t bytes = copy_full_state(root, victim);
  heal_bytes_total_ += bytes;
  if (telemetry::enabled()) {
    telemetry::count("dist/heal_bytes", static_cast<double>(bytes));
    telemetry::event("dist/heal", "replica " + std::to_string(victim) +
                                      " healed from replica " +
                                      std::to_string(root));
  }
  return bytes;
}

ElasticStepResult ElasticCluster::step(exec::ExecContext& ctx,
                                       const data::Batch& batch,
                                       optim::SGD& opt,
                                       const PostUpdateHook& post_update) {
  telemetry::ScopedTimer step_span("dist/elastic_step");
  const std::int64_t total = batch.size();
  if (total <= 0) throw std::invalid_argument("empty mini-batch");
  const Shape& s = batch.images.shape();
  const std::int64_t sample_len = s[1] * s[2] * s[3];
  const std::int64_t step_id = step_counter_++;

  // Heartbeat round: latch permanent failures, advance the state machine,
  // promote rejoiners synced last step.
  table_.poll(step_id, injector_.armed() ? &injector_ : nullptr);
  for (const MembershipTransition& t : table_.drain_transitions()) {
    transitions_.push_back(t);
    if (telemetry::enabled()) telemetry::event("dist/membership", t.describe());
  }

  const std::vector<int>& participants = table_.participants();
  const int quorum = table_.quorum_threshold();
  if (participants.empty() || static_cast<int>(participants.size()) < quorum) {
    std::ostringstream os;
    os << "step " << step_id << ": " << participants.size() << " live of "
       << size() << " replicas, quorum requires >= " << quorum
       << " (min_live_fraction = " << table_.config().min_live_fraction << ")";
    robust::HealthEvent ev{robust::EventType::kQuorumLoss,
                           robust::Severity::kFatal, -1,
                           static_cast<double>(participants.size()), os.str()};
    health_events_.push_back(ev);
    if (telemetry::enabled()) {
      telemetry::event("health/quorum-loss", ev.describe());
    }
    throw ClusterDegraded(std::move(ev));
  }

  ElasticStepResult result;
  result.live_replicas = static_cast<int>(participants.size());

  // Deterministic re-sharding: contiguous chunks over the participants in
  // rank order. The layout depends only on the participant set — batches
  // smaller than the live count leave trailing shards empty (zero weight,
  // no compute), same as the fixed cluster.
  const std::int64_t n = static_cast<std::int64_t>(participants.size());
  std::vector<double> weights(participants.size(), 0.0);
  std::int64_t offset = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const int r = participants[static_cast<std::size_t>(i)];
    const std::int64_t shard = total / n + (i < total % n ? 1 : 0);
    if (shard == 0) continue;

    const auto wall_start = std::chrono::steady_clock::now();
    Tensor images({shard, s[1], s[2], s[3]});
    std::copy(batch.images.data() + offset * sample_len,
              batch.images.data() + (offset + shard) * sample_len,
              images.data());
    std::vector<std::int64_t> labels(batch.labels.begin() + offset,
                                     batch.labels.begin() + offset + shard);
    offset += shard;

    graph::Network& net = replicas_[static_cast<std::size_t>(r)];
    net.zero_grad();
    nn::SoftmaxCrossEntropy loss;
    Tensor out = net.forward(ctx, images, true);
    result.loss += loss.forward(out, labels) * static_cast<double>(shard);
    result.correct += loss.correct();
    net.backward(ctx, loss.backward());
    if (injector_.armed()) {
      injector_.corrupt_gradients(net, -1, step_id, r);
    }
    weights[static_cast<std::size_t>(i)] = static_cast<double>(shard);
    result.processed += shard;

    // Straggler accounting: measured wall time plus any injected delay
    // feeds the per-replica EWMA (bookkeeping only — never numerics).
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    const double delay =
        injector_.armed() ? injector_.replica_delay(r, step_id) : 0.0;
    result.fault_wait_seconds += delay;
    table_.record_step_time(r, wall + delay);
  }
  result.loss /= static_cast<double>(result.processed);

  // Allreduce + update over participants only: dead replicas receive
  // nothing and go stale (that staleness is what rejoin repairs).
  rebind_codec_if_stale();
  std::vector<graph::Network*> nets;
  nets.reserve(participants.size());
  for (int r : participants) {
    nets.push_back(&replicas_[static_cast<std::size_t>(r)]);
  }
  exchange_gradients(*codec_, nets, weights, ctx, participants);
  bool first_participant = true;
  for (int r : participants) {
    graph::Network& net = replicas_[static_cast<std::size_t>(r)];
    opt.step(net.params());
    if (post_update) post_update(net, first_participant);
    first_participant = false;
    // Silent-data-corruption injection (sdc-param / sdc-momentum) lands
    // *after* the update and the hooks so nothing overwrites the flipped
    // bit before the next digest check sees it.
    if (injector_.armed()) {
      injector_.corrupt_state(net, step_id, r);
    }
  }

  // Fenced rejoin: replicas that entered REJOINING this step resync from
  // the post-update state of the first participant; their first *synced*
  // step is the next one.
  for (int r : table_.rejoining()) {
    const std::int64_t bytes = resync_rejoiner(r, participants.front());
    result.resync_bytes += bytes;
    resync_bytes_total_ += bytes;
  }

  cost::CommQuery comm_query;
  comm_query.model_bytes =
      static_cast<double>(nets.front()->num_params()) * 4.0;
  comm_query.members = result.live_replicas;
  comm_query.live_fraction = codec_->live_fraction();
  comm_query.codec = codec_->cost_kind();
  const cost::CommCost comm_cost = comm_.cost(comm_query);
  result.comm_bytes_per_gpu = comm_cost.wire_bytes;
  result.comm_time_modeled = comm_cost.hierarchical_time;
  result.step_time_modeled =
      table_.max_ewma(participants) + result.comm_time_modeled;

  if (telemetry::enabled()) {
    telemetry::count("dist/steps");
    telemetry::count("dist/allreduce_bytes", result.comm_bytes_per_gpu);
    telemetry::gauge("dist/live_replicas",
                     static_cast<double>(result.live_replicas));
    if (result.resync_bytes > 0) {
      telemetry::count("dist/resync_bytes",
                       static_cast<double>(result.resync_bytes));
    }
  }
  return result;
}

}  // namespace pt::dist
