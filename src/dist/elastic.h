// Elastic data-parallel cluster (ISSUE 5 tentpole): dist::Cluster's
// synchronous step semantics plus real membership — permanent replica
// failure, quorum policy, deterministic re-sharding over the live set, and
// checkpointed rejoin.
//
// Differences from the fixed-membership Cluster:
//
//  * A MembershipTable heartbeat round runs before every step. Replicas
//    whose permanent-failure latch is set (kill-replica / flaky-replica
//    faults, or a statically scheduled departure) stop acking and are
//    excluded from compute, allreduce, broadcast, *and* the optimizer
//    step — a dead replica's model goes stale, which is precisely what
//    makes rejoin a real protocol rather than a no-op. (Cluster's
//    drop/delay faults are transient: there the victim still receives the
//    broadcast and stays bit-identical. Kill is the permanent cousin.)
//
//  * Re-sharding is deterministic: the global batch is split into
//    contiguous chunks over the participants in replica-rank order
//    (participant i takes total/n + (i < total%n) samples). The layout
//    depends only on the participant set, so a given membership schedule
//    always yields bitwise-identical shards — the same contract pt::exec
//    makes for intra-step parallelism (membership.h spells it out).
//
//  * Quorum: fewer than ceil(min_live_fraction * size) participants
//    raises ClusterDegraded carrying a fatal kQuorumLoss HealthEvent, so
//    the guardian (PR 2) can checkpoint-and-abort instead of silently
//    training on a sliver of the batch.
//
//  * Checkpointed rejoin: a DEAD replica revived by a rejoin-replica
//    fault (or schedule_rejoin) spends one fenced step REJOINING — it
//    first replays topology from the last CRC-valid checkpoint
//    (set_resync_checkpoint, the PR 1 state-dict file; a missing, corrupt,
//    or stale-shape checkpoint falls back to cloning the structure from a
//    survivor), then receives a full state broadcast (params + momentum +
//    BN buffers) from the first participant at the end of the step. Its
//    first synced step is therefore bit-identical to the survivors'.
//    Resynced bytes are accounted (resync_bytes_total, telemetry counter
//    dist/resync_bytes).
//
//  * Straggler accounting: measured per-participant step time (wall clock
//    + injected delay) feeds a per-replica EWMA; the modeled synchronous
//    step time is max live EWMA + modeled allreduce time at the live ring
//    size and the codec's compressed volume (cost::CommModel::cost).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cost/comm.h"
#include "data/loader.h"
#include "dist/codec.h"
#include "dist/membership.h"
#include "exec/context.h"
#include "graph/network.h"
#include "optim/sgd.h"
#include "robust/fault.h"
#include "robust/health.h"

namespace pt::dist {

struct ElasticStepResult {
  double loss = 0;                ///< mean loss over *processed* samples
  std::int64_t correct = 0;       ///< correct predictions among processed
  std::int64_t processed = 0;     ///< samples actually trained this step
  int live_replicas = 0;          ///< participants this step
  double comm_bytes_per_gpu = 0;  ///< ring bytes at the live ring size
  double comm_time_modeled = 0;   ///< modeled allreduce time, live ring
  double step_time_modeled = 0;   ///< max live EWMA + comm_time_modeled
  double fault_wait_seconds = 0;  ///< injected straggler delay this step
  std::int64_t resync_bytes = 0;  ///< state bytes broadcast to rejoiners
};

/// Raised by ElasticCluster::step when the live set falls below quorum;
/// carries the fatal kQuorumLoss event for the guardian. The epoch field
/// is -1 (the cluster counts steps, not epochs) — the trainer stamps it.
class ClusterDegraded : public std::runtime_error {
 public:
  explicit ClusterDegraded(robust::HealthEvent event)
      : std::runtime_error(event.describe()), event_(std::move(event)) {}
  const robust::HealthEvent& event() const { return event_; }
  robust::HealthEvent& event() { return event_; }

 private:
  robust::HealthEvent event_;
};

class ElasticCluster {
 public:
  /// Applied to every participant after its optimizer step (the trainer
  /// hangs the prune strategy's per-replica weight hook here so dead
  /// replicas stay untouched). `first` is true only for the first
  /// participant of the step — strategy *state* updates must run once per
  /// step, while per-replica weight mutations run for every participant.
  using PostUpdateHook = std::function<void(graph::Network&, bool first)>;

  /// Takes ownership of `replicas` (structurally identical, identically
  /// initialized). `comm.gpus` must match the replica count.
  ElasticCluster(std::vector<graph::Network> replicas, cost::CommSpec comm,
                 MembershipConfig membership = {});

  int size() const { return static_cast<int>(replicas_.size()); }
  graph::Network& replica(int i) {
    return replicas_[static_cast<std::size_t>(i)];
  }
  const MembershipTable& membership() const { return table_; }
  const MemberStatus& member(int r) const { return table_.member(r); }
  /// Replicas currently able to ack (HEALTHY), per the last poll; before
  /// the first step this is the full size.
  int live_count() const;

  /// Attaches a fault injector (by value; pass {} to disarm). Membership
  /// kinds (kill/flaky/rejoin) are consulted by the heartbeat poll;
  /// gradient kinds corrupt the matching participant after backward;
  /// delay-replica charges modeled straggler time into the EWMA.
  void set_fault_injector(robust::FaultInjector injector);
  const robust::FaultInjector& fault_injector() const { return injector_; }
  /// Removes and returns the injector with its fire-state intact — used
  /// when the trainer rebuilds the cluster (resume / rollback) without
  /// re-arming already-consumed faults.
  robust::FaultInjector take_fault_injector();

  /// Statically scripts a departure / rejoin (membership.h). The
  /// injector-free twin of kill-replica / rejoin-replica faults.
  void schedule_departure(int replica, std::int64_t step);
  void schedule_rejoin(int replica, std::int64_t step);

  /// Path of the last known-good checkpoint; rejoiners replay their
  /// topology from it before the state broadcast ("" = survivor clone).
  void set_resync_checkpoint(std::string path);

  /// Replaces the gradient codec (default: `dense`) and binds it to the
  /// current replica topology. Shape-compatible codec state (loaded from a
  /// checkpoint) survives the bind; a rejoiner's per-replica state is
  /// reset by its resync fence.
  void set_codec(std::shared_ptr<GradientCodec> codec);
  GradientCodec& codec() { return *codec_; }

  /// One synchronous elastic step: heartbeat poll, quorum check, shard
  /// over participants, forward/backward, weighted allreduce, optimizer
  /// step + hook on participants only, then fenced rejoiner resync.
  /// Throws ClusterDegraded below quorum (or with zero participants) and
  /// ReplicaDivergence if a participant's param table drifted.
  ElasticStepResult step(exec::ExecContext& ctx, const data::Batch& batch,
                         optim::SGD& opt,
                         const PostUpdateHook& post_update = {});

  /// Context-free shim: single-threaded step on ExecContext::serial().
  ElasticStepResult step(const data::Batch& batch, optim::SGD& opt,
                         const PostUpdateHook& post_update = {}) {
    return step(exec::ExecContext::serial(), batch, opt, post_update);
  }

  /// Membership edges since the last call, in occurrence order.
  std::vector<MembershipTransition> drain_transitions();
  /// Health events (quorum loss) raised since the last call.
  std::vector<robust::HealthEvent> drain_health_events();

  /// Heals replica `victim` in place by a fenced full-state copy from
  /// replica `root` — the phase-2 broadcast of the rejoin resync, without
  /// the topology replay (digest voting already proved the topologies
  /// match; a victim whose *structure* diverged is rebuilt from a root
  /// clone first). Used by the integrity monitor when a digest vote
  /// convicts a minority replica of silent corruption: one copy, no
  /// rollback, no lost steps. Returns the bytes copied.
  std::int64_t heal_replica(int victim, int root);

  std::int64_t resync_bytes_total() const { return resync_bytes_total_; }
  /// State bytes copied by integrity heals (heal_replica), cumulative.
  std::int64_t heal_bytes_total() const { return heal_bytes_total_; }
  std::int64_t steps() const { return step_counter_; }
  /// Gradient bytes per update per worker at the current live ring size.
  double update_bytes() const;
  const cost::CommModel& comm() const { return comm_; }

 private:
  /// Rebinds the codec when pruning surgery changed parameter shapes since
  /// the last bind (same contract as Cluster::rebind_codec_if_stale).
  void rebind_codec_if_stale();

  /// Replays topology + state onto rejoiner `r` from checkpoint or the
  /// survivor at rank `root`, then counts the fenced state broadcast.
  std::int64_t resync_rejoiner(int r, int root);

  /// The fenced full-state copy shared by rejoin resync (phase 2) and
  /// integrity heals: every state tensor of `src_rank`'s replica copied
  /// bit-exactly onto `dst_rank`'s. Returns the bytes copied.
  std::int64_t copy_full_state(int src_rank, int dst_rank);

  std::vector<graph::Network> replicas_;
  cost::CommModel comm_;
  std::shared_ptr<GradientCodec> codec_;
  MembershipTable table_;
  robust::FaultInjector injector_;
  std::string resync_ckpt_path_;
  std::vector<MembershipTransition> transitions_;
  std::vector<robust::HealthEvent> health_events_;
  std::int64_t resync_bytes_total_ = 0;
  std::int64_t heal_bytes_total_ = 0;
  std::int64_t step_counter_ = 0;  ///< global step index for fault matching
};

}  // namespace pt::dist
