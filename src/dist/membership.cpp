#include "dist/membership.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pt::dist {

std::string to_string(ReplicaState state) {
  switch (state) {
    case ReplicaState::kHealthy: return "healthy";
    case ReplicaState::kSuspect: return "suspect";
    case ReplicaState::kDead: return "dead";
    case ReplicaState::kRejoining: return "rejoining";
  }
  return "?";
}

void MembershipConfig::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("MembershipConfig: " + what);
  };
  if (suspect_threshold < 1) {
    fail("suspect_threshold must be >= 1 (got " +
         std::to_string(suspect_threshold) + ")");
  }
  if (!(min_live_fraction > 0.0 && min_live_fraction <= 1.0)) {
    fail("min_live_fraction must lie in (0, 1] (got " +
         std::to_string(min_live_fraction) + ")");
  }
  if (!(ewma_alpha > 0.0 && ewma_alpha <= 1.0)) {
    fail("ewma_alpha must lie in (0, 1] (got " + std::to_string(ewma_alpha) +
         ")");
  }
}

std::string MembershipTransition::describe() const {
  std::ostringstream os;
  os << "replica " << replica << ": " << to_string(from) << " -> "
     << to_string(to) << " at step " << step;
  return os.str();
}

MembershipTable::MembershipTable(int size, MembershipConfig cfg) : cfg_(cfg) {
  cfg_.validate();
  if (size < 1) {
    throw std::invalid_argument("MembershipTable: size must be >= 1 (got " +
                                std::to_string(size) + ")");
  }
  members_.resize(static_cast<std::size_t>(size));
  departure_at_.assign(static_cast<std::size_t>(size), -1);
  rejoin_at_.assign(static_cast<std::size_t>(size), -1);
}

const MemberStatus& MembershipTable::member(int replica) const {
  return members_.at(static_cast<std::size_t>(replica));
}

void MembershipTable::schedule_departure(int replica, std::int64_t step) {
  if (replica < 0 || replica >= size()) {
    throw std::invalid_argument("schedule_departure: bad replica index " +
                                std::to_string(replica));
  }
  departure_at_.at(static_cast<std::size_t>(replica)) = step;
}

void MembershipTable::schedule_rejoin(int replica, std::int64_t step) {
  if (replica < 0 || replica >= size()) {
    throw std::invalid_argument("schedule_rejoin: bad replica index " +
                                std::to_string(replica));
  }
  rejoin_at_.at(static_cast<std::size_t>(replica)) = step;
}

int MembershipTable::quorum_threshold() const {
  return static_cast<int>(
      std::ceil(cfg_.min_live_fraction * static_cast<double>(size())));
}

void MembershipTable::transition(int replica, ReplicaState to,
                                 std::int64_t step) {
  MemberStatus& m = members_[static_cast<std::size_t>(replica)];
  transitions_.push_back({replica, m.state, to, step});
  m.state = to;
}

void MembershipTable::poll(std::int64_t step, robust::FaultInjector* injector) {
  participants_.clear();
  rejoining_.clear();
  for (int r = 0; r < size(); ++r) {
    MemberStatus& m = members_[static_cast<std::size_t>(r)];

    // Promote members whose fenced resync completed at the end of the
    // previous step: their first synced step is this one.
    if (m.state == ReplicaState::kRejoining) {
      transition(r, ReplicaState::kHealthy, step);
      m.failed = false;
      m.missed_acks = 0;
      m.failed_since = -1;
      m.rejoined_at = step;
      m.ewma_step_seconds = 0;  // stale estimate; resample from scratch
    }

    if (m.state == ReplicaState::kDead) {
      const bool scheduled =
          rejoin_at_[static_cast<std::size_t>(r)] == step;
      const bool injected =
          injector != nullptr && injector->rejoin_replica(r, step);
      if (cfg_.allow_rejoin && (scheduled || injected)) {
        transition(r, ReplicaState::kRejoining, step);
        // The revived worker is a fresh process: consume the departure and
        // rejoin schedules so a stale `step >= departure_at` match cannot
        // kill it again on its first healthy poll.
        departure_at_[static_cast<std::size_t>(r)] = -1;
        rejoin_at_[static_cast<std::size_t>(r)] = -1;
        rejoining_.push_back(r);
      }
      continue;
    }

    // Heartbeat: the permanent-failure latch, once set, is never re-queried
    // — a dead process answers no further polls.
    if (!m.failed) {
      bool dies = departure_at_[static_cast<std::size_t>(r)] >= 0 &&
                  step >= departure_at_[static_cast<std::size_t>(r)];
      if (!dies && injector != nullptr) {
        dies = injector->kill_replica(r, step) ||
               injector->flaky_replica(r, step);
      }
      if (dies) {
        m.failed = true;
        m.failed_since = step;
      }
    }

    if (!m.failed) {
      m.missed_acks = 0;
      participants_.push_back(r);
      ++m.steps_participated;
      continue;
    }

    ++m.missed_acks;
    if (m.state == ReplicaState::kHealthy) {
      transition(r, ReplicaState::kSuspect, step);
    }
    if (m.state == ReplicaState::kSuspect &&
        m.missed_acks >= cfg_.suspect_threshold) {
      transition(r, ReplicaState::kDead, step);
    }
  }
}

void MembershipTable::record_step_time(int replica, double seconds) {
  MemberStatus& m = members_.at(static_cast<std::size_t>(replica));
  m.ewma_step_seconds =
      m.ewma_step_seconds == 0
          ? seconds
          : cfg_.ewma_alpha * seconds +
                (1.0 - cfg_.ewma_alpha) * m.ewma_step_seconds;
}

double MembershipTable::max_ewma(const std::vector<int>& replicas) const {
  double worst = 0;
  for (int r : replicas) {
    worst = std::max(worst, member(r).ewma_step_seconds);
  }
  return worst;
}

std::vector<MembershipTransition> MembershipTable::drain_transitions() {
  std::vector<MembershipTransition> out;
  out.swap(transitions_);
  return out;
}

}  // namespace pt::dist
