// Replica lifecycle tracking for elastic data-parallel training (ISSUE 5
// tentpole): the bookkeeping half of dist::ElasticCluster.
//
// Each replica moves through a four-state machine driven by a modeled
// heartbeat/step-ack protocol:
//
//   HEALTHY --miss--> SUSPECT --K misses--> DEAD --rejoin--> REJOINING
//      ^                                                        |
//      +------------------- first synced step -------------------+
//
// A replica acks a step unless its permanent-failure latch is set (by a
// kill-replica / flaky-replica fault or a statically scheduled departure).
// The latch is the *only* thing that decides participation: a replica
// computes and joins the allreduce iff it acked, so the shard layout of a
// step depends only on *which step each member stopped acking* — never on
// the SUSPECT counter, the detection threshold, or any other observational
// state. That is the determinism contract: a run where replica 2 dies at
// step 50 is bitwise identical to a run whose membership schedule had that
// departure fixed from step 0 (dist_test.cpp holds this as an acceptance
// test). SUSPECT and DEAD exist to *report* the failure (and to gate
// rejoin, which is only offered to DEAD members), not to shape numerics.
//
// Straggler accounting rides along: per-replica EWMA of measured step time
// (wall clock + injected delay) feeds the modeled synchronous step cost in
// ElasticCluster (max over live EWMAs + modeled allreduce time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "robust/fault.h"

namespace pt::dist {

enum class ReplicaState : std::uint8_t {
  kHealthy = 0,    ///< acking heartbeats, full participant
  kSuspect = 1,    ///< missed < suspect_threshold consecutive acks
  kDead = 2,       ///< permanent failure declared; eligible for rejoin
  kRejoining = 3,  ///< resyncing; fenced out of compute + allreduce
};

std::string to_string(ReplicaState state);

struct MembershipConfig {
  /// Consecutive missed step-acks before a SUSPECT member is declared
  /// DEAD. Detection bookkeeping only — participation stops at the first
  /// missed ack regardless (see the determinism contract above).
  int suspect_threshold = 3;
  /// Quorum: a step needs >= ceil(min_live_fraction * size) participants,
  /// else ElasticCluster raises ClusterDegraded into the guardian.
  double min_live_fraction = 0.5;
  /// When false, DEAD is terminal: rejoin faults and schedules are ignored.
  bool allow_rejoin = true;
  /// Smoothing for the per-replica step-time EWMA (1 = latest sample only).
  double ewma_alpha = 0.2;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Point-in-time view of one replica's membership record.
struct MemberStatus {
  ReplicaState state = ReplicaState::kHealthy;
  bool failed = false;              ///< permanent-failure latch
  int missed_acks = 0;              ///< consecutive misses while latched
  std::int64_t failed_since = -1;   ///< first step with no ack (-1 = never)
  std::int64_t rejoined_at = -1;    ///< step of last REJOINING->HEALTHY
  double ewma_step_seconds = 0;     ///< straggler estimate (0 = no sample)
  std::int64_t steps_participated = 0;
};

/// One state-machine edge, for telemetry and tests.
struct MembershipTransition {
  int replica = -1;
  ReplicaState from = ReplicaState::kHealthy;
  ReplicaState to = ReplicaState::kHealthy;
  std::int64_t step = -1;

  /// "replica 2: suspect -> dead at step 52".
  std::string describe() const;
};

class MembershipTable {
 public:
  MembershipTable(int size, MembershipConfig cfg);

  int size() const { return static_cast<int>(members_.size()); }
  const MemberStatus& member(int replica) const;
  const MembershipConfig& config() const { return cfg_; }

  /// Statically scripts a permanent departure: replica stops acking at
  /// `step`, exactly as if a kill-replica fault fired there. This is the
  /// injector-free path the bitwise acceptance test compares against.
  void schedule_departure(int replica, std::int64_t step);

  /// Statically scripts a rejoin attempt at `step` (honored only if the
  /// replica is DEAD by then and allow_rejoin is set).
  void schedule_rejoin(int replica, std::int64_t step);

  /// One heartbeat round: consults static schedules and (when non-null)
  /// the fault injector in rank order, latches new permanent failures,
  /// advances every member's state, and promotes members that finished
  /// resyncing last step to HEALTHY. Call exactly once per cluster step,
  /// before sharding.
  void poll(std::int64_t step, robust::FaultInjector* injector);

  /// Rank-ordered replicas that acked the last poll: they compute, they
  /// allreduce, and nothing else does. Valid until the next poll().
  const std::vector<int>& participants() const { return participants_; }

  /// Replicas that entered REJOINING at the last poll and must be resynced
  /// (fenced) during this step.
  const std::vector<int>& rejoining() const { return rejoining_; }

  /// Minimum participants for a step: ceil(min_live_fraction * size).
  int quorum_threshold() const;

  /// Folds one measured step time (seconds) into the replica's EWMA.
  void record_step_time(int replica, double seconds);

  /// Largest EWMA among `replicas` — the modeled synchronous-step critical
  /// path (0 when nobody has a sample yet).
  double max_ewma(const std::vector<int>& replicas) const;

  /// Returns and clears the accumulated transition log.
  std::vector<MembershipTransition> drain_transitions();

 private:
  void transition(int replica, ReplicaState to, std::int64_t step);

  MembershipConfig cfg_;
  std::vector<MemberStatus> members_;
  std::vector<std::int64_t> departure_at_;  ///< -1 = none scheduled
  std::vector<std::int64_t> rejoin_at_;     ///< -1 = none scheduled
  std::vector<int> participants_;
  std::vector<int> rejoining_;
  std::vector<MembershipTransition> transitions_;
};

}  // namespace pt::dist
