#include "exec/context.h"

#include <algorithm>
#include <stdexcept>

namespace pt::exec {

namespace {

// Depth of parallel_for nesting on this thread. Non-zero inside a worker
// chunk (or a nested caller chunk): further parallel_for calls run inline
// so a nested kernel can never deadlock waiting for the busy workers.
thread_local int t_parallel_depth = 0;

std::size_t pow2_class(std::size_t n) {
  std::size_t k = 0;
  while ((std::size_t{1} << k) < n) ++k;
  return k;
}

}  // namespace

// ---------------------------------------------------------------------------
// ThreadPool

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_chunk(
    const std::function<void(std::int64_t, std::int64_t, int)>& fn,
    std::int64_t n, int num_chunks, int chunk) {
  // Static partition: chunk c covers [c*n/T, (c+1)*n/T). Depends only on
  // (n, num_chunks) — the determinism contract's whole foundation.
  const std::int64_t begin = n * chunk / num_chunks;
  const std::int64_t end = n * (chunk + 1) / num_chunks;
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  if (begin < end) fn(begin, end, chunk);
}

void ThreadPool::worker_loop(int worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::int64_t n;
    int chunks;
    const std::function<void(std::int64_t, std::int64_t, int)>* fn;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      n = job_n_;
      chunks = job_chunks_;
      fn = job_fn_;
    }
    // Worker w owns chunk w+1 (the caller runs chunk 0); workers beyond the
    // chunk count have nothing to do this round but must still check in.
    const int chunk = worker_index + 1;
    std::exception_ptr err;
    if (chunk < chunks) {
      ++t_parallel_depth;
      try {
        run_chunk(*fn, n, chunks, chunk);
      } catch (...) {
        err = std::current_exception();
      }
      --t_parallel_depth;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (err && (first_error_chunk_ < 0 || chunk < first_error_chunk_)) {
        first_error_ = err;
        first_error_chunk_ = chunk;
      }
      --pending_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::int64_t n,
    const std::function<void(std::int64_t, std::int64_t, int)>& fn) {
  if (n <= 0) return;
  const int chunks =
      static_cast<int>(std::min<std::int64_t>(size(), n));
  if (chunks == 1 || t_parallel_depth > 0) {
    // Single-threaded or nested: run every chunk inline, in chunk order.
    // The partition is still the (n, chunks) static one, so the per-chunk
    // work — and therefore every result bit — matches the parallel run.
    ++t_parallel_depth;
    try {
      for (int c = 0; c < chunks; ++c) run_chunk(fn, n, chunks, c);
    } catch (...) {
      --t_parallel_depth;
      throw;
    }
    --t_parallel_depth;
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_n_ = n;
    job_chunks_ = chunks;
    job_fn_ = &fn;
    pending_ = static_cast<int>(workers_.size());
    first_error_ = nullptr;
    first_error_chunk_ = -1;
    ++generation_;
  }
  start_cv_.notify_all();

  // The caller contributes chunk 0 while the workers run theirs.
  std::exception_ptr caller_err;
  ++t_parallel_depth;
  try {
    run_chunk(fn, n, chunks, 0);
  } catch (...) {
    caller_err = std::current_exception();
  }
  --t_parallel_depth;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_fn_ = nullptr;
    if (caller_err && first_error_chunk_ != 0) {
      first_error_ = caller_err;  // chunk 0 precedes any worker chunk
    }
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

// ---------------------------------------------------------------------------
// Workspace

Workspace::Lease& Workspace::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    owner_ = other.owner_;
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.owner_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }
  return *this;
}

void Workspace::Lease::release() {
  if (owner_ != nullptr) {
    owner_->give_back(data_, capacity_);
    owner_ = nullptr;
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }
}

std::size_t Workspace::round_up_capacity(std::size_t n) {
  if (n == 0) n = 1;
  return std::size_t{1} << pow2_class(n);
}

Workspace::Lease Workspace::acquire(std::size_t n) {
  if (n == 0) n = 1;
  const std::size_t cls = pow2_class(n);
  const std::size_t capacity = std::size_t{1} << cls;
  float* data = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++leases_;
    if (free_lists_.size() <= cls) free_lists_.resize(cls + 1);
    auto& list = free_lists_[cls];
    if (!list.empty()) {
      data = list.back().release();
      list.pop_back();
    } else {
      data = new float[capacity];
      ++heap_allocations_;
      bytes_reserved_ += capacity * sizeof(float);
    }
    bytes_in_use_ += capacity * sizeof(float);
    high_water_bytes_ = std::max(high_water_bytes_, bytes_in_use_);
  }
  Lease lease;
  lease.owner_ = this;
  lease.data_ = data;
  lease.size_ = n;
  lease.capacity_ = capacity;
  return lease;
}

void Workspace::give_back(float* data, std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  bytes_in_use_ -= capacity * sizeof(float);
  const std::size_t cls = pow2_class(capacity);
  if (free_lists_.size() <= cls) free_lists_.resize(cls + 1);
  free_lists_[cls].emplace_back(data);
}

WorkspaceStats Workspace::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkspaceStats s;
  s.bytes_reserved = bytes_reserved_;
  s.high_water_bytes = high_water_bytes_;
  s.heap_allocations = heap_allocations_;
  s.leases = leases_;
  return s;
}

void Workspace::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes_in_use_ != 0) {
    throw std::logic_error("Workspace::clear with outstanding leases");
  }
  free_lists_.clear();
  bytes_reserved_ = 0;
  high_water_bytes_ = 0;
  heap_allocations_ = 0;
  leases_ = 0;
}

// ---------------------------------------------------------------------------
// ExecContext

ExecContext::ExecContext(int num_threads) {
  if (num_threads < 0) {
    throw std::invalid_argument("ExecContext: num_threads must be >= 0");
  }
  int threads = num_threads;
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  workspace_ = std::make_unique<Workspace>();
}

void ExecContext::rebuild_workspace() { workspace_->clear(); }

ExecContext& ExecContext::serial() {
  static ExecContext ctx(1);
  return ctx;
}

}  // namespace pt::exec
