// Execution context: the per-run handle every hot-path kernel executes
// through. It carries
//
//  1. a deterministic thread pool — parallel loops are split into one
//     *static contiguous* index chunk per thread (chunk t of [0, n) is
//     [t*n/T, (t+1)*n/T)), with no work stealing and no cross-chunk
//     reductions, so every output element is computed by exactly the same
//     serial instruction sequence regardless of the thread count. N-thread
//     results are bitwise-identical to 1-thread results by construction.
//
//  2. a size-classed workspace arena that owns the im2col/col2im/dcol
//     scratch the conv layers used to allocate per call. Buffers are
//     checked out via RAII leases, grown monotonically, and reused across
//     steps — a steady-state epoch performs zero workspace heap
//     allocations (asserted by tests/exec_test.cpp via the stats counters).
//
// Layers, Network, PruneTrainer, and dist::Cluster all take an
// ExecContext&; the context-free entry points are compatibility shims over
// ExecContext::serial(). See DESIGN.md §9 for ownership, the determinism
// contract, and the workspace lifecycle across reconfiguration.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pt::exec {

/// Deterministic fork-join pool: `threads - 1` persistent workers plus the
/// calling thread. parallel_for() partitions [0, n) into at most `threads`
/// static contiguous chunks; the caller runs chunk 0 while workers run the
/// rest, then the call joins. There is no work stealing: the chunk
/// boundaries depend only on (n, threads), never on timing.
///
/// The pool is reentrancy-safe: a parallel_for issued from inside a worker
/// (e.g. a ctx GEMM nested in a parallelized conv sample loop) runs its
/// chunks inline, serially, on the issuing thread.
class ThreadPool {
 public:
  /// `threads` <= 1 means no workers (everything runs inline on the
  /// caller). The pool is not copyable or movable — layers hold references.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads participating in a parallel_for (workers + caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(begin, end, chunk) over a static partition of [0, n) into
  /// min(size(), n) contiguous chunks (chunk c = [c*n/T, (c+1)*n/T)).
  /// Blocks until every chunk has finished. Exceptions thrown by fn are
  /// rethrown on the calling thread (first chunk index wins).
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t begin,
                                             std::int64_t end, int chunk)>& fn);

  /// Cumulative chunks executed (including inline/nested ones) — the
  /// "tasks run" telemetry statistic.
  std::uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(int worker_index);
  void run_chunk(const std::function<void(std::int64_t, std::int64_t, int)>& fn,
                 std::int64_t n, int num_chunks, int chunk);

  std::vector<std::thread> workers_;

  // Dispatch state, guarded by mutex_. Each parallel_for bumps the
  // generation; workers pick up the current job when they observe it.
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::int64_t job_n_ = 0;
  int job_chunks_ = 0;
  const std::function<void(std::int64_t, std::int64_t, int)>* job_fn_ = nullptr;
  int pending_ = 0;      ///< worker chunks not yet finished this generation
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  int first_error_chunk_ = -1;

  std::atomic<std::uint64_t> tasks_run_{0};
};

/// Statistics of one Workspace arena. heap_allocations only moves when the
/// arena grows, so a flat counter across steps proves steady-state reuse.
struct WorkspaceStats {
  std::uint64_t bytes_reserved = 0;    ///< total bytes owned by the arena
  std::uint64_t high_water_bytes = 0;  ///< peak bytes simultaneously leased
  std::uint64_t heap_allocations = 0;  ///< cumulative buffer allocations
  std::uint64_t leases = 0;            ///< cumulative acquire() calls
};

/// Size-classed scratch arena. acquire(n) returns an RAII lease over a
/// float buffer of capacity >= n, drawn from the free list of the smallest
/// power-of-two size class that fits (allocating only when the class is
/// empty). Released buffers return to their class and are reused by later
/// leases — growth is monotone and capped by the peak concurrent demand.
/// Thread-safe; leases themselves must be released on the acquiring thread.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { release(); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    float* data() { return data_; }
    const float* data() const { return data_; }
    std::size_t size() const { return size_; }  ///< requested element count
    void release();

   private:
    friend class Workspace;
    Workspace* owner_ = nullptr;
    float* data_ = nullptr;
    std::size_t size_ = 0;      ///< requested floats
    std::size_t capacity_ = 0;  ///< size-class floats actually held
  };

  /// Checks out a scratch buffer of at least `n` floats. The contents are
  /// unspecified (callers overwrite before reading).
  Lease acquire(std::size_t n);

  /// The capacity (in floats) a lease of `n` floats actually holds: the
  /// smallest power-of-two size class that fits. Exposed so the cost model
  /// (cost::MemoryModel) can predict the arena's high-water mark exactly.
  static std::size_t round_up_capacity(std::size_t n);

  WorkspaceStats stats() const;
  std::uint64_t bytes_reserved() const { return stats().bytes_reserved; }
  std::uint64_t high_water_bytes() const { return stats().high_water_bytes; }
  std::uint64_t heap_allocations() const { return stats().heap_allocations; }

  /// Frees every owned buffer and resets the statistics. Called when the
  /// model's shapes change (prune/reconfigure) so the arena re-sizes to —
  /// and the high-water mark re-measures — the new, smaller hot loop.
  /// Outstanding leases must have been released (reconfiguration happens at
  /// step boundaries, where none exist).
  void clear();

 private:
  void give_back(float* data, std::size_t capacity);

  mutable std::mutex mutex_;
  // free_lists_[k] holds released buffers of capacity 2^k floats.
  std::vector<std::vector<std::unique_ptr<float[]>>> free_lists_;
  std::uint64_t bytes_reserved_ = 0;
  std::uint64_t bytes_in_use_ = 0;
  std::uint64_t high_water_bytes_ = 0;
  std::uint64_t heap_allocations_ = 0;
  std::uint64_t leases_ = 0;
};

/// The execution-context handle: one pool + one workspace, owned together.
/// Construct one per training run (PruneTrainer does this from
/// TrainConfig::num_threads) and pass it down every forward/backward call.
class ExecContext {
 public:
  /// `num_threads` == 0 uses std::thread::hardware_concurrency().
  explicit ExecContext(int num_threads = 1);

  ThreadPool& pool() { return *pool_; }
  const ThreadPool& pool() const { return *pool_; }
  Workspace& workspace() { return *workspace_; }
  const Workspace& workspace() const { return *workspace_; }
  int num_threads() const { return pool_->size(); }

  /// Drops the workspace arena so its sizing (and high-water statistics)
  /// track the current model shapes; the next step re-leases at the pruned
  /// sizes. The pool is untouched — worker threads survive reconfiguration.
  void rebuild_workspace();

  /// Process-wide single-threaded context backing the context-free
  /// compatibility shims (Layer::forward(x, training) etc.). Test-only
  /// convenience: production call paths thread an explicit context.
  static ExecContext& serial();

 private:
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Workspace> workspace_;
};

}  // namespace pt::exec
