#include "graph/network.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "tensor/ops.h"

namespace pt::graph {

namespace {
using prof_clock = std::chrono::steady_clock;

double seconds_since(prof_clock::time_point t0) {
  return std::chrono::duration<double>(prof_clock::now() - t0).count();
}
}  // namespace

int Network::add_input() {
  if (!nodes_.empty()) throw std::logic_error("input must be the first node");
  Node n;
  n.kind = Node::Kind::kInput;
  nodes_.push_back(std::move(n));
  return 0;
}

int Network::add_layer(nn::LayerPtr layer, int input) {
  if (input < 0 || input >= static_cast<int>(nodes_.size())) {
    throw std::invalid_argument("add_layer: bad input id");
  }
  Node n;
  n.kind = Node::Kind::kLayer;
  n.layer = std::move(layer);
  n.inputs = {input};
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

int Network::add_add(int a, int b) {
  if (a < 0 || b < 0 || a >= static_cast<int>(nodes_.size()) ||
      b >= static_cast<int>(nodes_.size())) {
    throw std::invalid_argument("add_add: bad input id");
  }
  Node n;
  n.kind = Node::Kind::kAdd;
  n.inputs = {a, b};
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

std::vector<int> Network::topo_order() const {
  std::vector<int> indegree(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.kind == Node::Kind::kDead) continue;
    indegree[i] = static_cast<int>(n.inputs.size());
  }
  std::vector<int> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind != Node::Kind::kDead && indegree[i] == 0) {
      ready.push_back(static_cast<int>(i));
    }
  }
  const auto consumers = consumer_map();
  std::vector<int> order;
  order.reserve(nodes_.size());
  // Pop smallest id first so the order is deterministic.
  while (!ready.empty()) {
    auto it = std::min_element(ready.begin(), ready.end());
    const int id = *it;
    ready.erase(it);
    order.push_back(id);
    for (int c : consumers[static_cast<std::size_t>(id)]) {
      if (--indegree[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
    }
  }
  return order;
}

Tensor Network::forward(exec::ExecContext& ctx, const Tensor& x,
                        bool training) {
  if (output_ < 0) throw std::logic_error("network has no output node");
  outputs_.assign(nodes_.size(), Tensor());
  outputs_[0] = x;
  order_cache_ = topo_order();
  if (profiling_ && profile_.size() != nodes_.size()) {
    profile_.assign(nodes_.size(), NodeProfile{});
  }
  for (int id : order_cache_) {
    const std::size_t i = static_cast<std::size_t>(id);
    if (i == 0) continue;
    Node& n = nodes_[i];
    prof_clock::time_point t0;
    if (profiling_) t0 = prof_clock::now();
    switch (n.kind) {
      case Node::Kind::kDead:
        break;
      case Node::Kind::kInput:
        throw std::logic_error("unexpected input node");
      case Node::Kind::kLayer: {
        const Tensor& in = outputs_[static_cast<std::size_t>(n.inputs[0])];
        outputs_[i] = n.layer->forward(ctx, in, training);
        break;
      }
      case Node::Kind::kAdd: {
        const Tensor& a = outputs_[static_cast<std::size_t>(n.inputs[0])];
        const Tensor& b = outputs_[static_cast<std::size_t>(n.inputs[1])];
        if (a.shape() != b.shape()) {
          throw std::logic_error("add: shape mismatch " + a.shape().to_string() +
                                 " vs " + b.shape().to_string());
        }
        Tensor out(a.shape());
        add(a.span(), b.span(), out.span());
        outputs_[i] = out;
        break;
      }
    }
    if (profiling_ && n.kind != Node::Kind::kDead) {
      NodeProfile& p = profile_[i];
      ++p.forward_calls;
      p.forward_seconds += seconds_since(t0);
    }
  }
  trained_forward_ = training;
  return outputs_[static_cast<std::size_t>(output_)];
}

Tensor Network::backward(exec::ExecContext& ctx, const Tensor& dy) {
  if (!trained_forward_) {
    throw std::logic_error("backward requires a training-mode forward");
  }
  std::vector<Tensor> grads(nodes_.size());
  grads[static_cast<std::size_t>(output_)] = dy.clone();
  auto accumulate = [&](int id, const Tensor& g) {
    Tensor& slot = grads[static_cast<std::size_t>(id)];
    if (!slot.defined()) {
      slot = g.clone();
    } else {
      axpy(1.f, g.span(), slot.span());
    }
  };
  for (auto it = order_cache_.rbegin(); it != order_cache_.rend(); ++it) {
    const int i = *it;
    if (i == 0) continue;
    Node& n = nodes_[static_cast<std::size_t>(i)];
    if (n.kind == Node::Kind::kDead) continue;
    const Tensor& g = grads[static_cast<std::size_t>(i)];
    if (!g.defined()) continue;  // node does not influence the output
    prof_clock::time_point t0;
    if (profiling_) t0 = prof_clock::now();
    if (n.kind == Node::Kind::kLayer) {
      Tensor gin = n.layer->backward(ctx, g);
      accumulate(n.inputs[0], gin);
    } else {  // kAdd
      accumulate(n.inputs[0], g);
      accumulate(n.inputs[1], g);
    }
    if (profiling_) {
      if (profile_.size() != nodes_.size()) {
        profile_.assign(nodes_.size(), NodeProfile{});
      }
      NodeProfile& p = profile_[static_cast<std::size_t>(i)];
      ++p.backward_calls;
      p.backward_seconds += seconds_since(t0);
    }
    grads[static_cast<std::size_t>(i)] = Tensor();  // release early
  }
  Tensor gin = grads[0].defined() ? grads[0] : Tensor(outputs_[0].shape());
  trained_forward_ = false;
  return gin;
}

std::vector<nn::Param*> Network::params() {
  std::vector<nn::Param*> out;
  for (Node& n : nodes_) {
    if (n.kind != Node::Kind::kLayer) continue;
    for (nn::Param* p : n.layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<const nn::Param*> Network::params() const {
  std::vector<const nn::Param*> out;
  for (const Node& n : nodes_) {
    if (n.kind != Node::Kind::kLayer) continue;
    const nn::Layer& layer = *n.layer;
    for (const nn::Param* p : layer.params()) out.push_back(p);
  }
  return out;
}

std::vector<nn::StateEntry> Network::state() {
  std::vector<nn::StateEntry> out;
  for (int id : topo_order()) {
    if (id == 0) continue;
    Node& n = node(id);
    if (n.kind != Node::Kind::kLayer) continue;
    const std::string prefix =
        n.layer->name().empty() ? "node" + std::to_string(id) : n.layer->name();
    for (nn::StateEntry e : n.layer->state()) {
      e.name = prefix + "." + e.name;
      out.push_back(std::move(e));
    }
  }
  return out;
}

void Network::zero_grad() {
  for (nn::Param* p : params()) p->grad.fill(0.f);
}

void Network::clear_context() {
  for (Node& n : nodes_) {
    if (n.kind == Node::Kind::kLayer) n.layer->clear_context();
  }
  outputs_.clear();
}

std::int64_t Network::num_params() const {
  std::int64_t total = 0;
  for (const nn::Param* p : params()) total += p->value.numel();
  return total;
}

int Network::append_raw(Node n) {
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

void Network::bypass_add(int add_id, int surviving_input,
                         const std::vector<int>& dead_nodes) {
  Node& addn = node(add_id);
  if (addn.kind != Node::Kind::kAdd) {
    throw std::invalid_argument("bypass_add: node is not an add");
  }
  // Rewire all consumers of add_id to consume surviving_input directly.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.kind == Node::Kind::kDead) continue;
    for (int& in : n.inputs) {
      if (in == add_id) in = surviving_input;
    }
  }
  if (output_ == add_id) output_ = surviving_input;
  addn.kind = Node::Kind::kDead;
  addn.layer.reset();
  for (int id : dead_nodes) {
    Node& n = node(id);
    n.kind = Node::Kind::kDead;
    n.layer.reset();
  }
}

std::vector<std::vector<int>> Network::consumer_map() const {
  std::vector<std::vector<int>> consumers(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.kind == Node::Kind::kDead) continue;
    for (int in : n.inputs) {
      consumers[static_cast<std::size_t>(in)].push_back(static_cast<int>(i));
    }
  }
  return consumers;
}

}  // namespace pt::graph
