// Network: a DAG of layers with residual (short-cut) connections, plus the
// structural surgery operations PruneTrain's reconfiguration uses (node
// removal, add-bypass when an entire residual path dies).
//
// Node ids are stable across surgery: removed nodes become dead and are
// skipped, so annotations (NetworkInfo) remain valid after reconfiguration.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace pt::graph {

/// One vertex of the network DAG.
struct Node {
  enum class Kind { kInput, kLayer, kAdd, kDead };
  Kind kind = Kind::kDead;
  nn::LayerPtr layer;            ///< kLayer only
  std::vector<int> inputs;       ///< producing node ids (1 for kLayer, 2 for kAdd)
};

/// Structural annotation of one residual block, recorded by model builders
/// and consumed by the pruning machinery (channel union / layer removal).
struct ResidualBlockInfo {
  std::vector<int> path_nodes;      ///< every node on the residual path, in order
  std::vector<int> path_convs;      ///< conv node ids within the path, in order
  int add_node = -1;                ///< the merge point
  std::vector<int> shortcut_nodes;  ///< projection conv+bn node ids ([] = identity)
  int shortcut_conv = -1;           ///< projection conv node id (-1 = identity)
  bool removed = false;             ///< set by reconfiguration when path dies
};

/// Model-level annotations the pruner needs.
struct NetworkInfo {
  int first_conv = -1;               ///< the stem conv (input side stays dense)
  int classifier = -1;               ///< final Linear node (output side stays dense)
  std::vector<ResidualBlockInfo> blocks;
};

/// Per-node execution profile accumulated while profiling is enabled:
/// call counts and wall-time of forward/backward, indexed by node id.
/// Ids are stable across surgery, so a profile row keeps meaning across
/// reconfigurations (dead nodes simply stop accumulating).
struct NodeProfile {
  std::uint64_t forward_calls = 0;
  std::uint64_t backward_calls = 0;
  double forward_seconds = 0;
  double backward_seconds = 0;
};

/// Executable network. Builders append nodes in topological order.
class Network {
 public:
  /// Creates the input placeholder; must be the first node (id 0).
  int add_input();
  /// Appends a layer consuming node `input`'s output. Returns the node id.
  int add_layer(nn::LayerPtr layer, int input);
  /// Appends an elementwise-add merge of two producers. Returns the node id.
  int add_add(int a, int b);
  /// Declares which node's output is the network output.
  void set_output(int id) { output_ = id; }
  int output() const { return output_; }

  /// Runs the DAG on `ctx` (its thread pool and workspace arena execute
  /// every layer). In training mode every layer caches its backward context.
  Tensor forward(exec::ExecContext& ctx, const Tensor& x, bool training);

  /// Back-propagates dL/d(output) on `ctx`; returns dL/d(input). Parameter
  /// gradients accumulate into each layer's Param::grad.
  Tensor backward(exec::ExecContext& ctx, const Tensor& dy);

  /// Context-free shims: single-threaded execution on ExecContext::serial().
  Tensor forward(const Tensor& x, bool training) {
    return forward(exec::ExecContext::serial(), x, training);
  }
  Tensor backward(const Tensor& dy) {
    return backward(exec::ExecContext::serial(), dy);
  }

  /// All live parameters, in node order.
  std::vector<nn::Param*> params();
  std::vector<const nn::Param*> params() const;

  /// Named state of every live layer, in topological order. Layer-local
  /// entry names are qualified with the layer's hierarchical name (or
  /// "node<id>" for unnamed layers): "stage1.block0.conv1.weight". This is
  /// the traversal snapshots, checkpoints, and the optimizer build on.
  std::vector<nn::StateEntry> state();

  void zero_grad();
  /// Releases every layer's cached forward context.
  void clear_context();

  /// Total number of parameter scalars (live nodes only).
  std::int64_t num_params() const;

  std::size_t num_nodes() const { return nodes_.size(); }
  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  Node& node(int id) { return nodes_[static_cast<std::size_t>(id)]; }
  bool is_live(int id) const {
    return nodes_[static_cast<std::size_t>(id)].kind != Node::Kind::kDead;
  }

  /// Node ids (live) whose layer is of dynamic type L, in topological order.
  template <typename L>
  std::vector<int> nodes_of_type() const {
    std::vector<int> out;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const Node& n = nodes_[i];
      if (n.kind == Node::Kind::kLayer &&
          dynamic_cast<const L*>(n.layer.get()) != nullptr) {
        out.push_back(static_cast<int>(i));
      }
    }
    return out;
  }

  /// Typed layer accessor; throws on kind/type mismatch.
  template <typename L>
  L& layer_as(int id) {
    Node& n = node(id);
    if (n.kind != Node::Kind::kLayer) throw std::logic_error("node is not a layer");
    auto* p = dynamic_cast<L*>(n.layer.get());
    if (!p) throw std::logic_error("node has unexpected layer type");
    return *p;
  }

  /// Raw node append used by checkpoint restore: no input validation (the
  /// node may reference ids not appended yet, or be dead). Returns the id.
  int append_raw(Node n);

  /// Surgery: replaces add node `add_id` by a pass-through of
  /// `surviving_input` (rewiring all consumers) and kills `dead_nodes`.
  /// Used when an entire residual path is removed.
  void bypass_add(int add_id, int surviving_input, const std::vector<int>& dead_nodes);

  /// Consumers of each node's output among live nodes.
  std::vector<std::vector<int>> consumer_map() const;

  /// Live nodes in dependency order (Kahn). Builders append topologically,
  /// but surgery (e.g. channel-gating inserting scatter nodes) can create
  /// nodes whose id order differs from execution order.
  std::vector<int> topo_order() const;

  /// Per-node wall-time profiling of forward/backward. Off by default:
  /// when disabled the execution loops take no clock readings at all, so
  /// production training speed is unaffected. The telemetry subsystem
  /// turns this on to build per-layer epoch records.
  void set_profiling(bool on) { profiling_ = on; }
  bool profiling() const { return profiling_; }
  /// One entry per node id (empty until the first profiled execution).
  const std::vector<NodeProfile>& profile() const { return profile_; }
  void reset_profile() { profile_.assign(nodes_.size(), NodeProfile{}); }

  /// Structural annotations (set by model builders).
  NetworkInfo info;

 private:
  std::vector<Node> nodes_;
  int output_ = -1;
  // Forward cache: per-node output tensors of the last forward call, and
  // the topological order it executed in (reused by backward).
  std::vector<Tensor> outputs_;
  std::vector<int> order_cache_;
  bool trained_forward_ = false;
  bool profiling_ = false;
  std::vector<NodeProfile> profile_;
};

}  // namespace pt::graph
