#include "models/builders.h"

#include <cmath>
#include <stdexcept>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pool.h"

namespace pt::models {

std::int64_t scaled(std::int64_t channels, float width_mult) {
  const auto w = static_cast<std::int64_t>(
      std::lround(static_cast<double>(channels) * width_mult));
  return std::max<std::int64_t>(2, w);
}

namespace {

using graph::Network;
using graph::ResidualBlockInfo;

/// Shared builder state: network under construction plus the RNG stream.
struct Builder {
  Network net;
  Rng rng;
  int cursor = 0;  // current tail node

  explicit Builder(std::uint64_t seed) : rng(seed) { cursor = net.add_input(); }

  int conv(std::int64_t in_c, std::int64_t out_c, std::int64_t k, std::int64_t s,
           std::int64_t p, const std::string& name, int from = -1) {
    auto layer = std::make_shared<nn::Conv2d>(in_c, out_c, k, s, p, rng);
    layer->set_name(name);
    cursor = net.add_layer(layer, from < 0 ? cursor : from);
    return cursor;
  }

  int bn(std::int64_t c, const std::string& name, int from = -1) {
    auto layer = std::make_shared<nn::BatchNorm2d>(c);
    layer->set_name(name);
    cursor = net.add_layer(layer, from < 0 ? cursor : from);
    return cursor;
  }

  int relu(const std::string& name, int from = -1) {
    auto layer = std::make_shared<nn::ReLU>();
    layer->set_name(name);
    cursor = net.add_layer(layer, from < 0 ? cursor : from);
    return cursor;
  }

  int maxpool(std::int64_t window, const std::string& name) {
    auto layer = std::make_shared<nn::MaxPool2d>(window);
    layer->set_name(name);
    cursor = net.add_layer(layer, cursor);
    return cursor;
  }

  int head(std::int64_t channels, std::int64_t classes) {
    auto gap = std::make_shared<nn::GlobalAvgPool>();
    gap->set_name("head.gap");
    cursor = net.add_layer(gap, cursor);
    auto fc = std::make_shared<nn::Linear>(channels, classes, rng);
    fc->set_name("head.fc");
    cursor = net.add_layer(fc, cursor);
    net.info.classifier = cursor;
    net.set_output(cursor);
    return cursor;
  }
};

/// Basic residual block: conv3x3(s)-bn-relu-conv3x3-bn (+shortcut) -relu.
void basic_block(Builder& b, std::int64_t in_c, std::int64_t out_c, std::int64_t stride,
                 const std::string& prefix) {
  const int entry = b.cursor;
  ResidualBlockInfo info;
  const int c1 = b.conv(in_c, out_c, 3, stride, 1, prefix + ".conv1", entry);
  const int n1 = b.bn(out_c, prefix + ".bn1");
  const int r1 = b.relu(prefix + ".relu1");
  const int c2 = b.conv(out_c, out_c, 3, 1, 1, prefix + ".conv2");
  const int n2 = b.bn(out_c, prefix + ".bn2");
  info.path_nodes = {c1, n1, r1, c2, n2};
  info.path_convs = {c1, c2};
  int shortcut = entry;
  if (stride != 1 || in_c != out_c) {
    const int sc = b.conv(in_c, out_c, 1, stride, 0, prefix + ".shortcut.conv", entry);
    const int sb = b.bn(out_c, prefix + ".shortcut.bn");
    info.shortcut_nodes = {sc, sb};
    info.shortcut_conv = sc;
    shortcut = sb;
  }
  const int add = b.net.add_add(n2, shortcut);
  info.add_node = add;
  b.cursor = add;
  b.relu(prefix + ".relu_out");
  b.net.info.blocks.push_back(std::move(info));
}

/// Bottleneck block: conv1x1-bn-relu-conv3x3(s)-bn-relu-conv1x1-bn
/// (+shortcut) -relu; expansion 4.
void bottleneck_block(Builder& b, std::int64_t in_c, std::int64_t mid_c,
                      std::int64_t out_c, std::int64_t stride,
                      const std::string& prefix) {
  const int entry = b.cursor;
  ResidualBlockInfo info;
  const int c1 = b.conv(in_c, mid_c, 1, 1, 0, prefix + ".conv1", entry);
  const int n1 = b.bn(mid_c, prefix + ".bn1");
  const int r1 = b.relu(prefix + ".relu1");
  const int c2 = b.conv(mid_c, mid_c, 3, stride, 1, prefix + ".conv2");
  const int n2 = b.bn(mid_c, prefix + ".bn2");
  const int r2 = b.relu(prefix + ".relu2");
  const int c3 = b.conv(mid_c, out_c, 1, 1, 0, prefix + ".conv3");
  const int n3 = b.bn(out_c, prefix + ".bn3");
  info.path_nodes = {c1, n1, r1, c2, n2, r2, c3, n3};
  info.path_convs = {c1, c2, c3};
  int shortcut = entry;
  if (stride != 1 || in_c != out_c) {
    const int sc = b.conv(in_c, out_c, 1, stride, 0, prefix + ".shortcut.conv", entry);
    const int sb = b.bn(out_c, prefix + ".shortcut.bn");
    info.shortcut_nodes = {sc, sb};
    info.shortcut_conv = sc;
    shortcut = sb;
  }
  const int add = b.net.add_add(n3, shortcut);
  info.add_node = add;
  b.cursor = add;
  b.relu(prefix + ".relu_out");
  b.net.info.blocks.push_back(std::move(info));
}

}  // namespace

graph::Network build_resnet_basic(int depth, const ModelConfig& cfg) {
  if ((depth - 2) % 6 != 0 || depth < 8) {
    throw std::invalid_argument("basic ResNet depth must be 6n+2, got " +
                                std::to_string(depth));
  }
  const int n = (depth - 2) / 6;
  Builder b(cfg.seed);
  const std::int64_t w16 = scaled(16, cfg.width_mult);
  const std::int64_t w32 = scaled(32, cfg.width_mult);
  const std::int64_t w64 = scaled(64, cfg.width_mult);

  b.net.info.first_conv = b.conv(cfg.in_channels, w16, 3, 1, 1, "stem.conv");
  b.bn(w16, "stem.bn");
  b.relu("stem.relu");

  const std::int64_t widths[3] = {w16, w32, w64};
  std::int64_t in_c = w16;
  for (int stage = 0; stage < 3; ++stage) {
    for (int blk = 0; blk < n; ++blk) {
      const std::int64_t stride = (stage > 0 && blk == 0) ? 2 : 1;
      basic_block(b, in_c, widths[stage], stride,
                  "stage" + std::to_string(stage) + ".block" + std::to_string(blk));
      in_c = widths[stage];
    }
  }
  b.head(in_c, cfg.classes);
  return std::move(b.net);
}

graph::Network build_resnet50(const ModelConfig& cfg, bool imagenet_stem) {
  Builder b(cfg.seed);
  const int blocks_per_stage[4] = {3, 4, 6, 3};
  const std::int64_t base[4] = {scaled(64, cfg.width_mult), scaled(128, cfg.width_mult),
                                scaled(256, cfg.width_mult),
                                scaled(512, cfg.width_mult)};
  constexpr std::int64_t kExpansion = 4;

  const std::int64_t stem_c = base[0];
  if (imagenet_stem) {
    b.net.info.first_conv = b.conv(cfg.in_channels, stem_c, 7, 2, 3, "stem.conv");
    b.bn(stem_c, "stem.bn");
    b.relu("stem.relu");
    b.maxpool(2, "stem.pool");
  } else {
    b.net.info.first_conv = b.conv(cfg.in_channels, stem_c, 3, 1, 1, "stem.conv");
    b.bn(stem_c, "stem.bn");
    b.relu("stem.relu");
  }

  std::int64_t in_c = stem_c;
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t mid = base[stage];
    const std::int64_t out = base[stage] * kExpansion;
    for (int blk = 0; blk < blocks_per_stage[stage]; ++blk) {
      const std::int64_t stride = (stage > 0 && blk == 0) ? 2 : 1;
      bottleneck_block(b, in_c, mid, out, stride,
                       "stage" + std::to_string(stage) + ".block" +
                           std::to_string(blk));
      in_c = out;
    }
  }
  b.head(in_c, cfg.classes);
  return std::move(b.net);
}

graph::Network build_vgg(int depth, const ModelConfig& cfg) {
  // Per-stage conv counts of the original configs A (VGG-11) and B (VGG-13).
  std::vector<std::vector<std::int64_t>> plan;
  if (depth == 11) {
    plan = {{64}, {128}, {256, 256}, {512, 512}, {512, 512}};
  } else if (depth == 13) {
    plan = {{64, 64}, {128, 128}, {256, 256}, {512, 512}, {512, 512}};
  } else {
    throw std::invalid_argument("VGG depth must be 11 or 13");
  }
  Builder b(cfg.seed);
  std::int64_t in_c = cfg.in_channels;
  std::int64_t h = cfg.image_h;
  bool first = true;
  for (std::size_t stage = 0; stage < plan.size(); ++stage) {
    for (std::size_t i = 0; i < plan[stage].size(); ++i) {
      const std::int64_t out_c = scaled(plan[stage][i], cfg.width_mult);
      const std::string prefix =
          "stage" + std::to_string(stage) + ".conv" + std::to_string(i);
      const int conv_id = b.conv(in_c, out_c, 3, 1, 1, prefix);
      if (first) {
        b.net.info.first_conv = conv_id;
        first = false;
      }
      b.bn(out_c, prefix + ".bn");
      b.relu(prefix + ".relu");
      in_c = out_c;
    }
    // Down-sample while the spatial extent allows it (small proxy inputs run
    // out of pixels before five halvings).
    if (h >= 2) {
      b.maxpool(2, "stage" + std::to_string(stage) + ".pool");
      h /= 2;
    }
  }
  b.head(in_c, cfg.classes);
  return std::move(b.net);
}

graph::Network build_by_name(const std::string& name, const ModelConfig& cfg) {
  if (name == "resnet8") return build_resnet_basic(8, cfg);
  if (name == "resnet20") return build_resnet_basic(20, cfg);
  if (name == "resnet32") return build_resnet_basic(32, cfg);
  if (name == "resnet56") return build_resnet_basic(56, cfg);
  if (name == "resnet50") return build_resnet50(cfg, false);
  if (name == "resnet50-imagenet") return build_resnet50(cfg, true);
  if (name == "vgg11") return build_vgg(11, cfg);
  if (name == "vgg13") return build_vgg(13, cfg);
  throw std::invalid_argument("unknown model: " + name);
}

std::int64_t count_conv_layers(const graph::Network& net) {
  std::int64_t count = 0;
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    const graph::Node& n = net.node(static_cast<int>(i));
    if (n.kind == graph::Node::Kind::kLayer &&
        dynamic_cast<const nn::Conv2d*>(n.layer.get()) != nullptr) {
      ++count;
    }
  }
  return count;
}

}  // namespace pt::models
