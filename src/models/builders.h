// Model builders for every CNN the paper evaluates: ResNet-20/32/56 (basic
// blocks), ResNet-50 (bottleneck blocks, CIFAR or ImageNet stem), and
// VGG-11/13 (with batch norm).
//
// All builders take a width multiplier so the same topology can run at
// paper scale (for the analytic cost models) or proxy scale (for actual
// single-core training runs). Builders populate graph::NetworkInfo with the
// residual-stage structure the pruning machinery consumes.
//
// Architectural note: the classifier head is GlobalAvgPool + Linear for all
// models (for VGG this replaces the original 3-FC head). This keeps
// FC-input pruning a clean per-channel slice and is the common modern
// variant; it is a documented substitution in DESIGN.md.
#pragma once

#include <cstdint>
#include <string>

#include "graph/network.h"
#include "util/rng.h"

namespace pt::models {

/// Input geometry / head / scaling configuration shared by all builders.
struct ModelConfig {
  std::int64_t in_channels = 3;
  std::int64_t image_h = 16;
  std::int64_t image_w = 16;
  std::int64_t classes = 10;
  float width_mult = 1.0f;   ///< scales every channel count (min 2)
  std::uint64_t seed = 123;  ///< weight-init stream
};

/// Scales a channel count by the width multiplier, clamping to >= 2.
std::int64_t scaled(std::int64_t channels, float width_mult);

/// CIFAR-style basic-block ResNet; depth must be 6n+2 (20, 32, 56, ...).
/// Stages use widths {16, 32, 64} x width_mult, stride-2 transitions with
/// 1x1 projection shortcuts.
graph::Network build_resnet_basic(int depth, const ModelConfig& cfg);

/// Bottleneck ResNet-50: stage blocks {3,4,6,3}, base widths
/// {64,128,256,512} x width_mult, expansion 4. `imagenet_stem` selects the
/// 7x7/s2 + maxpool stem; otherwise a CIFAR 3x3 stem.
graph::Network build_resnet50(const ModelConfig& cfg, bool imagenet_stem = false);

/// VGG-11 or VGG-13 with batch norm, GAP + Linear head.
graph::Network build_vgg(int depth, const ModelConfig& cfg);

/// Convenience dispatcher used by benches: name is one of
/// "resnet20", "resnet32", "resnet50", "resnet56", "vgg11", "vgg13".
graph::Network build_by_name(const std::string& name, const ModelConfig& cfg);

/// Number of live convolution layers (used for the paper's "removed
/// layers" metric, Tab. 3).
std::int64_t count_conv_layers(const graph::Network& net);

}  // namespace pt::models
