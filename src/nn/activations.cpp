#include "nn/activations.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace pt::nn {

Tensor ReLU::do_forward(exec::ExecContext&, const Tensor& x, bool training) {
  Tensor y(x.shape());
  relu(x.span(), y.span());
  if (training) input_ = x;
  return y;
}

Tensor ReLU::do_backward(exec::ExecContext&, const Tensor& dy) {
  if (!input_.defined()) {
    throw std::logic_error("ReLU " + name() + ": backward without forward");
  }
  Tensor dx(dy.shape());
  relu_backward(input_.span(), dy.span(), dx.span());
  return dx;
}

}  // namespace pt::nn
