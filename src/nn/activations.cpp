#include "nn/activations.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace pt::nn {

Tensor ReLU::forward(const Tensor& x, bool training) {
  Tensor y(x.shape());
  relu(x.span(), y.span());
  if (training) input_ = x;
  return y;
}

Tensor ReLU::backward(const Tensor& dy) {
  if (!input_.defined()) {
    throw std::logic_error("ReLU " + name() + ": backward without forward");
  }
  Tensor dx(dy.shape());
  relu_backward(input_.span(), dy.span(), dx.span());
  return dx;
}

}  // namespace pt::nn
