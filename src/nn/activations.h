// Stateless activation layers.
#pragma once

#include "nn/layer.h"

namespace pt::nn {

/// Elementwise max(x, 0).
class ReLU final : public Layer {
 public:
  std::string type() const override { return "ReLU"; }
  Shape output_shape(const Shape& in) const override { return in; }
  void clear_context() override { input_ = Tensor(); }

 protected:
  Tensor do_forward(exec::ExecContext& ctx, const Tensor& x,
                    bool training) override;
  Tensor do_backward(exec::ExecContext& ctx, const Tensor& dy) override;

 private:
  Tensor input_;
};

}  // namespace pt::nn
