// Stateless activation layers.
#pragma once

#include "nn/layer.h"

namespace pt::nn {

/// Elementwise max(x, 0).
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;
  std::string type() const override { return "ReLU"; }
  Shape output_shape(const Shape& in) const override { return in; }
  void clear_context() override { input_ = Tensor(); }

 private:
  Tensor input_;
};

}  // namespace pt::nn
