#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

namespace pt::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  gamma_.value = Tensor::full({channels}, 1.f);
  gamma_.init_state();
  beta_.value = Tensor::zeros({channels});
  beta_.init_state();
  running_mean_ = Tensor::zeros({channels});
  running_var_ = Tensor::full({channels}, 1.f);
}

Tensor BatchNorm2d::do_forward(exec::ExecContext& ctx, const Tensor& x,
                               bool training) {
  const Shape& s = x.shape();
  if (s.rank() != 4 || s[1] != channels_) {
    throw std::invalid_argument("BatchNorm2d " + name() + ": bad input " +
                                s.to_string());
  }
  const std::int64_t n = s[0], c = s[1], hw = s[2] * s[3];
  const std::int64_t stride_n = c * hw;
  Tensor y(s);

  if (training) {
    xhat_ = Tensor(s);
    inv_std_.assign(static_cast<std::size_t>(c), 0.f);
  }

  ctx.pool().parallel_for(c, [&](std::int64_t c0, std::int64_t c1, int) {
  for (std::int64_t ch = c0; ch < c1; ++ch) {
    float mean, var;
    if (training) {
      double m = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + i * stride_n + ch * hw;
        for (std::int64_t q = 0; q < hw; ++q) m += p[q];
      }
      mean = static_cast<float>(m / static_cast<double>(n * hw));
      double v = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + i * stride_n + ch * hw;
        for (std::int64_t q = 0; q < hw; ++q) {
          const double d = p[q] - mean;
          v += d * d;
        }
      }
      var = static_cast<float>(v / static_cast<double>(n * hw));
      running_mean_.at(ch) =
          (1.f - momentum_) * running_mean_.at(ch) + momentum_ * mean;
      running_var_.at(ch) = (1.f - momentum_) * running_var_.at(ch) + momentum_ * var;
    } else {
      mean = running_mean_.at(ch);
      var = running_var_.at(ch);
    }
    const float inv = 1.f / std::sqrt(var + eps_);
    const float g = gamma_.value.at(ch);
    const float b = beta_.value.at(ch);
    for (std::int64_t i = 0; i < n; ++i) {
      const float* p = x.data() + i * stride_n + ch * hw;
      float* out = y.data() + i * stride_n + ch * hw;
      float* xh = training ? xhat_.data() + i * stride_n + ch * hw : nullptr;
      for (std::int64_t q = 0; q < hw; ++q) {
        const float norm = (p[q] - mean) * inv;
        if (xh) xh[q] = norm;
        out[q] = g * norm + b;
      }
    }
    if (training) inv_std_[static_cast<std::size_t>(ch)] = inv;
  }
  });
  return y;
}

Tensor BatchNorm2d::do_backward(exec::ExecContext& ctx, const Tensor& dy) {
  if (!xhat_.defined()) {
    throw std::logic_error("BatchNorm2d " + name() + ": backward without forward");
  }
  const Shape& s = dy.shape();
  const std::int64_t n = s[0], c = s[1], hw = s[2] * s[3];
  const std::int64_t stride_n = c * hw;
  const double count = static_cast<double>(n * hw);
  Tensor dx(s);

  ctx.pool().parallel_for(c, [&](std::int64_t c0, std::int64_t c1, int) {
  for (std::int64_t ch = c0; ch < c1; ++ch) {
    // Reductions: sum(dy) and sum(dy * xhat) over the channel.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* dyp = dy.data() + i * stride_n + ch * hw;
      const float* xh = xhat_.data() + i * stride_n + ch * hw;
      for (std::int64_t q = 0; q < hw; ++q) {
        sum_dy += dyp[q];
        sum_dy_xhat += static_cast<double>(dyp[q]) * xh[q];
      }
    }
    gamma_.grad.at(ch) += static_cast<float>(sum_dy_xhat);
    beta_.grad.at(ch) += static_cast<float>(sum_dy);

    const float g = gamma_.value.at(ch);
    const float inv = inv_std_[static_cast<std::size_t>(ch)];
    const float k1 = static_cast<float>(sum_dy / count);
    const float k2 = static_cast<float>(sum_dy_xhat / count);
    for (std::int64_t i = 0; i < n; ++i) {
      const float* dyp = dy.data() + i * stride_n + ch * hw;
      const float* xh = xhat_.data() + i * stride_n + ch * hw;
      float* dxp = dx.data() + i * stride_n + ch * hw;
      for (std::int64_t q = 0; q < hw; ++q) {
        dxp[q] = g * inv * (dyp[q] - k1 - xh[q] * k2);
      }
    }
  }
  });
  return dx;
}

void BatchNorm2d::shrink(const std::vector<std::int64_t>& keep) {
  if (keep.empty()) {
    throw std::invalid_argument("BatchNorm2d::shrink: empty keep set for " + name());
  }
  auto slice = [&](const Tensor& t) {
    Tensor out({static_cast<std::int64_t>(keep.size())});
    for (std::size_t i = 0; i < keep.size(); ++i) {
      out.at(static_cast<std::int64_t>(i)) = t.at(keep[i]);
    }
    return out;
  };
  gamma_.value = slice(gamma_.value);
  gamma_.grad = slice(gamma_.grad);
  gamma_.momentum = slice(gamma_.momentum);
  beta_.value = slice(beta_.value);
  beta_.grad = slice(beta_.grad);
  beta_.momentum = slice(beta_.momentum);
  running_mean_ = slice(running_mean_);
  running_var_ = slice(running_var_);
  channels_ = static_cast<std::int64_t>(keep.size());
  xhat_ = Tensor();
}

}  // namespace pt::nn
