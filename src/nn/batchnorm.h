// Batch normalization over the channel dimension of NCHW tensors.
//
// BN is the memory-bandwidth-bound layer the paper singles out (~30% of
// training time, Sec. 2.1); the cost model in src/cost charges its DRAM
// traffic separately. shrink() slices the affine parameters and running
// stats to the surviving channels during reconfiguration.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace pt::nn {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::vector<const Param*> params() const override { return {&gamma_, &beta_}; }
  std::vector<StateEntry> state() override {
    std::vector<StateEntry> out;
    append_param_state(out, gamma_, "gamma");
    append_param_state(out, beta_, "beta");
    out.push_back({"running_mean", &running_mean_, StateRole::kBuffer});
    out.push_back({"running_var", &running_var_, StateRole::kBuffer});
    return out;
  }
  std::string type() const override { return "BatchNorm2d"; }
  Shape output_shape(const Shape& in) const override { return in; }
  void clear_context() override {
    xhat_ = Tensor();
  }

  std::int64_t channels() const { return channels_; }
  float bn_momentum() const { return momentum_; }
  float eps() const { return eps_; }
  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

  /// Removes all channels not in `keep` (sorted, unique, non-empty).
  void shrink(const std::vector<std::int64_t>& keep);

 protected:
  /// Both passes parallelize over channels: each channel's double-precision
  /// reductions run sequentially within one chunk, so the summation order —
  /// and every result bit — is thread-count-independent.
  Tensor do_forward(exec::ExecContext& ctx, const Tensor& x,
                    bool training) override;
  Tensor do_backward(exec::ExecContext& ctx, const Tensor& dy) override;

 private:
  std::int64_t channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // Forward context.
  Tensor xhat_;
  std::vector<float> inv_std_;
};

}  // namespace pt::nn
