#include "nn/channel_index.h"

#include <cstring>
#include <stdexcept>

namespace pt::nn {
namespace {

void check_indices(const std::vector<std::int64_t>& idx, std::int64_t limit,
                   const char* what) {
  for (std::int64_t i : idx) {
    if (i < 0 || i >= limit) throw std::invalid_argument(std::string(what) +
                                                         ": index out of range");
  }
}

}  // namespace

ChannelSelect::ChannelSelect(std::vector<std::int64_t> indices,
                             std::int64_t in_channels)
    : indices_(std::move(indices)), in_channels_(in_channels) {
  check_indices(indices_, in_channels_, "ChannelSelect");
}

Tensor ChannelSelect::do_forward(exec::ExecContext&, const Tensor& x,
                                 bool training) {
  (void)training;
  const Shape& s = x.shape();
  if (s.rank() != 4 || s[1] != in_channels_) {
    throw std::invalid_argument("ChannelSelect " + name() + ": bad input " +
                                s.to_string());
  }
  const std::int64_t n = s[0], hw = s[2] * s[3];
  const std::int64_t c_out = static_cast<std::int64_t>(indices_.size());
  Tensor y({n, c_out, s[2], s[3]});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < c_out; ++c) {
      std::memcpy(y.data() + (i * c_out + c) * hw,
                  x.data() + (i * in_channels_ + indices_[static_cast<std::size_t>(c)]) * hw,
                  static_cast<std::size_t>(hw) * sizeof(float));
    }
  }
  return y;
}

Tensor ChannelSelect::do_backward(exec::ExecContext&, const Tensor& dy) {
  const Shape& s = dy.shape();
  const std::int64_t n = s[0], hw = s[2] * s[3];
  const std::int64_t c_out = static_cast<std::int64_t>(indices_.size());
  Tensor dx({n, in_channels_, s[2], s[3]});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < c_out; ++c) {
      float* dst = dx.data() +
                   (i * in_channels_ + indices_[static_cast<std::size_t>(c)]) * hw;
      const float* src = dy.data() + (i * c_out + c) * hw;
      for (std::int64_t q = 0; q < hw; ++q) dst[q] += src[q];
    }
  }
  return dx;
}

ChannelScatter::ChannelScatter(std::vector<std::int64_t> indices,
                               std::int64_t out_channels)
    : indices_(std::move(indices)), out_channels_(out_channels) {
  check_indices(indices_, out_channels_, "ChannelScatter");
}

Tensor ChannelScatter::do_forward(exec::ExecContext&, const Tensor& x,
                                  bool training) {
  (void)training;
  const Shape& s = x.shape();
  const std::int64_t c_in = static_cast<std::int64_t>(indices_.size());
  if (s.rank() != 4 || s[1] != c_in) {
    throw std::invalid_argument("ChannelScatter " + name() + ": bad input " +
                                s.to_string());
  }
  const std::int64_t n = s[0], hw = s[2] * s[3];
  Tensor y({n, out_channels_, s[2], s[3]});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < c_in; ++c) {
      std::memcpy(y.data() +
                      (i * out_channels_ + indices_[static_cast<std::size_t>(c)]) * hw,
                  x.data() + (i * c_in + c) * hw,
                  static_cast<std::size_t>(hw) * sizeof(float));
    }
  }
  return y;
}

Tensor ChannelScatter::do_backward(exec::ExecContext&, const Tensor& dy) {
  const Shape& s = dy.shape();
  const std::int64_t n = s[0], hw = s[2] * s[3];
  const std::int64_t c_in = static_cast<std::int64_t>(indices_.size());
  Tensor dx({n, c_in, s[2], s[3]});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < c_in; ++c) {
      std::memcpy(dx.data() + (i * c_in + c) * hw,
                  dy.data() +
                      (i * out_channels_ + indices_[static_cast<std::size_t>(c)]) * hw,
                  static_cast<std::size_t>(hw) * sizeof(float));
    }
  }
  return dx;
}

}  // namespace pt::nn
