// Channel gather/scatter layers implementing the paper's *channel gating*
// alternative (Fig. 5b): "channel select" gathers the dense channel indices
// into a packed tensor before a residual branch, and "channel scatter"
// re-expands the branch output to the shared-node width. These are the
// tensor-reshaping operations whose memory cost motivates channel *union*;
// bench/fig7 measures them directly.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace pt::nn {

/// Gathers channels `indices` of an NCHW tensor: [N, C, H, W] -> [N, |I|, H, W].
class ChannelSelect final : public Layer {
 public:
  explicit ChannelSelect(std::vector<std::int64_t> indices, std::int64_t in_channels);

  std::string type() const override { return "ChannelSelect"; }
  Shape output_shape(const Shape& in) const override {
    return {in[0], static_cast<std::int64_t>(indices_.size()), in[2], in[3]};
  }

  const std::vector<std::int64_t>& indices() const { return indices_; }
  std::int64_t in_channels() const { return in_channels_; }

 protected:
  Tensor do_forward(exec::ExecContext& ctx, const Tensor& x,
                    bool training) override;
  Tensor do_backward(exec::ExecContext& ctx, const Tensor& dy) override;

 private:
  std::vector<std::int64_t> indices_;
  std::int64_t in_channels_;
};

/// Scatters a packed tensor back to `out_channels` width, placing channel i
/// of the input at `indices[i]` and zero elsewhere. Exact adjoint of
/// ChannelSelect with the same index list.
class ChannelScatter final : public Layer {
 public:
  ChannelScatter(std::vector<std::int64_t> indices, std::int64_t out_channels);

  std::string type() const override { return "ChannelScatter"; }
  Shape output_shape(const Shape& in) const override {
    return {in[0], out_channels_, in[2], in[3]};
  }

  const std::vector<std::int64_t>& indices() const { return indices_; }
  std::int64_t out_channels() const { return out_channels_; }

 protected:
  Tensor do_forward(exec::ExecContext& ctx, const Tensor& x,
                    bool training) override;
  Tensor do_backward(exec::ExecContext& ctx, const Tensor& dy) override;

 private:
  std::vector<std::int64_t> indices_;
  std::int64_t out_channels_;
};

}  // namespace pt::nn
