#include "nn/conv2d.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace pt::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad, Rng& rng,
               bool bias)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias) {
  const double fan_in = static_cast<double>(in_c_ * kernel_ * kernel_);
  const float stddev = static_cast<float>(std::sqrt(2.0 / fan_in));
  weight_.value = Tensor::randn({out_c_, in_c_, kernel_, kernel_}, rng, 0.f, stddev);
  weight_.init_state();
  bias_.value = Tensor::zeros({out_c_});
  bias_.init_state();
}

Shape Conv2d::output_shape(const Shape& in) const {
  ConvGeom g{in_c_, in[2], in[3], kernel_, stride_, pad_};
  return {in[0], out_c_, g.out_h(), g.out_w()};
}

Tensor Conv2d::do_forward(exec::ExecContext& ctx, const Tensor& x,
                          bool training) {
  const Shape& s = x.shape();
  if (s.rank() != 4 || s[1] != in_c_) {
    throw std::invalid_argument("Conv2d " + name() + ": bad input shape " +
                                s.to_string());
  }
  const std::int64_t n = s[0];
  ConvGeom g{in_c_, s[2], s[3], kernel_, stride_, pad_};
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  Tensor y({n, out_c_, ho, wo});
  const std::int64_t crs = g.col_rows();
  const std::int64_t hw_out = g.col_cols();
  const std::int64_t in_sample = in_c_ * s[2] * s[3];
  const std::int64_t out_sample = out_c_ * ho * wo;

  // Parallel over samples: each static chunk leases one im2col buffer from
  // the workspace arena and processes its samples serially. The nested
  // per-sample GEMM sees a busy pool and runs inline, so every output
  // sample is computed by the same instruction sequence at any thread
  // count. Leases are acquired up front (not inside the chunks) so the
  // arena mutex is out of the hot loop.
  const int max_chunks =
      static_cast<int>(std::min<std::int64_t>(ctx.pool().size(), n));
  std::vector<exec::Workspace::Lease> cols;
  cols.reserve(static_cast<std::size_t>(max_chunks));
  for (int t = 0; t < max_chunks; ++t) {
    cols.push_back(ctx.workspace().acquire(static_cast<std::size_t>(crs * hw_out)));
  }
  ctx.pool().parallel_for(n, [&](std::int64_t i0, std::int64_t i1, int chunk) {
    float* col = cols[static_cast<std::size_t>(chunk)].data();
    for (std::int64_t i = i0; i < i1; ++i) {
      im2col(g, x.data() + i * in_sample, col);
      gemm_nn(ctx, out_c_, hw_out, crs, 1.f, weight_.value.data(), col, 0.f,
              y.data() + i * out_sample);
    }
  });
  cols.clear();
  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t k = 0; k < out_c_; ++k) {
        float* row = y.data() + i * out_sample + k * ho * wo;
        const float b = bias_.value.at(k);
        for (std::int64_t p = 0; p < ho * wo; ++p) row[p] += b;
      }
    }
  }
  if (training) input_ = x;
  return y;
}

Tensor Conv2d::do_backward(exec::ExecContext& ctx, const Tensor& dy) {
  if (!input_.defined()) {
    throw std::logic_error("Conv2d " + name() + ": backward without forward");
  }
  const Shape& s = input_.shape();
  const std::int64_t n = s[0];
  ConvGeom g{in_c_, s[2], s[3], kernel_, stride_, pad_};
  const std::int64_t crs = g.col_rows();
  const std::int64_t hw_out = g.col_cols();
  const std::int64_t in_sample = in_c_ * s[2] * s[3];
  const std::int64_t out_sample = out_c_ * g.out_h() * g.out_w();

  Tensor dx(s);
  // Recompute im2col per sample (cheaper than caching N column matrices).
  // Single accumulation region for dW; the batch loop stays serial in the
  // K-GEMM accumulate to keep determinism, with parallelism inside the
  // GEMMs (disjoint row blocks — accumulation order per row is unchanged).
  exec::Workspace::Lease col =
      ctx.workspace().acquire(static_cast<std::size_t>(crs * hw_out));
  exec::Workspace::Lease dcol =
      ctx.workspace().acquire(static_cast<std::size_t>(crs * hw_out));
  for (std::int64_t i = 0; i < n; ++i) {
    im2col(g, input_.data() + i * in_sample, col.data());
    const float* dyp = dy.data() + i * out_sample;
    // dW[K, CRS] += dy[K, HW] @ col[CRS, HW]^T
    gemm_nt(ctx, out_c_, crs, hw_out, 1.f, dyp, col.data(), 1.f,
            weight_.grad.data());
    // dcol[CRS, HW] = W[K, CRS]^T @ dy[K, HW]
    gemm_tn(ctx, crs, hw_out, out_c_, 1.f, weight_.value.data(), dyp, 0.f,
            dcol.data());
    col2im(g, dcol.data(), dx.data() + i * in_sample);
  }
  if (has_bias_) {
    const std::int64_t hw = g.out_h() * g.out_w();
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t k = 0; k < out_c_; ++k) {
        const float* row = dy.data() + i * out_sample + k * hw;
        double acc = 0.0;
        for (std::int64_t p = 0; p < hw; ++p) acc += row[p];
        bias_.grad.at(k) += static_cast<float>(acc);
      }
    }
  }
  return dx;
}

std::vector<Param*> Conv2d::params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::vector<const Param*> Conv2d::params() const {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::vector<StateEntry> Conv2d::state() {
  std::vector<StateEntry> out;
  append_param_state(out, weight_, "weight");
  if (has_bias_) append_param_state(out, bias_, "bias");
  return out;
}

float Conv2d::in_channel_max_abs(std::int64_t c) const {
  const std::int64_t rs = kernel_ * kernel_;
  float m = 0.f;
  const float* w = weight_.value.data();
  for (std::int64_t k = 0; k < out_c_; ++k) {
    const float* p = w + (k * in_c_ + c) * rs;
    for (std::int64_t q = 0; q < rs; ++q) m = std::max(m, std::fabs(p[q]));
  }
  return m;
}

float Conv2d::out_channel_max_abs(std::int64_t k) const {
  const std::int64_t len = in_c_ * kernel_ * kernel_;
  const float* p = weight_.value.data() + k * len;
  float m = 0.f;
  for (std::int64_t q = 0; q < len; ++q) m = std::max(m, std::fabs(p[q]));
  return m;
}

void Conv2d::zero_small_weights(float eps) {
  for (float& v : weight_.value.span()) {
    if (std::fabs(v) <= eps) v = 0.f;
  }
}

namespace {

// Slices a [K, C, R, S] tensor down to the given index sets.
Tensor slice4(const Tensor& t, const std::vector<std::int64_t>& keep_out,
              const std::vector<std::int64_t>& keep_in, std::int64_t rs) {
  const std::int64_t in_c = t.shape()[1];
  const std::int64_t k2 = static_cast<std::int64_t>(keep_out.size());
  const std::int64_t c2 = static_cast<std::int64_t>(keep_in.size());
  Tensor out({k2, c2, t.shape()[2], t.shape()[3]});
  for (std::int64_t a = 0; a < k2; ++a) {
    for (std::int64_t b = 0; b < c2; ++b) {
      const float* src = t.data() + (keep_out[static_cast<std::size_t>(a)] * in_c +
                                     keep_in[static_cast<std::size_t>(b)]) *
                                        rs;
      float* dst = out.data() + (a * c2 + b) * rs;
      for (std::int64_t q = 0; q < rs; ++q) dst[q] = src[q];
    }
  }
  return out;
}

Tensor slice1(const Tensor& t, const std::vector<std::int64_t>& keep) {
  Tensor out({static_cast<std::int64_t>(keep.size())});
  for (std::size_t i = 0; i < keep.size(); ++i) out.at(static_cast<std::int64_t>(i)) = t.at(keep[i]);
  return out;
}

}  // namespace

void Conv2d::shrink(const std::vector<std::int64_t>& keep_in,
                    const std::vector<std::int64_t>& keep_out) {
  if (keep_in.empty() || keep_out.empty()) {
    throw std::invalid_argument("Conv2d::shrink: empty keep set for " + name());
  }
  const std::int64_t rs = kernel_ * kernel_;
  weight_.value = slice4(weight_.value, keep_out, keep_in, rs);
  weight_.grad = slice4(weight_.grad, keep_out, keep_in, rs);
  weight_.momentum = slice4(weight_.momentum, keep_out, keep_in, rs);
  bias_.value = slice1(bias_.value, keep_out);
  bias_.grad = slice1(bias_.grad, keep_out);
  bias_.momentum = slice1(bias_.momentum, keep_out);
  in_c_ = static_cast<std::int64_t>(keep_in.size());
  out_c_ = static_cast<std::int64_t>(keep_out.size());
  input_ = Tensor();
}

}  // namespace pt::nn
