// 2-D convolution layer (im2col + GEMM), with channel-surgery support.
//
// Weight layout is [K, C, R, S] (out-channels first). Bias is optional and
// off by default since every conv in the reproduced models is followed by
// batch norm. shrink() implements the physical reconfiguration step of
// PruneTrain: it slices weight/grad/momentum down to the surviving channel
// index sets, preserving optimizer state.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "tensor/im2col.h"

namespace pt::nn {

class Conv2d final : public Layer {
 public:
  /// Creates a conv with Kaiming-normal initialized weights.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
         std::int64_t stride, std::int64_t pad, Rng& rng, bool bias = false);

  std::vector<Param*> params() override;
  std::vector<const Param*> params() const override;
  std::vector<StateEntry> state() override;
  std::string type() const override { return "Conv2d"; }
  Shape output_shape(const Shape& in) const override;
  void clear_context() override { input_ = Tensor(); }

  std::int64_t in_channels() const { return in_c_; }
  std::int64_t out_channels() const { return out_c_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }
  bool has_bias() const { return has_bias_; }

  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  Param& bias() { return bias_; }

  /// Max |w| over the weights feeding *from* input channel `c` (the paper's
  /// input-channel lasso group W[:, c, :, :]).
  float in_channel_max_abs(std::int64_t c) const;
  /// Max |w| over the weights feeding *into* output channel `k`
  /// (W[k, :, :, :]).
  float out_channel_max_abs(std::int64_t k) const;

  /// Zeroes every weight with |w| <= eps (the paper's 1e-4 thresholding).
  void zero_small_weights(float eps);

  /// Physically removes all input channels not in `keep_in` and output
  /// channels not in `keep_out` (both sorted, unique, non-empty). Slices
  /// value/grad/momentum consistently.
  void shrink(const std::vector<std::int64_t>& keep_in,
              const std::vector<std::int64_t>& keep_out);

 protected:
  /// Forward parallelizes over batch samples (one workspace lease per
  /// chunk); backward runs a serial sample loop with pool-parallel GEMMs.
  /// All im2col/dcol scratch is leased from ctx's Workspace — no per-call
  /// heap allocation in steady state.
  Tensor do_forward(exec::ExecContext& ctx, const Tensor& x,
                    bool training) override;
  Tensor do_backward(exec::ExecContext& ctx, const Tensor& dy) override;

 private:
  std::int64_t in_c_, out_c_, kernel_, stride_, pad_;
  bool has_bias_;
  Param weight_;  // [K, C, R, S]
  Param bias_;    // [K] (unused unless has_bias_)
  Tensor input_;  // cached for backward
};

}  // namespace pt::nn
