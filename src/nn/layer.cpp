#include "nn/layer.h"

namespace pt::nn {

void Param::init_state() {
  grad = Tensor::zeros(value.shape());
  momentum = Tensor::zeros(value.shape());
}

void Layer::zero_grad() {
  for (Param* p : params()) p->grad.fill(0.f);
}

}  // namespace pt::nn
