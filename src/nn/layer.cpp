#include "nn/layer.h"

namespace pt::nn {

void Param::init_state() {
  grad = Tensor::zeros(value.shape());
  momentum = Tensor::zeros(value.shape());
}

std::string to_string(StateRole role) {
  switch (role) {
    case StateRole::kParam: return "param";
    case StateRole::kGrad: return "grad";
    case StateRole::kMomentum: return "momentum";
    case StateRole::kBuffer: return "buffer";
  }
  return "?";
}

void Layer::append_param_state(std::vector<StateEntry>& out, Param& p,
                               const std::string& name) {
  out.push_back({name, &p.value, StateRole::kParam});
  out.push_back({name, &p.grad, StateRole::kGrad});
  out.push_back({name, &p.momentum, StateRole::kMomentum});
}

std::vector<StateEntry> Layer::state() {
  // Fallback for layers that only override params(): synthesize names from
  // the position ("param0", ...) unless the Param carries its own name.
  std::vector<StateEntry> out;
  std::size_t i = 0;
  for (Param* p : params()) {
    const std::string name =
        p->name.empty() ? "param" + std::to_string(i) : p->name;
    append_param_state(out, *p, name);
    ++i;
  }
  return out;
}

std::vector<NamedParam> group_params(const std::vector<StateEntry>& entries) {
  std::vector<NamedParam> out;
  for (const StateEntry& e : entries) {
    if (e.role == StateRole::kBuffer) continue;
    // Entries of one param arrive adjacently (value, grad, momentum), so
    // only the tail triple can still be open; a same-named triple whose
    // target role is already filled belongs to a different layer.
    NamedParam* slot = nullptr;
    if (!out.empty() && out.back().name == e.name) {
      NamedParam& tail = out.back();
      const bool occupied = (e.role == StateRole::kParam && tail.value) ||
                            (e.role == StateRole::kGrad && tail.grad) ||
                            (e.role == StateRole::kMomentum && tail.momentum);
      if (!occupied) slot = &tail;
    }
    if (slot == nullptr) {
      out.push_back({e.name, nullptr, nullptr, nullptr});
      slot = &out.back();
    }
    switch (e.role) {
      case StateRole::kParam: slot->value = e.tensor; break;
      case StateRole::kGrad: slot->grad = e.tensor; break;
      case StateRole::kMomentum: slot->momentum = e.tensor; break;
      case StateRole::kBuffer: break;
    }
  }
  std::erase_if(out, [](const NamedParam& p) { return p.value == nullptr; });
  return out;
}

void Layer::zero_grad() {
  for (Param* p : params()) p->grad.fill(0.f);
}

}  // namespace pt::nn
