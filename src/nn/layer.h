// Layer abstraction for the training engine.
//
// Layers own their parameters (value + gradient + SGD momentum, kept
// together so network reconfiguration can slice all three consistently,
// as PruneTrain Sec. 4.2 requires: "all training variables of the remaining
// channels are kept as is"). forward() caches whatever the matching
// backward() needs; backward() accumulates parameter gradients and returns
// the input gradient.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/context.h"
#include "tensor/tensor.h"

namespace pt::nn {

/// One learnable parameter tensor plus its training state.
struct Param {
  std::string name;    ///< hierarchical name, e.g. "stage1.block0.conv1.weight"
  Tensor value;
  Tensor grad;
  Tensor momentum;

  /// (Re)allocates grad/momentum to match `value`'s shape, zeroed.
  void init_state();
};

/// What a state tensor is, in the named-state API. `kParam`/`kGrad`/
/// `kMomentum` are the three faces of one Param; `kBuffer` is non-learnable
/// persistent state (e.g. BN running statistics) that checkpoints must
/// capture but the optimizer must not touch.
enum class StateRole : std::uint8_t { kParam, kGrad, kMomentum, kBuffer };

std::string to_string(StateRole role);

/// One named state tensor of a layer. Entries from Layer::state() carry
/// layer-local names ("weight", "gamma", "running_mean", ...);
/// graph::Network::state() qualifies them with the layer's hierarchical
/// name, e.g. "stage1.block0.conv1.weight". The three roles of one Param
/// share a name and are distinguished by `role`.
struct StateEntry {
  std::string name;
  Tensor* tensor = nullptr;
  StateRole role = StateRole::kParam;
};

/// A Param regrouped from named state entries: the value/grad/momentum
/// triple the optimizer consumes, keyed by name.
struct NamedParam {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  Tensor* momentum = nullptr;
};

/// Regroups flat state entries into optimizer-ready triples (in first-
/// appearance order; kBuffer entries are skipped). Entries missing a value
/// tensor are dropped.
std::vector<NamedParam> group_params(const std::vector<StateEntry>& entries);

/// Abstract layer. Subclasses implement do_forward/do_backward (the
/// protected virtuals of a non-virtual interface) and expose their
/// parameters for the optimizer and the pruning machinery.
///
/// Execution API: the public forward/backward entry points take an
/// exec::ExecContext& carrying the thread pool and the workspace arena the
/// kernels run on. The context-free overloads are compatibility shims over
/// the process-wide single-threaded exec::ExecContext::serial() — kept for
/// tests and one-off probes; production loops thread an explicit context.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output on `ctx`. When `training` is true, caches
  /// the activations backward() will need; inference mode caches nothing.
  Tensor forward(exec::ExecContext& ctx, const Tensor& x, bool training) {
    return do_forward(ctx, x, training);
  }

  /// Given dL/d(output), accumulates dL/d(params) into each Param::grad and
  /// returns dL/d(input). Must be called after a training-mode forward.
  Tensor backward(exec::ExecContext& ctx, const Tensor& dy) {
    return do_backward(ctx, dy);
  }

  /// Context-free shims: single-threaded execution on ExecContext::serial().
  Tensor forward(const Tensor& x, bool training) {
    return do_forward(exec::ExecContext::serial(), x, training);
  }
  Tensor backward(const Tensor& dy) {
    return do_backward(exec::ExecContext::serial(), dy);
  }

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Read-only view of the learnable parameters. Layers with parameters
  /// override both accessors over the same members, so const traversals
  /// (e.g. Network::num_params() const) need no const_cast.
  virtual std::vector<const Param*> params() const { return {}; }

  /// Named state introspection: every persistent tensor of the layer under
  /// a layer-local name, one entry per (tensor, role). The default derives
  /// param/grad/momentum entries from params(); layers with extra
  /// non-learnable buffers (BatchNorm2d) extend it. Entry order is
  /// deterministic and must stay stable across calls — serialization
  /// (prune::Snapshot, ckpt::Checkpoint) depends on it.
  virtual std::vector<StateEntry> state();

 protected:
  /// The layer's computation, dispatched by the public forward/backward
  /// (non-virtual interface: every entry point funnels through these, so a
  /// subclass implements the context-taking form once and the shims come
  /// for free).
  virtual Tensor do_forward(exec::ExecContext& ctx, const Tensor& x,
                            bool training) = 0;
  virtual Tensor do_backward(exec::ExecContext& ctx, const Tensor& dy) = 0;

  /// Appends the value/grad/momentum entries of one Param under `name`.
  static void append_param_state(std::vector<StateEntry>& out, Param& p,
                                 const std::string& name);

 public:

  /// Layer kind, e.g. "Conv2d"; used by cost models and debug dumps.
  virtual std::string type() const = 0;

  /// Shape of the output given an input shape (excluding unknowable dims).
  virtual Shape output_shape(const Shape& in) const = 0;

  /// Zeroes all parameter gradients.
  void zero_grad();

  /// Drops cached forward context to release activation memory.
  virtual void clear_context() {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::string name_;
};

using LayerPtr = std::shared_ptr<Layer>;

}  // namespace pt::nn
