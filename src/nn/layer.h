// Layer abstraction for the training engine.
//
// Layers own their parameters (value + gradient + SGD momentum, kept
// together so network reconfiguration can slice all three consistently,
// as PruneTrain Sec. 4.2 requires: "all training variables of the remaining
// channels are kept as is"). forward() caches whatever the matching
// backward() needs; backward() accumulates parameter gradients and returns
// the input gradient.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace pt::nn {

/// One learnable parameter tensor plus its training state.
struct Param {
  std::string name;    ///< hierarchical name, e.g. "stage1.block0.conv1.weight"
  Tensor value;
  Tensor grad;
  Tensor momentum;

  /// (Re)allocates grad/momentum to match `value`'s shape, zeroed.
  void init_state();
};

/// Abstract layer. Subclasses implement forward/backward and expose their
/// parameters for the optimizer and the pruning machinery.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output. When `training` is true, caches the
  /// activations backward() will need; inference mode caches nothing.
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  /// Given dL/d(output), accumulates dL/d(params) into each Param::grad and
  /// returns dL/d(input). Must be called after a training-mode forward.
  virtual Tensor backward(const Tensor& dy) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Layer kind, e.g. "Conv2d"; used by cost models and debug dumps.
  virtual std::string type() const = 0;

  /// Shape of the output given an input shape (excluding unknowable dims).
  virtual Shape output_shape(const Shape& in) const = 0;

  /// Zeroes all parameter gradients.
  void zero_grad();

  /// Drops cached forward context to release activation memory.
  virtual void clear_context() {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::string name_;
};

using LayerPtr = std::shared_ptr<Layer>;

}  // namespace pt::nn
