#include "nn/linear.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace pt::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias)
    : in_f_(in_features), out_f_(out_features), has_bias_(bias) {
  const float stddev = static_cast<float>(std::sqrt(2.0 / static_cast<double>(in_f_)));
  weight_.value = Tensor::randn({out_f_, in_f_}, rng, 0.f, stddev);
  weight_.init_state();
  bias_.value = Tensor::zeros({out_f_});
  bias_.init_state();
}

Tensor Linear::do_forward(exec::ExecContext& ctx, const Tensor& x,
                          bool training) {
  const Shape& s = x.shape();
  if (s.rank() != 2 || s[1] != in_f_) {
    throw std::invalid_argument("Linear " + name() + ": bad input " + s.to_string());
  }
  const std::int64_t n = s[0];
  Tensor y({n, out_f_});
  // y[N, out] = x[N, in] @ W[out, in]^T
  gemm_nt(ctx, n, out_f_, in_f_, 1.f, x.data(), weight_.value.data(), 0.f,
          y.data());
  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i) {
      axpy(1.f, bias_.value.span(), {y.data() + i * out_f_,
                                     static_cast<std::size_t>(out_f_)});
    }
  }
  if (training) input_ = x;
  return y;
}

Tensor Linear::do_backward(exec::ExecContext& ctx, const Tensor& dy) {
  if (!input_.defined()) {
    throw std::logic_error("Linear " + name() + ": backward without forward");
  }
  const std::int64_t n = input_.shape()[0];
  // dW[out, in] += dy[N, out]^T @ x[N, in]
  gemm_tn(ctx, out_f_, in_f_, n, 1.f, dy.data(), input_.data(), 1.f,
          weight_.grad.data());
  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i) {
      axpy(1.f, {dy.data() + i * out_f_, static_cast<std::size_t>(out_f_)},
           bias_.grad.span());
    }
  }
  // dx[N, in] = dy[N, out] @ W[out, in]
  Tensor dx({n, in_f_});
  gemm_nn(ctx, n, in_f_, out_f_, 1.f, dy.data(), weight_.value.data(), 0.f,
          dx.data());
  return dx;
}

std::vector<Param*> Linear::params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::vector<const Param*> Linear::params() const {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::vector<StateEntry> Linear::state() {
  std::vector<StateEntry> out;
  append_param_state(out, weight_, "weight");
  if (has_bias_) append_param_state(out, bias_, "bias");
  return out;
}

float Linear::in_feature_max_abs(std::int64_t j) const {
  float m = 0.f;
  const float* w = weight_.value.data();
  for (std::int64_t i = 0; i < out_f_; ++i) {
    m = std::max(m, std::fabs(w[i * in_f_ + j]));
  }
  return m;
}

void Linear::shrink_inputs(const std::vector<std::int64_t>& keep_in) {
  if (keep_in.empty()) {
    throw std::invalid_argument("Linear::shrink_inputs: empty keep set for " + name());
  }
  const std::int64_t in2 = static_cast<std::int64_t>(keep_in.size());
  auto slice = [&](const Tensor& t) {
    Tensor out({out_f_, in2});
    for (std::int64_t i = 0; i < out_f_; ++i) {
      for (std::int64_t j = 0; j < in2; ++j) {
        out.at(i, j) = t.at(i, keep_in[static_cast<std::size_t>(j)]);
      }
    }
    return out;
  };
  weight_.value = slice(weight_.value);
  weight_.grad = slice(weight_.grad);
  weight_.momentum = slice(weight_.momentum);
  in_f_ = in2;
  input_ = Tensor();
}

}  // namespace pt::nn
