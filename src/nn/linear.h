// Fully-connected layer; the classifier head of every reproduced model.
//
// Per the paper, the output neurons of the last FC layer are never lasso-
// regularized (predictions must stay dense), but its *input* features are
// pruned when the preceding stage loses channels — shrink_inputs() performs
// that slice.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace pt::nn {

class Linear final : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true);

  std::vector<Param*> params() override;
  std::vector<const Param*> params() const override;
  std::vector<StateEntry> state() override;
  std::string type() const override { return "Linear"; }
  Shape output_shape(const Shape& in) const override { return {in[0], out_f_}; }
  void clear_context() override { input_ = Tensor(); }

  std::int64_t in_features() const { return in_f_; }
  std::int64_t out_features() const { return out_f_; }
  bool has_bias() const { return has_bias_; }
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  Param& bias() { return bias_; }

  /// Max |w| over column `j` of the weight matrix (the lasso group of input
  /// feature j).
  float in_feature_max_abs(std::int64_t j) const;

  /// Keeps only the given input feature columns.
  void shrink_inputs(const std::vector<std::int64_t>& keep_in);

 protected:
  /// All three GEMMs (y, dW, dx) run on ctx's pool over disjoint row
  /// blocks; the bias loops stay serial.
  Tensor do_forward(exec::ExecContext& ctx, const Tensor& x,
                    bool training) override;
  Tensor do_backward(exec::ExecContext& ctx, const Tensor& dy) override;

 private:
  std::int64_t in_f_, out_f_;
  bool has_bias_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor input_;
};

}  // namespace pt::nn
