#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

namespace pt::nn {

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    const std::vector<std::int64_t>& labels) {
  const Shape& s = logits.shape();
  if (s.rank() != 2 || static_cast<std::size_t>(s[0]) != labels.size()) {
    throw std::invalid_argument("SoftmaxCrossEntropy: bad shapes");
  }
  const std::int64_t n = s[0], k = s[1];
  probs_ = Tensor(s);
  labels_ = labels;
  correct_ = 0;
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    float* p = probs_.data() + i * k;
    float mx = row[0];
    std::int64_t argmax = 0;
    for (std::int64_t j = 1; j < k; ++j) {
      if (row[j] > mx) {
        mx = row[j];
        argmax = j;
      }
    }
    double z = 0.0;
    for (std::int64_t j = 0; j < k; ++j) {
      p[j] = std::exp(row[j] - mx);
      z += p[j];
    }
    const float invz = static_cast<float>(1.0 / z);
    for (std::int64_t j = 0; j < k; ++j) p[j] *= invz;
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= k) throw std::invalid_argument("label out of range");
    loss -= std::log(std::max(static_cast<double>(p[y]), 1e-30));
    if (argmax == y) ++correct_;
  }
  return loss / static_cast<double>(n);
}

Tensor SoftmaxCrossEntropy::backward() const {
  if (!probs_.defined()) {
    throw std::logic_error("SoftmaxCrossEntropy: backward without forward");
  }
  const std::int64_t n = probs_.shape()[0], k = probs_.shape()[1];
  Tensor dx = probs_.clone();
  const float inv_n = 1.f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = dx.data() + i * k;
    row[labels_[static_cast<std::size_t>(i)]] -= 1.f;
    for (std::int64_t j = 0; j < k; ++j) row[j] *= inv_n;
  }
  return dx;
}

}  // namespace pt::nn
