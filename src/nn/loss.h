// Softmax cross-entropy loss — the classification term l(y, f(x, W)) of the
// paper's Eq. 1. Fused softmax+NLL for numerical stability; backward returns
// the mean-reduced logit gradient (p - onehot) / N.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace pt::nn {

class SoftmaxCrossEntropy {
 public:
  /// Computes mean cross-entropy of `logits` ([N, classes]) against integer
  /// `labels` (size N). Caches probabilities for backward.
  double forward(const Tensor& logits, const std::vector<std::int64_t>& labels);

  /// dL/dlogits for the last forward call.
  Tensor backward() const;

  /// Number of rows whose argmax matches the label in the last forward.
  std::int64_t correct() const { return correct_; }

 private:
  Tensor probs_;
  std::vector<std::int64_t> labels_;
  std::int64_t correct_ = 0;
};

}  // namespace pt::nn
