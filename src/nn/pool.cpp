#include "nn/pool.h"

#include <limits>
#include <stdexcept>

namespace pt::nn {

Tensor MaxPool2d::do_forward(exec::ExecContext& ctx, const Tensor& x,
                             bool training) {
  const Shape& s = x.shape();
  if (s.rank() != 4 || s[2] % window_ != 0 || s[3] % window_ != 0) {
    throw std::invalid_argument("MaxPool2d " + name() + ": bad input " +
                                s.to_string());
  }
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  const std::int64_t ho = h / window_, wo = w / window_;
  Tensor y({n, c, ho, wo});
  if (training) {
    in_shape_ = s;
    argmax_.assign(static_cast<std::size_t>(n * c * ho * wo), 0);
  }
  ctx.pool().parallel_for(n * c, [&](std::int64_t nc0, std::int64_t nc1, int) {
  for (std::int64_t nc = nc0; nc < nc1; ++nc) {
    const float* in = x.data() + nc * h * w;
    float* out = y.data() + nc * ho * wo;
    for (std::int64_t oh = 0; oh < ho; ++oh) {
      for (std::int64_t ow = 0; ow < wo; ++ow) {
        float best = -std::numeric_limits<float>::infinity();
        std::int64_t best_idx = 0;
        for (std::int64_t r = 0; r < window_; ++r) {
          for (std::int64_t q = 0; q < window_; ++q) {
            const std::int64_t idx = (oh * window_ + r) * w + ow * window_ + q;
            if (in[idx] > best) {
              best = in[idx];
              best_idx = idx;
            }
          }
        }
        out[oh * wo + ow] = best;
        if (training) {
          argmax_[static_cast<std::size_t>(nc * ho * wo + oh * wo + ow)] =
              nc * h * w + best_idx;
        }
      }
    }
  }
  });
  return y;
}

Tensor MaxPool2d::do_backward(exec::ExecContext&, const Tensor& dy) {
  if (argmax_.empty()) {
    throw std::logic_error("MaxPool2d " + name() + ": backward without forward");
  }
  Tensor dx(in_shape_);
  const float* g = dy.data();
  float* out = dx.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    out[argmax_[i]] += g[i];
  }
  return dx;
}

Tensor GlobalAvgPool::do_forward(exec::ExecContext&, const Tensor& x,
                                 bool training) {
  const Shape& s = x.shape();
  if (s.rank() != 4) {
    throw std::invalid_argument("GlobalAvgPool " + name() + ": bad input " +
                                s.to_string());
  }
  if (training) in_shape_ = s;
  const std::int64_t n = s[0], c = s[1], hw = s[2] * s[3];
  Tensor y({n, c});
  const float inv = 1.f / static_cast<float>(hw);
  for (std::int64_t nc = 0; nc < n * c; ++nc) {
    const float* p = x.data() + nc * hw;
    double acc = 0.0;
    for (std::int64_t q = 0; q < hw; ++q) acc += p[q];
    y.data()[nc] = static_cast<float>(acc) * inv;
  }
  return y;
}

Tensor GlobalAvgPool::do_backward(exec::ExecContext&, const Tensor& dy) {
  if (in_shape_.rank() != 4) {
    throw std::logic_error("GlobalAvgPool " + name() + ": backward without forward");
  }
  const std::int64_t n = in_shape_[0], c = in_shape_[1],
                     hw = in_shape_[2] * in_shape_[3];
  Tensor dx(in_shape_);
  const float inv = 1.f / static_cast<float>(hw);
  for (std::int64_t nc = 0; nc < n * c; ++nc) {
    const float g = dy.data()[nc] * inv;
    float* p = dx.data() + nc * hw;
    for (std::int64_t q = 0; q < hw; ++q) p[q] = g;
  }
  return dx;
}

}  // namespace pt::nn
