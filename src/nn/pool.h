// Pooling layers: square max pooling (VGG down-sampling) and global average
// pooling (the transition from the conv stack to the classifier head — this
// makes FC-input pruning a clean per-channel slice).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace pt::nn {

/// Non-overlapping max pooling with a square window (window == stride).
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::int64_t window) : window_(window) {}

  std::string type() const override { return "MaxPool2d"; }
  Shape output_shape(const Shape& in) const override {
    return {in[0], in[1], in[2] / window_, in[3] / window_};
  }
  void clear_context() override { argmax_.clear(); }

  std::int64_t window() const { return window_; }

 protected:
  /// Forward parallelizes over (sample, channel) pairs; the argmax-scatter
  /// backward stays serial (outputs may collide on one input index).
  Tensor do_forward(exec::ExecContext& ctx, const Tensor& x,
                    bool training) override;
  Tensor do_backward(exec::ExecContext& ctx, const Tensor& dy) override;

 private:
  std::int64_t window_;
  Shape in_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

/// Averages each channel's spatial map to one value: [N,C,H,W] -> [N,C].
class GlobalAvgPool final : public Layer {
 public:
  std::string type() const override { return "GlobalAvgPool"; }
  Shape output_shape(const Shape& in) const override { return {in[0], in[1]}; }

 protected:
  Tensor do_forward(exec::ExecContext& ctx, const Tensor& x,
                    bool training) override;
  Tensor do_backward(exec::ExecContext& ctx, const Tensor& dy) override;

 private:
  Shape in_shape_;
};

}  // namespace pt::nn
