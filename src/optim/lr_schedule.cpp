#include "optim/lr_schedule.h"

namespace pt::optim {

double MultiStepLR::multiplier_at(std::int64_t epoch) const {
  double m = 1.0;
  for (std::int64_t ms : milestones_) {
    if (epoch >= ms) m *= gamma_;
  }
  return m;
}

}  // namespace pt::optim
