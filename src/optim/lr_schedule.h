// Multi-step learning-rate schedule (the standard ResNet CIFAR/ImageNet
// recipe: decay by `gamma` at fixed epoch milestones).
//
// The schedule yields a *multiplier* relative to the base LR so it composes
// with dynamic mini-batch adjustment, which rescales the base LR mid-run.
#pragma once

#include <cstdint>
#include <vector>

namespace pt::optim {

class MultiStepLR {
 public:
  MultiStepLR(std::vector<std::int64_t> milestones, double gamma = 0.1)
      : milestones_(std::move(milestones)), gamma_(gamma) {}

  /// Product of `gamma` over milestones <= epoch.
  double multiplier_at(std::int64_t epoch) const;

  const std::vector<std::int64_t>& milestones() const { return milestones_; }
  double gamma() const { return gamma_; }

 private:
  std::vector<std::int64_t> milestones_;
  double gamma_;
};

}  // namespace pt::optim
