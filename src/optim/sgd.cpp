#include "optim/sgd.h"

namespace pt::optim {
namespace {

void sgd_update(float* w, const float* g, float* v, std::int64_t n, float lr,
                float momentum, float weight_decay) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float grad = g[i] + weight_decay * w[i];
    v[i] = momentum * v[i] + grad;
    w[i] -= lr * v[i];
  }
}

}  // namespace

void SGD::step(const std::vector<nn::Param*>& params) {
  for (nn::Param* p : params) {
    sgd_update(p->value.data(), p->grad.data(), p->momentum.data(),
               p->value.numel(), lr_, momentum_, weight_decay_);
  }
}

void SGD::step(const std::vector<nn::NamedParam>& params) {
  for (const nn::NamedParam& p : params) {
    if (p.value == nullptr || p.grad == nullptr || p.momentum == nullptr) {
      continue;
    }
    sgd_update(p.value->data(), p.grad->data(), p.momentum->data(),
               p.value->numel(), lr_, momentum_, weight_decay_);
  }
}

}  // namespace pt::optim
