#include "optim/sgd.h"

namespace pt::optim {

void SGD::step(const std::vector<nn::Param*>& params) {
  for (nn::Param* p : params) {
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* v = p->momentum.data();
    const std::int64_t n = p->value.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      const float grad = g[i] + weight_decay_ * w[i];
      v[i] = momentum_ * v[i] + grad;
      w[i] -= lr_ * v[i];
    }
  }
}

}  // namespace pt::optim
