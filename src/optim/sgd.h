// SGD with (heavyweight-ball) momentum and decoupled L2 weight decay — the
// optimizer used for every run in the paper (ResNet/VGG training recipe).
//
// Momentum buffers live inside each Param so that PruneTrain's
// reconfiguration can slice them together with the weights ("all training
// variables of the remaining channels are kept as is", Sec. 4.2).
#pragma once

#include <vector>

#include "nn/layer.h"

namespace pt::optim {

class SGD {
 public:
  SGD(float lr, float momentum = 0.9f, float weight_decay = 0.f)
      : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

  /// v = mu * v + (g + wd * w);  w -= lr * v.
  void step(const std::vector<nn::Param*>& params);

  /// Same update over the named state-dict view (nn::group_params over
  /// Layer::state() entries). Triples missing grad or momentum are skipped.
  void step(const std::vector<nn::NamedParam>& params);

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  /// Multiplies the current LR, used by dynamic mini-batch adjustment's
  /// linear scaling rule.
  void scale_lr(float factor) { lr_ *= factor; }

  float momentum() const { return momentum_; }
  float weight_decay() const { return weight_decay_; }

 private:
  float lr_, momentum_, weight_decay_;
};

}  // namespace pt::optim
