#include "prune/channel_analysis.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/channel_index.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pool.h"

namespace pt::prune {
namespace {

/// Plain union-find over node ids.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) { parent_[static_cast<std::size_t>(find(a))] = find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::vector<std::int64_t> dense_out_channels(const nn::Layer& layer, float threshold) {
  const auto& conv = dynamic_cast<const nn::Conv2d&>(layer);
  std::vector<std::int64_t> out;
  for (std::int64_t k = 0; k < conv.out_channels(); ++k) {
    if (conv.out_channel_max_abs(k) > threshold) out.push_back(k);
  }
  return out;
}

std::vector<std::int64_t> dense_in_channels(const nn::Layer& layer, float threshold) {
  const auto& conv = dynamic_cast<const nn::Conv2d&>(layer);
  std::vector<std::int64_t> out;
  for (std::int64_t c = 0; c < conv.in_channels(); ++c) {
    if (conv.in_channel_max_abs(c) > threshold) out.push_back(c);
  }
  return out;
}

ChannelAnalysis analyze_channels(graph::Network& net, float threshold,
                                 std::int64_t min_keep) {
  if (min_keep < 1) {
    throw std::invalid_argument("analyze_channels: min_keep must be >= 1");
  }
  const std::size_t n = net.num_nodes();
  Dsu dsu(n);

  // Pass 1: merge channel-preserving edges.
  for (int id : net.topo_order()) {
    if (id == 0) continue;
    const graph::Node& node = net.node(id);
    if (node.kind == graph::Node::Kind::kAdd) {
      dsu.unite(id, node.inputs[0]);
      dsu.unite(id, node.inputs[1]);
      continue;
    }
    const nn::Layer* layer = node.layer.get();
    const bool preserves = dynamic_cast<const nn::BatchNorm2d*>(layer) != nullptr ||
                           dynamic_cast<const nn::ReLU*>(layer) != nullptr ||
                           dynamic_cast<const nn::MaxPool2d*>(layer) != nullptr ||
                           dynamic_cast<const nn::GlobalAvgPool*>(layer) != nullptr;
    if (preserves) dsu.unite(id, node.inputs[0]);
    // Conv / Linear / ChannelSelect / ChannelScatter start fresh variables.
  }

  // Pass 2: assign dense variable ids and channel extents.
  ChannelAnalysis analysis;
  analysis.var_of_node.assign(n, -1);
  std::vector<int> root_to_var(n, -1);
  auto var_id = [&](int node) {
    const int root = dsu.find(node);
    if (root_to_var[static_cast<std::size_t>(root)] < 0) {
      root_to_var[static_cast<std::size_t>(root)] =
          static_cast<int>(analysis.vars.size());
      analysis.vars.emplace_back();
    }
    return root_to_var[static_cast<std::size_t>(root)];
  };

  for (int id : net.topo_order()) {
    const int v = var_id(id);
    analysis.var_of_node[static_cast<std::size_t>(id)] = v;
    ChannelVarInfo& info = analysis.vars[static_cast<std::size_t>(v)];
    if (id == 0) {
      info.dense_required = true;
      continue;
    }
    const graph::Node& node = net.node(id);
    if (node.kind != graph::Node::Kind::kLayer) continue;
    if (const auto* conv = dynamic_cast<const nn::Conv2d*>(node.layer.get())) {
      info.channels = conv->out_channels();
      info.writer_convs.push_back(id);
      const int vin = var_id(node.inputs[0]);
      ChannelVarInfo& in_info = analysis.vars[static_cast<std::size_t>(vin)];
      in_info.reader_convs.push_back(id);
      if (in_info.channels == 0) in_info.channels = conv->in_channels();
    } else if (const auto* bn = dynamic_cast<const nn::BatchNorm2d*>(node.layer.get())) {
      if (info.channels == 0) info.channels = bn->channels();
    }
  }

  // Pass 3: keep-sets.
  for (std::size_t v = 0; v < analysis.vars.size(); ++v) {
    ChannelVarInfo& info = analysis.vars[v];
    if (info.channels == 0) continue;  // scalar/logit variables: not pruned
    if (info.dense_required ||
        (info.writer_convs.empty() && info.reader_convs.empty())) {
      info.keep.resize(static_cast<std::size_t>(info.channels));
      for (std::int64_t c = 0; c < info.channels; ++c) {
        info.keep[static_cast<std::size_t>(c)] = c;
      }
      continue;
    }
    std::set<std::int64_t> keep;
    for (int w : info.writer_convs) {
      for (std::int64_t k : dense_out_channels(*net.node(w).layer, threshold)) {
        keep.insert(k);
      }
    }
    for (int r : info.reader_convs) {
      for (std::int64_t c : dense_in_channels(*net.node(r).layer, threshold)) {
        keep.insert(c);
      }
    }
    // Floor guard: never let a variable fall below min_keep channels. An
    // entirely dead variable (empty union) gets its strongest writer
    // channels back so the graph stays executable (the paper never hits
    // this because the classification loss keeps useful paths alive); a
    // raised floor additionally survives over-aggressive prunes.
    const std::int64_t floor = std::min(min_keep, info.channels);
    if (static_cast<std::int64_t>(keep.size()) < floor) {
      // Rank channels by magnitude using the first writer conv (channels
      // of one variable are written by convs sharing the extent).
      std::vector<std::pair<float, std::int64_t>> ranked;
      for (std::int64_t k = 0; k < info.channels; ++k) {
        float mag = 0.f;
        if (!info.writer_convs.empty()) {
          const auto& conv = net.layer_as<nn::Conv2d>(info.writer_convs[0]);
          mag = conv.out_channel_max_abs(k);
        }
        // A poisoned model can carry NaN/Inf weights; rank those as 0 so
        // the comparator below stays a strict weak ordering.
        if (!std::isfinite(mag)) mag = 0.f;
        ranked.emplace_back(mag, k);
      }
      std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        return a.first > b.first || (a.first == b.first && a.second < b.second);
      });
      for (const auto& [mag, k] : ranked) {
        if (static_cast<std::int64_t>(keep.size()) >= floor) break;
        keep.insert(k);
      }
    }
    info.keep.assign(keep.begin(), keep.end());
  }
  return analysis;
}

}  // namespace pt::prune
