// Channel-variable analysis: the structural core of PruneTrain's
// reconfiguration.
//
// Every activation tensor's channel dimension is a "channel variable".
// Channel-preserving layers (BN, ReLU, pooling, GAP) propagate their input
// variable; elementwise adds *merge* the variables of both arms — which is
// exactly the paper's *channel union* (Sec. 4.2): all convolutions reading
// or writing a residual stage's shared node are forced onto one common
// channel set. A union-find over node outputs computes the variables; the
// keep-set of a variable is then
//
//   keep(v) = U dense_out(writer conv)  U  U dense_in(reader conv)
//
// i.e. a channel is pruned only when *every* adjacent conv group has been
// sparsified (the paper's adjacent-layer intersection rule, generalized to
// arbitrarily many adjacent layers by the union-find).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.h"

namespace pt::prune {

struct ChannelVarInfo {
  std::int64_t channels = 0;            ///< extent of this channel dimension
  bool dense_required = false;          ///< network input: never pruned
  std::vector<int> writer_convs;        ///< conv nodes whose output is this var
  std::vector<int> reader_convs;        ///< conv nodes whose input is this var
  std::vector<std::int64_t> keep;       ///< sorted surviving channel indices
};

struct ChannelAnalysis {
  /// Variable id per node (indexed by node id; -1 for dead / non-tensor).
  std::vector<int> var_of_node;
  std::vector<ChannelVarInfo> vars;

  int var_of(int node) const { return var_of_node[static_cast<std::size_t>(node)]; }
  const std::vector<std::int64_t>& keep_of(int node) const {
    return vars[static_cast<std::size_t>(var_of(node))].keep;
  }
};

/// Dense (surviving) output channels of a conv: indices whose group max-abs
/// exceeds `threshold`.
std::vector<std::int64_t> dense_out_channels(const nn::Layer& conv, float threshold);
/// Dense input channels of a conv.
std::vector<std::int64_t> dense_in_channels(const nn::Layer& conv, float threshold);

/// Runs the union-find analysis and computes keep-sets. Every prunable
/// variable keeps at least `min_keep` channels (clamped to its extent):
/// when the union falls short — e.g. an entirely dead stage — the largest-
/// magnitude writer channels are re-added so the graph remains executable.
/// `min_keep` = 1 is the historical behavior; the training guardian raises
/// it to survive over-aggressive prunes (pruning collapse).
ChannelAnalysis analyze_channels(graph::Network& net, float threshold,
                                 std::int64_t min_keep = 1);

}  // namespace pt::prune
