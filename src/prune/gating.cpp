#include "prune/gating.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "nn/batchnorm.h"
#include "nn/channel_index.h"
#include "nn/conv2d.h"
#include "prune/channel_analysis.h"

namespace pt::prune {

GatingStats apply_channel_gating(graph::Network& net, float threshold) {
  GatingStats stats;
  for (auto& blk : net.info.blocks) {
    if (blk.removed) continue;
    auto& first_conv = net.layer_as<nn::Conv2d>(blk.path_convs.front());
    auto& last_conv = net.layer_as<nn::Conv2d>(blk.path_convs.back());

    // --- Entry gate: select only the first conv's own dense in-channels.
    const auto dense_in = dense_in_channels(first_conv, threshold);
    if (!dense_in.empty() &&
        static_cast<std::int64_t>(dense_in.size()) < first_conv.in_channels()) {
      const int entry_src = net.node(blk.path_convs.front()).inputs[0];
      auto select = std::make_shared<nn::ChannelSelect>(dense_in,
                                                        first_conv.in_channels());
      select->set_name(first_conv.name() + ".gate_select");
      const int sel_node = net.add_layer(select, entry_src);
      net.node(blk.path_convs.front()).inputs[0] = sel_node;
      stats.channels_gated_away +=
          first_conv.in_channels() - static_cast<std::int64_t>(dense_in.size());
      // Narrow the conv to the packed input space.
      std::vector<std::int64_t> keep_out(
          static_cast<std::size_t>(first_conv.out_channels()));
      for (std::size_t i = 0; i < keep_out.size(); ++i) {
        keep_out[i] = static_cast<std::int64_t>(i);
      }
      first_conv.shrink(dense_in, keep_out);
      stats.selects_inserted += 1;
    }

    // --- Exit gate: emit only the last conv's own dense out-channels and
    // scatter them back to the stage union space.
    const auto dense_out = dense_out_channels(last_conv, threshold);
    const std::int64_t union_width = last_conv.out_channels();
    if (!dense_out.empty() &&
        static_cast<std::int64_t>(dense_out.size()) < union_width) {
      std::vector<std::int64_t> keep_in(
          static_cast<std::size_t>(last_conv.in_channels()));
      for (std::size_t i = 0; i < keep_in.size(); ++i) {
        keep_in[i] = static_cast<std::int64_t>(i);
      }
      last_conv.shrink(keep_in, dense_out);
      // The BN after the last conv (final path node) narrows with it.
      auto& bn = net.layer_as<nn::BatchNorm2d>(blk.path_nodes.back());
      bn.shrink(dense_out);
      auto scatter = std::make_shared<nn::ChannelScatter>(dense_out, union_width);
      scatter->set_name(last_conv.name() + ".gate_scatter");
      const int sca_node = net.add_layer(scatter, blk.path_nodes.back());
      // The add consumed the BN's output (input slot 0 by construction).
      graph::Node& add = net.node(blk.add_node);
      if (add.inputs[0] != blk.path_nodes.back()) {
        throw std::logic_error("apply_channel_gating: unexpected add wiring");
      }
      add.inputs[0] = sca_node;
      stats.channels_gated_away +=
          union_width - static_cast<std::int64_t>(dense_out.size());
      stats.scatters_inserted += 1;
    }
  }
  return stats;
}

}  // namespace pt::prune
