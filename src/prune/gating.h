// Channel gating (Fig. 5b): the indexing-based alternative to channel
// union that the paper implements, measures, and rejects for training
// (Sec. 4.2, Figs. 6-7).
//
// apply_channel_gating() transforms an already union-reconfigured network:
// for every residual path, the first conv is narrowed to its *own* dense
// input channels behind a ChannelSelect (gather), and the last conv + BN
// are narrowed to their own dense output channels in front of a
// ChannelScatter that re-expands to the stage's union space. The resulting
// network computes the same function while skipping the redundant sparse
// channels — at the cost of the gather/scatter tensor reshaping whose
// overhead Fig. 7 quantifies.
#pragma once

#include <cstdint>

#include "graph/network.h"

namespace pt::prune {

struct GatingStats {
  std::int64_t selects_inserted = 0;
  std::int64_t scatters_inserted = 0;
  std::int64_t channels_gated_away = 0;  ///< branch-boundary channels skipped
};

/// Mutates `net` (which must already be union-reconfigured, so that stage
/// channel sets are consistent) into channel-gating form. Gating is an
/// inference-oriented transform in this repo, matching how the paper uses
/// it (as the comparison point measured in Figs. 6-7).
GatingStats apply_channel_gating(graph::Network& net, float threshold = 1e-4f);

}  // namespace pt::prune
