#include "prune/group_lasso.h"

#include <cmath>
#include <stdexcept>

#include "nn/conv2d.h"

namespace pt::prune {

GroupLassoRegularizer::GroupLassoRegularizer(graph::Network& net) : net_(&net) {
  conv_nodes_ = net.nodes_of_type<nn::Conv2d>();
}

double GroupLassoRegularizer::mean_sqrt_group_size() const {
  double sum = 0.0;
  std::int64_t groups = 0;
  for (int id : conv_nodes_) {
    if (!net_->is_live(id)) continue;
    const auto& conv = net_->layer_as<nn::Conv2d>(id);
    const std::int64_t k = conv.out_channels();
    const std::int64_t c = conv.in_channels();
    const std::int64_t rs = conv.kernel() * conv.kernel();
    sum += double(k) * std::sqrt(double(c * rs));  // out-groups
    groups += k;
    if (id != net_->info.first_conv) {
      sum += double(c) * std::sqrt(double(k * rs));  // in-groups
      groups += c;
    }
  }
  return groups > 0 ? sum / double(groups) : 1.0;
}

double GroupLassoRegularizer::loss() const {
  const double norm = size_normalized_ ? mean_sqrt_group_size() : 1.0;
  double total = 0.0;
  for (int id : conv_nodes_) {
    if (!net_->is_live(id)) continue;
    const auto& conv = net_->layer_as<nn::Conv2d>(id);
    const std::int64_t k = conv.out_channels();
    const std::int64_t c = conv.in_channels();
    const std::int64_t rs = conv.kernel() * conv.kernel();
    const float* w = conv.weight().value.data();
    const bool is_first = (id == net_->info.first_conv);
    const double m_out =
        size_normalized_ ? std::sqrt(double(c * rs)) / norm : 1.0;
    const double m_in = size_normalized_ ? std::sqrt(double(k * rs)) / norm : 1.0;

    // Output-channel groups: contiguous slices of length c*rs.
    for (std::int64_t kk = 0; kk < k; ++kk) {
      double ss = 0;
      const float* p = w + kk * c * rs;
      for (std::int64_t q = 0; q < c * rs; ++q) ss += double(p[q]) * p[q];
      total += m_out * std::sqrt(ss);
    }
    // Input-channel groups (skipped for the stem conv).
    if (!is_first) {
      for (std::int64_t cc = 0; cc < c; ++cc) {
        double ss = 0;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const float* p = w + (kk * c + cc) * rs;
          for (std::int64_t q = 0; q < rs; ++q) ss += double(p[q]) * p[q];
        }
        total += m_in * std::sqrt(ss);
      }
    }
  }
  return total;
}

void GroupLassoRegularizer::add_gradients(float lambda) const {
  if (lambda == 0.f) return;
  constexpr double kTiny = 1e-12;
  const double size_norm = size_normalized_ ? mean_sqrt_group_size() : 1.0;
  for (int id : conv_nodes_) {
    if (!net_->is_live(id)) continue;
    auto& conv = net_->layer_as<nn::Conv2d>(id);
    const std::int64_t k = conv.out_channels();
    const std::int64_t c = conv.in_channels();
    const std::int64_t rs = conv.kernel() * conv.kernel();
    const float* w = conv.weight().value.data();
    float* g = conv.weight().grad.data();
    const bool is_first = (id == net_->info.first_conv);
    const double m_out =
        size_normalized_ ? std::sqrt(double(c * rs)) / size_norm : 1.0;
    const double m_in =
        size_normalized_ ? std::sqrt(double(k * rs)) / size_norm : 1.0;

    for (std::int64_t kk = 0; kk < k; ++kk) {
      double ss = 0;
      const float* p = w + kk * c * rs;
      for (std::int64_t q = 0; q < c * rs; ++q) ss += double(p[q]) * p[q];
      const double norm = std::sqrt(ss);
      if (norm < kTiny) continue;
      const float scale = static_cast<float>(m_out * lambda / norm);
      float* gp = g + kk * c * rs;
      for (std::int64_t q = 0; q < c * rs; ++q) gp[q] += scale * p[q];
    }
    if (!is_first) {
      for (std::int64_t cc = 0; cc < c; ++cc) {
        double ss = 0;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const float* p = w + (kk * c + cc) * rs;
          for (std::int64_t q = 0; q < rs; ++q) ss += double(p[q]) * p[q];
        }
        const double norm = std::sqrt(ss);
        if (norm < kTiny) continue;
        const float scale = static_cast<float>(m_in * lambda / norm);
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const float* p = w + (kk * c + cc) * rs;
          float* gp = g + (kk * c + cc) * rs;
          for (std::int64_t q = 0; q < rs; ++q) gp[q] += scale * p[q];
        }
      }
    }
  }
}

void GroupLassoRegularizer::apply_proximal(float kappa) const {
  if (kappa <= 0.f) return;
  constexpr double kTiny = 1e-20;
  const double size_norm = size_normalized_ ? mean_sqrt_group_size() : 1.0;
  for (int id : conv_nodes_) {
    if (!net_->is_live(id)) continue;
    auto& conv = net_->layer_as<nn::Conv2d>(id);
    const std::int64_t k = conv.out_channels();
    const std::int64_t c = conv.in_channels();
    const std::int64_t rs = conv.kernel() * conv.kernel();
    float* w = conv.weight().value.data();
    const bool is_first = (id == net_->info.first_conv);
    const double k_out =
        kappa * (size_normalized_ ? std::sqrt(double(c * rs)) / size_norm : 1.0);
    const double k_in =
        kappa * (size_normalized_ ? std::sqrt(double(k * rs)) / size_norm : 1.0);

    for (std::int64_t kk = 0; kk < k; ++kk) {
      double ss = 0;
      float* p = w + kk * c * rs;
      for (std::int64_t q = 0; q < c * rs; ++q) ss += double(p[q]) * p[q];
      const double norm = std::sqrt(ss);
      const float scale =
          norm < kTiny ? 0.f
                       : static_cast<float>(std::max(0.0, 1.0 - k_out / norm));
      for (std::int64_t q = 0; q < c * rs; ++q) p[q] *= scale;
    }
    if (!is_first) {
      for (std::int64_t cc = 0; cc < c; ++cc) {
        double ss = 0;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const float* p = w + (kk * c + cc) * rs;
          for (std::int64_t q = 0; q < rs; ++q) ss += double(p[q]) * p[q];
        }
        const double norm = std::sqrt(ss);
        const float scale =
            norm < kTiny ? 0.f
                         : static_cast<float>(std::max(0.0, 1.0 - k_in / norm));
        for (std::int64_t kk = 0; kk < k; ++kk) {
          float* p = w + (kk * c + cc) * rs;
          for (std::int64_t q = 0; q < rs; ++q) p[q] *= scale;
        }
      }
    }
  }
}

float calibrate_lambda(float target_ratio, double classification_loss,
                       double lasso_loss) {
  if (target_ratio <= 0.f || target_ratio >= 1.f) {
    throw std::invalid_argument("lasso penalty ratio must be in (0, 1)");
  }
  if (lasso_loss <= 0.0) {
    throw std::invalid_argument("lasso loss must be positive at calibration");
  }
  return static_cast<float>(target_ratio * classification_loss /
                            ((1.0 - target_ratio) * lasso_loss));
}

double lasso_penalty_ratio(float lambda, double classification_loss,
                           double lasso_loss) {
  const double reg = double(lambda) * lasso_loss;
  return reg / (classification_loss + reg);
}

}  // namespace pt::prune
