// Group-lasso regularization over per-channel weight groups — the paper's
// Eq. 1/2 — and the systematic penalty-coefficient setup of Eq. 3.
//
// Groups (Sec. 4.1): for every convolution layer, one group per *input*
// channel (W[:, c, :, :]) and one per *output* channel (W[k, :, :, :]).
// The input channels of the first conv and the output neurons of the
// classifier are never regularized (network inputs/outputs stay dense).
// A single global coefficient lambda is used, which — as the paper argues —
// prioritizes pruning the computation-heavy early layers.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.h"

namespace pt::prune {

class GroupLassoRegularizer {
 public:
  /// Binds to the network's live conv layers. Re-binds automatically after
  /// reconfiguration (node ids are stable; channel extents are re-read on
  /// every call).
  explicit GroupLassoRegularizer(graph::Network& net);

  /// Sum over all groups of ||W_g||_2 (the bracketed term of Eq. 2,
  /// without lambda).
  double loss() const;

  /// Accumulates lambda * d/dW sum_g ||W_g||_2 into each conv's weight
  /// gradient: w * (1/||g_in|| + 1/||g_out||) per element (subgradient 0
  /// for zero-norm groups).
  void add_gradients(float lambda) const;

  /// Proximal group soft-threshold, applied *after* the SGD step:
  ///   W_g <- W_g * max(0, 1 - kappa / ||W_g||_2),   kappa = lr * lambda.
  /// Mathematically this is the proximal operator of kappa*||.||_2 (applied
  /// per group type, the standard approximation for overlapping groups).
  /// Unlike the plain subgradient, it reaches *exact* zeros instead of
  /// oscillating at amplitude ~lr*lambda — required when the proxy-scale
  /// lasso_boost makes lr*lambda larger than the pruning threshold. With
  /// the paper's own tiny lambda the two updates are indistinguishable.
  void apply_proximal(float kappa) const;

  /// Conv node ids under regularization.
  const std::vector<int>& conv_nodes() const { return conv_nodes_; }

  /// Switches to the per-group-size-normalized penalty of prior work
  /// (Sec. 4.1): each group's penalty is scaled by sqrt(group size),
  /// renormalized so the mean multiplier is 1 (keeping Eq. 3 calibration
  /// comparable across modes). The paper's default is the single global
  /// coefficient (false), which prioritizes pruning the computation-heavy
  /// early layers; size normalization prioritizes model-size reduction.
  void set_size_normalized(bool enabled) { size_normalized_ = enabled; }
  bool size_normalized() const { return size_normalized_; }

 private:
  /// Mean over live groups of sqrt(group size) — the normalizer for
  /// size-scaled penalties. Recomputed per call (extents change across
  /// reconfigurations).
  double mean_sqrt_group_size() const;

  graph::Network* net_;
  std::vector<int> conv_nodes_;
  bool size_normalized_ = false;
};

/// Eq. 3 solved for lambda: given a target penalty *ratio*
/// r = lambda*S / (L + lambda*S), with L the initial classification loss and
/// S the initial lasso sum, returns lambda = r*L / ((1-r)*S).
///
/// The paper computes L and S once, at the very first forward pass with
/// randomly initialized weights, and keeps lambda fixed; ratios of
/// 0.20-0.25 give >50% pruning with <2% accuracy loss across models.
float calibrate_lambda(float target_ratio, double classification_loss,
                       double lasso_loss);

/// The achieved ratio for a given lambda (for monitoring / tests).
double lasso_penalty_ratio(float lambda, double classification_loss,
                           double lasso_loss);

}  // namespace pt::prune
