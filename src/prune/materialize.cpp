#include "prune/materialize.h"

#include <stdexcept>

#include "nn/conv2d.h"

namespace pt::prune {

std::string to_string(InferenceForm form) {
  switch (form) {
    case InferenceForm::kChannelUnion:
      return "union";
    case InferenceForm::kChannelGating:
      return "gating";
  }
  return "?";
}

InferenceForm inference_form_from_string(const std::string& name) {
  if (name == "union") return InferenceForm::kChannelUnion;
  if (name == "gating") return InferenceForm::kChannelGating;
  throw std::invalid_argument("unknown inference form '" + name +
                              "' (expected \"union\" or \"gating\")");
}

MaterializeStats materialize_inference(graph::Network& net, InferenceForm form,
                                       float threshold) {
  MaterializeStats stats;
  stats.form = form;
  if (form == InferenceForm::kChannelGating) {
    stats.gating = apply_channel_gating(net, threshold);
  }
  net.clear_context();
  net.zero_grad();
  for (int id : net.nodes_of_type<nn::Conv2d>()) {
    ++stats.conv_layers;
    stats.channels += net.layer_as<nn::Conv2d>(id).out_channels();
  }
  return stats;
}

}  // namespace pt::prune
