// Inference materialization: turn a PruneTrained (union-reconfigured)
// network into a deployable inference form — the Sec. 4.2 / Figs. 6-7
// decision as a reusable API instead of ad-hoc example code.
//
// Two forms exist, matching the paper's comparison:
//
//  - kChannelUnion: serve the union-reconfigured model as-is. Every layer
//    stays dense (no indexing ops), at the cost of the redundant
//    branch-boundary channels the union keeps alive.
//  - kChannelGating: narrow each residual path to its own dense channels
//    behind ChannelSelect/ChannelScatter pairs (gating.h). Fewer FLOPs,
//    extra gather/scatter ops per forward pass.
//
// materialize_inference() is the single entry point the serving runtime
// (serve::ModelRegistry), the deployment example, and the Table 2 bench all
// go through, so their cost numbers agree by construction.
#pragma once

#include <cstdint>
#include <string>

#include "graph/network.h"
#include "prune/gating.h"

namespace pt::prune {

enum class InferenceForm { kChannelUnion, kChannelGating };

std::string to_string(InferenceForm form);
/// Parses "union" / "gating"; throws std::invalid_argument otherwise.
InferenceForm inference_form_from_string(const std::string& name);

struct MaterializeStats {
  InferenceForm form = InferenceForm::kChannelUnion;
  GatingStats gating;            ///< zero-valued for kChannelUnion
  std::int64_t conv_layers = 0;  ///< live conv layers after materialization
  std::int64_t channels = 0;     ///< sum of live conv out-channels
};

/// Mutates a trained, union-reconfigured network into the requested
/// inference form and releases transient training state (cached backward
/// contexts). kChannelUnion leaves the structure untouched; kChannelGating
/// applies the gather/scatter transform of gating.h with `threshold` as the
/// dense-channel test. Idempotent for kChannelUnion; kChannelGating must
/// not be applied twice (the gating transform asserts union structure).
MaterializeStats materialize_inference(graph::Network& net, InferenceForm form,
                                       float threshold = 1e-4f);

}  // namespace pt::prune
