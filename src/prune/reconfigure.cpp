#include "prune/reconfigure.h"

#include <stdexcept>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "prune/channel_analysis.h"

namespace pt::prune {

void Reconfigurer::zero_small_weights() {
  for (int id : net_->nodes_of_type<nn::Conv2d>()) {
    net_->layer_as<nn::Conv2d>(id).zero_small_weights(threshold_);
  }
}

bool Reconfigurer::remove_dead_branches(ReconfigStats& stats) {
  bool any = false;
  for (auto& blk : net_->info.blocks) {
    if (blk.removed) continue;
    bool dead = false;
    for (int conv_id : blk.path_convs) {
      const auto& conv = net_->layer_as<nn::Conv2d>(conv_id);
      (void)conv;
      if (dense_out_channels(*net_->node(conv_id).layer, threshold_).empty() ||
          dense_in_channels(*net_->node(conv_id).layer, threshold_).empty()) {
        dead = true;
        break;
      }
    }
    if (!dead) continue;
    // The add's input 0 is the residual path tail; input 1 is the short-cut
    // (builders guarantee this ordering; asserted in tests).
    const int shortcut_src = net_->node(blk.add_node).inputs[1];
    net_->bypass_add(blk.add_node, shortcut_src, blk.path_nodes);
    blk.removed = true;
    stats.blocks_removed += 1;
    stats.convs_removed += static_cast<std::int64_t>(blk.path_convs.size());
    any = true;
  }
  return any;
}

ReconfigStats Reconfigurer::reconfigure() {
  ReconfigStats stats;
  auto count_channels = [&] {
    std::int64_t total = 0;
    for (int id : net_->nodes_of_type<nn::Conv2d>()) {
      total += net_->layer_as<nn::Conv2d>(id).out_channels();
    }
    return total;
  };
  stats.channels_before = count_channels();

  zero_small_weights();
  remove_dead_branches(stats);

  const ChannelAnalysis analysis =
      analyze_channels(*net_, threshold_, min_channels_);

  auto full = [](std::int64_t extent) {
    std::vector<std::int64_t> keep(static_cast<std::size_t>(extent));
    for (std::int64_t i = 0; i < extent; ++i) keep[static_cast<std::size_t>(i)] = i;
    return keep;
  };

  for (int id : net_->topo_order()) {
    if (id == 0) continue;
    graph::Node& node = net_->node(id);
    if (node.kind != graph::Node::Kind::kLayer) continue;
    if (auto* conv = dynamic_cast<nn::Conv2d*>(node.layer.get())) {
      const auto& keep_in = analysis.keep_of(node.inputs[0]);
      const auto& keep_out = analysis.keep_of(id);
      const auto in =
          keep_in.empty() ? full(conv->in_channels()) : keep_in;
      const auto out =
          keep_out.empty() ? full(conv->out_channels()) : keep_out;
      if (static_cast<std::int64_t>(in.size()) != conv->in_channels() ||
          static_cast<std::int64_t>(out.size()) != conv->out_channels()) {
        conv->shrink(in, out);
      }
    } else if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(node.layer.get())) {
      const auto& keep = analysis.keep_of(node.inputs[0]);
      if (!keep.empty() &&
          static_cast<std::int64_t>(keep.size()) != bn->channels()) {
        bn->shrink(keep);
      }
    } else if (auto* fc = dynamic_cast<nn::Linear*>(node.layer.get())) {
      const auto& keep = analysis.keep_of(node.inputs[0]);
      if (!keep.empty() &&
          static_cast<std::int64_t>(keep.size()) != fc->in_features()) {
        fc->shrink_inputs(keep);
      }
    }
  }

  stats.channels_after = count_channels();
  stats.changed = stats.channels_after != stats.channels_before ||
                  stats.blocks_removed > 0;
  return stats;
}

}  // namespace pt::prune
