// Network reconfiguration: the periodic "prune and rebuild smaller" step of
// PruneTrain (Sec. 4.2, Fig. 1).
//
// reconfigure() performs, in order:
//   1. thresholding: zero every conv weight with |w| <= threshold;
//   2. dead-branch removal: a residual path whose any conv has no dense
//      input or output channels computes (numerically) nothing — the whole
//      path is removed and the add bypassed to the short-cut (this is the
//      paper's *layer removal by overlapping regularization groups*);
//   3. channel analysis (channel union via union-find, channel_analysis.h);
//   4. physical surgery: every conv/BN/FC is sliced to the surviving
//      channels, *keeping weights, gradients and momentum of survivors*.
//
// The result is a smaller but still dense model that trains on unchanged
// code paths — no indexing, no tensor reshaping.
#pragma once

#include <cstdint>

#include "graph/network.h"

namespace pt::prune {

struct ReconfigStats {
  std::int64_t channels_before = 0;  ///< sum of conv output channels
  std::int64_t channels_after = 0;
  std::int64_t convs_removed = 0;    ///< conv layers removed with dead branches
  std::int64_t blocks_removed = 0;   ///< residual paths removed
  bool changed = false;
};

class Reconfigurer {
 public:
  /// `threshold` is the paper's zeroing threshold (1e-4 by default).
  /// `min_channels` is the per-variable survival floor: no conv/BN/FC is
  /// ever sliced below this many channels (clamped to the layer's extent),
  /// so an over-aggressive prune cannot empty a layer — the guardian's
  /// "pruning collapse" guard. 1 reproduces the historical behavior.
  explicit Reconfigurer(graph::Network& net, float threshold = 1e-4f,
                        std::int64_t min_channels = 1)
      : net_(&net), threshold_(threshold), min_channels_(min_channels) {}

  /// Prunes and physically reconfigures the network. Safe to call at any
  /// epoch boundary; all optimizer state of surviving channels is kept.
  ReconfigStats reconfigure();

  /// Step 1 only (used by analyses that must not mutate structure).
  void zero_small_weights();

  float threshold() const { return threshold_; }
  std::int64_t min_channels() const { return min_channels_; }

 private:
  bool remove_dead_branches(ReconfigStats& stats);

  graph::Network* net_;
  float threshold_;
  std::int64_t min_channels_;
};

}  // namespace pt::prune
