#include "prune/snapshot.h"

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/fileio.h"

namespace pt::prune {
namespace {

/// Visits every persistent state tensor (parameter values + buffers such as
/// BN running stats) in deterministic (topological) order, via the named
/// state-dict API. Gradients and momentum are transient here: snapshots
/// capture the *model*, checkpoints (src/ckpt) capture training state too.
template <typename Fn>
void for_each_state(graph::Network& net, Fn&& fn) {
  for (const nn::StateEntry& e : net.state()) {
    if (e.role == nn::StateRole::kParam || e.role == nn::StateRole::kBuffer) {
      fn(*e.tensor);
    }
  }
}

}  // namespace

Snapshot save_state(graph::Network& net) {
  Snapshot snap;
  for_each_state(net, [&](Tensor& t) {
    snap.values.insert(snap.values.end(), t.data(), t.data() + t.numel());
  });
  return snap;
}

void load_state(graph::Network& net, const Snapshot& snap) {
  std::size_t cursor = 0;
  for_each_state(net, [&](Tensor& t) {
    const auto n = static_cast<std::size_t>(t.numel());
    if (cursor + n > snap.values.size()) {
      throw std::invalid_argument("load_state: snapshot too small");
    }
    std::copy(snap.values.begin() + static_cast<std::ptrdiff_t>(cursor),
              snap.values.begin() + static_cast<std::ptrdiff_t>(cursor + n),
              t.data());
    cursor += n;
  });
  if (cursor != snap.values.size()) {
    throw std::invalid_argument("load_state: snapshot size mismatch");
  }
}

namespace {
constexpr char kMagic[8] = {'P', 'T', 'S', 'N', 'A', 'P', '0', '1'};
}  // namespace

void save_to_file(const Snapshot& snap, const std::string& path) {
  std::vector<char> buf;
  buf.reserve(sizeof(kMagic) + sizeof(std::uint64_t) +
              snap.values.size() * sizeof(float));
  buf.insert(buf.end(), kMagic, kMagic + sizeof(kMagic));
  const std::uint64_t count = snap.values.size();
  const char* cp = reinterpret_cast<const char*>(&count);
  buf.insert(buf.end(), cp, cp + sizeof(count));
  const char* vp = reinterpret_cast<const char*>(snap.values.data());
  buf.insert(buf.end(), vp, vp + count * sizeof(float));
  // Write-temp-then-rename: an interrupted save can never tear `path`.
  atomic_write_file(path, buf.data(), buf.size());
}

Snapshot load_from_file(const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_file_bytes(path);
  if (bytes.size() < sizeof(kMagic) + sizeof(std::uint64_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_from_file: bad magic in " + path);
  }
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data() + sizeof(kMagic), sizeof(count));
  const std::size_t payload = sizeof(kMagic) + sizeof(count);
  if (bytes.size() < payload + count * sizeof(float)) {
    throw std::runtime_error("load_from_file: truncated payload in " + path);
  }
  Snapshot snap;
  snap.values.resize(count);
  std::memcpy(snap.values.data(), bytes.data() + payload,
              count * sizeof(float));
  return snap;
}

}  // namespace pt::prune
