#include "prune/snapshot.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "nn/batchnorm.h"

namespace pt::prune {
namespace {

/// Visits every state tensor in deterministic (topological) order.
template <typename Fn>
void for_each_state(graph::Network& net, Fn&& fn) {
  for (int id : net.topo_order()) {
    if (id == 0) continue;
    graph::Node& node = net.node(id);
    if (node.kind != graph::Node::Kind::kLayer) continue;
    for (nn::Param* p : node.layer->params()) fn(p->value);
    if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(node.layer.get())) {
      fn(bn->running_mean());
      fn(bn->running_var());
    }
  }
}

}  // namespace

Snapshot save_state(graph::Network& net) {
  Snapshot snap;
  for_each_state(net, [&](Tensor& t) {
    snap.values.insert(snap.values.end(), t.data(), t.data() + t.numel());
  });
  return snap;
}

void load_state(graph::Network& net, const Snapshot& snap) {
  std::size_t cursor = 0;
  for_each_state(net, [&](Tensor& t) {
    const auto n = static_cast<std::size_t>(t.numel());
    if (cursor + n > snap.values.size()) {
      throw std::invalid_argument("load_state: snapshot too small");
    }
    std::copy(snap.values.begin() + static_cast<std::ptrdiff_t>(cursor),
              snap.values.begin() + static_cast<std::ptrdiff_t>(cursor + n),
              t.data());
    cursor += n;
  });
  if (cursor != snap.values.size()) {
    throw std::invalid_argument("load_state: snapshot size mismatch");
  }
}

namespace {
constexpr char kMagic[8] = {'P', 'T', 'S', 'N', 'A', 'P', '0', '1'};
}  // namespace

void save_to_file(const Snapshot& snap, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_to_file: cannot open " + path);
  f.write(kMagic, sizeof(kMagic));
  const std::uint64_t count = snap.values.size();
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  f.write(reinterpret_cast<const char*>(snap.values.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!f) throw std::runtime_error("save_to_file: write failed for " + path);
}

Snapshot load_from_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_from_file: cannot open " + path);
  char magic[8];
  f.read(magic, sizeof(magic));
  if (!f || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_from_file: bad magic in " + path);
  }
  std::uint64_t count = 0;
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!f) throw std::runtime_error("load_from_file: truncated header in " + path);
  Snapshot snap;
  snap.values.resize(count);
  f.read(reinterpret_cast<char*>(snap.values.data()),
         static_cast<std::streamsize>(count * sizeof(float)));
  if (!f) throw std::runtime_error("load_from_file: truncated payload in " + path);
  return snap;
}

}  // namespace pt::prune
