// Flat weight snapshots: capture/restore all learnable state of a network
// (parameter values + BN running statistics).
//
// Used to fork one trained model into several structural variants (e.g.
// union vs. gating for Fig. 6/7) and for the SSL baseline's two-phase
// protocol. Snapshots are only valid across networks with identical
// topology and channel extents.
#pragma once

#include <string>
#include <vector>

#include "graph/network.h"

namespace pt::prune {

struct Snapshot {
  std::vector<float> values;
};

/// Captures parameter values and BN running stats, in topological order.
Snapshot save_state(graph::Network& net);

/// Restores a snapshot into a structurally identical network. Throws if
/// element counts do not line up.
void load_state(graph::Network& net, const Snapshot& snap);

/// Persists a snapshot as a small binary file (8-byte magic, u64 count,
/// raw float32 payload). Throws on I/O failure.
void save_to_file(const Snapshot& snap, const std::string& path);

/// Reads a snapshot written by save_to_file. Throws on I/O failure, bad
/// magic, or a truncated payload.
Snapshot load_from_file(const std::string& path);

}  // namespace pt::prune
