#include "prune/sparsity_monitor.h"

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "prune/channel_analysis.h"
#include "tensor/ops.h"

namespace pt::prune {

SparsityMonitor::SparsityMonitor(graph::Network& net) : net_(&net) {
  for (int id : net.nodes_of_type<nn::Conv2d>()) {
    ConvHistory h;
    h.node = id;
    h.name = net.node(id).layer->name();
    history_.push_back(std::move(h));
  }
}

void SparsityMonitor::record(std::int64_t epoch) {
  for (ConvHistory& h : history_) {
    if (!net_->is_live(h.node)) continue;
    const auto& conv = net_->layer_as<nn::Conv2d>(h.node);
    std::vector<float> row(static_cast<std::size_t>(conv.out_channels()));
    for (std::int64_t k = 0; k < conv.out_channels(); ++k) {
      row[static_cast<std::size_t>(k)] = conv.out_channel_max_abs(k);
    }
    h.epochs.push_back(epoch);
    h.max_abs.push_back(std::move(row));
  }
}

std::int64_t SparsityMonitor::count_revivals(float threshold,
                                             float revive_factor) const {
  std::int64_t revivals = 0;
  for (const ConvHistory& h : history_) {
    for (std::size_t e = 1; e < h.max_abs.size(); ++e) {
      const auto& prev = h.max_abs[e - 1];
      const auto& cur = h.max_abs[e];
      if (prev.size() != cur.size()) continue;  // reconfigured in between
      for (std::size_t k = 0; k < cur.size(); ++k) {
        if (prev[k] <= threshold && cur[k] > revive_factor * threshold) {
          ++revivals;
        }
      }
    }
  }
  return revivals;
}

std::vector<LayerDensity> layer_densities(graph::Network& net, float threshold) {
  std::vector<LayerDensity> out;
  for (int id : net.nodes_of_type<nn::Conv2d>()) {
    const auto& conv = net.layer_as<nn::Conv2d>(id);
    LayerDensity d;
    d.name = conv.name();
    const double din =
        static_cast<double>(dense_in_channels(conv, threshold).size()) /
        static_cast<double>(conv.in_channels());
    const double dout =
        static_cast<double>(dense_out_channels(conv, threshold).size()) /
        static_cast<double>(conv.out_channels());
    d.channel_density = din * dout;
    const auto w = conv.weight().value.span();
    d.weight_density =
        1.0 - static_cast<double>(count_below(w, threshold)) /
                  static_cast<double>(w.size());
    out.push_back(std::move(d));
  }
  for (int id : net.nodes_of_type<nn::Linear>()) {
    const auto& fc = net.layer_as<nn::Linear>(id);
    LayerDensity d;
    d.name = fc.name();
    const auto w = fc.weight().value.span();
    d.weight_density =
        1.0 - static_cast<double>(count_below(w, threshold)) /
                  static_cast<double>(w.size());
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace pt::prune
