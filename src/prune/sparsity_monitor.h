// Sparsification monitoring: per-output-channel max-|w| trajectories
// (the data behind Fig. 4 and the "zeroed channels rarely revive"
// observation that justifies early pruning), plus per-layer density
// statistics (Fig. 12).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/network.h"

namespace pt::prune {

class SparsityMonitor {
 public:
  explicit SparsityMonitor(graph::Network& net);

  /// Records the current per-output-channel max-|w| of every live conv.
  void record(std::int64_t epoch);

  struct ConvHistory {
    int node = -1;
    std::string name;
    std::vector<std::int64_t> epochs;
    /// One row per recorded epoch; row length is the conv's channel count
    /// at that epoch (it shrinks across reconfigurations).
    std::vector<std::vector<float>> max_abs;
  };

  const std::vector<ConvHistory>& history() const { return history_; }

  /// Replaces the recorded history (checkpoint restore). The entries must
  /// describe the same conv nodes the monitor was constructed over.
  void set_history(std::vector<ConvHistory> history) {
    history_ = std::move(history);
  }

  /// Channels that were below `threshold` at some epoch and later exceeded
  /// `revive_factor * threshold` while the layer width was unchanged — the
  /// paper's "revived weights" (expected: none or near-threshold only).
  std::int64_t count_revivals(float threshold, float revive_factor = 10.f) const;

 private:
  graph::Network* net_;
  std::vector<ConvHistory> history_;
};

/// Per-layer density snapshot (Fig. 12).
struct LayerDensity {
  std::string name;
  double channel_density = 1.0;  ///< (dense in / in) * (dense out / out)
  double weight_density = 1.0;   ///< fraction of weights with |w| > threshold
};

std::vector<LayerDensity> layer_densities(graph::Network& net, float threshold);

}  // namespace pt::prune
