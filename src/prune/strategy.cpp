#include "prune/strategy.h"

#include <sstream>
#include <stdexcept>

#include "util/table.h"

namespace pt::prune {

namespace {

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

ReconfigDecision Strategy::propose_reconfigure(const EpochInfo& info) const {
  // The paper's cadence: periodic reconfiguration every reconfig_interval
  // epochs when the phase allows it, plus the kOneShot point.
  ReconfigDecision d;
  const bool periodic_hit = info.periodic_reconfig &&
                            info.reconfig_interval > 0 &&
                            (info.epoch_in_phase + 1) % info.reconfig_interval == 0;
  const bool one_shot_hit =
      info.one_shot_at >= 0 && (info.epoch_in_phase + 1) == info.one_shot_at;
  d.reconfigure = periodic_hit || one_shot_hit;
  d.threshold = info.threshold;
  return d;
}

StrategyRegistry& StrategyRegistry::global() {
  static StrategyRegistry registry = [] {
    StrategyRegistry r;
    register_builtin_strategies(r);
    return r;
  }();
  return registry;
}

void StrategyRegistry::register_strategy(StrategyFactory factory) {
  if (find(factory.name) != nullptr) {
    throw std::invalid_argument("prune strategy '" + factory.name +
                                "' is already registered");
  }
  factories_.push_back(std::move(factory));
}

const StrategyFactory* StrategyRegistry::find(const std::string& name) const {
  for (const StrategyFactory& f : factories_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::vector<std::string> StrategyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const StrategyFactory& f : factories_) out.push_back(f.name);
  return out;
}

std::unique_ptr<Strategy> StrategyRegistry::create(
    const std::string& name,
    const std::map<std::string, std::string>& params) const {
  const StrategyFactory* factory = find(name);
  if (factory == nullptr) {
    throw std::invalid_argument("unknown prune strategy '" + name +
                                "' (known: " + join_names(names()) + ")");
  }
  std::map<std::string, std::string> resolved;
  for (const ParamSpec& p : factory->params) resolved[p.name] = p.default_value;
  for (const auto& [key, value] : params) {
    if (resolved.find(key) == resolved.end()) {
      std::vector<std::string> known;
      for (const ParamSpec& p : factory->params) known.push_back(p.name);
      throw std::invalid_argument("strategy '" + name + "' has no parameter '" +
                                  key + "' (known: " + join_names(known) + ")");
    }
    resolved[key] = value;
  }
  return factory->make(resolved);
}

std::string StrategyRegistry::help() const {
  Table t({"strategy", "param", "default", "description"});
  for (const StrategyFactory& f : factories_) {
    t.add_row({f.name, "", "", f.description});
    for (const ParamSpec& p : f.params) {
      t.add_row({"", p.name, p.default_value, p.help});
    }
  }
  return t.to_text();
}

namespace {

const std::string& require_param(
    const std::map<std::string, std::string>& params, const std::string& key) {
  auto it = params.find(key);
  if (it == params.end()) {
    throw std::invalid_argument("strategy parameter '" + key +
                                "' missing from resolved map");
  }
  return it->second;
}

}  // namespace

float strategy_param_float(const std::map<std::string, std::string>& params,
                           const std::string& key) {
  const std::string& v = require_param(params, key);
  try {
    std::size_t pos = 0;
    const float out = std::stof(v, &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing characters");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("strategy parameter '" + key +
                                "' expects a number (got '" + v + "')");
  }
}

std::int64_t strategy_param_int(
    const std::map<std::string, std::string>& params, const std::string& key) {
  const std::string& v = require_param(params, key);
  try {
    std::size_t pos = 0;
    const long long out = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing characters");
    return static_cast<std::int64_t>(out);
  } catch (const std::exception&) {
    throw std::invalid_argument("strategy parameter '" + key +
                                "' expects an integer (got '" + v + "')");
  }
}

bool strategy_param_bool(const std::map<std::string, std::string>& params,
                         const std::string& key) {
  const std::string& v = require_param(params, key);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("strategy parameter '" + key +
                              "' expects a boolean (got '" + v + "')");
}

}  // namespace pt::prune
