// Pluggable sparsification strategies (ISSUE 6 tentpole).
//
// PruneTrain's group-lasso sparsifier used to be hard-wired into
// core::PruneTrainer. This interface extracts the per-epoch / per-step
// hooks the trainer calls so alternative sparsification schemes (DSD
// dense-sparse-dense scheduling, DST trainable thresholds, dynamic channel
// propagation — see strategy_zoo.h) plug into the same training loop,
// channel-union reconfiguration, checkpointing, guardian rollback, and
// elastic membership without forking the trainer.
//
// Contract (DESIGN.md §11 spells out the details):
//
//  * Hooks run on the trainer thread, serially — a strategy never touches
//    the exec pool, so N-thread runs stay bitwise-identical to 1-thread.
//  * `post_step_update` mutates ONLY strategy-internal state and runs once
//    per optimizer step (on the first participant under elastic training);
//    `post_step` mutates ONLY network weights, deterministically from
//    (weights, strategy state), and runs once per replica. Keeping the two
//    separate is what makes data-parallel replicas stay bit-identical.
//  * Everything that influences future behavior must round-trip through
//    `state()`/`load_state()` — the trainer checkpoints it in a "strategy"
//    section, so crash-resume and guardian rollback-replay reproduce an
//    uninterrupted run bitwise. Per-epoch caches re-derived by
//    `on_epoch_begin` (which always runs before the epoch's first step,
//    including after a resume) need not be serialized.
//  * All floating-point reductions over channel groups must iterate in a
//    fixed order (node id, then channel index) — ties broken by index —
//    for the same reason.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/network.h"

namespace pt::prune {

/// Per-optimizer-step context handed to the step hooks. Built once per
/// epoch (all fields are epoch constants).
struct StepInfo {
  std::int64_t epoch = 0;  ///< global epoch index
  float lr = 0.f;          ///< effective learning rate this epoch
  float lambda = 0.f;      ///< calibrated penalty coefficient, 0 when off
  bool sparsify = false;   ///< the current phase trains with sparsification
};

/// Per-epoch context handed to on_epoch_begin / propose_reconfigure.
struct EpochInfo {
  std::int64_t global_epoch = 0;   ///< trainer-wide epoch counter
  std::int64_t epoch_in_phase = 0; ///< 0-based index within the phase
  std::int64_t phase_epochs = 0;   ///< total epochs of the current phase
  bool sparsify = false;           ///< phase trains with sparsification
  bool periodic_reconfig = false;  ///< phase allows periodic reconfiguration
  std::int64_t one_shot_at = -1;   ///< reconfigure once after this epoch (<0 = never)
  std::int64_t reconfig_interval = 0;  ///< TrainConfig::reconfig_interval
  float threshold = 0.f;               ///< TrainConfig::threshold
  std::int64_t min_channels = 1;       ///< TrainConfig::prune_min_channels
  float lr = 0.f;                      ///< effective learning rate this epoch
};

/// What propose_reconfigure returns: whether to run the channel-union
/// reconfiguration after this epoch, and at which zeroing threshold.
struct ReconfigDecision {
  bool reconfigure = false;
  float threshold = 0.f;
};

/// One named blob of strategy-internal state (masks, thresholds,
/// saliency…). Serialized verbatim into the checkpoint's "strategy"
/// section; the strategy owns the meaning of the two arrays.
struct StrategyStateItem {
  std::string name;
  std::vector<float> f32;
  std::vector<std::int64_t> i64;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Registry name (stamped into checkpoints; a resume with a different
  /// strategy fails loudly instead of silently mixing state).
  virtual std::string name() const = 0;

  /// Start-of-epoch hook: runs before lambda calibration and the epoch's
  /// first step, on the reference network. Re-derive per-epoch caches
  /// here — it is the one hook guaranteed to run after a checkpoint
  /// restore and before any step.
  virtual void on_epoch_begin(graph::Network& net, const EpochInfo& info) {
    (void)net;
    (void)info;
  }

  /// The strategy's regularization sum (no lambda), recorded per epoch as
  /// EpochStats::lasso_loss and fed to calibrate(). 0 for mask-based
  /// strategies with no penalty term.
  virtual double regularization_loss(graph::Network& net) const {
    (void)net;
    return 0.0;
  }

  /// Adds regularization gradients after backward, before the optimizer
  /// step (single-device path only; elastic training requires proximal /
  /// post-step formulations so dead replicas stay untouched).
  virtual void accumulate_gradients(graph::Network& net, const StepInfo& info) {
    (void)net;
    (void)info;
  }

  /// Updates strategy-internal state after the optimizer step — ONCE per
  /// step, reading the (post-allreduce) gradients and weights. Must not
  /// modify the network.
  virtual void post_step_update(graph::Network& net, const StepInfo& info) {
    (void)net;
    (void)info;
  }

  /// Applies the strategy's weight transform after the optimizer step
  /// (proximal shrinkage, mask re-application…) — once per replica. Must
  /// be a deterministic function of (weights, strategy state).
  virtual void post_step(graph::Network& net, const StepInfo& info) {
    (void)net;
    (void)info;
  }

  /// Whether (and at which threshold) to run the channel-union
  /// reconfiguration after this epoch. The default reproduces the paper's
  /// cadence: every reconfig_interval epochs when the phase allows it,
  /// plus the one-shot point.
  virtual ReconfigDecision propose_reconfigure(const EpochInfo& info) const;

  /// Called after a reconfiguration changed the reference network's
  /// topology (and after the end-of-run compaction passes). Remap or reset
  /// any per-shape state here; NOT called after a checkpoint restore
  /// (load_state covers that).
  virtual void on_reconfigured(graph::Network& net) { (void)net; }

  /// Strategies deriving a penalty coefficient from the paper's Eq. 3
  /// probe (initial classification loss vs regularization sum) return
  /// true; the trainer then runs the probe batch and calls calibrate().
  virtual bool wants_lambda_calibration() const { return false; }
  virtual float calibrate(double classification_loss,
                          double regularization_loss) const {
    (void)classification_loss;
    (void)regularization_loss;
    return 0.f;
  }

  /// Small per-epoch scalars for telemetry (emitted as strategy/<key>
  /// gauges). Keep cheap; called once per recorded epoch.
  virtual std::map<std::string, double> metrics() const { return {}; }

  /// Complete serializable state. An empty vector is valid (stateless
  /// strategies); whatever is returned must make load_state() reproduce
  /// this strategy's future behavior bitwise.
  virtual std::vector<StrategyStateItem> state() const { return {}; }
  virtual void load_state(const std::vector<StrategyStateItem>& items) {
    (void)items;
  }
};

/// One registry entry: name, human description, parameter specs (used for
/// validation and the help table), and the factory.
struct ParamSpec {
  std::string name;
  std::string default_value;
  std::string help;
};

struct StrategyFactory {
  std::string name;
  std::string description;
  std::vector<ParamSpec> params;
  /// Receives the fully resolved parameter map (defaults overlaid with the
  /// caller's values; unknown keys already rejected).
  std::function<std::unique_ptr<Strategy>(
      const std::map<std::string, std::string>&)>
      make;
};

/// Name -> factory registry driving TrainConfig::strategy validation, the
/// quickstart `--strategy help` table, and the ablation bench's sweep.
class StrategyRegistry {
 public:
  /// The process-wide registry with the built-in zoo registered
  /// (strategy_zoo.cpp); thread-safe magic-static initialization.
  static StrategyRegistry& global();

  void register_strategy(StrategyFactory factory);
  const StrategyFactory* find(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Instantiates `name` with `params` overlaid on the spec defaults.
  /// Throws std::invalid_argument on an unknown strategy, an unknown
  /// parameter key, or an unparsable value.
  std::unique_ptr<Strategy> create(
      const std::string& name,
      const std::map<std::string, std::string>& params = {}) const;

  /// Renders the registry as an aligned table (strategy, parameters,
  /// defaults, help) — the `--strategy help` output.
  std::string help() const;

 private:
  std::vector<StrategyFactory> factories_;
};

/// Registers the built-in zoo (group_lasso, dsd, dst, channel_prop) into
/// `registry`. Called once by StrategyRegistry::global(); exposed for
/// tests that build a private registry.
void register_builtin_strategies(StrategyRegistry& registry);

// Typed parameter parsing over the resolved map; throw
// std::invalid_argument naming the key on a malformed value.
float strategy_param_float(const std::map<std::string, std::string>& params,
                           const std::string& key);
std::int64_t strategy_param_int(
    const std::map<std::string, std::string>& params, const std::string& key);
bool strategy_param_bool(const std::map<std::string, std::string>& params,
                         const std::string& key);

}  // namespace pt::prune
