#include "prune/strategy_zoo.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/conv2d.h"
#include "prune/group_lasso.h"

namespace pt::prune {

namespace {

/// L2 norm of every out-channel group of `data` ([K, C, R, S] layout, one
/// contiguous slice of C*R*S floats per group), in channel order — the
/// fixed iteration order every strategy reduction uses.
std::vector<double> out_group_norms(const nn::Conv2d& conv, const float* data) {
  const std::int64_t k = conv.out_channels();
  const std::int64_t group = conv.in_channels() * conv.kernel() * conv.kernel();
  std::vector<double> norms(static_cast<std::size_t>(k));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    double ss = 0;
    const float* p = data + kk * group;
    for (std::int64_t q = 0; q < group; ++q) ss += double(p[q]) * p[q];
    norms[static_cast<std::size_t>(kk)] = std::sqrt(ss);
  }
  return norms;
}

/// Indices of the `m` smallest entries of `norms`, ties broken by index
/// (deterministic regardless of the sort's internals).
std::vector<std::int64_t> lowest_indices(const std::vector<double>& norms,
                                         std::int64_t m) {
  std::vector<std::int64_t> idx(norms.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    idx[i] = static_cast<std::int64_t>(i);
  }
  std::sort(idx.begin(), idx.end(), [&](std::int64_t a, std::int64_t b) {
    const double na = norms[static_cast<std::size_t>(a)];
    const double nb = norms[static_cast<std::size_t>(b)];
    if (na != nb) return na < nb;
    return a < b;
  });
  idx.resize(static_cast<std::size_t>(
      std::min<std::int64_t>(m, static_cast<std::int64_t>(idx.size()))));
  return idx;
}

void zero_out_channel(nn::Conv2d& conv, std::int64_t kk) {
  const std::int64_t group = conv.in_channels() * conv.kernel() * conv.kernel();
  float* w = conv.weight().value.data();
  std::memset(w + kk * group, 0, static_cast<std::size_t>(group) * sizeof(float));
}

}  // namespace

// ---------------------------------------------------------------------------
// group_lasso — the paper's scheme, byte-for-byte the pre-refactor trainer.

double GroupLassoStrategy::regularization_loss(graph::Network& net) const {
  GroupLassoRegularizer reg(net);
  reg.set_size_normalized(size_normalized_);
  return reg.loss();
}

void GroupLassoStrategy::accumulate_gradients(graph::Network& net,
                                              const StepInfo& info) {
  if (info.lambda > 0.f && !proximal_) {
    GroupLassoRegularizer reg(net);
    reg.set_size_normalized(size_normalized_);
    reg.add_gradients(info.lambda);
  }
}

void GroupLassoStrategy::post_step(graph::Network& net, const StepInfo& info) {
  if (info.lambda > 0.f && proximal_) {
    GroupLassoRegularizer reg(net);
    reg.set_size_normalized(size_normalized_);
    reg.apply_proximal(info.lr * info.lambda);
  }
}

float GroupLassoStrategy::calibrate(double classification_loss,
                                    double regularization_loss) const {
  return calibrate_lambda(ratio_, classification_loss, regularization_loss) *
         boost_;
}

std::map<std::string, double> GroupLassoStrategy::metrics() const {
  return {{"ratio", double(ratio_)}, {"proximal", proximal_ ? 1.0 : 0.0}};
}

// ---------------------------------------------------------------------------
// dsd — dense-sparse-dense phase scheduling at channel granularity.

void DsdStrategy::on_epoch_begin(graph::Network& net, const EpochInfo& info) {
  min_keep_ = std::max<std::int64_t>(1, info.min_channels);
  const auto begin =
      static_cast<std::int64_t>(sparse_begin_ * double(info.phase_epochs));
  const auto end =
      static_cast<std::int64_t>(sparse_end_ * double(info.phase_epochs));
  in_window_ = info.sparsify && info.epoch_in_phase >= begin &&
               info.epoch_in_phase < end;
  if (!in_window_) {
    // Dense again (or not yet sparse): drop the masks so the re-dense
    // epochs retrain the masked channels from their momentum.
    masks_.clear();
    return;
  }
  // Entering the window freezes a magnitude mask from the current weights;
  // a mid-window resume restores non-empty masks and must NOT re-derive
  // them (the masked rows are zero now — ranking them would be circular).
  if (masks_.empty()) build_masks(net);
}

void DsdStrategy::build_masks(graph::Network& net) {
  for (int id : net.nodes_of_type<nn::Conv2d>()) {
    if (!net.is_live(id)) continue;
    const auto& conv = net.layer_as<nn::Conv2d>(id);
    const std::int64_t k = conv.out_channels();
    const std::int64_t m =
        std::min(static_cast<std::int64_t>(sparsity_ * double(k)),
                 k - min_keep_);
    if (m <= 0) continue;
    const std::vector<double> norms =
        out_group_norms(conv, conv.weight().value.data());
    std::vector<std::uint8_t> mask(static_cast<std::size_t>(k), 0);
    for (std::int64_t kk : lowest_indices(norms, m)) {
      mask[static_cast<std::size_t>(kk)] = 1;
    }
    masks_[id] = std::move(mask);
  }
}

void DsdStrategy::apply_masks(graph::Network& net) const {
  for (const auto& [id, mask] : masks_) {
    if (!net.is_live(id)) continue;
    auto& conv = net.layer_as<nn::Conv2d>(id);
    if (static_cast<std::int64_t>(mask.size()) != conv.out_channels()) continue;
    for (std::int64_t kk = 0; kk < conv.out_channels(); ++kk) {
      if (mask[static_cast<std::size_t>(kk)]) zero_out_channel(conv, kk);
    }
  }
}

void DsdStrategy::post_step(graph::Network& net, const StepInfo& info) {
  (void)info;
  if (in_window_) apply_masks(net);
}

ReconfigDecision DsdStrategy::propose_reconfigure(const EpochInfo& info) const {
  (void)info;
  return {};  // never: masked channels come back in the final dense phase
}

void DsdStrategy::on_reconfigured(graph::Network& net) {
  (void)net;
  // Only the end-of-run compaction passes reach here (propose_reconfigure
  // is always false); channel indices shifted, so the masks are void.
  masks_.clear();
}

std::map<std::string, double> DsdStrategy::metrics() const {
  double masked = 0;
  for (const auto& [id, mask] : masks_) {
    (void)id;
    for (std::uint8_t b : mask) masked += b;
  }
  return {{"sparse_window", in_window_ ? 1.0 : 0.0},
          {"masked_channels", masked}};
}

std::vector<StrategyStateItem> DsdStrategy::state() const {
  std::vector<StrategyStateItem> items;
  for (const auto& [id, mask] : masks_) {
    StrategyStateItem item;
    item.name = "mask";
    item.i64 = {id};
    item.f32.reserve(mask.size());
    for (std::uint8_t b : mask) item.f32.push_back(static_cast<float>(b));
    items.push_back(std::move(item));
  }
  return items;
}

void DsdStrategy::load_state(const std::vector<StrategyStateItem>& items) {
  masks_.clear();
  for (const StrategyStateItem& item : items) {
    if (item.name != "mask" || item.i64.size() != 1) continue;
    std::vector<std::uint8_t> mask;
    mask.reserve(item.f32.size());
    for (float f : item.f32) mask.push_back(f != 0.f ? 1 : 0);
    masks_[static_cast<int>(item.i64[0])] = std::move(mask);
  }
}

// ---------------------------------------------------------------------------
// dst — trainable per-layer thresholds.

void DstStrategy::on_epoch_begin(graph::Network& net, const EpochInfo& info) {
  active_ = info.sparsify;
  min_keep_ = std::max<std::int64_t>(1, info.min_channels);
  for (int id : net.nodes_of_type<nn::Conv2d>()) {
    if (!net.is_live(id)) continue;
    thresholds_.emplace(id, init_);
  }
}

double DstStrategy::regularization_loss(graph::Network& net) const {
  // The DST sparsity penalty: alpha * sum_l exp(-t_l). Decreasing in t, so
  // gradient descent on it pushes the thresholds up.
  double total = 0;
  for (int id : net.nodes_of_type<nn::Conv2d>()) {
    if (!net.is_live(id)) continue;
    auto it = thresholds_.find(id);
    if (it != thresholds_.end()) total += double(alpha_) * std::exp(-double(it->second));
  }
  return total;
}

void DstStrategy::post_step_update(graph::Network& net, const StepInfo& info) {
  if (!active_) return;
  for (auto& [id, t] : thresholds_) {
    if (!net.is_live(id)) continue;
    const auto& conv = net.layer_as<nn::Conv2d>(id);
    const std::vector<double> w_norms =
        out_group_norms(conv, conv.weight().value.data());
    const std::vector<double> g_norms =
        out_group_norms(conv, conv.weight().grad.data());
    // Revival pressure: gradient signal accumulating on masked groups
    // means the task wants them back — it pushes the threshold down.
    double masked_grad = 0;
    std::int64_t masked = 0;
    for (std::size_t kk = 0; kk < w_norms.size(); ++kk) {
      if (w_norms[kk] < double(t)) {
        masked_grad += g_norms[kk];
        ++masked;
      }
    }
    const double pressure = masked > 0 ? masked_grad / double(masked) : 0.0;
    const double dt = double(alpha_) * std::exp(-double(t)) -
                      double(beta_) * pressure;
    t = std::max(0.f, t + threshold_lr_ * static_cast<float>(dt));
    (void)info;
  }
}

void DstStrategy::post_step(graph::Network& net, const StepInfo& info) {
  (void)info;
  if (!active_) return;
  for (const auto& [id, t] : thresholds_) {
    if (!net.is_live(id)) continue;
    auto& conv = net.layer_as<nn::Conv2d>(id);
    const std::int64_t k = conv.out_channels();
    const std::vector<double> norms =
        out_group_norms(conv, conv.weight().value.data());
    // Survival floor: the strongest min_keep groups are never masked, so a
    // runaway threshold cannot zero a whole layer.
    std::vector<std::int64_t> order = lowest_indices(norms, k);
    const std::int64_t maskable = k - min_keep_;
    for (std::int64_t i = 0; i < maskable; ++i) {
      const std::int64_t kk = order[static_cast<std::size_t>(i)];
      if (norms[static_cast<std::size_t>(kk)] < double(t)) {
        zero_out_channel(conv, kk);
      }
    }
  }
}

void DstStrategy::on_reconfigured(graph::Network& net) {
  // Thresholds are per-layer scalars, so surgery does not invalidate them;
  // just drop entries of convs removed with their dead branches.
  for (auto it = thresholds_.begin(); it != thresholds_.end();) {
    if (!net.is_live(it->first)) {
      it = thresholds_.erase(it);
    } else {
      ++it;
    }
  }
}

std::map<std::string, double> DstStrategy::metrics() const {
  double sum = 0, max_t = 0;
  for (const auto& [id, t] : thresholds_) {
    (void)id;
    sum += t;
    max_t = std::max(max_t, double(t));
  }
  const double n = thresholds_.empty() ? 1.0 : double(thresholds_.size());
  return {{"mean_threshold", sum / n}, {"max_threshold", max_t}};
}

std::vector<StrategyStateItem> DstStrategy::state() const {
  StrategyStateItem item;
  item.name = "thresholds";
  for (const auto& [id, t] : thresholds_) {
    item.i64.push_back(id);
    item.f32.push_back(t);
  }
  return {std::move(item)};
}

void DstStrategy::load_state(const std::vector<StrategyStateItem>& items) {
  thresholds_.clear();
  for (const StrategyStateItem& item : items) {
    if (item.name != "thresholds" || item.i64.size() != item.f32.size()) {
      continue;
    }
    for (std::size_t i = 0; i < item.i64.size(); ++i) {
      thresholds_[static_cast<int>(item.i64[i])] = item.f32[i];
    }
  }
}

// ---------------------------------------------------------------------------
// channel_prop — dynamic channel propagation via saliency scores.

void ChannelPropStrategy::on_epoch_begin(graph::Network& net,
                                         const EpochInfo& info) {
  active_ = info.sparsify && info.epoch_in_phase >= warmup_epochs_;
  progress_ = info.phase_epochs > 0
                  ? double(info.epoch_in_phase + 1) / double(info.phase_epochs)
                  : 1.0;
  min_keep_ = std::max<std::int64_t>(1, info.min_channels);
  for (int id : net.nodes_of_type<nn::Conv2d>()) {
    if (!net.is_live(id)) continue;
    const auto& conv = net.layer_as<nn::Conv2d>(id);
    auto& s = saliency_[id];
    if (static_cast<std::int64_t>(s.size()) != conv.out_channels()) {
      s.assign(static_cast<std::size_t>(conv.out_channels()), 0.f);
    }
  }
}

void ChannelPropStrategy::post_step_update(graph::Network& net,
                                           const StepInfo& info) {
  (void)info;
  for (auto& [id, s] : saliency_) {
    if (!net.is_live(id)) continue;
    const auto& conv = net.layer_as<nn::Conv2d>(id);
    if (static_cast<std::int64_t>(s.size()) != conv.out_channels()) continue;
    const std::vector<double> g_norms =
        out_group_norms(conv, conv.weight().grad.data());
    for (std::size_t kk = 0; kk < s.size(); ++kk) {
      s[kk] = decay_ * s[kk] +
              (1.f - decay_) * static_cast<float>(g_norms[kk]);
    }
  }
  ++steps_since_reset_;
}

void ChannelPropStrategy::post_step(graph::Network& net, const StepInfo& info) {
  (void)info;
  if (!active_ || steps_since_reset_ < kWarmupSteps) return;
  const double target = double(prune_fraction_) * std::min(1.0, progress_);
  for (const auto& [id, s] : saliency_) {
    if (!net.is_live(id)) continue;
    auto& conv = net.layer_as<nn::Conv2d>(id);
    const std::int64_t k = conv.out_channels();
    if (static_cast<std::int64_t>(s.size()) != k) continue;
    const std::int64_t m = std::min(
        static_cast<std::int64_t>(target * double(k)), k - min_keep_);
    if (m <= 0) continue;
    std::vector<double> scores(s.begin(), s.end());
    for (std::int64_t kk : lowest_indices(scores, m)) {
      zero_out_channel(conv, kk);
    }
  }
}

void ChannelPropStrategy::on_reconfigured(graph::Network& net) {
  (void)net;
  // Channel indices shifted under the surgery: restart the saliency
  // accumulation at the new shapes (on_epoch_begin resizes) and hold off
  // masking until the scores are warm again.
  saliency_.clear();
  steps_since_reset_ = 0;
}

std::map<std::string, double> ChannelPropStrategy::metrics() const {
  return {{"active", active_ ? 1.0 : 0.0},
          {"steps_since_reset", double(steps_since_reset_)}};
}

std::vector<StrategyStateItem> ChannelPropStrategy::state() const {
  std::vector<StrategyStateItem> items;
  StrategyStateItem steps;
  steps.name = "steps";
  steps.i64 = {steps_since_reset_};
  items.push_back(std::move(steps));
  for (const auto& [id, s] : saliency_) {
    StrategyStateItem item;
    item.name = "saliency";
    item.i64 = {id};
    item.f32 = s;
    items.push_back(std::move(item));
  }
  return items;
}

void ChannelPropStrategy::load_state(
    const std::vector<StrategyStateItem>& items) {
  saliency_.clear();
  steps_since_reset_ = 0;
  for (const StrategyStateItem& item : items) {
    if (item.name == "steps" && item.i64.size() == 1) {
      steps_since_reset_ = item.i64[0];
    } else if (item.name == "saliency" && item.i64.size() == 1) {
      saliency_[static_cast<int>(item.i64[0])] = item.f32;
    }
  }
}

// ---------------------------------------------------------------------------

void register_builtin_strategies(StrategyRegistry& registry) {
  registry.register_strategy(
      {"group_lasso",
       "PruneTrain group-lasso regularization (Eq. 1-3), the paper's scheme",
       {{"ratio", "0.2", "Eq. 3 target penalty ratio, in (0, 1)"},
        {"boost", "1", "proxy-scale lambda multiplier (see DESIGN.md)"},
        {"proximal", "true",
         "group soft-threshold after the step (exact zeros) instead of the "
         "subgradient"},
        {"size_normalized", "false",
         "scale each group's penalty by sqrt(group size) (Sec. 4.1 ablation)"}},
       [](const std::map<std::string, std::string>& p) {
         const float ratio = strategy_param_float(p, "ratio");
         if (!(ratio > 0.f) || !(ratio < 1.f)) {
           throw std::invalid_argument(
               "strategy parameter 'ratio' must lie in (0, 1)");
         }
         return std::make_unique<GroupLassoStrategy>(
             ratio, strategy_param_float(p, "boost"),
             strategy_param_bool(p, "proximal"),
             strategy_param_bool(p, "size_normalized"));
       }});

  registry.register_strategy(
      {"dsd",
       "dense-sparse-dense scheduling: mid-run magnitude mask, final dense "
       "retrain (arXiv:1607.04381)",
       {{"sparsity", "0.3",
         "fraction of each conv's out-channels masked in the sparse window"},
        {"sparse_begin", "0.25", "window start as a fraction of the phase"},
        {"sparse_end", "0.75", "window end as a fraction of the phase"}},
       [](const std::map<std::string, std::string>& p) {
         const float s = strategy_param_float(p, "sparsity");
         const float b = strategy_param_float(p, "sparse_begin");
         const float e = strategy_param_float(p, "sparse_end");
         if (!(s >= 0.f) || !(s < 1.f)) {
           throw std::invalid_argument(
               "strategy parameter 'sparsity' must lie in [0, 1)");
         }
         if (!(b >= 0.f) || !(e <= 1.f) || !(b < e)) {
           throw std::invalid_argument(
               "strategy parameters must satisfy 0 <= sparse_begin < "
               "sparse_end <= 1");
         }
         return std::make_unique<DsdStrategy>(s, b, e);
       }});

  registry.register_strategy(
      {"dst",
       "dynamic sparse training: trainable per-layer threshold with exp(-t) "
       "sparsity pressure (arXiv:2005.06870)",
       {{"alpha", "1", "sparsity-pressure scale"},
        {"threshold_lr", "0.01", "learning rate of the threshold variable"},
        {"beta", "5", "revival pressure per unit masked-gradient norm"},
        {"init", "0", "initial threshold (>= 0)"}},
       [](const std::map<std::string, std::string>& p) {
         const float init = strategy_param_float(p, "init");
         if (!(init >= 0.f)) {
           throw std::invalid_argument(
               "strategy parameter 'init' must be >= 0");
         }
         return std::make_unique<DstStrategy>(
             strategy_param_float(p, "alpha"),
             strategy_param_float(p, "threshold_lr"),
             strategy_param_float(p, "beta"), init);
       }});

  registry.register_strategy(
      {"channel_prop",
       "dynamic channel propagation: gradient-saliency EWMA picks winning "
       "channels during training (arXiv:2007.01486)",
       {{"decay", "0.9", "saliency EWMA decay, in [0, 1)"},
        {"prune_fraction", "0.5",
         "final fraction of out-channels held at zero"},
        {"warmup", "1", "epochs before masking engages"}},
       [](const std::map<std::string, std::string>& p) {
         const float decay = strategy_param_float(p, "decay");
         const float frac = strategy_param_float(p, "prune_fraction");
         if (!(decay >= 0.f) || !(decay < 1.f)) {
           throw std::invalid_argument(
               "strategy parameter 'decay' must lie in [0, 1)");
         }
         if (!(frac >= 0.f) || !(frac < 1.f)) {
           throw std::invalid_argument(
               "strategy parameter 'prune_fraction' must lie in [0, 1)");
         }
         return std::make_unique<ChannelPropStrategy>(
             decay, frac, strategy_param_int(p, "warmup"));
       }});
}

}  // namespace pt::prune
