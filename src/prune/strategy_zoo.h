// The built-in sparsifier zoo behind prune::StrategyRegistry.
//
//  * group_lasso   — the paper's own scheme (Eq. 1-3), extracted from the
//                    trainer with zero behavior change: lasso subgradient
//                    or proximal group-soft-threshold, Eq. 3 lambda
//                    calibration, periodic channel-union reconfiguration.
//  * dsd           — dense-sparse-dense scheduling (Han et al.,
//                    arXiv:1607.04381) at channel granularity: a magnitude
//                    mask is frozen at the start of a mid-run sparse
//                    window and re-applied after every step, then dropped
//                    so the final epochs retrain dense. Never reconfigures
//                    (sparsity is temporary by design).
//  * dst           — dynamic sparse training with a trainable per-layer
//                    threshold (Liu et al., arXiv:2005.06870): each conv
//                    owns a scalar threshold t; channel groups whose L2
//                    norm falls below t are held at zero, t grows under an
//                    exp(-t) sparsity pressure and shrinks when the masked
//                    groups accumulate gradient signal (revival).
//  * channel_prop  — dynamic channel propagation (Zhang et al.,
//                    arXiv:2007.01486): a per-channel saliency EWMA of
//                    gradient norms picks the winning channels during
//                    training; the losers are held at zero and physically
//                    pruned at the periodic reconfigurations.
//
// All four compose with the trainer's checkpoint/rollback machinery via
// Strategy::state() and keep every reduction in fixed (node, channel)
// order so 1-vs-N-thread and resume runs stay bitwise-identical.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "prune/strategy.h"

namespace pt::prune {

class GroupLassoStrategy final : public Strategy {
 public:
  GroupLassoStrategy(float ratio, float boost, bool proximal,
                     bool size_normalized)
      : ratio_(ratio),
        boost_(boost),
        proximal_(proximal),
        size_normalized_(size_normalized) {}

  std::string name() const override { return "group_lasso"; }
  double regularization_loss(graph::Network& net) const override;
  void accumulate_gradients(graph::Network& net, const StepInfo& info) override;
  void post_step(graph::Network& net, const StepInfo& info) override;
  bool wants_lambda_calibration() const override { return true; }
  float calibrate(double classification_loss,
                  double regularization_loss) const override;
  std::map<std::string, double> metrics() const override;

  bool proximal() const { return proximal_; }

 private:
  float ratio_;
  float boost_;
  bool proximal_;
  bool size_normalized_;
};

class DsdStrategy final : public Strategy {
 public:
  DsdStrategy(float sparsity, float sparse_begin, float sparse_end)
      : sparsity_(sparsity),
        sparse_begin_(sparse_begin),
        sparse_end_(sparse_end) {}

  std::string name() const override { return "dsd"; }
  void on_epoch_begin(graph::Network& net, const EpochInfo& info) override;
  void post_step(graph::Network& net, const StepInfo& info) override;
  /// DSD never reconfigures mid-run: the sparse phase is a temporary
  /// regularizer, and the masked channels must survive to retrain dense.
  ReconfigDecision propose_reconfigure(const EpochInfo& info) const override;
  void on_reconfigured(graph::Network& net) override;
  std::map<std::string, double> metrics() const override;
  std::vector<StrategyStateItem> state() const override;
  void load_state(const std::vector<StrategyStateItem>& items) override;

  bool in_sparse_window() const { return in_window_; }

 private:
  void build_masks(graph::Network& net);
  void apply_masks(graph::Network& net) const;

  float sparsity_;      ///< fraction of each conv's out-channels to mask
  float sparse_begin_;  ///< window start, as a fraction of the phase
  float sparse_end_;    ///< window end, as a fraction of the phase

  // node id -> 1 byte per out-channel (1 = masked). Frozen at window
  // entry, cleared at window exit; checkpointed so a mid-window resume
  // does not re-derive masks from already-masked weights.
  std::map<int, std::vector<std::uint8_t>> masks_;

  // Per-epoch caches, re-derived by on_epoch_begin (not serialized).
  bool in_window_ = false;
  std::int64_t min_keep_ = 1;
};

class DstStrategy final : public Strategy {
 public:
  DstStrategy(float alpha, float threshold_lr, float beta, float init)
      : alpha_(alpha), threshold_lr_(threshold_lr), beta_(beta), init_(init) {}

  std::string name() const override { return "dst"; }
  void on_epoch_begin(graph::Network& net, const EpochInfo& info) override;
  double regularization_loss(graph::Network& net) const override;
  void post_step_update(graph::Network& net, const StepInfo& info) override;
  void post_step(graph::Network& net, const StepInfo& info) override;
  void on_reconfigured(graph::Network& net) override;
  std::map<std::string, double> metrics() const override;
  std::vector<StrategyStateItem> state() const override;
  void load_state(const std::vector<StrategyStateItem>& items) override;

 private:
  float alpha_;         ///< sparsity-pressure scale (d/dt of alpha*exp(-t))
  float threshold_lr_;  ///< learning rate of the threshold variable
  float beta_;          ///< revival pressure per unit masked-gradient norm
  float init_;          ///< initial threshold

  std::map<int, float> thresholds_;  ///< node id -> trainable t (state)

  // Per-epoch caches (re-derived by on_epoch_begin).
  bool active_ = false;
  std::int64_t min_keep_ = 1;
};

class ChannelPropStrategy final : public Strategy {
 public:
  ChannelPropStrategy(float decay, float prune_fraction,
                      std::int64_t warmup_epochs)
      : decay_(decay),
        prune_fraction_(prune_fraction),
        warmup_epochs_(warmup_epochs) {}

  std::string name() const override { return "channel_prop"; }
  void on_epoch_begin(graph::Network& net, const EpochInfo& info) override;
  void post_step_update(graph::Network& net, const StepInfo& info) override;
  void post_step(graph::Network& net, const StepInfo& info) override;
  void on_reconfigured(graph::Network& net) override;
  std::map<std::string, double> metrics() const override;
  std::vector<StrategyStateItem> state() const override;
  void load_state(const std::vector<StrategyStateItem>& items) override;

 private:
  /// Saliency updates need this many steps after a (re)start before the
  /// scores are trusted to pick losers — masking on an all-zero EWMA would
  /// pick channels by index alone.
  static constexpr std::int64_t kWarmupSteps = 10;

  float decay_;           ///< saliency EWMA decay
  float prune_fraction_;  ///< final fraction of channels held at zero
  std::int64_t warmup_epochs_;

  std::map<int, std::vector<float>> saliency_;  ///< node id -> per-channel EWMA
  std::int64_t steps_since_reset_ = 0;

  // Per-epoch caches (re-derived by on_epoch_begin).
  bool active_ = false;
  double progress_ = 0.0;  ///< phase progress in (0, 1]
  std::int64_t min_keep_ = 1;
};

}  // namespace pt::prune
