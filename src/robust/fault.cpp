#include "robust/fault.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "util/fileio.h"

namespace pt::robust {

std::string to_string(FaultSpec::Kind kind) {
  switch (kind) {
    case FaultSpec::Kind::kNanGrad: return "nan-grad";
    case FaultSpec::Kind::kBitflipGrad: return "bitflip-grad";
    case FaultSpec::Kind::kScaleGrad: return "scale-grad";
    case FaultSpec::Kind::kDropReplica: return "drop-replica";
    case FaultSpec::Kind::kDelayReplica: return "delay-replica";
    case FaultSpec::Kind::kTruncateCkpt: return "truncate-ckpt";
    case FaultSpec::Kind::kCorruptCkpt: return "corrupt-ckpt";
    case FaultSpec::Kind::kKillReplica: return "kill-replica";
    case FaultSpec::Kind::kFlakyReplica: return "flaky-replica";
    case FaultSpec::Kind::kRejoinReplica: return "rejoin-replica";
    case FaultSpec::Kind::kSdcParam: return "sdc-param";
    case FaultSpec::Kind::kSdcMomentum: return "sdc-momentum";
    case FaultSpec::Kind::kTornCkpt: return "torn-ckpt";
    case FaultSpec::Kind::kPoisonCkpt: return "poison-ckpt";
    case FaultSpec::Kind::kSlowModel: return "slow-model";
    case FaultSpec::Kind::kFlakyOutput: return "flaky-output";
  }
  return "?";
}

std::string fault_spec_help() {
  return
      "fault spec grammar:  <kind>[:key=value[,key=value...]][;<kind>:...]\n"
      "\n"
      "  kind            semantics                                 keys\n"
      "  --------------  ----------------------------------------  ------------------------\n"
      "  nan-grad        set one gradient element to quiet NaN     epoch,step,replica,count\n"
      "  bitflip-grad    flip one random bit of one grad element   epoch,step,replica,count\n"
      "  scale-grad      multiply every gradient by `scale`        epoch,step,replica,count,scale\n"
      "  drop-replica    replica fails the step (timeout+retry)    step,replica,count\n"
      "  delay-replica   replica straggles `delay` modeled secs    step,replica,count,delay\n"
      "  kill-replica    permanent death: misses every heartbeat   step,replica,count\n"
      "  flaky-replica   dies with probability `prob` per step     step,replica,count,prob\n"
      "  rejoin-replica  revive a dead replica at matching step    step,replica,count\n"
      "  truncate-ckpt   truncate checkpoint files to half size    epoch,count\n"
      "  corrupt-ckpt    flip one random byte of checkpoint files  epoch,count\n"
      "  torn-ckpt       truncate checkpoints through the CRC-32   epoch,count\n"
      "                  footer (partial write died mid-save)\n"
      "  sdc-param       silent corruption: flip one bit of one    step,replica,count\n"
      "                  parameter element post-step, kept finite\n"
      "  sdc-momentum    silent corruption: flip one bit of one    step,replica,count\n"
      "                  momentum element post-step, kept finite\n"
      "  poison-ckpt     CRC-valid checkpoint, corrupt tensors:    epoch,count,scale\n"
      "                  classifier head goes NaN (or seeded\n"
      "                  garbage when scale= is given) pre-save\n"
      "  slow-model      inflate a generation's modeled service    epoch,step,count,scale\n"
      "                  ticks (epoch=generation, step=batch id)\n"
      "  flaky-output    inject one quiet-NaN logit into a served  epoch,step,count\n"
      "                  batch (epoch=generation, step=batch id)\n"
      "\n"
      "  keys (wildcards when omitted):\n"
      "    epoch=<N>    fire only at global epoch N (serve kinds: generation)\n"
      "    step=<N>     fire only at step/iteration N (serve kinds: batch id)\n"
      "    replica=<N>  fire only for replica N\n"
      "    count=<N>    max firings; 0 = unlimited        (default 1)\n"
      "    scale=<X>    scale-grad multiplier             (default 1e4)\n"
      "                 poison-ckpt garbage magnitude     (default: NaN mode)\n"
      "                 slow-model inflation factor       (default 8)\n"
      "    delay=<X>    delay-replica modeled seconds     (default 5)\n"
      "    prob=<X>     flaky-replica death probability   (default 0.05)\n"
      "\n"
      "  examples:\n"
      "    nan-grad:epoch=7\n"
      "    kill-replica:replica=2,step=50\n"
      "    flaky-replica:prob=0.2,count=0\n"
      "    kill-replica:replica=1,step=10;rejoin-replica:replica=1,step=40\n"
      "    sdc-param:replica=1,step=3\n"
      "    torn-ckpt:epoch=4\n"
      "    poison-ckpt:epoch=5\n"
      "    slow-model:epoch=2,scale=16,count=0\n"
      "    flaky-output:epoch=3,count=2\n"
      "\n"
      "  Determinism: matching is pure arithmetic on (epoch, step, replica,\n"
      "  firings so far); random choices draw from a pt::Rng seeded at\n"
      "  construction, so equal spec + seed => bitwise-equal faults.\n";
}

namespace {

FaultSpec::Kind parse_kind(const std::string& token) {
  using Kind = FaultSpec::Kind;
  for (Kind k : {Kind::kNanGrad, Kind::kBitflipGrad, Kind::kScaleGrad,
                 Kind::kDropReplica, Kind::kDelayReplica, Kind::kTruncateCkpt,
                 Kind::kCorruptCkpt, Kind::kKillReplica, Kind::kFlakyReplica,
                 Kind::kRejoinReplica, Kind::kSdcParam, Kind::kSdcMomentum,
                 Kind::kTornCkpt, Kind::kPoisonCkpt, Kind::kSlowModel,
                 Kind::kFlakyOutput}) {
    if (token == to_string(k)) return k;
  }
  throw std::invalid_argument("fault spec: unknown kind '" + token + "'");
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

std::vector<FaultSpec> parse_fault_specs(const std::string& text) {
  std::vector<FaultSpec> specs;
  if (text.empty()) return specs;
  for (const std::string& clause : split(text, ';')) {
    if (clause.empty()) {
      throw std::invalid_argument("fault spec: empty clause");
    }
    const std::size_t colon = clause.find(':');
    FaultSpec spec;
    spec.kind = parse_kind(clause.substr(0, colon));
    if (colon == std::string::npos) {
      specs.push_back(spec);
      continue;
    }
    for (const std::string& kv : split(clause.substr(colon + 1), ',')) {
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= kv.size()) {
        throw std::invalid_argument("fault spec: malformed key=value '" + kv +
                                    "'");
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      try {
        if (key == "epoch") {
          spec.epoch = std::stoll(value);
        } else if (key == "step") {
          spec.step = std::stoll(value);
        } else if (key == "replica") {
          spec.replica = std::stoi(value);
        } else if (key == "count") {
          spec.count = std::stoll(value);
        } else if (key == "scale") {
          spec.scale = std::stod(value);
          spec.scale_set = true;
        } else if (key == "delay") {
          spec.delay_seconds = std::stod(value);
        } else if (key == "prob") {
          spec.prob = std::stod(value);
        } else {
          throw std::invalid_argument("fault spec: unknown key '" + key + "'");
        }
      } catch (const std::invalid_argument&) {
        throw;
      } catch (const std::exception&) {
        throw std::invalid_argument("fault spec: bad value in '" + kv + "'");
      }
    }
    if (spec.count < 0) {
      throw std::invalid_argument("fault spec: count must be >= 0");
    }
    if (spec.kind == FaultSpec::Kind::kFlakyReplica &&
        !(spec.prob >= 0.0 && spec.prob <= 1.0)) {
      throw std::invalid_argument(
          "fault spec: flaky-replica prob must lie in [0, 1]");
    }
    if (spec.kind == FaultSpec::Kind::kSlowModel && spec.scale_set &&
        !(spec.scale >= 1.0)) {
      throw std::invalid_argument(
          "fault spec: slow-model scale must be >= 1 (an inflation factor)");
    }
    specs.push_back(spec);
  }
  return specs;
}

void validate_fault_replicas(const std::vector<FaultSpec>& specs,
                             int replicas) {
  for (const FaultSpec& s : specs) {
    if (s.kind != FaultSpec::Kind::kSdcParam &&
        s.kind != FaultSpec::Kind::kSdcMomentum) {
      continue;
    }
    if (s.replica >= replicas) {
      throw std::invalid_argument(
          "fault spec: " + to_string(s.kind) + ":replica=" +
          std::to_string(s.replica) + " targets a replica that does not " +
          "exist (replicas=" + std::to_string(replicas) +
          ") and would never fire");
    }
  }
}

FaultInjector::FaultInjector(std::vector<FaultSpec> specs, std::uint64_t seed)
    : rng_(seed) {
  specs_.reserve(specs.size());
  for (FaultSpec& s : specs) specs_.push_back({s, 0});
}

FaultInjector FaultInjector::from_string(const std::string& text,
                                         std::uint64_t seed) {
  return FaultInjector(parse_fault_specs(text), seed);
}

bool FaultInjector::matches(const Armed& a, std::int64_t epoch,
                            std::int64_t step, int replica) {
  if (a.spec.count != 0 && a.fires >= a.spec.count) return false;
  if (a.spec.epoch >= 0 && a.spec.epoch != epoch) return false;
  if (a.spec.step >= 0 && a.spec.step != step) return false;
  if (a.spec.replica >= 0 && a.spec.replica != replica) return false;
  return true;
}

bool FaultInjector::corrupt_gradients(graph::Network& net, std::int64_t epoch,
                                      std::int64_t step, int replica) {
  bool fired = false;
  for (Armed& a : specs_) {
    const auto kind = a.spec.kind;
    if (kind != FaultSpec::Kind::kNanGrad &&
        kind != FaultSpec::Kind::kBitflipGrad &&
        kind != FaultSpec::Kind::kScaleGrad) {
      continue;
    }
    if (!matches(a, epoch, step, replica)) continue;
    std::vector<nn::Param*> params = net.params();
    if (params.empty()) continue;
    ++a.fires;
    fired = true;
    if (kind == FaultSpec::Kind::kScaleGrad) {
      for (nn::Param* p : params) {
        float* g = p->grad.data();
        for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
          g[i] *= static_cast<float>(a.spec.scale);
        }
      }
      continue;
    }
    nn::Param* victim =
        params[static_cast<std::size_t>(rng_.uniform_int(params.size()))];
    const std::int64_t elem = static_cast<std::int64_t>(
        rng_.uniform_int(static_cast<std::uint64_t>(victim->grad.numel())));
    float* g = victim->grad.data() + elem;
    if (kind == FaultSpec::Kind::kNanGrad) {
      *g = std::numeric_limits<float>::quiet_NaN();
    } else {
      std::uint32_t bits;
      std::memcpy(&bits, g, sizeof(bits));
      bits ^= 1u << rng_.uniform_int(32);
      std::memcpy(g, &bits, sizeof(bits));
    }
  }
  return fired;
}

bool FaultInjector::drop_replica(int replica, std::int64_t step) {
  for (Armed& a : specs_) {
    if (a.spec.kind != FaultSpec::Kind::kDropReplica) continue;
    // epoch = -1: an epoch-constrained spec never matches cluster steps.
    if (!matches(a, -1, step, replica)) continue;
    ++a.fires;
    return true;
  }
  return false;
}

double FaultInjector::replica_delay(int replica, std::int64_t step) {
  for (Armed& a : specs_) {
    if (a.spec.kind != FaultSpec::Kind::kDelayReplica) continue;
    if (!matches(a, -1, step, replica)) continue;
    ++a.fires;
    return a.spec.delay_seconds;
  }
  return 0.0;
}

bool FaultInjector::kill_replica(int replica, std::int64_t step) {
  for (Armed& a : specs_) {
    if (a.spec.kind != FaultSpec::Kind::kKillReplica) continue;
    if (!matches(a, -1, step, replica)) continue;
    ++a.fires;
    return true;
  }
  return false;
}

bool FaultInjector::flaky_replica(int replica, std::int64_t step) {
  for (Armed& a : specs_) {
    if (a.spec.kind != FaultSpec::Kind::kFlakyReplica) continue;
    if (!matches(a, -1, step, replica)) continue;
    // Draw even when the replica survives so the RNG stream depends only
    // on the (deterministic) query sequence, not on earlier outcomes.
    const bool dies = rng_.uniform() < a.spec.prob;
    if (!dies) continue;
    ++a.fires;
    return true;
  }
  return false;
}

bool FaultInjector::rejoin_replica(int replica, std::int64_t step) {
  for (Armed& a : specs_) {
    if (a.spec.kind != FaultSpec::Kind::kRejoinReplica) continue;
    if (!matches(a, -1, step, replica)) continue;
    ++a.fires;
    return true;
  }
  return false;
}

bool FaultInjector::corrupt_state(graph::Network& net, std::int64_t step,
                                  int replica) {
  bool fired = false;
  for (Armed& a : specs_) {
    const auto kind = a.spec.kind;
    if (kind != FaultSpec::Kind::kSdcParam &&
        kind != FaultSpec::Kind::kSdcMomentum) {
      continue;
    }
    // epoch = -1: SDC fires on the step clock, like the membership kinds —
    // an epoch-constrained spec never matches.
    if (!matches(a, -1, step, replica)) continue;
    std::vector<nn::Param*> params = net.params();
    if (params.empty()) continue;
    ++a.fires;
    fired = true;
    nn::Param* victim =
        params[static_cast<std::size_t>(rng_.uniform_int(params.size()))];
    Tensor& t = kind == FaultSpec::Kind::kSdcParam ? victim->value
                                                   : victim->momentum;
    const std::int64_t elem = static_cast<std::int64_t>(
        rng_.uniform_int(static_cast<std::uint64_t>(t.numel())));
    float* x = t.data() + elem;
    // Flip one bit, retrying the bit choice until the result stays finite:
    // the corruption must sail past every NaN/Inf scan (a mantissa or
    // low-exponent flip almost always does; the retry bounds the tail).
    std::uint32_t bits;
    std::memcpy(&bits, x, sizeof(bits));
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::uint32_t flipped = bits ^ (1u << rng_.uniform_int(32));
      float candidate;
      std::memcpy(&candidate, &flipped, sizeof(candidate));
      if (std::isfinite(candidate) && candidate != *x) {
        std::memcpy(x, &candidate, sizeof(candidate));
        break;
      }
    }
  }
  return fired;
}

bool FaultInjector::corrupt_checkpoint_files(
    const std::vector<std::string>& paths, std::int64_t epoch) {
  for (Armed& a : specs_) {
    if (a.spec.kind != FaultSpec::Kind::kTruncateCkpt &&
        a.spec.kind != FaultSpec::Kind::kCorruptCkpt &&
        a.spec.kind != FaultSpec::Kind::kTornCkpt) {
      continue;
    }
    if (!matches(a, epoch, -1, -1)) continue;
    ++a.fires;
    for (const std::string& path : paths) {
      std::vector<std::uint8_t> bytes = read_file_bytes(path);
      if (bytes.empty()) continue;
      if (a.spec.kind == FaultSpec::Kind::kTruncateCkpt) {
        bytes.resize(bytes.size() / 2);
      } else if (a.spec.kind == FaultSpec::Kind::kTornCkpt) {
        // A write that died just before completing the 4-byte CRC-32
        // footer: cut the last 6 bytes (the footer plus the payload tail),
        // leaving a file that is almost whole but fails footer validation.
        bytes.resize(bytes.size() > 6 ? bytes.size() - 6 : 0);
      } else {
        const std::size_t at =
            static_cast<std::size_t>(rng_.uniform_int(bytes.size()));
        bytes[at] ^= 0xffu;
      }
      // Deliberately a plain overwrite, not atomic_write_file: this *is*
      // the torn-write failure mode the loader must survive.
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
    return true;
  }
  return false;
}

bool FaultInjector::poison_network(graph::Network& net,
                                   std::int64_t generation) {
  bool fired = false;
  for (Armed& a : specs_) {
    if (a.spec.kind != FaultSpec::Kind::kPoisonCkpt) continue;
    if (!matches(a, generation, -1, -1)) continue;
    std::vector<nn::Param*> params = net.params();
    if (params.empty()) continue;
    ++a.fires;
    fired = true;
    // Poison the classifier head only: the convolutional body stays
    // intact, so channel analysis, materialization, and the CRC-32 footer
    // all pass — the corruption is visible only in the logits themselves.
    const std::size_t first = params.size() > 2 ? params.size() - 2 : 0;
    for (std::size_t p = first; p < params.size(); ++p) {
      Tensor& t = params[p]->value;
      float* x = t.data();
      for (std::int64_t i = 0; i < t.numel(); ++i) {
        x[i] = a.spec.scale_set
                   ? static_cast<float>(rng_.normal() * a.spec.scale)
                   : std::numeric_limits<float>::quiet_NaN();
      }
    }
  }
  return fired;
}

double FaultInjector::slow_model_factor(std::int64_t generation,
                                        std::int64_t batch) {
  for (Armed& a : specs_) {
    if (a.spec.kind != FaultSpec::Kind::kSlowModel) continue;
    if (!matches(a, generation, batch, -1)) continue;
    ++a.fires;
    return a.spec.scale_set ? a.spec.scale : 8.0;
  }
  return 1.0;
}

bool FaultInjector::corrupt_output(Tensor& logits, std::int64_t generation,
                                   std::int64_t batch) {
  bool fired = false;
  for (Armed& a : specs_) {
    if (a.spec.kind != FaultSpec::Kind::kFlakyOutput) continue;
    if (!matches(a, generation, batch, -1)) continue;
    if (logits.numel() <= 0) continue;
    ++a.fires;
    fired = true;
    const std::int64_t at = static_cast<std::int64_t>(
        rng_.uniform_int(static_cast<std::uint64_t>(logits.numel())));
    logits.data()[at] = std::numeric_limits<float>::quiet_NaN();
  }
  return fired;
}

std::int64_t FaultInjector::total_fires() const {
  std::int64_t total = 0;
  for (const Armed& a : specs_) total += a.fires;
  return total;
}

}  // namespace pt::robust
