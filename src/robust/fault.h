// Deterministic, config-driven fault injection (ISSUE 2 tentpole, part c).
//
// Every recovery path in the guardian is exercised by *injected* faults,
// never by luck: the FaultInjector corrupts gradients (NaN / bit-flip /
// scale), drops or delays simulated cluster replicas (dist::Cluster::step
// consumes the drop/delay queries and applies timeout + retry + shard
// reweighting), and truncates or bit-flips checkpoint files as they are
// written. Faults are described by a compact spec string so tests, the
// quickstart (--fault-spec), and benchmarks share one vocabulary:
//
//   "<kind>[:key=value[,key=value...]][;<kind>:...]"
//
//   kinds: nan-grad | bitflip-grad | scale-grad
//          drop-replica | delay-replica
//          kill-replica | flaky-replica | rejoin-replica
//          truncate-ckpt | corrupt-ckpt | torn-ckpt
//          sdc-param | sdc-momentum
//          poison-ckpt | slow-model | flaky-output
//   keys:  epoch=<N>    fire only at global epoch N         (-1 = any)
//          step=<N>     fire only at step/iteration N       (-1 = any)
//          replica=<N>  fire only for replica N             (-1 = any)
//          count=<N>    maximum firings, 0 = unlimited      (default 1)
//          scale=<X>    gradient multiplier for scale-grad  (default 1e4)
//          delay=<X>    modeled straggler seconds           (default 5)
//          prob=<X>     per-step death probability, flaky-replica (default 0.05)
//
// (`fault_spec_help()` renders the full grammar as a table; DESIGN.md §7
// carries the same table.)
//
// Example: "nan-grad:epoch=3" poisons one gradient element at the first
// iteration of epoch 3, exactly once. Determinism: matching is pure
// arithmetic on (epoch, step, replica, firings so far); the only random
// choices (which element, which bit, whether a flaky replica dies) come
// from a pt::Rng seeded at construction, so equal spec + seed =>
// bitwise-equal faults.
//
// The elastic-membership kinds (ISSUE 5) model *permanent* replica
// failure, distinct from the transient drop/delay pair: kill-replica makes
// a replica miss every heartbeat from the matching step onward,
// flaky-replica kills it with probability `prob` per queried step, and
// rejoin-replica revives a dead replica at the matching step (the
// membership layer then runs the checkpointed-rejoin protocol).
//
// The silent-data-corruption kinds (ISSUE 7) model *quiet* failures the
// guardian's NaN/spike checks cannot see: sdc-param / sdc-momentum flip
// one bit of one parameter / momentum element *after* the optimizer step,
// retrying the bit choice until the result is finite — the corruption is
// invisible to every loud check and only the IntegrityMonitor's digest
// vote catches it. torn-ckpt truncates checkpoint files a few bytes short
// of the end, cutting through the CRC-32 footer: the partial write of a
// process that died mid-save, the case the checkpoint scrubber exists for.
//
// The serving-resilience kinds (ISSUE 10) model checkpoint and runtime
// failures the CRC scrub *cannot* see: poison-ckpt overwrites a network's
// classifier head with NaN (or, with scale=, finite seeded garbage) before
// the checkpoint is saved, so the file's CRC-32 footer is perfectly valid
// yet every logit it produces is corrupt — only the serve::CanaryGate's
// shadow execution catches it. slow-model inflates a generation's modeled
// batch service ticks (a latency regression on the modeled clock, keyed
// epoch=generation / step=batch id), and flaky-output injects a quiet NaN
// into one logit of a served batch — the post-swap GenerationHealth breach
// that triggers automatic rollback.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/network.h"
#include "util/rng.h"

namespace pt::robust {

struct FaultSpec {
  enum class Kind : std::uint8_t {
    kNanGrad = 0,      ///< set one gradient element to quiet NaN
    kBitflipGrad = 1,  ///< flip one random bit of one gradient element
    kScaleGrad = 2,    ///< multiply every gradient by `scale`
    kDropReplica = 3,  ///< replica fails the step (timeout -> retry)
    kDelayReplica = 4, ///< replica straggles `delay_seconds` (modeled)
    kTruncateCkpt = 5, ///< truncate a checkpoint file to half its size
    kCorruptCkpt = 6,  ///< flip one random byte of a checkpoint file
    kKillReplica = 7,  ///< permanent death: misses every heartbeat onward
    kFlakyReplica = 8, ///< dies with probability `prob` per queried step
    kRejoinReplica = 9,///< revive a dead replica at the matching step
    kSdcParam = 10,    ///< finite in-place bitflip of one parameter element
    kSdcMomentum = 11, ///< finite in-place bitflip of one momentum element
    kTornCkpt = 12,    ///< truncate checkpoint files through the CRC footer
    kPoisonCkpt = 13,  ///< CRC-valid checkpoint with NaN/garbage tensors
    kSlowModel = 14,   ///< inflate a generation's modeled service ticks
    kFlakyOutput = 15, ///< inject a non-finite logit into a served batch
  };

  Kind kind = Kind::kNanGrad;
  std::int64_t epoch = -1;      ///< -1 = any epoch
  std::int64_t step = -1;       ///< -1 = any step / iteration
  int replica = -1;             ///< -1 = any replica (cluster kinds only)
  std::int64_t count = 1;       ///< max firings; 0 = unlimited
  double scale = 1e4;           ///< kScaleGrad multiplier
  double delay_seconds = 5.0;   ///< kDelayReplica modeled stall
  double prob = 0.05;           ///< kFlakyReplica per-step death probability
  /// True when the spec text set scale= explicitly. poison-ckpt uses it to
  /// pick NaN (unset) vs finite-garbage (set) tensors; slow-model uses it
  /// to override its default inflation factor.
  bool scale_set = false;
};

std::string to_string(FaultSpec::Kind kind);

/// Parses the spec grammar above. Throws std::invalid_argument with the
/// offending token on malformed input. "" yields an empty list.
std::vector<FaultSpec> parse_fault_specs(const std::string& text);

/// The full spec grammar rendered as one human-readable table (every kind
/// with its semantics and keys). Printed by `quickstart --fault-spec help`;
/// DESIGN.md §7 carries the same table.
std::string fault_spec_help();

/// Rejects replica-targeted SDC specs that can never fire: an sdc-param /
/// sdc-momentum clause with replica >= `replicas` names a worker that does
/// not exist, which previously just never matched — a silently dead test.
/// Throws std::invalid_argument naming the offending clause.
/// TrainConfig::validate() calls this with the configured replica count.
void validate_fault_replicas(const std::vector<FaultSpec>& specs,
                             int replicas);

class FaultInjector {
 public:
  /// Disarmed injector: every query is a cheap no-op returning "no fault".
  FaultInjector() = default;

  FaultInjector(std::vector<FaultSpec> specs, std::uint64_t seed);

  /// Convenience: parse + construct. Throws on malformed spec text.
  static FaultInjector from_string(const std::string& text, std::uint64_t seed);

  bool armed() const { return !specs_.empty(); }

  /// Applies every matching gradient fault to `net`'s parameter gradients.
  /// Called between backward() and the optimizer step. `replica` is -1 in
  /// single-device training; dist::Cluster passes the replica index so
  /// replica-targeted specs corrupt exactly one worker's local gradients.
  /// Returns true if at least one fault fired.
  bool corrupt_gradients(graph::Network& net, std::int64_t epoch,
                         std::int64_t step, int replica = -1);

  /// True when a kDropReplica fault fires for (replica, step). Each query
  /// consumes one firing, so a count=1 drop fails the first attempt and
  /// lets the retry succeed.
  bool drop_replica(int replica, std::int64_t step);

  /// Modeled straggler seconds for (replica, step); 0 when no delay fault
  /// fires. Consumes one firing per positive answer.
  double replica_delay(int replica, std::int64_t step);

  /// True when a kKillReplica fault fires for (replica, step): the replica
  /// dies permanently. The membership layer latches the answer — the
  /// injector consumes one firing and is never asked about that replica
  /// again.
  bool kill_replica(int replica, std::int64_t step);

  /// True when a kFlakyReplica fault decides (replica, step) dies: each
  /// matching spec draws one Bernoulli(prob) variate from the seeded RNG.
  /// Deterministic given seed + query order (the membership layer queries
  /// replicas in rank order every step). Consumes one firing per death.
  bool flaky_replica(int replica, std::int64_t step);

  /// True when a kRejoinReplica fault fires for (replica, step): a dead
  /// replica should begin the rejoin protocol. Consumes one firing.
  bool rejoin_replica(int replica, std::int64_t step);

  /// Applies matching sdc-param / sdc-momentum faults to `net`: one random
  /// bit of one random element of one random parameter (or its momentum)
  /// is flipped in place, retrying the bit choice until the value stays
  /// finite — the corruption sails past every NaN/Inf scan. Called *after*
  /// the optimizer step (single device: the trainer; cluster: after the
  /// post-update hooks), so nothing overwrites it before the next digest
  /// check. Returns true if a fault fired.
  bool corrupt_state(graph::Network& net, std::int64_t step, int replica = -1);

  /// Applies a matching checkpoint fault to every path in `paths` (they
  /// are one logical save: the numbered file plus ckpt-latest.bin).
  /// Consumes at most one firing per call. Returns true if a fault fired.
  bool corrupt_checkpoint_files(const std::vector<std::string>& paths,
                                std::int64_t epoch);

  /// Applies a matching poison-ckpt fault to `net` *before* it is saved:
  /// the classifier head (last parameter tensors) is overwritten with quiet
  /// NaN — no ReLU is left downstream to squash it, so every logit goes
  /// non-finite — or, when the spec set scale=, with finite seeded garbage
  /// at that magnitude (wrong argmaxes only reference-disagreement can
  /// catch). The convolutional body is untouched, so materialization and
  /// the CRC-32 footer both stay healthy: this is the silent-failure class
  /// the serve::CanaryGate exists for. `generation` matches the spec's
  /// epoch key. Returns true if a fault fired.
  bool poison_network(graph::Network& net, std::int64_t generation);

  /// Modeled service-tick multiplier for a batch served by `generation`
  /// (spec epoch key) as global batch `batch` (spec step key); 1.0 when no
  /// slow-model fault fires. Consumes one firing per inflated batch.
  double slow_model_factor(std::int64_t generation, std::int64_t batch);

  /// Applies a matching flaky-output fault to `logits`: one random element
  /// goes quiet-NaN. Keyed like slow-model (epoch=generation, step=batch).
  /// Returns true if a fault fired.
  bool corrupt_output(Tensor& logits, std::int64_t generation,
                      std::int64_t batch);

  /// Total firings across all specs so far.
  std::int64_t total_fires() const;

 private:
  struct Armed {
    FaultSpec spec;
    std::int64_t fires = 0;
  };

  /// True when `a` still has budget and matches the coordinates; -1 spec
  /// fields are wildcards.
  static bool matches(const Armed& a, std::int64_t epoch, std::int64_t step,
                      int replica);

  std::vector<Armed> specs_;
  Rng rng_{0x0fa1u};
};

}  // namespace pt::robust
