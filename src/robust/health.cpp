#include "robust/health.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/conv2d.h"
#include "prune/channel_analysis.h"
#include "telemetry/metrics.h"

namespace pt::robust {

namespace {

/// Mirrors guardian findings into the telemetry event stream
/// ("health/<type>" events plus a health/events counter).
void emit_telemetry(const std::vector<HealthEvent>& events) {
  if (!telemetry::enabled()) return;
  for (const HealthEvent& e : events) {
    telemetry::count("health/events");
    telemetry::event("health/" + to_string(e.type), e.describe());
  }
}

}  // namespace

std::string to_string(EventType type) {
  switch (type) {
    case EventType::kNonFiniteLoss: return "non-finite-loss";
    case EventType::kLossSpike: return "loss-spike";
    case EventType::kNonFiniteGradient: return "non-finite-gradient";
    case EventType::kNonFiniteParam: return "non-finite-param";
    case EventType::kNonFiniteBnStats: return "non-finite-bn-stats";
    case EventType::kPruningCollapse: return "pruning-collapse";
    case EventType::kQuorumLoss: return "quorum-loss";
    case EventType::kReplicaDivergence: return "replica-divergence";
    case EventType::kSdcDetected: return "sdc-detected";
    case EventType::kSdcNoQuorum: return "sdc-no-quorum";
    case EventType::kCheckpointCascade: return "checkpoint-cascade";
    case EventType::kCanaryRejected: return "canary-rejected";
    case EventType::kGenerationRollback: return "generation-rollback";
    case EventType::kBreakerStateChange: return "breaker-state-change";
  }
  return "?";
}

std::string to_string(Severity severity) {
  return severity == Severity::kFatal ? "fatal" : "warning";
}

std::string HealthEvent::describe() const {
  std::ostringstream os;
  os << to_string(severity) << " " << to_string(type) << " at epoch " << epoch
     << ": " << detail;
  return os.str();
}

void HealthConfig::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("HealthConfig: " + what);
  };
  if (!(loss_spike_factor > 1.0)) {
    fail("loss_spike_factor must be > 1 (got " +
         std::to_string(loss_spike_factor) + ")");
  }
  if (loss_window < 1) {
    fail("loss_window must be >= 1 (got " + std::to_string(loss_window) + ")");
  }
  if (spike_warmup < 0) {
    fail("spike_warmup must be >= 0 (got " + std::to_string(spike_warmup) + ")");
  }
}

HealthMonitor::HealthMonitor(HealthConfig cfg) : cfg_(cfg) { cfg_.validate(); }

double HealthMonitor::trailing_median() const {
  std::vector<double> sorted(window_.begin(), window_.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

namespace {

/// Index of the first non-finite element, or -1.
std::int64_t first_non_finite(const Tensor& t) {
  const float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (!std::isfinite(p[i])) return i;
  }
  return -1;
}

}  // namespace

std::vector<HealthEvent> HealthMonitor::check_epoch(std::int64_t epoch,
                                                    double train_loss,
                                                    graph::Network& net) {
  std::vector<HealthEvent> events;
  bool loss_healthy = true;

  if (!std::isfinite(train_loss)) {
    std::ostringstream os;
    os << "train loss is " << train_loss;
    events.push_back({EventType::kNonFiniteLoss, Severity::kFatal, epoch,
                      train_loss, os.str()});
    loss_healthy = false;
  } else if (healthy_epochs_ >= cfg_.spike_warmup && !window_.empty()) {
    const double median = trailing_median();
    if (median > 0 && train_loss > cfg_.loss_spike_factor * median) {
      std::ostringstream os;
      os << "train loss " << train_loss << " exceeds " << cfg_.loss_spike_factor
         << "x trailing median " << median;
      events.push_back({EventType::kLossSpike, Severity::kFatal, epoch,
                        train_loss / median, os.str()});
      loss_healthy = false;
    }
  }

  if (cfg_.check_gradients || cfg_.check_bn_stats) {
    for (const nn::StateEntry& e : net.state()) {
      const bool is_bn_buffer = e.role == nn::StateRole::kBuffer;
      if (is_bn_buffer && !cfg_.check_bn_stats) continue;
      if (!is_bn_buffer && !cfg_.check_gradients) continue;
      if (e.role == nn::StateRole::kMomentum) continue;  // derived from grads
      const std::int64_t bad = first_non_finite(*e.tensor);
      if (bad < 0) continue;
      EventType type = EventType::kNonFiniteGradient;
      if (e.role == nn::StateRole::kParam) type = EventType::kNonFiniteParam;
      if (is_bn_buffer) type = EventType::kNonFiniteBnStats;
      std::ostringstream os;
      os << e.name << "[" << bad << "] = " << e.tensor->data()[bad];
      events.push_back({type, Severity::kFatal, epoch,
                        static_cast<double>(e.tensor->data()[bad]), os.str()});
      break;  // one non-finite tensor is diagnosis enough
    }
  }

  if (loss_healthy && events.empty()) {
    window_.push_back(train_loss);
    while (static_cast<std::int64_t>(window_.size()) > cfg_.loss_window) {
      window_.pop_front();
    }
    ++healthy_epochs_;
  }

  log_.insert(log_.end(), events.begin(), events.end());
  emit_telemetry(events);
  return events;
}

std::vector<HealthEvent> HealthMonitor::check_prune(std::int64_t epoch,
                                                    graph::Network& net,
                                                    float threshold) {
  std::vector<HealthEvent> events;
  for (int id : net.nodes_of_type<nn::Conv2d>()) {
    const nn::Layer& layer = *net.node(id).layer;
    if (!prune::dense_out_channels(layer, threshold).empty()) continue;
    const auto& conv = net.layer_as<nn::Conv2d>(id);
    std::ostringstream os;
    os << (layer.name().empty() ? "node" + std::to_string(id) : layer.name())
       << ": all " << conv.out_channels()
       << " output channels below threshold " << threshold
       << " (floor guard will keep the strongest)";
    events.push_back({EventType::kPruningCollapse, Severity::kWarning, epoch,
                      static_cast<double>(conv.out_channels()), os.str()});
  }
  log_.insert(log_.end(), events.begin(), events.end());
  emit_telemetry(events);
  return events;
}

void HealthMonitor::reset_window() {
  window_.clear();
  healthy_epochs_ = 0;
}

const HealthEvent* HealthMonitor::first_fatal(
    const std::vector<HealthEvent>& events) {
  for (const HealthEvent& e : events) {
    if (e.severity == Severity::kFatal) return &e;
  }
  return nullptr;
}

}  // namespace pt::robust
