// Numerical-health monitoring for long PruneTrain runs (the "training
// guardian", ISSUE 2 tentpole).
//
// PruneTrain mutates the live model every reconfiguration interval and
// calibrates a single global lambda at iteration 0 (Eq. 3), so a
// miscalibrated penalty, a divergent LR after dynamic mini-batch rescaling
// (Sec. 4.3), or an over-aggressive prune can silently destroy a long run.
// The HealthMonitor turns "silently" into structured HealthEvents: after
// every epoch it checks the loss for NaN/Inf and divergence spikes
// (loss > k x trailing median of healthy epochs), scans the network's
// parameters/gradients/BN running statistics for non-finite values, and —
// before a reconfiguration — flags convolutions about to lose *all* of
// their channels (pruning collapse).
//
// The monitor only observes and reports; acting on fatal events (rollback
// to the last good checkpoint, LR cut, retry, abort) is RecoveryPolicy's
// job (recovery.h), wired through core::PruneTrainer.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/network.h"

namespace pt::robust {

enum class EventType : std::uint8_t {
  kNonFiniteLoss = 0,    ///< train loss is NaN or Inf
  kLossSpike = 1,        ///< loss exceeds spike_factor x trailing median
  kNonFiniteGradient = 2,///< a parameter gradient holds NaN/Inf
  kNonFiniteParam = 3,   ///< a parameter value holds NaN/Inf
  kNonFiniteBnStats = 4, ///< BN running mean/var holds NaN/Inf
  kPruningCollapse = 5,  ///< a conv is about to lose all channels
  kQuorumLoss = 6,       ///< live replicas fell below min_live_fraction
  kReplicaDivergence = 7,///< a replica's parameter table diverged
  kSdcDetected = 8,      ///< digest vote caught silent corruption (healed)
  kSdcNoQuorum = 9,      ///< digest vote split with no strict majority
  kCheckpointCascade = 10,///< rollback skipped corrupt generations
  // Serving-resilience events (ISSUE 10): `epoch` carries the checkpoint
  // *generation* in question, not a training epoch.
  kCanaryRejected = 11,  ///< candidate generation failed canary validation
  kGenerationRollback = 12,///< serving rolled back to the previous generation
  kBreakerStateChange = 13,///< a serving circuit breaker changed state
};

enum class Severity : std::uint8_t { kWarning = 0, kFatal = 1 };

std::string to_string(EventType type);
std::string to_string(Severity severity);

/// One structured observation. Fatal events mean the run cannot make
/// useful progress from the current state; warnings are survivable (e.g.
/// pruning collapse, which the reconfiguration floor guard neutralizes).
struct HealthEvent {
  EventType type = EventType::kNonFiniteLoss;
  Severity severity = Severity::kFatal;
  std::int64_t epoch = -1;  ///< global epoch index the event was seen at
  double value = 0;         ///< offending value (loss, ratio, bad scalar)
  std::string detail;       ///< human-readable context (layer name etc.)

  /// "fatal non-finite-loss at epoch 7: train loss is nan".
  std::string describe() const;
};

/// Thrown by the trainer when a fatal event fires and recovery is enabled;
/// carries the event to the rollback machinery at the top of run().
class FatalHealthError : public std::runtime_error {
 public:
  explicit FatalHealthError(HealthEvent event)
      : std::runtime_error(event.describe()), event_(std::move(event)) {}
  const HealthEvent& event() const { return event_; }

 private:
  HealthEvent event_;
};

struct HealthConfig {
  /// Fatal when train loss > loss_spike_factor * trailing median of the
  /// last loss_window healthy epochs. Generous by default: legitimate
  /// post-reconfiguration or batch-growth bumps are ~2-3x, divergence is
  /// orders of magnitude.
  double loss_spike_factor = 10.0;
  std::int64_t loss_window = 8;   ///< trailing-median window length
  /// Healthy epochs observed before spike detection arms (early training
  /// is legitimately volatile).
  std::int64_t spike_warmup = 3;
  bool check_gradients = true;    ///< scan grads + params for NaN/Inf
  bool check_bn_stats = true;     ///< scan BN running stats for NaN/Inf

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig cfg = {});

  /// Post-epoch check: loss finiteness, loss spike, and (per config) a
  /// scan of every state tensor. Returns the events raised this call; a
  /// healthy loss is recorded into the trailing window. All events are
  /// also appended to the cumulative log().
  std::vector<HealthEvent> check_epoch(std::int64_t epoch, double train_loss,
                                       graph::Network& net);

  /// Pre-reconfiguration check: a kPruningCollapse warning per conv whose
  /// output channels would *all* fall below `threshold` (the floor guard
  /// in prune::Reconfigurer keeps the graph executable regardless).
  std::vector<HealthEvent> check_prune(std::int64_t epoch, graph::Network& net,
                                       float threshold);

  /// Clears the trailing-loss window (call after a rollback: the restored
  /// run re-enters an older loss regime).
  void reset_window();

  /// Every event ever raised by this monitor, in order.
  const std::vector<HealthEvent>& log() const { return log_; }

  /// First fatal event in `events`, or nullptr.
  static const HealthEvent* first_fatal(const std::vector<HealthEvent>& events);

 private:
  double trailing_median() const;

  HealthConfig cfg_;
  std::deque<double> window_;       ///< recent healthy losses
  std::int64_t healthy_epochs_ = 0; ///< arms spike detection after warmup
  std::vector<HealthEvent> log_;
};

}  // namespace pt::robust
