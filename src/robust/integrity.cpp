#include "robust/integrity.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "telemetry/metrics.h"
#include "util/fileio.h"
#include "util/logging.h"

namespace pt::robust {
namespace {

// State tensors that are replica-invariant by the determinism contract:
// params and momentum (identical across replicas after every allreduce +
// update). Gradients are transient, and kBuffer tensors (BN running
// statistics) are *legitimately* shard-local — each replica folds its own
// shard's batch statistics into them — so including either would make
// every honest vote split.
bool digestable_role(nn::StateRole role) {
  return role == nn::StateRole::kParam || role == nn::StateRole::kMomentum;
}

// Feeds a little-endian integer into a running CRC.
template <typename T>
std::uint32_t crc_mix(std::uint32_t seed, T value) {
  return pt::crc32(&value, sizeof(value), seed);
}

std::uint32_t crc_mix_str(std::uint32_t seed, const std::string& s) {
  seed = crc_mix<std::uint64_t>(seed, s.size());
  return pt::crc32(s.data(), s.size(), seed);
}

}  // namespace

std::vector<std::string> StateDigest::diff(const StateDigest& other) const {
  std::vector<std::string> names;
  const std::size_t n = std::min(tensors.size(), other.tensors.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (tensors[i].crc != other.tensors[i].crc) {
      names.push_back(tensors[i].name);
    }
  }
  for (std::size_t i = n; i < tensors.size(); ++i) {
    names.push_back(tensors[i].name);
  }
  for (std::size_t i = n; i < other.tensors.size(); ++i) {
    names.push_back(other.tensors[i].name);
  }
  return names;
}

StateDigest compute_state_digest(
    graph::Network& net, exec::ExecContext& ctx,
    const std::vector<prune::StrategyStateItem>* strategy_state,
    const std::vector<prune::StrategyStateItem>* codec_state) {
  StateDigest d;

  // Collect the persistent entries first so the per-tensor pass can run as
  // a flat parallel_for with a deterministic slot per tensor.
  std::vector<nn::StateEntry> entries;
  for (nn::StateEntry& e : net.state()) {
    if (e.tensor != nullptr && digestable_role(e.role)) {
      entries.push_back(e);
    }
  }

  d.tensors.resize(entries.size() +
                   (strategy_state != nullptr ? strategy_state->size() : 0) +
                   (codec_state != nullptr ? codec_state->size() : 0));

  // Topology stamp: the (name, role, dims) sequence. Two replicas that have
  // applied the same reconfigurations produce the same stamp; a digest from
  // before a reconfiguration is incomparable, not mismatched.
  std::uint32_t topo = 0;
  for (const nn::StateEntry& e : entries) {
    topo = crc_mix_str(topo, e.name);
    topo = crc_mix<std::uint8_t>(topo, static_cast<std::uint8_t>(e.role));
    const auto& dims = e.tensor->shape().dims();
    topo = crc_mix<std::uint64_t>(topo, dims.size());
    for (std::int64_t dim : dims) topo = crc_mix<std::int64_t>(topo, dim);
  }

  // Per-tensor payload CRCs in parallel. Each slot is written by exactly
  // one chunk and each CRC depends only on its tensor's bytes, so the
  // result is bitwise-identical at any thread count.
  ctx.pool().parallel_for(
      static_cast<std::int64_t>(entries.size()),
      [&](std::int64_t begin, std::int64_t end, int) {
        for (std::int64_t i = begin; i < end; ++i) {
          const nn::StateEntry& e = entries[static_cast<std::size_t>(i)];
          TensorDigest& td = d.tensors[static_cast<std::size_t>(i)];
          td.name = e.name;
          td.role = static_cast<std::uint8_t>(e.role);
          td.crc = pt::crc32(e.tensor->data(),
                             static_cast<std::size_t>(e.tensor->numel()) *
                                 sizeof(float));
        }
      });

  // Strategy state rides along as pseudo-tensors: masks, trainable
  // thresholds, and saliency statistics steer the irreversible pruning
  // decisions just like weights do. Codec state (error-feedback residuals,
  // live-row masks) follows under a "codec/" prefix for the same reason —
  // it shapes every future gradient average.
  std::size_t slot = entries.size();
  auto append_items =
      [&](const std::vector<prune::StrategyStateItem>* items,
          const char* prefix) {
        if (items == nullptr) return;
        for (const prune::StrategyStateItem& item : *items) {
          topo = crc_mix_str(topo, item.name);
          topo = crc_mix<std::uint64_t>(topo, item.f32.size());
          topo = crc_mix<std::uint64_t>(topo, item.i64.size());
          TensorDigest& td = d.tensors[slot++];
          td.name = std::string(prefix) + item.name;
          td.role = static_cast<std::uint8_t>(nn::StateRole::kBuffer);
          std::uint32_t crc =
              pt::crc32(item.f32.data(), item.f32.size() * sizeof(float));
          crc = pt::crc32(item.i64.data(),
                          item.i64.size() * sizeof(std::int64_t), crc);
          td.crc = crc;
        }
      };
  append_items(strategy_state, "strategy/");
  append_items(codec_state, "codec/");

  d.topology = topo;

  // Chain the summary word: topology stamp first, then every per-tensor
  // CRC in entry order.
  std::uint32_t state = crc_mix<std::uint32_t>(0, topo);
  for (const TensorDigest& td : d.tensors) {
    state = crc_mix<std::uint32_t>(state, td.crc);
  }
  d.state = state;
  return d;
}

void IntegrityConfig::validate() const {
  if (check_interval < 0) {
    throw std::invalid_argument(
        "IntegrityConfig: check_interval must be >= 0 (got " +
        std::to_string(check_interval) + ")");
  }
}

IntegrityMonitor::IntegrityMonitor(IntegrityConfig cfg) : cfg_(cfg) {
  cfg_.validate();
}

VoteOutcome IntegrityMonitor::check_replicas(
    const std::vector<ReplicaView>& replicas, exec::ExecContext& ctx,
    const std::vector<prune::StrategyStateItem>* strategy_state,
    const HealFn& heal,
    const std::vector<prune::StrategyStateItem>* codec_state) {
  VoteOutcome out;
  ++checks_;
  if (replicas.size() <= 1) return out;  // nothing to vote against

  std::vector<StateDigest> digests(replicas.size());
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    digests[i] = compute_state_digest(*replicas[i].net, ctx, strategy_state,
                                      codec_state);
    out.digest_bytes += digests[i].wire_bytes();
  }
  // Modeled digest exchange: an allgather ring moves each replica's digest
  // to every other replica, (n - 1) hops per digest.
  out.digest_bytes *= static_cast<std::int64_t>(replicas.size()) - 1;
  digest_bytes_total_ += out.digest_bytes;

  // Group replicas by (topology, state) digest. A replica whose topology
  // stamp diverged is its own minority — its state words are incomparable
  // with everyone else's, which is itself a corruption signal (topology
  // only changes at fenced reconfiguration points all replicas share).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::size_t>>
      groups;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    groups[{digests[i].topology, digests[i].state}].push_back(i);
  }
  if (groups.size() == 1) return out;  // unanimous

  out.mismatch = true;
  ++mismatches_;

  // Strict majority wins; ties have no winner.
  const std::size_t need = replicas.size() / 2 + 1;
  const std::vector<std::size_t>* majority = nullptr;
  std::pair<std::uint32_t, std::uint32_t> majority_key{};
  for (const auto& [key, members] : groups) {
    if (members.size() >= need) {
      majority = &members;
      majority_key = key;
      break;
    }
  }

  char buf[160];
  if (majority == nullptr) {
    out.no_quorum = true;
    std::string split;
    for (const auto& [key, members] : groups) {
      if (!split.empty()) split += " vs ";
      split += std::to_string(members.size());
    }
    std::snprintf(buf, sizeof(buf),
                  "digest vote split %s across %zu replicas: no strict "
                  "majority, cannot heal",
                  split.c_str(), replicas.size());
    out.detail = buf;
    log_error("integrity: " + out.detail);
    return out;
  }

  out.majority_crc = majority_key.second;
  const std::size_t root_idx = majority->front();
  out.healthy_root = replicas[root_idx].rank;

  // Heal every minority replica in place from the first majority member —
  // one fenced full-state copy, the rejoin resync mechanism, no rollback.
  for (const auto& [key, members] : groups) {
    if (&members == majority) continue;
    for (std::size_t idx : members) {
      const int victim = replicas[idx].rank;
      const std::vector<std::string> bad = digests[idx].diff(digests[root_idx]);
      std::string first_bad = bad.empty() ? "<summary-only>" : bad.front();
      std::snprintf(buf, sizeof(buf),
                    "replica %d digest %08x != majority %08x (%zu tensor(s), "
                    "first: %s)",
                    victim, digests[idx].state, majority_key.second, bad.size(),
                    first_bad.c_str());
      if (!out.detail.empty()) out.detail += "; ";
      out.detail += buf;
      log_warn("integrity: " + std::string(buf) + " — healing from replica " +
               std::to_string(out.healthy_root));
      if (heal) {
        out.heal_bytes += heal(victim, out.healthy_root);
      }
      out.healed.push_back(victim);
      ++heals_;
    }
  }
  heal_bytes_total_ += out.heal_bytes;
  if (telemetry::enabled()) {
    telemetry::count("integrity/mismatches");
    telemetry::count("integrity/heals",
                     static_cast<std::int64_t>(out.healed.size()));
    telemetry::count("integrity/heal_bytes", out.heal_bytes);
    telemetry::event("integrity/heal", out.detail);
  }
  return out;
}

CheckpointScrubber::CheckpointScrubber(std::int64_t keep_last_k)
    : keep_last_k_(keep_last_k) {
  if (keep_last_k_ < 0) {
    throw std::invalid_argument(
        "CheckpointScrubber: keep_last_k must be >= 0 (got " +
        std::to_string(keep_last_k_) + ")");
  }
}

void CheckpointScrubber::note_saved(const std::string& path,
                                    std::int64_t epoch) {
  for (GenerationInfo& g : generations_) {
    if (g.path == path) {
      g.epoch = epoch;
      g.scrubbed = false;
      g.valid = false;
      return;
    }
  }
  GenerationInfo g;
  g.path = path;
  g.epoch = epoch;
  generations_.push_back(std::move(g));
  std::sort(generations_.begin(), generations_.end(),
            [](const GenerationInfo& a, const GenerationInfo& b) {
              return a.epoch < b.epoch;
            });
  while (keep_last_k_ > 0 &&
         generations_.size() > static_cast<std::size_t>(keep_last_k_)) {
    std::remove(generations_.front().path.c_str());
    generations_.erase(generations_.begin());
    ++evicted_;
    if (telemetry::enabled()) telemetry::count("integrity/ckpt_evicted");
  }
}

std::int64_t CheckpointScrubber::scrub(exec::ExecContext& ctx) {
  ++scrub_passes_;
  // Each chunk validates a disjoint slice of the ledger; verdicts land in
  // pre-assigned slots, so the pass is deterministic and race-free.
  ctx.pool().parallel_for(
      static_cast<std::int64_t>(generations_.size()),
      [&](std::int64_t begin, std::int64_t end, int) {
        for (std::int64_t i = begin; i < end; ++i) {
          GenerationInfo& g = generations_[static_cast<std::size_t>(i)];
          bool ok = false;
          try {
            // Throws on a short file or a CRC-32 footer mismatch — both a
            // torn write (torn-ckpt fault) and bit rot land here.
            (void)pt::read_file_bytes_crc32(g.path);
            ok = true;
          } catch (const std::exception&) {
            ok = false;
          }
          g.scrubbed = true;
          g.valid = ok;
        }
      });
  std::int64_t valid = 0;
  for (const GenerationInfo& g : generations_) {
    if (g.valid) ++valid;
    if (g.scrubbed && !g.valid) {
      log_warn("integrity: scrub found corrupt checkpoint generation " +
               std::to_string(g.epoch) + " at " + g.path);
    }
  }
  if (telemetry::enabled()) {
    telemetry::count("integrity/scrub_passes");
    telemetry::gauge("integrity/scrub_valid", static_cast<double>(valid));
  }
  return valid;
}

std::string CheckpointScrubber::newest_valid() const {
  for (auto it = generations_.rbegin(); it != generations_.rend(); ++it) {
    if (it->scrubbed && it->valid) return it->path;
  }
  return "";
}

const GenerationInfo* CheckpointScrubber::verdict(
    const std::string& path) const {
  for (const GenerationInfo& g : generations_) {
    if (g.path == path) return g.scrubbed ? &g : nullptr;
  }
  return nullptr;
}

}  // namespace pt::robust
