// Silent-data-corruption defense (ISSUE 7 tentpole): digest voting,
// in-place healing, and a scrubbed checkpoint generation chain.
//
// The guardian's HealthMonitor (health.h) catches *loud* failures — NaN
// losses, Inf parameters, divergence spikes. A silently corrupted weight
// that stays finite sails past every one of those checks, gets averaged
// into all replicas by the next allreduce, and can permanently prune the
// wrong channels at the next reconfiguration (the surgery is
// irreversible). This header turns the repo's determinism contract into a
// detector: replicas of an elastic cluster are bitwise-identical *by
// construction* (DESIGN.md §9/§10), so any digest disagreement between
// them is corruption by definition — no tolerance bands, no false-positive
// epsilon tuning.
//
// Three cooperating pieces:
//
//  * StateDigest / compute_state_digest(): an incremental CRC-32-per-tensor
//    digest of the named state dict (params + momentum + the strategy's
//    serialized state), topology-stamped with a CRC over the
//    (name, role, shape) sequence so digests survive reconfiguration —
//    two digests are comparable iff their topology stamps agree. Per-tensor
//    CRCs are computed in parallel on the exec::ExecContext (each tensor's
//    CRC is a pure function of its bytes, so the combination is
//    deterministic at any thread count).
//
//  * IntegrityMonitor: every `check_interval` steps, digests every live
//    replica, exchanges the digests (modeled via the allreduce layer's
//    ring accounting), and majority-votes. A minority replica is healed in
//    place — one fenced full-state copy from a voted-healthy replica, the
//    same mechanism as the PR 5 rejoin resync — without burning a rollback.
//    A vote with no strict majority (e.g. a 1-1 split on two replicas) is
//    escalated to the guardian's RecoveryPolicy as a fatal kSdcNoQuorum
//    event. The monitor is dist-agnostic: it sees replicas as
//    (rank, Network*) views and heals through a callback, so pt_robust
//    never links pt_dist (which already links pt_robust for fault
//    injection). core::PruneTrainer and the bench wire
//    dist::ElasticCluster::heal_replica in.
//
//  * CheckpointScrubber: replaces the single "last CRC-valid checkpoint"
//    with a retained generation chain. The trainer registers every
//    numbered save (`note_saved`), the scrubber prunes generations beyond
//    `keep_last_k`, and `scrub()` re-validates each retained file's CRC-32
//    footer in parallel on the ExecContext. Recovery consults the ledger:
//    when the newest file is torn or bit-rotted, the rollback cascades to
//    the newest *scrubbed-valid* generation instead of aborting
//    (recovery.h, find_rollback_target).
//
// Everything here is deterministic and injectable: the FaultInjector's
// sdc-param / sdc-momentum kinds plant finite in-place bitflips that only
// this subsystem can see, and torn-ckpt models the partial write the
// scrubber must catch.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/context.h"
#include "graph/network.h"
#include "prune/strategy.h"

namespace pt::robust {

/// CRC-32 of one state tensor's payload, under its qualified name.
struct TensorDigest {
  std::string name;
  std::uint8_t role = 0;   ///< nn::StateRole
  std::uint32_t crc = 0;   ///< CRC-32 of the raw float payload
};

/// Digest of one replica's full persistent state. `topology` stamps the
/// (name, role, dims) sequence; `state` chains every per-tensor CRC (plus
/// the topology stamp) into one word. Digests with different topology
/// stamps are *incomparable* (a reconfiguration happened in between), not
/// mismatched.
struct StateDigest {
  std::uint32_t topology = 0;
  std::uint32_t state = 0;
  std::vector<TensorDigest> tensors;

  /// True when `other` covers the same topology (same stamp) — the
  /// precondition for reading a state mismatch as corruption.
  bool comparable_with(const StateDigest& other) const {
    return topology == other.topology;
  }

  /// Names of tensors whose CRCs differ from `other`'s (same topology
  /// assumed) — the per-tensor granularity that turns "replica 1 is
  /// corrupt" into "replica 1's stage2.block0.conv1.weight is corrupt".
  std::vector<std::string> diff(const StateDigest& other) const;

  /// Modeled wire size of one digest: the per-tensor CRC words plus the
  /// two summary words (names travel once in the topology negotiation and
  /// are excluded, like any real digest-exchange protocol would).
  std::int64_t wire_bytes() const {
    return static_cast<std::int64_t>(tensors.size() + 2) *
           static_cast<std::int64_t>(sizeof(std::uint32_t));
  }
};

/// Digests `net`'s replica-invariant named state (kParam + kMomentum;
/// kGrad is transient and kBuffer tensors — BN running statistics — are
/// legitimately shard-local, so both are excluded) plus, when non-null,
/// the strategy's serialized state items (masks, trainable thresholds,
/// saliency EWMAs — corrupting those reroutes pruning just as surely as
/// corrupting a weight) and the gradient codec's serialized state
/// ("codec/<name>" pseudo-tensors: error-feedback residuals and live-row
/// masks steer what the next exchange averages). Codec state is held once
/// per *cluster* — every replica view digests the same object — so
/// including it never splits an honest vote the way per-replica BN buffers
/// would. Per-tensor CRCs run as a parallel_for on `ctx`; the result is
/// bitwise-identical at any thread count.
StateDigest compute_state_digest(
    graph::Network& net, exec::ExecContext& ctx,
    const std::vector<prune::StrategyStateItem>* strategy_state = nullptr,
    const std::vector<prune::StrategyStateItem>* codec_state = nullptr);

struct IntegrityConfig {
  /// Steps between cross-replica digest votes; 0 disables the monitor.
  std::int64_t check_interval = 0;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// One replica as the monitor sees it: a rank for reporting and the
/// network to digest. Only *live* replicas belong in a vote — a dead
/// replica's state is legitimately stale, not corrupt.
struct ReplicaView {
  int rank = -1;
  graph::Network* net = nullptr;
};

/// What one digest vote found and did.
struct VoteOutcome {
  bool mismatch = false;        ///< at least one replica disagreed
  bool no_quorum = false;       ///< no strict majority — nothing healed
  int healthy_root = -1;        ///< rank state was healed from (-1: none)
  std::vector<int> healed;      ///< minority ranks healed in place
  std::int64_t heal_bytes = 0;  ///< state bytes copied by the heals
  std::int64_t digest_bytes = 0;///< modeled digest-exchange traffic
  std::uint32_t majority_crc = 0;
  std::string detail;           ///< human-readable summary of the split
};

class IntegrityMonitor {
 public:
  /// Heals `victim` by full state copy from `root`; returns bytes copied.
  /// core::PruneTrainer wires dist::ElasticCluster::heal_replica here.
  using HealFn = std::function<std::int64_t(int victim, int root)>;

  explicit IntegrityMonitor(IntegrityConfig cfg);

  const IntegrityConfig& config() const { return cfg_; }

  /// True when a vote is due after `steps_done` completed steps (every
  /// check_interval-th step; never before the first).
  bool due(std::int64_t steps_done) const {
    return cfg_.check_interval > 0 && steps_done > 0 &&
           steps_done % cfg_.check_interval == 0;
  }

  /// Digest + vote + heal over the live replica set. Digests compute on
  /// `ctx`; comparisons require matching topology stamps (a replica whose
  /// stamp differs from the plurality is treated as a minority of its
  /// own). Majority = strictly more than half the replicas agreeing on one
  /// state CRC; each minority replica is healed via `heal` from the first
  /// majority rank. With no strict majority the outcome is flagged
  /// no_quorum and *nothing* is healed — the caller escalates to the
  /// guardian. A single replica (or an empty view) trivially matches.
  VoteOutcome check_replicas(
      const std::vector<ReplicaView>& replicas, exec::ExecContext& ctx,
      const std::vector<prune::StrategyStateItem>* strategy_state,
      const HealFn& heal,
      const std::vector<prune::StrategyStateItem>* codec_state = nullptr);

  // Cumulative statistics, for reports/telemetry/bench.
  std::int64_t checks() const { return checks_; }
  std::int64_t mismatches() const { return mismatches_; }
  std::int64_t heals() const { return heals_; }
  std::int64_t heal_bytes_total() const { return heal_bytes_total_; }
  std::int64_t digest_bytes_total() const { return digest_bytes_total_; }

 private:
  IntegrityConfig cfg_;
  std::int64_t checks_ = 0;
  std::int64_t mismatches_ = 0;
  std::int64_t heals_ = 0;
  std::int64_t heal_bytes_total_ = 0;
  std::int64_t digest_bytes_total_ = 0;
};

/// One retained checkpoint generation and its last scrub verdict.
struct GenerationInfo {
  std::string path;
  std::int64_t epoch = -1;  ///< generation number (the save's epoch counter)
  bool scrubbed = false;    ///< at least one scrub pass has seen this file
  bool valid = false;       ///< last scrub: CRC-32 footer verified
};

/// Retained checkpoint generation chain + background CRC scrubber.
///
/// The trainer registers each numbered save with note_saved(); generations
/// beyond `keep_last_k` are deleted from disk (oldest first) so the chain
/// stays bounded. scrub() re-validates every retained file's CRC-32 footer
/// as a parallel_for on the ExecContext — bit rot or a torn write that
/// happens *after* the save (exactly what the torn-ckpt fault injects) is
/// discovered before recovery needs the file, and the rollback can cascade
/// straight to newest_valid() instead of discovering the damage at load
/// time.
class CheckpointScrubber {
 public:
  /// `keep_last_k` == 0 retains every generation (the historical
  /// behavior). Throws std::invalid_argument when negative.
  explicit CheckpointScrubber(std::int64_t keep_last_k = 0);

  /// Registers a freshly written numbered checkpoint and prunes the chain
  /// to `keep_last_k` generations, deleting evicted files from disk.
  /// Re-registering an existing path resets its scrub verdict (the file
  /// was just rewritten).
  void note_saved(const std::string& path, std::int64_t epoch);

  /// Re-validates the CRC-32 footer of every retained generation, in
  /// parallel on `ctx`. Returns the number of valid generations.
  std::int64_t scrub(exec::ExecContext& ctx);

  /// Newest generation whose last scrub verified ("" when none has).
  std::string newest_valid() const;

  /// Scrub verdict for `path`: nullptr when the path is not a retained
  /// generation (or has never been scrubbed).
  const GenerationInfo* verdict(const std::string& path) const;

  /// Retained generations, oldest first.
  const std::vector<GenerationInfo>& generations() const {
    return generations_;
  }

  std::int64_t keep_last_k() const { return keep_last_k_; }
  std::int64_t scrub_passes() const { return scrub_passes_; }
  std::int64_t evicted() const { return evicted_; }

 private:
  std::int64_t keep_last_k_ = 0;
  std::vector<GenerationInfo> generations_;  ///< oldest first
  std::int64_t scrub_passes_ = 0;
  std::int64_t evicted_ = 0;
};

}  // namespace pt::robust
