#include "robust/recovery.h"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "robust/integrity.h"
#include "telemetry/metrics.h"

namespace pt::robust {

void RecoveryConfig::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("RecoveryConfig: " + what);
  };
  if (max_rollbacks < 0) {
    fail("max_rollbacks must be >= 0 (got " + std::to_string(max_rollbacks) +
         ")");
  }
  if (!(lr_cut > 0.f) || lr_cut > 1.f) {
    fail("lr_cut must lie in (0, 1] (got " + std::to_string(lr_cut) + ")");
  }
  if (!(backoff_base >= 1.0)) {
    fail("backoff_base must be >= 1 (got " + std::to_string(backoff_base) +
         ")");
  }
  if (!(backoff_cap >= 0.0)) {
    fail("backoff_cap must be >= 0 (got " + std::to_string(backoff_cap) + ")");
  }
}

std::vector<std::uint8_t> serialize_report(const RecoveryReport& report) {
  ckpt::ByteWriter w;
  w.put<std::int64_t>(report.rollbacks);
  w.put<std::int64_t>(report.faults_injected);
  w.put<double>(report.backoff_seconds);
  w.put<std::uint8_t>(report.aborted ? 1 : 0);
  w.put_string(report.last_checkpoint);
  w.put<std::uint64_t>(report.events.size());
  for (const HealthEvent& e : report.events) {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(e.type));
    w.put<std::uint8_t>(static_cast<std::uint8_t>(e.severity));
    w.put<std::int64_t>(e.epoch);
    w.put<double>(e.value);
    w.put_string(e.detail);
  }
  return w.take();
}

RecoveryReport deserialize_report(const std::vector<std::uint8_t>& bytes) {
  ckpt::ByteReader r(bytes);
  RecoveryReport report;
  report.rollbacks = r.get<std::int64_t>();
  report.faults_injected = r.get<std::int64_t>();
  report.backoff_seconds = r.get<double>();
  report.aborted = r.get<std::uint8_t>() != 0;
  report.last_checkpoint = r.get_string();
  const auto n = r.get<std::uint64_t>();
  report.events.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    HealthEvent e;
    e.type = static_cast<EventType>(r.get<std::uint8_t>());
    e.severity = static_cast<Severity>(r.get<std::uint8_t>());
    e.epoch = r.get<std::int64_t>();
    e.value = r.get<double>();
    e.detail = r.get_string();
    report.events.push_back(std::move(e));
  }
  return report;
}

std::string find_last_good_checkpoint(const std::string& dir) {
  return find_rollback_target(dir, nullptr).path;
}

RollbackTarget find_rollback_target(const std::string& dir,
                                    const CheckpointScrubber* scrubber) {
  namespace fs = std::filesystem;
  auto loads = [](const std::string& path) {
    try {
      ckpt::Checkpoint::load(path);
      return true;
    } catch (const std::exception&) {
      return false;
    }
  };
  // The scrubber's ledger fast-paths the verdict: a generation it already
  // proved corrupt is skipped without paying a load attempt.
  auto known_corrupt = [&](const std::string& path) {
    if (scrubber == nullptr) return false;
    const GenerationInfo* g = scrubber->verdict(path);
    return g != nullptr && !g->valid;
  };

  RollbackTarget target;
  const fs::path latest = fs::path(dir) / "ckpt-latest.bin";
  if (fs::exists(latest)) {
    if (!known_corrupt(latest.string()) && loads(latest.string())) {
      target.path = latest.string();
      return target;
    }
    ++target.skipped_corrupt;
  }

  // Numbered checkpoints, newest first.
  std::vector<std::pair<std::int64_t, std::string>> numbered;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const std::string prefix = "ckpt-epoch-";
    const std::string suffix = ".bin";
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    try {
      numbered.emplace_back(std::stoll(digits), entry.path().string());
    } catch (const std::exception&) {
      continue;  // not a numbered checkpoint after all
    }
  }
  std::sort(numbered.begin(), numbered.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [epoch, path] : numbered) {
    if (!known_corrupt(path) && loads(path)) {
      target.path = path;
      target.generation = epoch;
      return target;
    }
    ++target.skipped_corrupt;
  }
  target.skipped_corrupt = 0;  // nothing recoverable: the count is moot
  return target;
}

RecoveryPolicy::RecoveryPolicy(RecoveryConfig cfg) : cfg_(cfg) {
  cfg_.validate();
}

RecoveryPolicy::Decision RecoveryPolicy::on_fatal(const HealthEvent& event) {
  (void)event;  // the decision depends only on the budget, not the cause
  Decision d;
  if (rollbacks_ >= cfg_.max_rollbacks) {
    d.action = Decision::Action::kAbort;
    d.attempt = rollbacks_;
    telemetry::event("recovery/abort",
                     "rollback budget exhausted after " +
                         std::to_string(rollbacks_) + " attempts");
    return d;
  }
  ++rollbacks_;
  d.action = Decision::Action::kRollback;
  d.attempt = rollbacks_;
  d.lr_scale = static_cast<float>(
      std::pow(static_cast<double>(cfg_.lr_cut), static_cast<double>(rollbacks_)));
  d.backoff_seconds = std::min(
      std::pow(cfg_.backoff_base, static_cast<double>(rollbacks_ - 1)),
      cfg_.backoff_cap);
  d.skip_reconfig = cfg_.skip_offending_reconfig;
  if (telemetry::enabled()) {
    telemetry::count("recovery/rollbacks");
    telemetry::event("recovery/rollback",
                     "attempt " + std::to_string(d.attempt) + ", lr_scale " +
                         std::to_string(d.lr_scale) + ", backoff " +
                         std::to_string(d.backoff_seconds) + "s");
  }
  return d;
}

}  // namespace pt::robust
