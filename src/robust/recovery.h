// Rollback-to-checkpoint recovery policy (ISSUE 2 tentpole, part b).
//
// When the HealthMonitor raises a fatal event, the RecoveryPolicy decides
// what the trainer does next: roll back to the last good checkpoint (the
// PR 1 crash-safe ckpt API), cut the learning rate by a configurable
// factor, optionally skip the reconfiguration that was replayed into the
// fault, and retry — with capped exponential backoff (modeled, not slept:
// the simulated cluster charges time, it never blocks the process). When
// the rollback budget is exhausted the run aborts gracefully: a final
// *diagnostic* checkpoint of the broken state is written so the failure
// can be examined offline, and TrainingAborted is thrown.
//
// The policy is pure bookkeeping — it never touches the network or the
// filesystem itself; core::PruneTrainer executes its decisions.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "robust/health.h"

namespace pt::robust {

class CheckpointScrubber;  // integrity.h

struct RecoveryConfig {
  std::int64_t max_rollbacks = 3;  ///< retry budget for the whole run
  float lr_cut = 0.5f;             ///< LR multiplier applied per rollback
  double backoff_base = 2.0;       ///< exponential backoff base (>= 1)
  double backoff_cap = 60.0;       ///< modeled wait ceiling, seconds
  /// Suppress the periodic reconfigurations replayed between the rollback
  /// point and the fault epoch, in case the prune itself destabilized the
  /// run. Off by default: with a deterministic retry the usual cause is a
  /// transient (injected) fault, and skipping changes the sparsity schedule.
  bool skip_offending_reconfig = false;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Everything the guardian did during one run, for reporting and tests.
struct RecoveryReport {
  std::int64_t rollbacks = 0;        ///< recoveries performed
  std::int64_t faults_injected = 0;  ///< FaultInjector firings observed
  double backoff_seconds = 0;        ///< total modeled backoff wait
  bool aborted = false;              ///< rollback budget exhausted
  std::string last_checkpoint;       ///< file the last rollback restored
  std::vector<HealthEvent> events;   ///< every event, warnings included
};

/// Byte-serialization of a RecoveryReport, used for the "guardian" section
/// of diagnostic checkpoints (and their offline inspection in tests).
std::vector<std::uint8_t> serialize_report(const RecoveryReport& report);
RecoveryReport deserialize_report(const std::vector<std::uint8_t>& bytes);

/// Thrown by PruneTrainer::run() when recovery gives up; carries the final
/// report (the diagnostic checkpoint holds the same data on disk).
class TrainingAborted : public std::runtime_error {
 public:
  TrainingAborted(const std::string& msg, RecoveryReport report)
      : std::runtime_error(msg), report_(std::move(report)) {}
  const RecoveryReport& report() const { return report_; }

 private:
  RecoveryReport report_;
};

/// Finds the newest checkpoint in `dir` that actually loads (CRC-verified
/// full parse): tries ckpt-latest.bin first, then ckpt-epoch-<N>.bin in
/// descending epoch order. A truncated or bit-flipped file — e.g. one the
/// FaultInjector corrupted — is skipped, so a rollback lands on the last
/// *good* state, not merely the last written file. Returns "" when nothing
/// in the directory is recoverable.
std::string find_last_good_checkpoint(const std::string& dir);

/// What a cascading rollback actually landed on. The old contract — "the
/// newest checkpoint is loadable" — does not survive torn writes or bit
/// rot on the newest file; the target records how far past damaged
/// generations the search had to cascade so the trainer can surface a
/// kCheckpointCascade HealthEvent instead of silently restoring older
/// state.
struct RollbackTarget {
  std::string path;              ///< "" when nothing in `dir` is recoverable
  std::int64_t generation = -1;  ///< epoch number of the file (-1: latest/unknown)
  std::int64_t skipped_corrupt = 0;  ///< newer files skipped as unloadable
};

/// find_last_good_checkpoint with provenance: walks ckpt-latest.bin, then
/// ckpt-epoch-<N>.bin in descending epoch order, counting every newer file
/// that failed to load (torn, truncated, bit-flipped). When `scrubber` is
/// non-null, files the scrubber already proved corrupt are skipped without
/// paying a load attempt — the generation chain's ledger fast-paths the
/// cascade.
RollbackTarget find_rollback_target(const std::string& dir,
                                    const CheckpointScrubber* scrubber);

class RecoveryPolicy {
 public:
  struct Decision {
    enum class Action { kRollback, kAbort };
    Action action = Action::kRollback;
    /// Cumulative recovery LR multiplier for the retry (lr_cut^attempt).
    float lr_scale = 1.f;
    /// Modeled wait before the retry: min(base^(attempt-1), cap) seconds.
    double backoff_seconds = 0;
    std::int64_t attempt = 0;  ///< 1-based rollback count, this one included
    bool skip_reconfig = false;
    /// Filled in by the trainer once the rollback target is resolved: the
    /// checkpoint actually restored, its generation number, and how many
    /// newer (corrupt) generations the search cascaded past.
    std::string checkpoint;
    std::int64_t generation = -1;
    std::int64_t cascaded_past = 0;
  };

  explicit RecoveryPolicy(RecoveryConfig cfg);

  /// Decides the response to one fatal event. Each kRollback consumes one
  /// unit of the budget; once `max_rollbacks` are spent the answer is
  /// kAbort (idempotent thereafter).
  Decision on_fatal(const HealthEvent& event);

  std::int64_t rollbacks() const { return rollbacks_; }
  const RecoveryConfig& config() const { return cfg_; }

 private:
  RecoveryConfig cfg_;
  std::int64_t rollbacks_ = 0;
};

}  // namespace pt::robust
