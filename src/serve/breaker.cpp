#include "serve/breaker.h"

#include <stdexcept>

#include "telemetry/metrics.h"

namespace pt::serve {

void GenerationHealthConfig::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("GenerationHealthConfig: " + what);
  };
  if (window < 1) {
    fail("window must be >= 1 (got " + std::to_string(window) + ")");
  }
  if (max_shed_rate > 1.0) {
    fail("max_shed_rate must be <= 1 (got " + std::to_string(max_shed_rate) +
         ")");
  }
  if (min_shed_samples < 1) {
    fail("min_shed_samples must be >= 1 (got " +
         std::to_string(min_shed_samples) + ")");
  }
  if (probation_ticks < 0) {
    fail("probation_ticks must be >= 0 (got " +
         std::to_string(probation_ticks) + ")");
  }
}

GenerationHealth::GenerationHealth(GenerationHealthConfig cfg) : cfg_(cfg) {
  cfg_.validate();
}

void GenerationHealth::reset() {
  nan_ticks_.clear();
  misses_.clear();
  arrivals_.clear();
}

void GenerationHealth::prune(Tick now) {
  const Tick horizon = now - cfg_.window;
  while (!nan_ticks_.empty() && nan_ticks_.front() <= horizon) {
    nan_ticks_.pop_front();
  }
  while (!misses_.empty() && misses_.front().first <= horizon) {
    misses_.pop_front();
  }
  while (!arrivals_.empty() && arrivals_.front().first <= horizon) {
    arrivals_.pop_front();
  }
}

void GenerationHealth::record_batch(Tick now, bool nan_output,
                                    std::int64_t modeled_misses) {
  if (nan_output) {
    nan_ticks_.push_back(now);
    ++nan_total_;
  }
  if (modeled_misses > 0) {
    misses_.emplace_back(now, modeled_misses);
    miss_total_ += modeled_misses;
  }
}

void GenerationHealth::record_arrival(Tick now, bool shed) {
  arrivals_.emplace_back(now, shed);
}

const char* GenerationHealth::breach(Tick now) {
  prune(now);
  if (cfg_.max_nan_batches >= 0 &&
      static_cast<std::int64_t>(nan_ticks_.size()) > cfg_.max_nan_batches) {
    return "nan-output";
  }
  if (cfg_.max_deadline_misses >= 0) {
    std::int64_t misses = 0;
    for (const auto& [tick, n] : misses_) {
      (void)tick;
      misses += n;
    }
    if (misses > cfg_.max_deadline_misses) return "deadline-miss";
  }
  if (cfg_.max_shed_rate >= 0 &&
      static_cast<std::int64_t>(arrivals_.size()) >= cfg_.min_shed_samples) {
    std::int64_t shed = 0;
    for (const auto& [tick, was_shed] : arrivals_) {
      (void)tick;
      shed += was_shed ? 1 : 0;
    }
    const double rate = static_cast<double>(shed) /
                        static_cast<double>(arrivals_.size());
    if (rate > cfg_.max_shed_rate) return "shed-rate";
  }
  return nullptr;
}

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

void BreakerConfig::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("BreakerConfig: " + what);
  };
  if (failure_threshold < 1) {
    fail("failure_threshold must be >= 1 (got " +
         std::to_string(failure_threshold) + ")");
  }
  if (open_ticks < 1) {
    fail("open_ticks must be >= 1 (got " + std::to_string(open_ticks) + ")");
  }
  if (half_open_probes < 1) {
    fail("half_open_probes must be >= 1 (got " +
         std::to_string(half_open_probes) + ")");
  }
  if (close_after < 1) {
    fail("close_after must be >= 1 (got " + std::to_string(close_after) + ")");
  }
}

CircuitBreaker::CircuitBreaker(BreakerConfig cfg) : cfg_(cfg) {
  cfg_.validate();
}

void CircuitBreaker::transition(Tick now, BreakerState to,
                                const std::string& why) {
  transitions_.push_back({now, state_, to, why});
  telemetry::event("serve/breaker", std::string(to_string(state_)) + " -> " +
                                        to_string(to) + " @ tick " +
                                        std::to_string(now) + " (" + why +
                                        ")");
  state_ = to;
}

CircuitBreaker::Admission CircuitBreaker::admit(Tick now) {
  if (state_ == BreakerState::kOpen) {
    if (now >= opened_at_ + cfg_.open_ticks) {
      probes_admitted_ = 0;
      probe_successes_ = 0;
      transition(now, BreakerState::kHalfOpen, "cooldown elapsed");
    } else {
      return Admission::kShed;
    }
  }
  if (state_ == BreakerState::kHalfOpen) {
    if (probes_admitted_ < cfg_.half_open_probes) {
      ++probes_admitted_;
      return Admission::kProbe;
    }
    return Admission::kShed;
  }
  return Admission::kAdmit;
}

void CircuitBreaker::on_batch(Tick now, bool healthy) {
  if (state_ == BreakerState::kClosed) {
    if (healthy) {
      consecutive_failures_ = 0;
      return;
    }
    if (++consecutive_failures_ >= cfg_.failure_threshold) {
      opened_at_ = now;
      transition(now, BreakerState::kOpen,
                 std::to_string(consecutive_failures_) +
                     " consecutive unhealthy batches");
    }
    return;
  }
  if (state_ == BreakerState::kHalfOpen) {
    if (!healthy) {
      consecutive_failures_ = 0;
      opened_at_ = now;
      transition(now, BreakerState::kOpen, "probe batch unhealthy");
      return;
    }
    if (++probe_successes_ >= cfg_.close_after) {
      consecutive_failures_ = 0;
      transition(now, BreakerState::kClosed, "probe batches healthy");
    }
    return;
  }
  // kOpen: batches admitted before the trip may still complete; they say
  // nothing about recovery, so they do not move the state.
}

void CircuitBreaker::reset(Tick now, const std::string& why) {
  if (state_ != BreakerState::kClosed) {
    transition(now, BreakerState::kClosed, why);
  }
  consecutive_failures_ = 0;
  probes_admitted_ = 0;
  probe_successes_ = 0;
}

}  // namespace pt::serve
