// Post-swap runtime guards (ISSUE 10 tentpole, part 2): the per-model
// GenerationHealth monitor that indicts a freshly swapped generation, and
// the per-model CircuitBreaker that stops queueing traffic onto a
// known-bad model.
//
// The canary gate (canary.h) screens a candidate *before* publish; these
// guards watch it *after*. GenerationHealth keeps sliding-window counters
// on the modeled clock — batches with non-finite logits, modeled deadline
// misses, and shed arrivals — and reports a breach when a configured
// threshold is exceeded. The runtime answers a breach with automatic
// rollback to the previous pinned generation (see server.h: the rollback
// target is held resident through a probation window, so rollback is a
// LeaseTable epoch bump — zero-drop by construction, nothing in flight is
// cancelled).
//
// Determinism: every input to these guards is worker-count-invariant.
// NaN-output verdicts are payload facts (bitwise identical at any worker /
// thread count), sheds happen at admission (worker-independent), and the
// deadline-miss counter deliberately uses the *modeled serial* completion
// estimate (formation tick + modeled service ticks) rather than the actual
// worker-assigned completion — the same choice the mailbox admission
// estimate makes — so breaches, rollbacks, and breaker transitions land on
// the same tick under 1 worker or N.
//
// The breaker is the classic closed -> open -> half-open machine:
//   closed:    everything admitted; `failure_threshold` consecutive
//              unhealthy batches open it.
//   open:      arrivals shed with ShedReason::kCircuitOpen (structural:
//              already-admitted requests still serve — zero-drop holds).
//              After `open_ticks` of modeled cooldown the next arrival
//              moves it to half-open.
//   half-open: the first `half_open_probes` arrivals are admitted as
//              probes, the rest shed. `close_after` healthy probe batches
//              close it; one unhealthy batch reopens it.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "serve/request.h"

namespace pt::serve {

struct GenerationHealthConfig {
  /// Sliding-window length in modeled ticks for all counters.
  Tick window = 64;
  /// Breach when windowed batches with non-finite logits exceed this;
  /// -1 disables. Default 0: a single NaN batch indicts the generation.
  std::int64_t max_nan_batches = 0;
  /// Breach when windowed modeled deadline misses (serial estimate, see
  /// header comment) exceed this; -1 disables (legitimate overload also
  /// misses deadlines — opt in when a generation is the suspect).
  std::int64_t max_deadline_misses = -1;
  /// Breach when windowed shed fraction exceeds this; < 0 disables.
  double max_shed_rate = -1.0;
  /// Arrivals required in the window before the shed-rate check arms.
  std::int64_t min_shed_samples = 8;
  /// Rollback window after a swap: how long the superseded version stays
  /// pinned as the rollback target (it retires afterwards). 0 disables
  /// probation (no rollback target is ever held).
  Tick probation_ticks = 512;
  /// Roll back automatically on breach while a probation pin is held.
  bool auto_rollback = true;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Windowed health counters for the generation a tenant currently serves.
/// reset() on every swap/rollback: a new generation starts clean.
class GenerationHealth {
 public:
  explicit GenerationHealth(GenerationHealthConfig cfg);

  void reset();
  void record_batch(Tick now, bool nan_output, std::int64_t modeled_misses);
  void record_arrival(Tick now, bool shed);

  /// Breach verdict at `now` (window pruned first): nullptr when healthy,
  /// else the counter that tripped ("nan-output" | "deadline-miss" |
  /// "shed-rate").
  const char* breach(Tick now);

  std::int64_t nan_batches() const { return nan_total_; }
  std::int64_t modeled_misses() const { return miss_total_; }

 private:
  void prune(Tick now);

  GenerationHealthConfig cfg_;
  std::deque<Tick> nan_ticks_;                        ///< NaN-output batches
  std::deque<std::pair<Tick, std::int64_t>> misses_;  ///< per-batch misses
  std::deque<std::pair<Tick, bool>> arrivals_;        ///< (tick, shed)
  std::int64_t nan_total_ = 0;   ///< lifetime, across resets
  std::int64_t miss_total_ = 0;  ///< lifetime, across resets
};

enum class BreakerState : std::uint8_t {
  kClosed = 0,
  kOpen = 1,
  kHalfOpen = 2,
};

const char* to_string(BreakerState state);

struct BreakerConfig {
  bool enabled = true;
  /// Consecutive unhealthy batches that open a closed breaker.
  std::int64_t failure_threshold = 2;
  /// Modeled cooldown ticks before an open breaker admits probes.
  Tick open_ticks = 64;
  /// Arrivals admitted per half-open round; the rest shed kCircuitOpen.
  std::int64_t half_open_probes = 2;
  /// Healthy probe batches required to close from half-open.
  std::int64_t close_after = 1;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// One recorded state change, on the modeled clock.
struct BreakerTransition {
  Tick tick = 0;
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
  std::string why;
};

class CircuitBreaker {
 public:
  /// What admission control should do with an arrival.
  enum class Admission : std::uint8_t {
    kAdmit = 0,  ///< breaker closed — normal admission
    kProbe = 1,  ///< half-open probe — admit, its batch decides the state
    kShed = 2,   ///< open (or probe budget spent) — shed kCircuitOpen
  };

  explicit CircuitBreaker(BreakerConfig cfg);

  BreakerState state() const { return state_; }

  /// Admission verdict for an arrival at `now`. May transition
  /// open -> half-open when the cooldown has elapsed.
  Admission admit(Tick now);

  /// Outcome of a served batch (healthy = all logits finite). Drives
  /// closed -> open and half-open -> closed/open transitions.
  void on_batch(Tick now, bool healthy);

  /// Back to closed with counters cleared — called on swap/rollback, when
  /// the model behind the breaker is no longer the one that tripped it.
  void reset(Tick now, const std::string& why);

  const std::vector<BreakerTransition>& transitions() const {
    return transitions_;
  }

 private:
  void transition(Tick now, BreakerState to, const std::string& why);

  BreakerConfig cfg_;
  BreakerState state_ = BreakerState::kClosed;
  std::int64_t consecutive_failures_ = 0;
  Tick opened_at_ = 0;
  std::int64_t probes_admitted_ = 0;
  std::int64_t probe_successes_ = 0;
  std::vector<BreakerTransition> transitions_;
};

}  // namespace pt::serve
