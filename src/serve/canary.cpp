#include "serve/canary.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "telemetry/metrics.h"
#include "util/rng.h"

namespace pt::serve {

void CanaryConfig::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("CanaryConfig: " + what);
  };
  if (probes < 1) {
    fail("probes must be >= 1 (got " + std::to_string(probes) + ")");
  }
  if (!(max_disagreement >= 0.0 && max_disagreement <= 1.0)) {
    fail("max_disagreement must lie in [0, 1] (got " +
         std::to_string(max_disagreement) + ")");
  }
}

const char* to_string(CanaryOutcome outcome) {
  switch (outcome) {
    case CanaryOutcome::kAccepted: return "accepted";
    case CanaryOutcome::kNonFiniteOutput: return "non-finite-output";
    case CanaryOutcome::kDisagreement: return "disagreement";
    case CanaryOutcome::kLatencyRegression: return "latency-regression";
    case CanaryOutcome::kSkipped: return "skipped";
  }
  return "?";
}

CanaryGate::CanaryGate(CanaryConfig cfg) : cfg_(cfg) { cfg_.validate(); }

namespace {

/// Per-row argmaxes of a [n, classes] logits tensor.
std::vector<std::int64_t> row_argmax(const Tensor& logits) {
  const std::int64_t n = logits.shape()[0];
  const std::int64_t classes = logits.shape()[1];
  std::vector<std::int64_t> out(static_cast<std::size_t>(n), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * classes;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < classes; ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

}  // namespace

CanaryReport CanaryGate::evaluate(ModelVersion& candidate,
                                  ModelVersion* incumbent, const Shape& input,
                                  exec::ExecContext& ctx) const {
  CanaryReport rep;
  if (!cfg_.enabled) {
    rep.detail = "gate disabled";
    return rep;
  }
  telemetry::ScopedTimer span("serve/canary");
  telemetry::count("serve/canary_evaluations");
  rep.probes = cfg_.probes;

  // Deterministic probe set: [probes, C, H, W], a pure function of the
  // seed and the tenant's input shape.
  std::vector<std::int64_t> dims;
  dims.push_back(cfg_.probes);
  for (std::int64_t d = 0; d < input.rank(); ++d) dims.push_back(input[d]);
  Rng rng(cfg_.probe_seed);
  const Tensor probes = Tensor::randn(Shape(dims), rng);

  const Tensor logits = candidate.net.forward(ctx, probes, false);
  if (logits.shape().rank() != 2 || logits.shape()[0] != cfg_.probes) {
    throw std::runtime_error("canary: unexpected probe output shape " +
                             logits.shape().to_string());
  }

  // 1. Finite-logit check: always on. A single NaN/Inf anywhere in the
  // probe outputs is disqualifying — this is the poison-ckpt detector.
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    if (!std::isfinite(logits.data()[i])) {
      rep.outcome = CanaryOutcome::kNonFiniteOutput;
      rep.detail = "probe logit " + std::to_string(i) + " is non-finite";
      return rep;
    }
  }

  if (incumbent != nullptr) {
    // 2. Reference disagreement against the incumbent on the same probes.
    const Tensor ref = incumbent->net.forward(ctx, probes, false);
    if (ref.shape() == logits.shape()) {
      const auto got = row_argmax(logits);
      const auto want = row_argmax(ref);
      for (std::size_t i = 0; i < got.size(); ++i) {
        rep.disagreements += got[i] != want[i] ? 1 : 0;
      }
      rep.disagreement = static_cast<double>(rep.disagreements) /
                         static_cast<double>(cfg_.probes);
      if (rep.disagreement > cfg_.max_disagreement) {
        std::ostringstream os;
        os << rep.disagreements << "/" << cfg_.probes
           << " probe argmaxes disagree with the incumbent (budget "
           << cfg_.max_disagreement << ")";
        rep.outcome = CanaryOutcome::kDisagreement;
        rep.detail = os.str();
        return rep;
      }
    }
    // 3. Modeled-latency regression budget.
    const Tick base = std::max<Tick>(1, incumbent->service_ticks_per_batch);
    rep.latency_ratio =
        static_cast<double>(candidate.service_ticks_per_batch) /
        static_cast<double>(base);
    if (cfg_.max_latency_ratio > 0 &&
        rep.latency_ratio > cfg_.max_latency_ratio) {
      std::ostringstream os;
      os << "modeled service " << candidate.service_ticks_per_batch
         << " ticks vs incumbent " << base << " (ratio " << rep.latency_ratio
         << " > budget " << cfg_.max_latency_ratio << ")";
      rep.outcome = CanaryOutcome::kLatencyRegression;
      rep.detail = os.str();
      return rep;
    }
  }

  rep.outcome = CanaryOutcome::kAccepted;
  rep.detail = incumbent ? "accepted against incumbent reference"
                         : "accepted (no incumbent; finite-logit check only)";
  return rep;
}

}  // namespace pt::serve
