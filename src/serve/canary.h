// CanaryGate: shadow-execution validation of a candidate generation
// before the registry swaps it into the LeaseTable (ISSUE 10 tentpole,
// part 1).
//
// The CRC scrub (robust::CheckpointScrubber) proves the *bytes* of a
// checkpoint survived the disk; it proves nothing about the *numbers*
// inside. A generation whose classifier head was silently corrupted — the
// poison-ckpt fault models exactly this — carries a perfectly valid CRC-32
// footer and produces garbage on every request. The canary gate closes
// that gap the way production serving systems do: before a publish, the
// candidate shadow-executes a deterministic probe set (a fixed-seed randn
// batch, a pure function of CanaryConfig::probe_seed and the tenant's
// input shape) and is rejected + quarantined when
//
//   1. any probe logit is non-finite (always on — the universal check),
//   2. its probe argmaxes disagree with the incumbent's reference
//      argmaxes on more than `max_disagreement` of the probes (opt-in:
//      successive PruneTrain generations legitimately move decisions, so
//      the default threshold 1.0 never rejects), or
//   3. its modeled batch service ticks exceed `max_latency_ratio` x the
//      incumbent's (opt-in: a latency-regression budget on the modeled
//      clock; <= 0 disables).
//
// Everything is deterministic: the probe inputs are seeded, both forward
// passes run on the shared exec context (bitwise thread-invariant, PR 4),
// and the latency comparison is pure arithmetic on modeled ticks — so a
// rejection lands on the same poll tick in every replay.
#pragma once

#include <cstdint>
#include <string>

#include "exec/context.h"
#include "serve/lease.h"

namespace pt::serve {

struct CanaryConfig {
  bool enabled = true;
  std::int64_t probes = 8;            ///< probe samples per evaluation
  std::uint64_t probe_seed = 0xca9a;  ///< probe inputs are a pure fn of this
  /// Max fraction of probes whose argmax may differ from the incumbent's
  /// reference before rejection; 1.0 disables the check.
  double max_disagreement = 1.0;
  /// Max candidate/incumbent modeled-service-tick ratio; <= 0 disables.
  double max_latency_ratio = 0.0;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

enum class CanaryOutcome : std::uint8_t {
  kAccepted = 0,
  kNonFiniteOutput = 1,    ///< a probe logit is NaN/Inf
  kDisagreement = 2,       ///< too many reference-argmax mismatches
  kLatencyRegression = 3,  ///< modeled service ticks beyond the budget
  kSkipped = 4,            ///< gate disabled; candidate passes unexamined
};

const char* to_string(CanaryOutcome outcome);

/// What one canary evaluation saw. Carried on the SwapRecord of an
/// accepted publish and on the QuarantineRecord of a rejected one.
struct CanaryReport {
  CanaryOutcome outcome = CanaryOutcome::kSkipped;
  std::int64_t probes = 0;         ///< probe samples executed
  std::int64_t disagreements = 0;  ///< probes whose argmax differed
  double disagreement = 0;         ///< disagreements / probes
  double latency_ratio = 0;        ///< candidate/incumbent service ticks
  std::string detail;              ///< human-readable verdict

  bool accepted() const {
    return outcome == CanaryOutcome::kAccepted ||
           outcome == CanaryOutcome::kSkipped;
  }
};

class CanaryGate {
 public:
  explicit CanaryGate(CanaryConfig cfg);

  const CanaryConfig& config() const { return cfg_; }

  /// Shadow-executes the probe set against `candidate` (and, when
  /// non-null, `incumbent` for the reference argmaxes / latency baseline).
  /// `input` is the tenant's per-sample input shape. The networks are
  /// non-const only because forward() caches activations; weights are
  /// never touched.
  CanaryReport evaluate(ModelVersion& candidate, ModelVersion* incumbent,
                        const Shape& input, exec::ExecContext& ctx) const;

 private:
  CanaryConfig cfg_;
};

}  // namespace pt::serve
