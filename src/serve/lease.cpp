#include "serve/lease.h"

#include <algorithm>
#include <stdexcept>

#include "telemetry/metrics.h"

namespace pt::serve {

Tick ModelVersion::service_ticks(std::int64_t n, std::int64_t max_batch) const {
  if (n <= 0) return 0;
  const std::int64_t mb = std::max<std::int64_t>(1, max_batch);
  const Tick full = std::max<Tick>(1, service_ticks_per_batch);
  // Linear interpolation of the full-batch cost, rounded up, floor 1.
  return std::max<Tick>(1, (full * n + mb - 1) / mb);
}

std::int64_t LeaseTable::publish(const std::string& model,
                                 std::shared_ptr<ModelVersion> version) {
  if (!version) {
    throw std::invalid_argument("LeaseTable::publish: null version");
  }
  auto it = current_.find(model);
  const std::int64_t next_epoch =
      it == current_.end() ? 0 : it->second->lease_epoch + 1;
  version->model = model;
  version->lease_epoch = next_epoch;
  if (it == current_.end()) {
    order_.push_back(model);
    current_.emplace(model, std::move(version));
  } else {
    watch_.push_back(std::move(it->second));
    it->second = std::move(version);
  }
  ++publishes_;
  telemetry::count("serve/publishes");
  return next_epoch;
}

std::int64_t LeaseTable::rollback(const std::string& model,
                                  std::shared_ptr<ModelVersion> version) {
  if (!version) {
    throw std::invalid_argument("LeaseTable::rollback: null version");
  }
  auto it = current_.find(model);
  if (it == current_.end()) {
    throw std::logic_error("LeaseTable::rollback: unknown model '" + model +
                           "'");
  }
  if (it->second == version) {
    throw std::logic_error("LeaseTable::rollback: '" + model +
                           "' already serves that version");
  }
  const std::int64_t next_epoch = it->second->lease_epoch + 1;
  // The restored version is current again: off the retirement watch list.
  watch_.erase(std::remove(watch_.begin(), watch_.end(), version),
               watch_.end());
  version->model = model;
  version->lease_epoch = next_epoch;
  watch_.push_back(std::move(it->second));
  it->second = std::move(version);
  ++rollbacks_;
  telemetry::count("serve/rollbacks");
  return next_epoch;
}

std::shared_ptr<ModelVersion> LeaseTable::acquire(
    const std::string& model) const {
  auto it = current_.find(model);
  return it == current_.end() ? nullptr : it->second;
}

std::int64_t LeaseTable::epoch(const std::string& model) const {
  auto it = current_.find(model);
  return it == current_.end() ? -1 : it->second->lease_epoch;
}

bool LeaseTable::has(const std::string& model) const {
  return current_.count(model) > 0;
}

std::vector<std::string> LeaseTable::models() const { return order_; }

std::int64_t LeaseTable::sweep_retired() {
  std::int64_t swept = 0;
  auto it = watch_.begin();
  while (it != watch_.end()) {
    if (it->use_count() == 1) {  // only the watch list holds it
      telemetry::event("serve/lease_retired",
                       (*it)->model + " epoch " +
                           std::to_string((*it)->lease_epoch) + " generation " +
                           std::to_string((*it)->generation));
      it = watch_.erase(it);
      ++swept;
    } else {
      ++it;
    }
  }
  retired_ += swept;
  return swept;
}

}  // namespace pt::serve
