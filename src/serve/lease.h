// Lease-based worker assignment: the hot-swap mechanism.
//
// A ModelVersion is one immutable-by-convention materialized inference
// model (weights + modeled cost). The LeaseTable maps each tenant to its
// *current* version under a monotonically increasing lease epoch. Batch
// formation pins the current version into the batch (a shared_ptr
// acquire); publishing a new version bumps the epoch so later formations
// see the new weights — in-flight batches keep serving on the old version
// until their pins release, which is exactly the zero-drop hot-swap
// protocol: nothing is cancelled, nothing waits, the epoch boundary simply
// separates old-lease batches from new-lease batches.
//
// Retirement is observable: when the last pin of a superseded version
// drops, the table reports it (serve/lease_retired telemetry), proving old
// weights do not leak across swaps.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/network.h"
#include "prune/materialize.h"
#include "serve/request.h"

namespace pt::serve {

/// One published, materialized inference model.
struct ModelVersion {
  std::string model;
  std::int64_t generation = -1;   ///< checkpoint generation (-1 = direct)
  std::int64_t lease_epoch = -1;  ///< assigned by LeaseTable::publish
  graph::Network net;             ///< inference form (union or gating)
  prune::MaterializeStats materialized;
  double inference_flops = 0;       ///< per sample (cost::FlopsModel)
  Tick service_ticks_per_batch = 1; ///< modeled full-batch service time

  /// Modeled worker time for a batch of `n` samples: linear in n, >= 1.
  Tick service_ticks(std::int64_t n, std::int64_t max_batch) const;
};

class LeaseTable {
 public:
  /// Publishes `version` as `model`'s current weights and returns the new
  /// lease epoch (starts at 0 per tenant, +1 per publish). The previous
  /// version, if any, is moved to the retirement watch list.
  std::int64_t publish(const std::string& model,
                       std::shared_ptr<ModelVersion> version);

  /// Pins the current version (nullptr when the tenant has none yet).
  /// Weights are immutable after publish; the pointer is non-const only
  /// because Network::forward caches activations in the network object.
  std::shared_ptr<ModelVersion> acquire(const std::string& model) const;

  /// Rolls `model` back to `version` — a previously superseded
  /// ModelVersion (typically the runtime's probation pin) — under a fresh
  /// lease epoch, and returns that epoch. The version leaves the
  /// retirement watch list (it is current again, not retiring) and the
  /// displaced bad version takes its place there. Zero-drop by
  /// construction, exactly like publish(): only the epoch boundary moves,
  /// in-flight pins are untouched, and the restored weights are the same
  /// object the old epoch served — so post-rollback responses are bitwise
  /// what a run that never published the bad generation produces.
  std::int64_t rollback(const std::string& model,
                        std::shared_ptr<ModelVersion> version);

  /// Current lease epoch of `model` (-1 before the first publish).
  std::int64_t epoch(const std::string& model) const;

  bool has(const std::string& model) const;
  std::vector<std::string> models() const;  ///< registration order

  /// Sweeps the retirement watch list: versions whose last external pin has
  /// dropped are counted as retired (and reported via telemetry events).
  /// Returns how many retired during this sweep.
  std::int64_t sweep_retired();

  std::int64_t publishes() const { return publishes_; }
  std::int64_t rollbacks() const { return rollbacks_; }
  std::int64_t retired() const { return retired_; }
  /// Superseded versions still pinned by in-flight batches.
  std::int64_t pending_retirement() const {
    return static_cast<std::int64_t>(watch_.size());
  }

 private:
  std::map<std::string, std::shared_ptr<ModelVersion>> current_;
  std::vector<std::string> order_;                 ///< registration order
  std::vector<std::shared_ptr<ModelVersion>> watch_;  ///< superseded versions
  std::int64_t publishes_ = 0;
  std::int64_t rollbacks_ = 0;
  std::int64_t retired_ = 0;
};

}  // namespace pt::serve
