#include "serve/mailbox.h"

#include <algorithm>
#include <stdexcept>

#include "telemetry/metrics.h"

namespace pt::serve {

Mailbox::Mailbox(std::string model, MailboxPolicy policy)
    : model_(std::move(model)), policy_(policy) {
  if (model_.empty()) {
    throw std::invalid_argument("Mailbox: empty model name");
  }
  if (policy_.max_batch <= 0) {
    throw std::invalid_argument("Mailbox: max_batch must be >= 1");
  }
  if (policy_.batch_service_ticks <= 0) {
    throw std::invalid_argument("Mailbox: batch_service_ticks must be >= 1");
  }
}

void Mailbox::set_batch_service_ticks(Tick t) {
  if (t <= 0) {
    throw std::invalid_argument("Mailbox: batch_service_ticks must be >= 1");
  }
  policy_.batch_service_ticks = t;
}

ShedReason Mailbox::offer(const Request& r, Tick now) {
  if (r.model != model_) {
    throw std::invalid_argument("Mailbox '" + model_ +
                                "': request for model '" + r.model + "'");
  }
  if (r.arrival < last_arrival_) {
    throw std::invalid_argument(
        "Mailbox '" + model_ + "': arrival tick regression (" +
        std::to_string(r.arrival) + " after " + std::to_string(last_arrival_) +
        ")");
  }
  last_arrival_ = r.arrival;
  if (policy_.max_queue > 0 && size() >= policy_.max_queue) {
    ++shed_queue_full_;
    telemetry::count("serve/shed_queue_full");
    return ShedReason::kQueueFull;
  }
  if (policy_.shed_on_infeasible && now + modeled_wait() > r.deadline) {
    ++shed_infeasible_;
    telemetry::count("serve/shed_infeasible");
    return ShedReason::kInfeasibleDeadline;
  }
  queue_.push_back(r);
  ++admitted_;
  telemetry::count("serve/admitted");
  return ShedReason::kNone;
}

Tick Mailbox::oldest_deadline() const {
  Tick best = queue_.front().deadline;
  for (const Request& r : queue_) best = std::min(best, r.deadline);
  return best;
}

Tick Mailbox::modeled_wait() const {
  const std::int64_t depth = size() + 1;  // the candidate itself
  const std::int64_t batches =
      (depth + policy_.max_batch - 1) / policy_.max_batch;
  return batches * policy_.batch_service_ticks;
}

std::vector<Request> Mailbox::pop_batch() {
  std::vector<Request> out;
  if (queue_.empty()) return out;
  // Indices in dispatch order: (deadline, arrival position).
  std::vector<std::size_t> order(queue_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return queue_[a].deadline < queue_[b].deadline;
                   });
  // By value: the pivot request is moved out on the first loop iteration,
  // which would gut a reference into its tensor's shape.
  const Shape shape = queue_[order.front()].input.shape();
  std::vector<bool> taken(queue_.size(), false);
  for (std::size_t idx : order) {
    if (static_cast<std::int64_t>(out.size()) >= policy_.max_batch) break;
    if (queue_[idx].input.shape() != shape) continue;
    taken[idx] = true;
    out.push_back(std::move(queue_[idx]));
  }
  std::vector<Request> rest;
  rest.reserve(queue_.size() - out.size());
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (!taken[i]) rest.push_back(std::move(queue_[i]));
  }
  queue_ = std::move(rest);
  popped_ += static_cast<std::int64_t>(out.size());
  return out;
}

}  // namespace pt::serve
