// Per-model mailbox: the bounded request queue one tenant's traffic lands
// in, plus the admission-control policy that guards it.
//
// Contract:
//  - Arrival ticks are monotone: push() throws if a request arrives with a
//    tick earlier than its predecessor's (the trace is the time base; a
//    regression means the driver is broken, not the traffic).
//  - Admission is the ONLY place a request can be rejected. Once admitted,
//    a request is guaranteed exactly one non-shed response — the zero-drop
//    invariant the hot-swap acceptance test measures.
//  - Rejection is structured: kQueueFull when the depth bound is hit,
//    kInfeasibleDeadline when the modeled completion estimate (a
//    single-worker serial-service model — deliberately independent of
//    actual worker availability, so shed decisions are part of the
//    determinism contract) exceeds the request's deadline.
//  - Dispatch order is oldest-deadline-first with arrival order as the tie
//    break; pop_batch() additionally groups identical input shapes so
//    batches are padding-free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.h"

namespace pt::serve {

/// Admission + batching policy of one mailbox.
struct MailboxPolicy {
  std::int64_t max_queue = 64;  ///< depth bound; <= 0 means unbounded
  std::int64_t max_batch = 8;   ///< largest batch pop_batch() forms
  /// Modeled ticks to serve one full batch of `max_batch` samples on one
  /// worker — the unit of the serial-service wait estimate. Updated by the
  /// runtime whenever a new model version is published (a pruned model
  /// serves faster, so admission loosens after a swap).
  Tick batch_service_ticks = 1;
  /// Reject requests whose modeled completion estimate exceeds their
  /// deadline. Off = deadline misses are served late instead of shed.
  /// (Named distinctly from the Mailbox::shed_infeasible_count() stat.)
  bool shed_on_infeasible = true;
};

class Mailbox {
 public:
  explicit Mailbox(std::string model, MailboxPolicy policy);

  const std::string& model() const { return model_; }
  const MailboxPolicy& policy() const { return policy_; }
  void set_batch_service_ticks(Tick t);

  /// Admission control at modeled tick `now`. Returns kNone and enqueues,
  /// or the structured shed reason (request not enqueued). Throws
  /// std::invalid_argument on an arrival-tick regression or a model
  /// mismatch.
  ShedReason offer(const Request& r, Tick now);

  std::int64_t size() const { return static_cast<std::int64_t>(queue_.size()); }
  bool empty() const { return queue_.empty(); }

  /// Earliest deadline among queued requests; undefined when empty().
  Tick oldest_deadline() const;

  /// Modeled ticks until a request admitted *now* would complete, assuming
  /// one worker serves this mailbox alone in full batches: ceil((depth+1) /
  /// max_batch) * batch_service_ticks. Conservative under multiple workers
  /// and exact under one — and independent of execution state by design.
  Tick modeled_wait() const;

  /// Removes and returns the next batch: the oldest-deadline request plus
  /// up to max_batch-1 more in deadline order whose input shapes match it
  /// exactly (padding-free). Requests with other shapes keep their place.
  /// Empty result iff empty().
  std::vector<Request> pop_batch();

  // Cumulative statistics.
  std::int64_t admitted() const { return admitted_; }
  std::int64_t shed_queue_full() const { return shed_queue_full_; }
  std::int64_t shed_infeasible_count() const { return shed_infeasible_; }
  std::int64_t popped() const { return popped_; }

 private:
  std::string model_;
  MailboxPolicy policy_;
  std::vector<Request> queue_;  ///< arrival order; dispatch scans deadlines
  Tick last_arrival_ = -1;
  std::int64_t admitted_ = 0;
  std::int64_t shed_queue_full_ = 0;
  std::int64_t shed_infeasible_ = 0;
  std::int64_t popped_ = 0;
};

}  // namespace pt::serve
