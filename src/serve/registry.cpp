#include "serve/registry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ckpt/checkpoint.h"
#include "cost/flops.h"
#include "telemetry/metrics.h"
#include "util/logging.h"

namespace pt::serve {

void RegistryConfig::validate() const {
  if (flops_per_tick <= 0) {
    throw std::invalid_argument("RegistryConfig: flops_per_tick must be > 0");
  }
  if (max_batch <= 0) {
    throw std::invalid_argument("RegistryConfig: max_batch must be >= 1");
  }
  canary.validate();
}

ModelRegistry::ModelRegistry(RegistryConfig cfg)
    : cfg_(cfg), gate_(cfg.canary) {
  cfg_.validate();
}

void ModelRegistry::add_model(const std::string& name,
                              const std::string& checkpoint_dir, Shape input) {
  if (tenants_.count(name) > 0) {
    throw std::invalid_argument("ModelRegistry: tenant '" + name +
                                "' already registered");
  }
  Tenant t;
  t.dir = checkpoint_dir;
  t.input = std::move(input);
  t.scrubber = std::make_unique<robust::CheckpointScrubber>(0);
  tenants_.emplace(name, std::move(t));
  order_.push_back(name);
}

std::shared_ptr<ModelVersion> ModelRegistry::make_version(
    graph::Network net, std::int64_t generation, const Shape& input) const {
  auto version = std::make_shared<ModelVersion>();
  version->generation = generation;
  version->net = std::move(net);
  version->materialized = prune::materialize_inference(
      version->net, cfg_.form, cfg_.gating_threshold);
  cost::FlopsModel flops(version->net, input);
  version->inference_flops = flops.inference_flops();
  version->service_ticks_per_batch = std::max<Tick>(
      1, static_cast<Tick>(std::llround(
             version->inference_flops *
             static_cast<double>(cfg_.max_batch) / cfg_.flops_per_tick)));
  return version;
}

SwapRecord ModelRegistry::publish_version(const std::string& name,
                                          std::shared_ptr<ModelVersion> version,
                                          const std::string& path,
                                          LeaseTable& leases) {
  const std::int64_t generation = version->generation;
  SwapRecord rec;
  rec.model = name;
  rec.from_generation = served_generation(name);
  rec.to_generation = generation;
  rec.path = path;
  rec.inference_flops = version->inference_flops;
  rec.service_ticks_per_batch = version->service_ticks_per_batch;
  rec.lease_epoch = leases.publish(name, std::move(version));

  auto it = tenants_.find(name);
  if (it != tenants_.end()) it->second.served_generation = generation;
  telemetry::count("serve/swaps");
  telemetry::gauge("serve/" + name + "/generation",
                   static_cast<double>(generation));
  return rec;
}

void ModelRegistry::quarantine(const std::string& name, QuarantineRecord rec) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) {
    it->second.quarantined_epochs.push_back(rec.generation);
  }
  telemetry::count("serve/quarantined_generations");
  telemetry::event("serve/quarantine",
                   name + " generation " + std::to_string(rec.generation) +
                       " (" + rec.reason + ")");
  quarantine_.push_back(std::move(rec));
}

SwapRecord ModelRegistry::publish_network(const std::string& name,
                                          graph::Network net,
                                          std::int64_t generation, Shape input,
                                          LeaseTable& leases) {
  if (tenants_.count(name) == 0) {
    Tenant t;
    t.input = input;
    tenants_.emplace(name, std::move(t));
    order_.push_back(name);
  }
  return publish_version(name, make_version(std::move(net), generation, input),
                         "", leases);
}

std::vector<SwapRecord> ModelRegistry::poll(exec::ExecContext& ctx,
                                            LeaseTable& leases) {
  std::vector<SwapRecord> swaps;
  for (const std::string& name : order_) {
    Tenant& t = tenants_.at(name);
    if (t.dir.empty() || !t.scrubber) continue;
    // 1. Discover new generations (read-only listing).
    const auto generations = ckpt::list_generations(t.dir);
    bool noted_new = false;
    for (const auto& g : generations) {
      if (std::find(t.noted.begin(), t.noted.end(), g.path) != t.noted.end()) {
        continue;
      }
      t.scrubber->note_saved(g.path, g.epoch);
      t.noted.push_back(g.path);
      noted_new = true;
    }
    if (!noted_new) continue;
    // 2. CRC-validate the chain before committing to any load. A torn or
    // bit-rotted generation is quarantined loudly (telemetry counter +
    // event) the first time the scrub flags it — not silently skipped.
    t.scrubber->scrub(ctx);
    for (const auto& g : t.scrubber->generations()) {
      if (!g.scrubbed || g.valid) continue;
      if (std::find(t.flagged_invalid.begin(), t.flagged_invalid.end(),
                    g.path) != t.flagged_invalid.end()) {
        continue;
      }
      t.flagged_invalid.push_back(g.path);
      QuarantineRecord q;
      q.model = name;
      q.generation = g.epoch;
      q.path = g.path;
      q.reason = "scrub-invalid";
      quarantine(name, std::move(q));
    }
    // 3. Newest scrubbed-valid, non-quarantined generation strictly newer
    // than served.
    const robust::GenerationInfo* best = nullptr;
    for (const auto& g : t.scrubber->generations()) {
      if (!g.valid || g.epoch <= t.served_generation) continue;
      if (std::find(t.quarantined_epochs.begin(), t.quarantined_epochs.end(),
                    g.epoch) != t.quarantined_epochs.end()) {
        continue;
      }
      if (!best || g.epoch > best->epoch) best = &g;
    }
    if (!best) continue;
    // 4-7. Load, materialize, price, canary-validate, publish.
    try {
      ckpt::Checkpoint ck = ckpt::Checkpoint::load(best->path);
      auto version = make_version(ck.restore_network(), best->epoch, t.input);
      auto incumbent = leases.acquire(name);
      CanaryReport canary =
          gate_.evaluate(*version, incumbent.get(), t.input, ctx);
      if (!canary.accepted()) {
        robust::HealthEvent ev;
        ev.type = robust::EventType::kCanaryRejected;
        ev.severity = robust::Severity::kWarning;
        ev.epoch = best->epoch;
        ev.value = canary.disagreement;
        ev.detail = name + ": " + to_string(canary.outcome) + " — " +
                    canary.detail;
        telemetry::event("health/" + to_string(ev.type), ev.describe());
        health_log_.push_back(std::move(ev));
        QuarantineRecord q;
        q.model = name;
        q.generation = best->epoch;
        q.path = best->path;
        q.reason = std::string("canary:") + to_string(canary.outcome);
        q.canary = std::move(canary);
        quarantine(name, std::move(q));
        continue;
      }
      SwapRecord rec =
          publish_version(name, std::move(version), best->path, leases);
      rec.canary = std::move(canary);
      swaps.push_back(std::move(rec));
    } catch (const std::exception& e) {
      // A file that passed the scrub but fails the full parse (e.g.
      // corrupted between scrub and load) is skipped, never half-served.
      log_warn(std::string("serve: failed to load generation ") +
               std::to_string(best->epoch) + " for '" + name +
               "': " + e.what());
      telemetry::event("serve/load-failed", name + " " + best->path);
    }
  }
  return swaps;
}

void ModelRegistry::note_rollback(const std::string& name,
                                  std::int64_t bad_generation,
                                  std::int64_t restored_generation,
                                  const std::string& why) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) {
    it->second.served_generation = restored_generation;
  }
  robust::HealthEvent ev;
  ev.type = robust::EventType::kGenerationRollback;
  ev.severity = robust::Severity::kWarning;
  ev.epoch = bad_generation;
  ev.detail = name + ": rolled back to generation " +
              std::to_string(restored_generation) + " (" + why + ")";
  telemetry::event("health/" + to_string(ev.type), ev.describe());
  health_log_.push_back(std::move(ev));
  QuarantineRecord q;
  q.model = name;
  q.generation = bad_generation;
  q.reason = "rollback:" + why;
  quarantine(name, std::move(q));
  telemetry::gauge("serve/" + name + "/generation",
                   static_cast<double>(restored_generation));
}

std::int64_t ModelRegistry::served_generation(const std::string& name) const {
  auto it = tenants_.find(name);
  return it == tenants_.end() ? -1 : it->second.served_generation;
}

const robust::CheckpointScrubber* ModelRegistry::scrubber(
    const std::string& name) const {
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.scrubber.get();
}

std::vector<std::string> ModelRegistry::tenants() const { return order_; }

}  // namespace pt::serve
