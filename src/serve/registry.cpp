#include "serve/registry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ckpt/checkpoint.h"
#include "cost/flops.h"
#include "telemetry/metrics.h"
#include "util/logging.h"

namespace pt::serve {

void RegistryConfig::validate() const {
  if (flops_per_tick <= 0) {
    throw std::invalid_argument("RegistryConfig: flops_per_tick must be > 0");
  }
  if (max_batch <= 0) {
    throw std::invalid_argument("RegistryConfig: max_batch must be >= 1");
  }
}

ModelRegistry::ModelRegistry(RegistryConfig cfg) : cfg_(cfg) {
  cfg_.validate();
}

void ModelRegistry::add_model(const std::string& name,
                              const std::string& checkpoint_dir, Shape input) {
  if (tenants_.count(name) > 0) {
    throw std::invalid_argument("ModelRegistry: tenant '" + name +
                                "' already registered");
  }
  Tenant t;
  t.dir = checkpoint_dir;
  t.input = std::move(input);
  t.scrubber = std::make_unique<robust::CheckpointScrubber>(0);
  tenants_.emplace(name, std::move(t));
  order_.push_back(name);
}

SwapRecord ModelRegistry::price_and_publish(const std::string& name,
                                            graph::Network net,
                                            std::int64_t generation,
                                            const Shape& input,
                                            const std::string& path,
                                            LeaseTable& leases) {
  auto version = std::make_shared<ModelVersion>();
  version->generation = generation;
  version->net = std::move(net);
  version->materialized = prune::materialize_inference(
      version->net, cfg_.form, cfg_.gating_threshold);
  cost::FlopsModel flops(version->net, input);
  version->inference_flops = flops.inference_flops();
  version->service_ticks_per_batch = std::max<Tick>(
      1, static_cast<Tick>(std::llround(
             version->inference_flops *
             static_cast<double>(cfg_.max_batch) / cfg_.flops_per_tick)));

  SwapRecord rec;
  rec.model = name;
  rec.from_generation = served_generation(name);
  rec.to_generation = generation;
  rec.path = path;
  rec.inference_flops = version->inference_flops;
  rec.service_ticks_per_batch = version->service_ticks_per_batch;
  rec.lease_epoch = leases.publish(name, std::move(version));

  auto it = tenants_.find(name);
  if (it != tenants_.end()) it->second.served_generation = generation;
  telemetry::count("serve/swaps");
  telemetry::gauge("serve/" + name + "/generation",
                   static_cast<double>(generation));
  return rec;
}

SwapRecord ModelRegistry::publish_network(const std::string& name,
                                          graph::Network net,
                                          std::int64_t generation, Shape input,
                                          LeaseTable& leases) {
  if (tenants_.count(name) == 0) {
    Tenant t;
    t.input = input;
    tenants_.emplace(name, std::move(t));
    order_.push_back(name);
  }
  return price_and_publish(name, std::move(net), generation, input, "",
                           leases);
}

std::vector<SwapRecord> ModelRegistry::poll(exec::ExecContext& ctx,
                                            LeaseTable& leases) {
  std::vector<SwapRecord> swaps;
  for (const std::string& name : order_) {
    Tenant& t = tenants_.at(name);
    if (t.dir.empty() || !t.scrubber) continue;
    // 1. Discover new generations (read-only listing).
    const auto generations = ckpt::list_generations(t.dir);
    bool noted_new = false;
    for (const auto& g : generations) {
      if (std::find(t.noted.begin(), t.noted.end(), g.path) != t.noted.end()) {
        continue;
      }
      t.scrubber->note_saved(g.path, g.epoch);
      t.noted.push_back(g.path);
      noted_new = true;
    }
    if (!noted_new) continue;
    // 2. CRC-validate the chain before committing to any load.
    t.scrubber->scrub(ctx);
    // 3. Newest scrubbed-valid generation strictly newer than served.
    const robust::GenerationInfo* best = nullptr;
    for (const auto& g : t.scrubber->generations()) {
      if (!g.valid || g.epoch <= t.served_generation) continue;
      if (!best || g.epoch > best->epoch) best = &g;
    }
    if (!best) continue;
    // 4-6. Load, materialize, price, publish.
    try {
      ckpt::Checkpoint ck = ckpt::Checkpoint::load(best->path);
      swaps.push_back(price_and_publish(name, ck.restore_network(),
                                        best->epoch, t.input, best->path,
                                        leases));
    } catch (const std::exception& e) {
      // A file that passed the scrub but fails the full parse (e.g.
      // corrupted between scrub and load) is skipped, never half-served.
      log_warn(std::string("serve: failed to load generation ") +
               std::to_string(best->epoch) + " for '" + name +
               "': " + e.what());
      telemetry::event("serve/load-failed", name + " " + best->path);
    }
  }
  return swaps;
}

std::int64_t ModelRegistry::served_generation(const std::string& name) const {
  auto it = tenants_.find(name);
  return it == tenants_.end() ? -1 : it->second.served_generation;
}

const robust::CheckpointScrubber* ModelRegistry::scrubber(
    const std::string& name) const {
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.scrubber.get();
}

std::vector<std::string> ModelRegistry::tenants() const { return order_; }

}  // namespace pt::serve
