// ModelRegistry: the bridge from the training side's checkpoint output to
// the serving side's lease table.
//
// Each tenant watches one checkpoint directory — the same directory a
// PruneTrainer writes `ckpt-epoch-<N>.bin` generations into. poll():
//
//  1. lists new generations (ckpt::list_generations, read-only),
//  2. CRC-validates them with the PR 7 CheckpointScrubber (keep_last_k = 0:
//     serving never deletes the trainer's files) — a torn or bit-rotted
//     generation is skipped, not loaded,
//  3. loads the newest scrubbed-valid generation newer than what is being
//     served (ckpt::Checkpoint::load + restore_network),
//  4. materializes the configured inference form
//     (prune::materialize_inference — channel union by default),
//  5. prices it (cost::FlopsModel -> modeled batch service ticks),
//  6. canary-validates it against the incumbent (serve::CanaryGate,
//     ISSUE 10): shadow-executed probe logits must be finite, agree with
//     the incumbent's reference argmaxes within budget, and stay inside
//     the modeled-latency budget — a rejected generation is *quarantined*
//     (telemetry + serve/quarantined_generations counter + a structured
//     kCanaryRejected health event) and never retried, and
//  7. publishes it into the LeaseTable, bumping the lease epoch — the
//     hot swap. In-flight batches keep their pinned old version.
//
// poll() is driven by the runtime's modeled clock, so given the same
// sequence of files appearing between polls, swaps land on the same tick
// every run — the swap boundary is part of the deterministic trace.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/context.h"
#include "graph/network.h"
#include "prune/materialize.h"
#include "robust/health.h"
#include "robust/integrity.h"
#include "serve/canary.h"
#include "serve/lease.h"

namespace pt::serve {

struct RegistryConfig {
  prune::InferenceForm form = prune::InferenceForm::kChannelUnion;
  float gating_threshold = 1e-4f;  ///< kChannelGating dense-channel test
  /// Modeled worker compute rate: FLOPs retired per modeled tick. Converts
  /// a version's per-sample inference FLOPs into batch service ticks, so a
  /// pruned (smaller) model is modeled faster — the swap_speedup the bench
  /// measures.
  double flops_per_tick = 2e6;
  std::int64_t max_batch = 8;  ///< batch size the service estimate prices
  /// Canary gate every poll() publish passes through (ISSUE 10). Direct
  /// publish_network() calls bypass it: that is the cold-start/test path,
  /// where the caller *is* the provenance.
  CanaryConfig canary;

  void validate() const;
};

/// One completed hot swap, as poll() reports it.
struct SwapRecord {
  std::string model;
  std::int64_t from_generation = -1;  ///< -1: first publish (cold start)
  std::int64_t to_generation = -1;
  std::int64_t lease_epoch = -1;
  std::string path;                   ///< checkpoint file served from
  double inference_flops = 0;         ///< per sample, post-materialization
  Tick service_ticks_per_batch = 1;
  CanaryReport canary;  ///< kSkipped outcome for direct publishes
};

/// One generation the registry refused to serve and will never retry.
struct QuarantineRecord {
  std::string model;
  std::int64_t generation = -1;
  std::string path;     ///< "" for rollback quarantines
  std::string reason;   ///< "scrub-invalid" | "canary:<outcome>" | "rollback:<breach>"
  CanaryReport canary;  ///< populated for canary rejections
};

class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryConfig cfg);

  const RegistryConfig& config() const { return cfg_; }

  /// Registers a tenant watching `checkpoint_dir`. `input` is the
  /// per-sample input shape ([C, H, W]) the cost model prices with. Throws
  /// if the tenant already exists.
  void add_model(const std::string& name, const std::string& checkpoint_dir,
                 Shape input);

  /// Publishes an in-memory network directly (tests, cold starts), under
  /// `generation`. Applies the same materialization + pricing as poll().
  SwapRecord publish_network(const std::string& name, graph::Network net,
                             std::int64_t generation, Shape input,
                             LeaseTable& leases);

  /// Scans every watched tenant for new checkpoint generations and
  /// hot-swaps each tenant at most one step forward (to its newest
  /// scrubbed-valid generation). Returns the swaps performed, in tenant
  /// registration order.
  std::vector<SwapRecord> poll(exec::ExecContext& ctx, LeaseTable& leases);

  /// Generation currently served for `name` (-1 before the first publish).
  std::int64_t served_generation(const std::string& name) const;

  /// Records an automatic rollback performed by the runtime: the indicted
  /// generation is quarantined (poll() will never republish it even though
  /// it is the newest file on disk) and `restored_generation` becomes the
  /// served generation again. Emits the quarantine telemetry and a
  /// kGenerationRollback health event. `why` names the breach.
  void note_rollback(const std::string& name, std::int64_t bad_generation,
                     std::int64_t restored_generation, const std::string& why);

  /// Every generation refused so far (scrub-invalid, canary-rejected, or
  /// rollback-indicted), in refusal order.
  const std::vector<QuarantineRecord>& quarantined() const {
    return quarantine_;
  }

  /// Structured serve-side health events (canary rejections, rollbacks).
  const std::vector<robust::HealthEvent>& health_log() const {
    return health_log_;
  }

  /// The scrubber's validity ledger for a watched tenant (nullptr when the
  /// tenant is unknown or publishes directly).
  const robust::CheckpointScrubber* scrubber(const std::string& name) const;

  std::vector<std::string> tenants() const;  ///< registration order

 private:
  struct Tenant {
    std::string dir;  ///< empty: direct-publish only
    Shape input;
    std::int64_t served_generation = -1;
    std::unique_ptr<robust::CheckpointScrubber> scrubber;
    std::vector<std::string> noted;  ///< paths already note_saved
    std::vector<std::int64_t> quarantined_epochs;  ///< never (re)published
    std::vector<std::string> flagged_invalid;  ///< scrub failures announced
  };

  /// Materializes + prices `net` into an unpublished ModelVersion.
  std::shared_ptr<ModelVersion> make_version(graph::Network net,
                                             std::int64_t generation,
                                             const Shape& input) const;

  SwapRecord publish_version(const std::string& name,
                             std::shared_ptr<ModelVersion> version,
                             const std::string& path, LeaseTable& leases);

  /// Appends the record, bumps serve/quarantined_generations, emits the
  /// telemetry event, and marks the epoch untouchable for `name`.
  void quarantine(const std::string& name, QuarantineRecord rec);

  RegistryConfig cfg_;
  CanaryGate gate_;
  std::map<std::string, Tenant> tenants_;
  std::vector<std::string> order_;
  std::vector<QuarantineRecord> quarantine_;
  std::vector<robust::HealthEvent> health_log_;
};

}  // namespace pt::serve
