// ModelRegistry: the bridge from the training side's checkpoint output to
// the serving side's lease table.
//
// Each tenant watches one checkpoint directory — the same directory a
// PruneTrainer writes `ckpt-epoch-<N>.bin` generations into. poll():
//
//  1. lists new generations (ckpt::list_generations, read-only),
//  2. CRC-validates them with the PR 7 CheckpointScrubber (keep_last_k = 0:
//     serving never deletes the trainer's files) — a torn or bit-rotted
//     generation is skipped, not loaded,
//  3. loads the newest scrubbed-valid generation newer than what is being
//     served (ckpt::Checkpoint::load + restore_network),
//  4. materializes the configured inference form
//     (prune::materialize_inference — channel union by default),
//  5. prices it (cost::FlopsModel -> modeled batch service ticks), and
//  6. publishes it into the LeaseTable, bumping the lease epoch — the
//     hot swap. In-flight batches keep their pinned old version.
//
// poll() is driven by the runtime's modeled clock, so given the same
// sequence of files appearing between polls, swaps land on the same tick
// every run — the swap boundary is part of the deterministic trace.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/context.h"
#include "graph/network.h"
#include "prune/materialize.h"
#include "robust/integrity.h"
#include "serve/lease.h"

namespace pt::serve {

struct RegistryConfig {
  prune::InferenceForm form = prune::InferenceForm::kChannelUnion;
  float gating_threshold = 1e-4f;  ///< kChannelGating dense-channel test
  /// Modeled worker compute rate: FLOPs retired per modeled tick. Converts
  /// a version's per-sample inference FLOPs into batch service ticks, so a
  /// pruned (smaller) model is modeled faster — the swap_speedup the bench
  /// measures.
  double flops_per_tick = 2e6;
  std::int64_t max_batch = 8;  ///< batch size the service estimate prices

  void validate() const;
};

/// One completed hot swap, as poll() reports it.
struct SwapRecord {
  std::string model;
  std::int64_t from_generation = -1;  ///< -1: first publish (cold start)
  std::int64_t to_generation = -1;
  std::int64_t lease_epoch = -1;
  std::string path;                   ///< checkpoint file served from
  double inference_flops = 0;         ///< per sample, post-materialization
  Tick service_ticks_per_batch = 1;
};

class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryConfig cfg);

  const RegistryConfig& config() const { return cfg_; }

  /// Registers a tenant watching `checkpoint_dir`. `input` is the
  /// per-sample input shape ([C, H, W]) the cost model prices with. Throws
  /// if the tenant already exists.
  void add_model(const std::string& name, const std::string& checkpoint_dir,
                 Shape input);

  /// Publishes an in-memory network directly (tests, cold starts), under
  /// `generation`. Applies the same materialization + pricing as poll().
  SwapRecord publish_network(const std::string& name, graph::Network net,
                             std::int64_t generation, Shape input,
                             LeaseTable& leases);

  /// Scans every watched tenant for new checkpoint generations and
  /// hot-swaps each tenant at most one step forward (to its newest
  /// scrubbed-valid generation). Returns the swaps performed, in tenant
  /// registration order.
  std::vector<SwapRecord> poll(exec::ExecContext& ctx, LeaseTable& leases);

  /// Generation currently served for `name` (-1 before the first publish).
  std::int64_t served_generation(const std::string& name) const;

  /// The scrubber's validity ledger for a watched tenant (nullptr when the
  /// tenant is unknown or publishes directly).
  const robust::CheckpointScrubber* scrubber(const std::string& name) const;

  std::vector<std::string> tenants() const;  ///< registration order

 private:
  struct Tenant {
    std::string dir;  ///< empty: direct-publish only
    Shape input;
    std::int64_t served_generation = -1;
    std::unique_ptr<robust::CheckpointScrubber> scrubber;
    std::vector<std::string> noted;  ///< paths already note_saved
  };

  SwapRecord price_and_publish(const std::string& name, graph::Network net,
                               std::int64_t generation, const Shape& input,
                               const std::string& path, LeaseTable& leases);

  RegistryConfig cfg_;
  std::map<std::string, Tenant> tenants_;
  std::vector<std::string> order_;
};

}  // namespace pt::serve
