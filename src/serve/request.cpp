#include "serve/request.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace pt::serve {

const char* to_string(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kUnknownModel:
      return "unknown-model";
    case ShedReason::kQueueFull:
      return "queue-full";
    case ShedReason::kInfeasibleDeadline:
      return "infeasible-deadline";
    case ShedReason::kCircuitOpen:
      return "circuit-open";
  }
  return "?";
}

std::vector<Request> synthesize_trace(const std::vector<TraceSpec>& specs) {
  struct Pending {
    Request req;
    std::size_t spec_index;
  };
  std::vector<Pending> all;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const TraceSpec& spec = specs[s];
    if (spec.model.empty()) {
      throw std::invalid_argument("synthesize_trace: empty model name");
    }
    if (spec.mean_interarrival <= 0) {
      throw std::invalid_argument(
          "synthesize_trace: mean_interarrival must be > 0");
    }
    Rng rng(spec.seed);
    Tick t = spec.start;
    while (t < spec.end) {
      Pending p;
      p.spec_index = s;
      p.req.model = spec.model;
      p.req.arrival = t;
      p.req.deadline = t + spec.deadline;
      p.req.input = Tensor::randn(spec.input, rng);
      all.push_back(std::move(p));
      // Geometric gap with the requested mean: floor(-mean * ln(U)) >= 0,
      // +1 below keeps at most one arrival per (spec, tick).
      const double u = std::max(rng.uniform(), 1e-12);
      t += 1 + static_cast<Tick>(-spec.mean_interarrival * std::log(u));
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.req.arrival != b.req.arrival
                                ? a.req.arrival < b.req.arrival
                                : a.spec_index < b.spec_index;
                   });
  std::vector<Request> out;
  out.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i].req.id = static_cast<std::int64_t>(i);
    out.push_back(std::move(all[i].req));
  }
  return out;
}

}  // namespace pt::serve
