// Request/response vocabulary of the serving runtime (ISSUE 8 tentpole).
//
// Serving time is *modeled*: every request carries an arrival tick from a
// monotonically advancing modeled clock, and every scheduling decision is a
// pure function of (trace, policy, modeled clock). Wall-clock never enters
// a decision, which is what lets the whole runtime extend the repo's
// bitwise determinism contract (DESIGN.md §9) to serving: the same trace
// replays to the same responses, batches, swaps, and sheds on any machine,
// at any exec thread count, and at any modeled worker count.
//
// synthesize_trace() builds the deterministic synthetic traffic every
// test/bench/example drives the runtime with: seeded arrival processes per
// tenant, merged into one globally tick-ordered request stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace pt::serve {

/// One instant of the modeled serving clock.
using Tick = std::int64_t;

/// One inference request. `input` is a single sample ([C, H, W]); the
/// scheduler batches same-shape requests along a new leading dim.
struct Request {
  std::int64_t id = -1;   ///< unique, strictly increasing with arrival
  std::string model;      ///< tenant name in the registry
  Tick arrival = 0;       ///< modeled arrival tick (monotone per trace)
  Tick deadline = 0;      ///< absolute completion deadline tick
  Tensor input;
};

/// Why admission control rejected a request.
enum class ShedReason {
  kNone,                ///< not shed
  kUnknownModel,        ///< no such tenant registered
  kQueueFull,           ///< mailbox at its depth bound
  kInfeasibleDeadline,  ///< modeled completion estimate exceeds the deadline
  kCircuitOpen,         ///< the tenant's circuit breaker is open (known-bad)
};

const char* to_string(ShedReason reason);

/// The structured outcome of one request: either a shed verdict (with
/// reason) or the inference result plus its full scheduling provenance.
struct Response {
  std::int64_t request_id = -1;
  bool shed = false;
  ShedReason reason = ShedReason::kNone;

  Tensor logits;               ///< defined iff !shed
  std::int64_t argmax = -1;    ///< top-1 class, -1 when shed

  // Provenance: which weights served this, and when.
  std::int64_t generation = -1;   ///< checkpoint generation of the weights
  std::int64_t lease_epoch = -1;  ///< lease epoch pinned at batch formation
  std::int64_t batch_id = -1;
  int worker = -1;
  Tick arrival = 0;
  Tick formed = 0;      ///< batch formation tick
  Tick start = 0;       ///< modeled worker start tick
  Tick completion = 0;  ///< modeled completion tick
  bool late = false;    ///< completed after its deadline (served, not dropped)
};

/// One tenant's synthetic arrival process.
struct TraceSpec {
  std::string model;
  double mean_interarrival = 4.0;  ///< mean ticks between arrivals (>= lets
                                   ///< qps = 1/mean_interarrival)
  Tick start = 0;                  ///< first tick arrivals may appear
  Tick end = 1000;                 ///< arrivals stop at this tick (exclusive)
  Tick deadline = 50;              ///< relative deadline per request
  Shape input{3, 16, 16};          ///< per-sample input shape [C, H, W]
  std::uint64_t seed = 1;          ///< arrival-process + input stream seed
};

/// Deterministically synthesizes the merged request stream of all specs:
/// per-spec geometric interarrival gaps (seeded), per-request randn inputs,
/// globally sorted by (arrival, spec order) with ids assigned in final
/// order — so the stream satisfies the mailbox's monotone-arrival contract.
std::vector<Request> synthesize_trace(const std::vector<TraceSpec>& specs);

}  // namespace pt::serve
