#include "serve/scheduler.h"

#include "telemetry/metrics.h"

namespace pt::serve {

bool Scheduler::due(const Mailbox& m, Tick now) const {
  if (m.empty()) return false;
  if (m.size() >= m.policy().max_batch) return true;
  const Tick must_start_by = m.oldest_deadline() -
                             m.policy().batch_service_ticks -
                             cfg_.dispatch_margin;
  return now >= must_start_by;
}

std::vector<BatchPlan> Scheduler::form(Tick now,
                                       const std::vector<Mailbox*>& mailboxes,
                                       const LeaseTable& leases) {
  std::vector<BatchPlan> out;
  if (mailboxes.empty()) return out;
  const std::size_t n = mailboxes.size();
  // Rounds: each round gives every tenant (starting at the cursor) one
  // chance to form one batch; repeat while any batch formed, so a burst
  // drains fairly interleaved instead of one tenant monopolizing the
  // dispatch sequence.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < n; ++i) {
      Mailbox& m = *mailboxes[(cursor_ + i) % n];
      if (!due(m, now)) continue;
      auto version = leases.acquire(m.model());
      if (!version) continue;  // requests wait for the first publish
      BatchPlan plan;
      plan.batch_id = next_batch_id_++;
      plan.model = m.model();
      plan.formed = now;
      plan.requests = m.pop_batch();
      plan.version = std::move(version);
      telemetry::count("serve/batches");
      telemetry::count("serve/batched_requests",
                       static_cast<double>(plan.requests.size()));
      out.push_back(std::move(plan));
      progress = true;
    }
  }
  cursor_ = (cursor_ + 1) % n;
  return out;
}

}  // namespace pt::serve
