// Deterministic scheduler: turns mailbox contents into a totally ordered
// stream of batch plans.
//
// The key design decision for determinism: batch *formation* never looks
// at worker availability. form() is a pure function of (mailbox contents,
// modeled clock, policy, round-robin cursor), so the sequence of batches —
// their composition, their order, and the lease epoch each one pins — is
// identical at any worker count. Workers (server.h) only decide *when* a
// formed batch executes in modeled time, i.e. latency and throughput; they
// can never change a response bit. This extends the PR 4 exec determinism
// contract (N threads == 1 thread, bitwise) to serving: N workers == 1
// worker, bitwise, for everything but the clock columns.
//
// Policy per formation round, scanning tenants round-robin from a
// persistent cursor:
//  - dispatch when a full batch is waiting (size >= max_batch), or
//  - when the oldest deadline forces it: serving must start within
//    batch_service_ticks (+ dispatch_margin) of the deadline, or the
//    requests would provably miss it by waiting longer.
// Rounds repeat until no mailbox is due, so a burst forms several batches
// at one tick (fairly interleaved across tenants) instead of one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/lease.h"
#include "serve/mailbox.h"
#include "serve/request.h"

namespace pt::serve {

/// One formed batch: requests in dispatch order, pinned to the lease-table
/// version current at formation time. Execution (server.h) is free to run
/// it whenever a worker frees up — the outputs are already determined.
struct BatchPlan {
  std::int64_t batch_id = -1;  ///< global formation sequence number
  std::string model;
  Tick formed = 0;
  std::vector<Request> requests;  ///< deadline-ordered, identical shapes
  std::shared_ptr<ModelVersion> version;  ///< pinned lease
};

struct SchedulerConfig {
  /// Extra ticks of headroom the deadline-forced dispatch keeps: dispatch
  /// when oldest_deadline - now <= batch_service_ticks + dispatch_margin.
  Tick dispatch_margin = 0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig cfg) : cfg_(cfg) {}

  /// Forms every batch due at tick `now` from `mailboxes` (tenant
  /// registration order), pinning versions from `leases`. Tenants with no
  /// published version are skipped (their requests wait for the first
  /// publish). The round-robin cursor persists across calls and advances
  /// by one per call, so sustained multi-tenant load shares dispatch
  /// positions fairly.
  std::vector<BatchPlan> form(Tick now,
                              const std::vector<Mailbox*>& mailboxes,
                              const LeaseTable& leases);

  /// Whether `m` is due for dispatch at `now` under this policy.
  bool due(const Mailbox& m, Tick now) const;

  std::int64_t batches_formed() const { return next_batch_id_; }

 private:
  SchedulerConfig cfg_;
  std::size_t cursor_ = 0;
  std::int64_t next_batch_id_ = 0;
};

}  // namespace pt::serve
