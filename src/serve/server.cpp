#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace pt::serve {

namespace {

constexpr std::int64_t kMaxLoopIterations = 50'000'000;

double percentile(std::vector<Tick>& sorted_values, double p) {
  if (sorted_values.empty()) return 0;
  const auto n = static_cast<std::int64_t>(sorted_values.size());
  std::int64_t idx = static_cast<std::int64_t>(
      std::max(0.0, p * static_cast<double>(n) - 1.0));
  idx = std::min(idx, n - 1);
  return static_cast<double>(sorted_values[static_cast<std::size_t>(idx)]);
}

}  // namespace

void ServeConfig::validate() const {
  if (workers < 1) {
    throw std::invalid_argument("ServeConfig: workers must be >= 1");
  }
  if (max_batch < 1) {
    throw std::invalid_argument("ServeConfig: max_batch must be >= 1");
  }
  if (dispatch_margin < 0) {
    throw std::invalid_argument("ServeConfig: dispatch_margin must be >= 0");
  }
  if (flops_per_tick <= 0) {
    throw std::invalid_argument("ServeConfig: flops_per_tick must be > 0");
  }
  if (poll_interval < 0) {
    throw std::invalid_argument("ServeConfig: poll_interval must be >= 0");
  }
  canary.validate();
  health.validate();
  breaker.validate();
}

ServeRuntime::ServeRuntime(ServeConfig cfg, exec::ExecContext& ctx)
    : cfg_(cfg),
      ctx_(&ctx),
      registry_([&] {
        RegistryConfig rc;
        rc.form = cfg.form;
        rc.gating_threshold = cfg.gating_threshold;
        rc.flops_per_tick = cfg.flops_per_tick;
        rc.max_batch = cfg.max_batch;
        rc.canary = cfg.canary;
        return rc;
      }()),
      scheduler_(SchedulerConfig{cfg.dispatch_margin}) {
  cfg_.validate();
  injector_ = robust::FaultInjector::from_string(cfg_.fault_spec,
                                                 cfg_.fault_seed);
}

void ServeRuntime::ensure_tenant(const std::string& name) {
  if (mailboxes_.count(name) > 0) return;
  MailboxPolicy policy;
  policy.max_queue = cfg_.max_queue;
  policy.max_batch = cfg_.max_batch;
  policy.shed_on_infeasible = cfg_.shed_on_infeasible;
  mailboxes_.emplace(name, std::make_unique<Mailbox>(name, policy));
  guards_.emplace(name, std::make_unique<Guard>(cfg_.health, cfg_.breaker));
  mailbox_order_.push_back(name);
}

void ServeRuntime::add_model(const std::string& name,
                             const std::string& checkpoint_dir, Shape input) {
  registry_.add_model(name, checkpoint_dir, std::move(input));
  ensure_tenant(name);
}

SwapRecord ServeRuntime::publish_network(const std::string& name,
                                         graph::Network net,
                                         std::int64_t generation, Shape input) {
  ensure_tenant(name);
  std::shared_ptr<ModelVersion> previous = leases_.acquire(name);
  SwapRecord rec = registry_.publish_network(name, std::move(net), generation,
                                             std::move(input), leases_);
  mailboxes_.at(name)->set_batch_service_ticks(rec.service_ticks_per_batch);
  begin_probation(name, std::move(previous), now_);
  return rec;
}

void ServeRuntime::schedule(Tick tick, std::function<void()> fn) {
  actions_.emplace_back(tick, std::move(fn));
  std::stable_sort(actions_.begin(), actions_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
}

std::int64_t ServeRuntime::inflight_for(const std::string& model) const {
  std::int64_t n = 0;
  for (const InFlight& f : inflight_) n += (f.model == model) ? 1 : 0;
  return n;
}

void ServeRuntime::begin_probation(const std::string& model,
                                   std::shared_ptr<ModelVersion> previous,
                                   Tick now) {
  auto git = guards_.find(model);
  if (git != guards_.end()) {
    git->second->health.reset();
    git->second->breaker.reset(now, "new generation published");
  }
  if (previous && cfg_.health.auto_rollback && cfg_.health.probation_ticks > 0) {
    probation_[model] =
        Probation{std::move(previous), now + cfg_.health.probation_ticks};
  } else {
    probation_.erase(model);
  }
}

void ServeRuntime::maybe_rollback(const std::string& model, Tick now,
                                  std::vector<RollbackEvent>& out) {
  if (!cfg_.health.auto_rollback) return;
  auto pit = probation_.find(model);
  if (pit == probation_.end() || !pit->second.previous) return;
  auto git = guards_.find(model);
  if (git == guards_.end()) return;
  const char* breach = git->second->health.breach(now);
  if (breach == nullptr) return;
  std::shared_ptr<ModelVersion> current = leases_.acquire(model);
  if (!current || current == pit->second.previous) return;

  const std::int64_t bad_generation = current->generation;
  std::shared_ptr<ModelVersion> restored = std::move(pit->second.previous);
  probation_.erase(pit);
  const std::int64_t restored_generation = restored->generation;
  const Tick restored_ticks = restored->service_ticks_per_batch;
  const std::int64_t epoch = leases_.rollback(model, std::move(restored));
  registry_.note_rollback(model, bad_generation, restored_generation, breach);
  auto mb = mailboxes_.find(model);
  if (mb != mailboxes_.end()) {
    mb->second->set_batch_service_ticks(restored_ticks);
  }
  git->second->health.reset();
  git->second->breaker.reset(now, "rollback");

  RollbackEvent ev;
  ev.model = model;
  ev.tick = now;
  ev.from_generation = bad_generation;
  ev.to_generation = restored_generation;
  ev.lease_epoch = epoch;
  ev.reason = breach;
  telemetry::event("serve/rollback",
                   model + " generation " + std::to_string(bad_generation) +
                       " -> " + std::to_string(restored_generation) +
                       " @ tick " + std::to_string(now) + " (" + ev.reason +
                       ")");
  out.push_back(std::move(ev));
}

bool ServeRuntime::execute_batch(BatchPlan& plan, std::vector<Response>& out) {
  const std::int64_t n = static_cast<std::int64_t>(plan.requests.size());
  const Shape& sample = plan.requests.front().input.shape();
  std::vector<std::int64_t> dims;
  dims.push_back(n);
  for (std::int64_t d = 0; d < sample.rank(); ++d) dims.push_back(sample[d]);
  Tensor batch{Shape(dims)};
  const std::int64_t stride = sample.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(batch.data() + i * stride, plan.requests[i].input.data(),
                sizeof(float) * static_cast<std::size_t>(stride));
  }
  Tensor logits = plan.version->net.forward(*ctx_, batch, false);
  if (logits.shape().rank() != 2 || logits.shape()[0] != n) {
    throw std::runtime_error("serve: unexpected output shape " +
                             logits.shape().to_string() + " for model '" +
                             plan.model + "'");
  }
  // flaky-output fires here, before the health scan: an injected NaN is
  // indistinguishable from a genuinely corrupt generation downstream.
  injector_.corrupt_output(logits, plan.version->generation, plan.batch_id);
  bool healthy = true;
  const std::int64_t total = logits.numel();
  for (std::int64_t i = 0; i < total; ++i) {
    if (!std::isfinite(logits.data()[i])) {
      healthy = false;
      break;
    }
  }
  if (!healthy) telemetry::count("serve/nan_output_batches");
  const std::int64_t classes = logits.shape()[1];
  out.clear();
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const Request& r = plan.requests[static_cast<std::size_t>(i)];
    Response resp;
    resp.request_id = r.id;
    resp.arrival = r.arrival;
    resp.formed = plan.formed;
    resp.batch_id = plan.batch_id;
    resp.generation = plan.version->generation;
    resp.lease_epoch = plan.version->lease_epoch;
    std::vector<float> row(
        logits.data() + i * classes,
        logits.data() + (i + 1) * classes);
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < classes; ++c) {
      if (row[static_cast<std::size_t>(c)] > row[static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    resp.argmax = best;
    resp.logits = Tensor::from_values({classes}, std::move(row));
    out.push_back(std::move(resp));
  }
  return healthy;
}

ServeReport ServeRuntime::run(const std::vector<Request>& trace) {
  if (ran_) {
    throw std::logic_error("ServeRuntime::run: already ran (one-shot)");
  }
  ran_ = true;
  telemetry::ScopedTimer run_span("serve/run");

  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].arrival < trace[i - 1].arrival) {
      throw std::invalid_argument("serve: trace arrivals not monotone at id " +
                                  std::to_string(trace[i].id));
    }
  }

  std::vector<Worker> workers(static_cast<std::size_t>(cfg_.workers));
  std::map<std::int64_t, Response> responses;  // request id -> response
  std::vector<SwapEvent> swap_events;
  std::vector<RollbackEvent> rollback_events;
  std::int64_t shed_count = 0;
  std::int64_t shed_circuit_open = 0;
  std::int64_t batches_done = 0;
  std::int64_t batched_requests = 0;
  Tick last_completion = 0;

  std::size_t next_arrival = 0;
  std::size_t next_action = 0;
  Tick now = 0;
  if (!trace.empty()) now = std::min<Tick>(now, trace.front().arrival);
  if (!actions_.empty()) now = std::min(now, actions_.front().first);

  auto any_mailbox_pending = [&] {
    for (const auto& [name, mb] : mailboxes_) {
      (void)name;
      if (!mb->empty()) return true;
    }
    return false;
  };

  std::vector<Mailbox*> mailbox_ptrs;
  for (const std::string& name : mailbox_order_) {
    mailbox_ptrs.push_back(mailboxes_.at(name).get());
  }

  std::int64_t iterations = 0;
  while (next_arrival < trace.size() || next_action < actions_.size() ||
         any_mailbox_pending() || !inflight_.empty()) {
    if (++iterations > kMaxLoopIterations) {
      throw std::runtime_error("serve: event loop failed to drain");
    }
    now_ = now;

    // 1. Scheduled actions (tests/benches drop checkpoint files here).
    while (next_action < actions_.size() &&
           actions_[next_action].first <= now) {
      actions_[next_action].second();
      ++next_action;
    }

    // 2. Release lease pins of batches whose modeled completion passed;
    // expired probation pins release too (the superseded version kept as a
    // rollback target finally retires); superseded versions retire when
    // their last pin drops.
    {
      auto it = inflight_.begin();
      while (it != inflight_.end()) {
        it = it->completion <= now ? inflight_.erase(it) : std::next(it);
      }
      auto pit = probation_.begin();
      while (pit != probation_.end()) {
        pit = pit->second.until <= now ? probation_.erase(pit)
                                       : std::next(pit);
      }
      leases_.sweep_retired();
    }

    // 3. Registry poll: discover + validate + canary-gate + hot-swap new
    // generations. The displaced incumbent becomes the rollback target for
    // the probation window.
    if (cfg_.poll_interval > 0 && now >= 0 && now % cfg_.poll_interval == 0) {
      std::map<std::string, std::shared_ptr<ModelVersion>> incumbents;
      for (const std::string& name : mailbox_order_) {
        incumbents[name] = leases_.acquire(name);
      }
      const auto swaps = registry_.poll(*ctx_, leases_);
      for (const SwapRecord& rec : swaps) {
        SwapEvent ev;
        ev.record = rec;
        ev.tick = now;
        auto mb = mailboxes_.find(rec.model);
        ev.queued = mb == mailboxes_.end() ? 0 : mb->second->size();
        ev.inflight = inflight_for(rec.model);
        if (mb != mailboxes_.end()) {
          mb->second->set_batch_service_ticks(rec.service_ticks_per_batch);
        }
        auto inc = incumbents.find(rec.model);
        begin_probation(rec.model,
                        inc == incumbents.end() ? nullptr : inc->second, now);
        telemetry::event(
            "serve/swap",
            rec.model + " generation " + std::to_string(rec.from_generation) +
                " -> " + std::to_string(rec.to_generation) + " @ tick " +
                std::to_string(now) + " (" + std::to_string(ev.queued) +
                " queued, " + std::to_string(ev.inflight) + " in flight)");
        swap_events.push_back(std::move(ev));
      }
    }

    // 4. Admission of this tick's arrivals. The circuit breaker sees every
    // arrival first: open means shed kCircuitOpen before the mailbox is
    // even offered; half-open admits a bounded number of probes.
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival <= now) {
      const Request& r = trace[next_arrival];
      ++next_arrival;
      auto mb = mailboxes_.find(r.model);
      ShedReason reason = ShedReason::kUnknownModel;
      if (mb != mailboxes_.end()) {
        auto& guard = *guards_.at(r.model);
        CircuitBreaker::Admission adm = CircuitBreaker::Admission::kAdmit;
        if (cfg_.breaker.enabled) adm = guard.breaker.admit(now);
        if (adm == CircuitBreaker::Admission::kShed) {
          reason = ShedReason::kCircuitOpen;
          ++shed_circuit_open;
          telemetry::count("serve/shed_circuit_open");
        } else {
          reason = mb->second->offer(r, now);
        }
        guard.health.record_arrival(now, reason != ShedReason::kNone);
      } else {
        telemetry::count("serve/shed_unknown_model");
      }
      if (reason != ShedReason::kNone) {
        Response resp;
        resp.request_id = r.id;
        resp.shed = true;
        resp.reason = reason;
        resp.arrival = r.arrival;
        resp.completion = now;
        responses.emplace(r.id, std::move(resp));
        ++shed_count;
      }
      if (mb != mailboxes_.end()) {
        maybe_rollback(r.model, now, rollback_events);
      }
    }

    // 5. Batch formation (worker-independent) + immediate execution in
    // formation order on the shared exec context.
    std::vector<BatchPlan> plans = scheduler_.form(now, mailbox_ptrs, leases_);

    // 6. Modeled worker assignment: lowest (free_at, id) worker first.
    for (BatchPlan& plan : plans) {
      std::vector<Response> batch_responses;
      const bool healthy = execute_batch(plan, batch_responses);
      const std::int64_t n = static_cast<std::int64_t>(plan.requests.size());
      Tick service = plan.version->service_ticks(n, cfg_.max_batch);
      // slow-model inflates the modeled service time of this generation's
      // batches — before BOTH the serial deadline-miss estimate below and
      // the actual worker assignment, so the guard's verdict and the
      // clock agree.
      const double factor = injector_.slow_model_factor(
          plan.version->generation, plan.batch_id);
      if (factor > 1.0) {
        service = std::max<Tick>(
            1, static_cast<Tick>(std::llround(
                   static_cast<double>(service) * factor)));
        telemetry::count("serve/slow_model_faults");
      }
      // Worker-count-invariant deadline-miss estimate: formation tick plus
      // modeled service, as if served serially — NOT the worker-assigned
      // completion, which depends on how many modeled workers exist.
      std::int64_t modeled_misses = 0;
      for (const Request& req : plan.requests) {
        modeled_misses += (plan.formed + service > req.deadline) ? 1 : 0;
      }
      std::size_t w = 0;
      for (std::size_t i = 1; i < workers.size(); ++i) {
        if (workers[i].free_at < workers[w].free_at) w = i;
      }
      const Tick start = std::max(now, workers[w].free_at);
      const Tick completion = start + service;
      workers[w].free_at = completion;
      last_completion = std::max(last_completion, completion);
      for (std::size_t i = 0; i < batch_responses.size(); ++i) {
        Response& resp = batch_responses[i];
        resp.worker = static_cast<int>(w);
        resp.start = start;
        resp.completion = completion;
        resp.late = completion > plan.requests[i].deadline;
        telemetry::observe("serve/latency_ticks",
                           static_cast<double>(completion - resp.arrival));
        responses.emplace(resp.request_id, std::move(resp));
      }
      ++batches_done;
      batched_requests += static_cast<std::int64_t>(plan.requests.size());
      InFlight f;
      f.completion = completion;
      f.model = plan.model;
      f.pin = plan.version;
      inflight_.push_back(std::move(f));
      auto git = guards_.find(plan.model);
      if (git != guards_.end()) {
        git->second->health.record_batch(now, !healthy, modeled_misses);
        if (cfg_.breaker.enabled) git->second->breaker.on_batch(now, healthy);
      }
      maybe_rollback(plan.model, now, rollback_events);
    }

    // Fast-forward the modeled clock to the next interesting tick.
    Tick next = std::numeric_limits<Tick>::max();
    if (next_arrival < trace.size()) {
      next = std::min(next, trace[next_arrival].arrival);
    }
    if (next_action < actions_.size()) {
      next = std::min(next, actions_[next_action].first);
    }
    for (const InFlight& f : inflight_) next = std::min(next, f.completion);
    for (Mailbox* mb : mailbox_ptrs) {
      if (mb->empty()) continue;
      const Tick due_tick = mb->oldest_deadline() -
                            mb->policy().batch_service_ticks -
                            cfg_.dispatch_margin;
      next = std::min(next, std::max(now + 1, due_tick));
    }
    if (cfg_.poll_interval > 0 &&
        (next_arrival < trace.size() || any_mailbox_pending())) {
      const Tick next_poll = (now / cfg_.poll_interval + 1) * cfg_.poll_interval;
      next = std::min(next, next_poll);
    }
    if (next == std::numeric_limits<Tick>::max()) break;  // drained
    now = std::max(next, now + 1);
  }
  // Release surviving probation pins before the final sweep: the run is
  // over, nothing can roll back anymore, and tests expect superseded
  // versions to count as retired even when the run ends mid-probation.
  probation_.clear();
  leases_.sweep_retired();

  ServeReport report;
  report.workers = cfg_.workers;
  report.requests = static_cast<std::int64_t>(trace.size());
  report.shed = shed_count;
  report.batches = batches_done;
  report.mean_batch_size =
      batches_done > 0 ? static_cast<double>(batched_requests) /
                             static_cast<double>(batches_done)
                       : 0;
  report.last_completion = last_completion;
  report.swaps = std::move(swap_events);
  report.leases_retired = leases_.retired();
  report.shed_circuit_open = shed_circuit_open;
  report.rollbacks = std::move(rollback_events);
  report.quarantined =
      static_cast<std::int64_t>(registry_.quarantined().size());
  report.health_events = registry_.health_log();

  std::map<std::string, std::int64_t> rollbacks_by_model;
  for (const RollbackEvent& ev : report.rollbacks) {
    ++rollbacks_by_model[ev.model];
  }
  for (const std::string& name : mailbox_order_) {
    auto git = guards_.find(name);
    if (git == guards_.end()) continue;
    const auto& transitions = git->second->breaker.transitions();
    if (!transitions.empty()) {
      report.breaker_transitions.emplace(name, transitions);
    }
    for (const BreakerTransition& t : transitions) {
      robust::HealthEvent ev;
      ev.type = robust::EventType::kBreakerStateChange;
      ev.severity = robust::Severity::kWarning;
      ev.detail = name + ": " + std::string(to_string(t.from)) + " -> " +
                  to_string(t.to) + " @ tick " + std::to_string(t.tick) +
                  " (" + t.why + ")";
      report.health_events.push_back(std::move(ev));
    }
    telemetry::gauge(
        "serve/" + name + "/breaker_state",
        static_cast<double>(static_cast<int>(git->second->breaker.state())));
    telemetry::gauge("serve/" + name + "/rollbacks",
                     static_cast<double>(rollbacks_by_model[name]));
  }

  std::vector<Tick> latencies;
  for (auto& [id, resp] : responses) {
    (void)id;
    if (!resp.shed) {
      ++report.completed;
      report.late += resp.late ? 1 : 0;
      latencies.push_back(resp.completion - resp.arrival);
    }
    report.responses.push_back(std::move(resp));
  }
  if (report.responses.size() != trace.size()) {
    throw std::logic_error("serve: response count " +
                           std::to_string(report.responses.size()) +
                           " != trace size " + std::to_string(trace.size()));
  }
  report.admitted = report.requests - report.shed;
  report.dropped = report.admitted - report.completed;
  std::sort(latencies.begin(), latencies.end());
  report.p50_latency_ticks = percentile(latencies, 0.50);
  report.p99_latency_ticks = percentile(latencies, 0.99);
  telemetry::count("serve/completed", static_cast<double>(report.completed));
  return report;
}

}  // namespace pt::serve
