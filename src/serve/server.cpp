#include "serve/server.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace pt::serve {

namespace {

constexpr std::int64_t kMaxLoopIterations = 50'000'000;

double percentile(std::vector<Tick>& sorted_values, double p) {
  if (sorted_values.empty()) return 0;
  const auto n = static_cast<std::int64_t>(sorted_values.size());
  std::int64_t idx = static_cast<std::int64_t>(
      std::max(0.0, p * static_cast<double>(n) - 1.0));
  idx = std::min(idx, n - 1);
  return static_cast<double>(sorted_values[static_cast<std::size_t>(idx)]);
}

}  // namespace

void ServeConfig::validate() const {
  if (workers < 1) {
    throw std::invalid_argument("ServeConfig: workers must be >= 1");
  }
  if (max_batch < 1) {
    throw std::invalid_argument("ServeConfig: max_batch must be >= 1");
  }
  if (dispatch_margin < 0) {
    throw std::invalid_argument("ServeConfig: dispatch_margin must be >= 0");
  }
  if (flops_per_tick <= 0) {
    throw std::invalid_argument("ServeConfig: flops_per_tick must be > 0");
  }
  if (poll_interval < 0) {
    throw std::invalid_argument("ServeConfig: poll_interval must be >= 0");
  }
}

ServeRuntime::ServeRuntime(ServeConfig cfg, exec::ExecContext& ctx)
    : cfg_(cfg),
      ctx_(&ctx),
      registry_([&] {
        RegistryConfig rc;
        rc.form = cfg.form;
        rc.gating_threshold = cfg.gating_threshold;
        rc.flops_per_tick = cfg.flops_per_tick;
        rc.max_batch = cfg.max_batch;
        return rc;
      }()),
      scheduler_(SchedulerConfig{cfg.dispatch_margin}) {
  cfg_.validate();
}

void ServeRuntime::add_model(const std::string& name,
                             const std::string& checkpoint_dir, Shape input) {
  registry_.add_model(name, checkpoint_dir, std::move(input));
  MailboxPolicy policy;
  policy.max_queue = cfg_.max_queue;
  policy.max_batch = cfg_.max_batch;
  policy.shed_infeasible = cfg_.shed_infeasible;
  mailboxes_.emplace(name, std::make_unique<Mailbox>(name, policy));
  mailbox_order_.push_back(name);
}

SwapRecord ServeRuntime::publish_network(const std::string& name,
                                         graph::Network net,
                                         std::int64_t generation, Shape input) {
  if (mailboxes_.count(name) == 0) {
    MailboxPolicy policy;
    policy.max_queue = cfg_.max_queue;
    policy.max_batch = cfg_.max_batch;
    policy.shed_infeasible = cfg_.shed_infeasible;
    mailboxes_.emplace(name, std::make_unique<Mailbox>(name, policy));
    mailbox_order_.push_back(name);
  }
  SwapRecord rec = registry_.publish_network(name, std::move(net), generation,
                                             std::move(input), leases_);
  mailboxes_.at(name)->set_batch_service_ticks(rec.service_ticks_per_batch);
  return rec;
}

void ServeRuntime::schedule(Tick tick, std::function<void()> fn) {
  actions_.emplace_back(tick, std::move(fn));
  std::stable_sort(actions_.begin(), actions_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
}

std::int64_t ServeRuntime::inflight_for(const std::string& model) const {
  std::int64_t n = 0;
  for (const InFlight& f : inflight_) n += (f.model == model) ? 1 : 0;
  return n;
}

void ServeRuntime::execute_batch(BatchPlan& plan, std::vector<Response>& out) {
  const std::int64_t n = static_cast<std::int64_t>(plan.requests.size());
  const Shape& sample = plan.requests.front().input.shape();
  std::vector<std::int64_t> dims;
  dims.push_back(n);
  for (std::int64_t d = 0; d < sample.rank(); ++d) dims.push_back(sample[d]);
  Tensor batch{Shape(dims)};
  const std::int64_t stride = sample.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(batch.data() + i * stride, plan.requests[i].input.data(),
                sizeof(float) * static_cast<std::size_t>(stride));
  }
  const Tensor logits = plan.version->net.forward(*ctx_, batch, false);
  if (logits.shape().rank() != 2 || logits.shape()[0] != n) {
    throw std::runtime_error("serve: unexpected output shape " +
                             logits.shape().to_string() + " for model '" +
                             plan.model + "'");
  }
  const std::int64_t classes = logits.shape()[1];
  out.clear();
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const Request& r = plan.requests[static_cast<std::size_t>(i)];
    Response resp;
    resp.request_id = r.id;
    resp.arrival = r.arrival;
    resp.formed = plan.formed;
    resp.batch_id = plan.batch_id;
    resp.generation = plan.version->generation;
    resp.lease_epoch = plan.version->lease_epoch;
    std::vector<float> row(
        logits.data() + i * classes,
        logits.data() + (i + 1) * classes);
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < classes; ++c) {
      if (row[static_cast<std::size_t>(c)] > row[static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    resp.argmax = best;
    resp.logits = Tensor::from_values({classes}, std::move(row));
    out.push_back(std::move(resp));
  }
}

ServeReport ServeRuntime::run(const std::vector<Request>& trace) {
  if (ran_) {
    throw std::logic_error("ServeRuntime::run: already ran (one-shot)");
  }
  ran_ = true;
  telemetry::ScopedTimer run_span("serve/run");

  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].arrival < trace[i - 1].arrival) {
      throw std::invalid_argument("serve: trace arrivals not monotone at id " +
                                  std::to_string(trace[i].id));
    }
  }

  std::vector<Worker> workers(static_cast<std::size_t>(cfg_.workers));
  std::map<std::int64_t, Response> responses;  // request id -> response
  std::vector<SwapEvent> swap_events;
  std::int64_t shed_count = 0;
  std::int64_t batches_done = 0;
  std::int64_t batched_requests = 0;
  Tick last_completion = 0;

  std::size_t next_arrival = 0;
  std::size_t next_action = 0;
  Tick now = 0;
  if (!trace.empty()) now = std::min<Tick>(now, trace.front().arrival);
  if (!actions_.empty()) now = std::min(now, actions_.front().first);

  auto any_mailbox_pending = [&] {
    for (const auto& [name, mb] : mailboxes_) {
      (void)name;
      if (!mb->empty()) return true;
    }
    return false;
  };

  std::vector<Mailbox*> mailbox_ptrs;
  for (const std::string& name : mailbox_order_) {
    mailbox_ptrs.push_back(mailboxes_.at(name).get());
  }

  std::int64_t iterations = 0;
  while (next_arrival < trace.size() || next_action < actions_.size() ||
         any_mailbox_pending() || !inflight_.empty()) {
    if (++iterations > kMaxLoopIterations) {
      throw std::runtime_error("serve: event loop failed to drain");
    }

    // 1. Scheduled actions (tests/benches drop checkpoint files here).
    while (next_action < actions_.size() &&
           actions_[next_action].first <= now) {
      actions_[next_action].second();
      ++next_action;
    }

    // 2. Release lease pins of batches whose modeled completion passed;
    // superseded versions retire when their last pin drops.
    {
      auto it = inflight_.begin();
      while (it != inflight_.end()) {
        it = it->completion <= now ? inflight_.erase(it) : std::next(it);
      }
      leases_.sweep_retired();
    }

    // 3. Registry poll: discover + validate + hot-swap new generations.
    if (cfg_.poll_interval > 0 && now >= 0 && now % cfg_.poll_interval == 0) {
      const auto swaps = registry_.poll(*ctx_, leases_);
      for (const SwapRecord& rec : swaps) {
        SwapEvent ev;
        ev.record = rec;
        ev.tick = now;
        auto mb = mailboxes_.find(rec.model);
        ev.queued = mb == mailboxes_.end() ? 0 : mb->second->size();
        ev.inflight = inflight_for(rec.model);
        if (mb != mailboxes_.end()) {
          mb->second->set_batch_service_ticks(rec.service_ticks_per_batch);
        }
        telemetry::event(
            "serve/swap",
            rec.model + " generation " + std::to_string(rec.from_generation) +
                " -> " + std::to_string(rec.to_generation) + " @ tick " +
                std::to_string(now) + " (" + std::to_string(ev.queued) +
                " queued, " + std::to_string(ev.inflight) + " in flight)");
        swap_events.push_back(std::move(ev));
      }
    }

    // 4. Admission of this tick's arrivals.
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival <= now) {
      const Request& r = trace[next_arrival];
      ++next_arrival;
      auto mb = mailboxes_.find(r.model);
      ShedReason reason = ShedReason::kUnknownModel;
      if (mb != mailboxes_.end()) {
        reason = mb->second->offer(r, now);
      } else {
        telemetry::count("serve/shed_unknown_model");
      }
      if (reason != ShedReason::kNone) {
        Response resp;
        resp.request_id = r.id;
        resp.shed = true;
        resp.reason = reason;
        resp.arrival = r.arrival;
        resp.completion = now;
        responses.emplace(r.id, std::move(resp));
        ++shed_count;
      }
    }

    // 5. Batch formation (worker-independent) + immediate execution in
    // formation order on the shared exec context.
    std::vector<BatchPlan> plans = scheduler_.form(now, mailbox_ptrs, leases_);

    // 6. Modeled worker assignment: lowest (free_at, id) worker first.
    for (BatchPlan& plan : plans) {
      std::vector<Response> batch_responses;
      execute_batch(plan, batch_responses);
      std::size_t w = 0;
      for (std::size_t i = 1; i < workers.size(); ++i) {
        if (workers[i].free_at < workers[w].free_at) w = i;
      }
      const Tick start = std::max(now, workers[w].free_at);
      const Tick service = plan.version->service_ticks(
          static_cast<std::int64_t>(plan.requests.size()), cfg_.max_batch);
      const Tick completion = start + service;
      workers[w].free_at = completion;
      last_completion = std::max(last_completion, completion);
      for (std::size_t i = 0; i < batch_responses.size(); ++i) {
        Response& resp = batch_responses[i];
        resp.worker = static_cast<int>(w);
        resp.start = start;
        resp.completion = completion;
        resp.late = completion > plan.requests[i].deadline;
        telemetry::observe("serve/latency_ticks",
                           static_cast<double>(completion - resp.arrival));
        responses.emplace(resp.request_id, std::move(resp));
      }
      ++batches_done;
      batched_requests += static_cast<std::int64_t>(plan.requests.size());
      InFlight f;
      f.completion = completion;
      f.model = plan.model;
      f.pin = plan.version;
      inflight_.push_back(std::move(f));
    }

    // Fast-forward the modeled clock to the next interesting tick.
    Tick next = std::numeric_limits<Tick>::max();
    if (next_arrival < trace.size()) {
      next = std::min(next, trace[next_arrival].arrival);
    }
    if (next_action < actions_.size()) {
      next = std::min(next, actions_[next_action].first);
    }
    for (const InFlight& f : inflight_) next = std::min(next, f.completion);
    for (Mailbox* mb : mailbox_ptrs) {
      if (mb->empty()) continue;
      const Tick due_tick = mb->oldest_deadline() -
                            mb->policy().batch_service_ticks -
                            cfg_.dispatch_margin;
      next = std::min(next, std::max(now + 1, due_tick));
    }
    if (cfg_.poll_interval > 0 &&
        (next_arrival < trace.size() || any_mailbox_pending())) {
      const Tick next_poll = (now / cfg_.poll_interval + 1) * cfg_.poll_interval;
      next = std::min(next, next_poll);
    }
    if (next == std::numeric_limits<Tick>::max()) break;  // drained
    now = std::max(next, now + 1);
  }
  leases_.sweep_retired();

  ServeReport report;
  report.workers = cfg_.workers;
  report.requests = static_cast<std::int64_t>(trace.size());
  report.shed = shed_count;
  report.batches = batches_done;
  report.mean_batch_size =
      batches_done > 0 ? static_cast<double>(batched_requests) /
                             static_cast<double>(batches_done)
                       : 0;
  report.last_completion = last_completion;
  report.swaps = std::move(swap_events);
  report.leases_retired = leases_.retired();

  std::vector<Tick> latencies;
  for (auto& [id, resp] : responses) {
    (void)id;
    if (!resp.shed) {
      ++report.completed;
      report.late += resp.late ? 1 : 0;
      latencies.push_back(resp.completion - resp.arrival);
    }
    report.responses.push_back(std::move(resp));
  }
  if (report.responses.size() != trace.size()) {
    throw std::logic_error("serve: response count " +
                           std::to_string(report.responses.size()) +
                           " != trace size " + std::to_string(trace.size()));
  }
  report.admitted = report.requests - report.shed;
  report.dropped = report.admitted - report.completed;
  std::sort(latencies.begin(), latencies.end());
  report.p50_latency_ticks = percentile(latencies, 0.50);
  report.p99_latency_ticks = percentile(latencies, 0.99);
  telemetry::count("serve/completed", static_cast<double>(report.completed));
  return report;
}

}  // namespace pt::serve
