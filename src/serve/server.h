// ServeRuntime: the multi-tenant serving event loop (ISSUE 8 tentpole).
//
// One runtime owns, per tenant, a bounded Mailbox; globally, a
// deterministic Scheduler, a LeaseTable, a ModelRegistry, and a set of
// *modeled* workers. run(trace) advances the modeled clock tick by tick:
//
//   1. scheduled actions fire (tests/benches drop new checkpoint files),
//   2. in-flight batches whose modeled completion has passed release their
//      lease pins (superseded versions retire when the last pin drops),
//   3. the registry polls for new checkpoint generations (hot swap),
//   4. arrivals are admitted or shed (structured reasons),
//   5. the scheduler forms batches — each batch pins the tenant's current
//      lease and its forward pass executes immediately in formation order
//      on the shared exec::ExecContext,
//   6. formed batches are assigned to modeled workers (lowest free worker
//      first), which only decides start/completion *ticks*.
//
// Serving resilience (ISSUE 10) rides the same loop: the registry's
// CanaryGate screens every poll() publish; after an accepted swap the
// superseded version is held as a probation pin, and a per-model
// GenerationHealth breach (NaN outputs / modeled deadline misses /
// shed rate, all worker-count-invariant) triggers automatic rollback —
// a LeaseTable epoch bump back to the pinned version, zero-drop by
// construction, with the indicted generation quarantined so the next
// poll cannot republish it. A per-model CircuitBreaker additionally
// sheds arrivals (ShedReason::kCircuitOpen) while the tenant is
// known-bad, with deterministic half-open probe admission.
//
// Determinism contract (DESIGN.md §13): admission, batch composition,
// batch order, pinned lease epochs, swap boundaries, and every response
// payload are a pure function of (trace, config, checkpoint-file
// schedule). The exec thread count is bitwise-invisible (PR 4), and the
// modeled worker count only moves the clock columns (start, completion,
// latency, throughput) — never a payload bit. Zero-drop is structural:
// admission is the only rejection point, and the loop runs to drain, so
// admitted == completed in every report.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/context.h"
#include "robust/fault.h"
#include "serve/breaker.h"
#include "serve/mailbox.h"
#include "serve/registry.h"
#include "serve/scheduler.h"

namespace pt::serve {

struct ServeConfig {
  int workers = 1;             ///< modeled lease-holding workers
  std::int64_t max_batch = 8;  ///< dynamic-batching cap
  std::int64_t max_queue = 64; ///< per-tenant mailbox depth bound (<=0: inf)
  Tick dispatch_margin = 0;    ///< extra deadline headroom at formation
  bool shed_on_infeasible = true;  ///< admission deadline-feasibility check
  double flops_per_tick = 2e6; ///< modeled worker rate (FLOPs per tick)
  Tick poll_interval = 0;      ///< registry poll cadence; 0 = never poll
  prune::InferenceForm form = prune::InferenceForm::kChannelUnion;
  float gating_threshold = 1e-4f;

  // Serving resilience (ISSUE 10).
  CanaryConfig canary;            ///< pre-publish gate on the poll() path
  GenerationHealthConfig health;  ///< post-swap guard + rollback policy
  BreakerConfig breaker;          ///< per-model circuit breaker
  /// Serve-side fault injection (robust::FaultInjector grammar): the
  /// slow-model and flaky-output kinds fire inside the runtime, keyed on
  /// (generation, batch id). Parsed at construction; "" disarms.
  std::string fault_spec;
  std::uint64_t fault_seed = 0x5e12;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// One hot swap as it happened under load.
struct SwapEvent {
  SwapRecord record;
  Tick tick = 0;
  std::int64_t queued = 0;    ///< tenant requests queued at the boundary
  std::int64_t inflight = 0;  ///< tenant batches still on the old lease
};

/// One automatic rollback as it happened under load.
struct RollbackEvent {
  std::string model;
  Tick tick = 0;
  std::int64_t from_generation = -1;  ///< the indicted generation
  std::int64_t to_generation = -1;    ///< generation restored from probation
  std::int64_t lease_epoch = -1;      ///< epoch of the restored lease
  std::string reason;                 ///< breach counter that tripped
};

struct ServeReport {
  std::vector<Response> responses;  ///< ascending request id; one per request
  int workers = 0;
  std::int64_t requests = 0;
  std::int64_t admitted = 0;
  std::int64_t shed = 0;
  std::int64_t completed = 0;
  std::int64_t late = 0;     ///< served after their deadline (never dropped)
  std::int64_t dropped = 0;  ///< admitted - completed; 0 by construction
  std::int64_t batches = 0;
  double mean_batch_size = 0;
  Tick last_completion = 0;
  double p50_latency_ticks = 0;  ///< completed requests only
  double p99_latency_ticks = 0;
  std::vector<SwapEvent> swaps;
  std::int64_t leases_retired = 0;

  // Serving resilience (ISSUE 10).
  std::int64_t shed_circuit_open = 0;  ///< sheds with ShedReason::kCircuitOpen
  std::int64_t quarantined = 0;        ///< generations the registry refused
  std::vector<RollbackEvent> rollbacks;
  std::map<std::string, std::vector<BreakerTransition>> breaker_transitions;
  /// Registry health log (canary rejections, rollbacks) followed by one
  /// kBreakerStateChange event per breaker transition.
  std::vector<robust::HealthEvent> health_events;
};

class ServeRuntime {
 public:
  ServeRuntime(ServeConfig cfg, exec::ExecContext& ctx);

  ModelRegistry& registry() { return registry_; }
  LeaseTable& leases() { return leases_; }

  /// Registers a tenant watching `checkpoint_dir` (see ModelRegistry).
  void add_model(const std::string& name, const std::string& checkpoint_dir,
                 Shape input);
  /// Publishes an in-memory network directly under `generation`.
  SwapRecord publish_network(const std::string& name, graph::Network net,
                             std::int64_t generation, Shape input);

  /// Schedules `fn` to run when the modeled clock reaches `tick` (before
  /// that tick's registry poll) — how tests and benches make checkpoint
  /// generations appear mid-run at a deterministic instant.
  void schedule(Tick tick, std::function<void()> fn);

  /// Serves `trace` (arrival-ordered) to drain and returns the report.
  /// Callable once per runtime instance.
  ServeReport run(const std::vector<Request>& trace);

 private:
  struct Worker {
    Tick free_at = 0;
  };
  struct InFlight {
    Tick completion = 0;
    std::string model;
    std::shared_ptr<ModelVersion> pin;
  };
  /// Post-swap guard state of one tenant.
  struct Guard {
    GenerationHealth health;
    CircuitBreaker breaker;
    Guard(const GenerationHealthConfig& h, const BreakerConfig& b)
        : health(h), breaker(b) {}
  };
  /// Rollback target held resident through the post-swap probation window.
  struct Probation {
    std::shared_ptr<ModelVersion> previous;
    Tick until = 0;
  };

  void ensure_tenant(const std::string& name);
  /// Returns true when every logit of the batch is finite (the flaky-output
  /// fault is injected before the scan, so an injected NaN reads unhealthy).
  bool execute_batch(BatchPlan& plan, std::vector<Response>& out);
  std::int64_t inflight_for(const std::string& model) const;
  void begin_probation(const std::string& model,
                       std::shared_ptr<ModelVersion> previous, Tick now);
  /// Rolls `model` back to its probation pin if the guard reports a breach
  /// and the current lease is still the indicted one.
  void maybe_rollback(const std::string& model, Tick now,
                      std::vector<RollbackEvent>& out);

  ServeConfig cfg_;
  exec::ExecContext* ctx_;
  ModelRegistry registry_;
  LeaseTable leases_;
  Scheduler scheduler_;
  robust::FaultInjector injector_;
  std::map<std::string, std::unique_ptr<Mailbox>> mailboxes_;
  std::map<std::string, std::unique_ptr<Guard>> guards_;
  std::map<std::string, Probation> probation_;
  std::vector<std::string> mailbox_order_;
  std::vector<std::pair<Tick, std::function<void()>>> actions_;
  std::vector<InFlight> inflight_;
  Tick now_ = 0;  ///< modeled clock; lets mid-run publishes date probation
  bool ran_ = false;
};

}  // namespace pt::serve
