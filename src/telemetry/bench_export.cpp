#include "telemetry/bench_export.h"

#include <stdexcept>

#include "telemetry/record.h"
#include "util/fileio.h"

namespace pt::telemetry {

Json bench_summary(const std::string& run_dir, const std::string& name) {
  const RunManifest manifest = RunRecorder::read_manifest(run_dir);
  const std::vector<EpochRecord> records = RunRecorder::read_records(run_dir);
  if (records.empty()) {
    throw std::runtime_error("bench_summary: " + run_dir +
                             " has no epoch records");
  }
  const EpochRecord& first = records.front();
  const EpochRecord& last = records.back();

  double total_train_flops = 0;
  double total_bn_traffic = 0;
  double total_comm_bytes = 0;
  double total_gpu_time = 0;
  double total_wall = 0;
  std::int64_t reconfig_count = 0;
  bool flops_monotone = true;
  bool memory_monotone = true;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const EpochRecord& r = records[i];
    total_train_flops += r.epoch_train_flops;
    total_bn_traffic += r.epoch_bn_traffic;
    total_comm_bytes += r.comm_bytes_per_gpu;
    total_gpu_time += r.gpu_time_modeled;
    total_wall += r.wall_seconds;
    if (r.reconfig.happened) ++reconfig_count;
    if (i > 0) {
      // Pruning only shrinks the model, so per-sample cost curves must
      // never rise (the paper's Fig. 2/9 trajectory shape).
      if (r.flops_per_sample_train >
          records[i - 1].flops_per_sample_train * (1.0 + 1e-9)) {
        flops_monotone = false;
      }
      if (r.memory_bytes > records[i - 1].memory_bytes * (1.0 + 1e-9)) {
        memory_monotone = false;
      }
    }
  }

  Json j = Json::object();
  j["schema"] = Json("pt-telemetry-bench");
  j["schema_version"] = Json(kSchemaVersion);
  j["name"] = Json(name);
  j["run_name"] = Json(manifest.run_name);
  j["git"] = Json(manifest.git);
  j["epochs"] = Json(static_cast<std::int64_t>(records.size()));
  j["reconfigurations"] = Json(reconfig_count);
  j["first_flops_per_sample_train"] = Json(first.flops_per_sample_train);
  j["last_flops_per_sample_train"] = Json(last.flops_per_sample_train);
  j["first_flops_per_sample_inf"] = Json(first.flops_per_sample_inf);
  j["last_flops_per_sample_inf"] = Json(last.flops_per_sample_inf);
  j["first_memory_bytes"] = Json(first.memory_bytes);
  j["last_memory_bytes"] = Json(last.memory_bytes);
  j["first_channels_alive"] = Json(first.channels_alive);
  j["last_channels_alive"] = Json(last.channels_alive);
  j["last_test_acc"] = Json(last.test_acc);
  j["total_train_flops"] = Json(total_train_flops);
  j["total_bn_traffic"] = Json(total_bn_traffic);
  j["total_comm_bytes"] = Json(total_comm_bytes);
  j["total_gpu_time_modeled"] = Json(total_gpu_time);
  j["total_wall_seconds"] = Json(total_wall);
  j["flops_monotone_nonincreasing"] = Json(flops_monotone);
  j["memory_monotone_nonincreasing"] = Json(memory_monotone);
  return j;
}

void bench_export(const std::string& run_dir, const std::string& name,
                  const std::string& out_path) {
  bench_export(bench_summary(run_dir, name), out_path);
}

void bench_export(const Json& summary, const std::string& out_path) {
  const std::string text = summary.dump() + "\n";
  atomic_write_file(out_path, text.data(), text.size());
}

}  // namespace pt::telemetry
