// Turns a telemetry run directory (manifest.json + epochs.jsonl) into a
// BENCH_<name>.json summary in the repo's benchmark-artifact format, so an
// instrumented training run can sit next to the google-benchmark figures
// in run_bench_suite.sh output.
#pragma once

#include <string>

#include "telemetry/json.h"

namespace pt::telemetry {

/// Summary of one run: epoch count, first/last/total cost metrics, and the
/// PruneTrain sanity flags (FLOPs and memory monotonically non-increasing
/// across epochs — pruning only ever shrinks the model).
Json bench_summary(const std::string& run_dir, const std::string& name);

/// Writes bench_summary() to `out_path` atomically (pretty-printed via a
/// trailing newline; content is the compact deterministic dump).
void bench_export(const std::string& run_dir, const std::string& name,
                  const std::string& out_path);

/// Writes an already-built summary object to `out_path` in the same
/// BENCH_*.json artifact format (compact deterministic dump + trailing
/// newline, atomic temp+rename). For bench drivers whose summary is not an
/// epoch-record fold — e.g. bench/hotpath_scaling.cpp's thread-scaling
/// measurements.
void bench_export(const Json& summary, const std::string& out_path);

}  // namespace pt::telemetry
