#include "telemetry/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pt::telemetry {
namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw std::runtime_error(std::string("Json: expected ") + want +
                           ", value holds type " +
                           std::to_string(static_cast<int>(got)));
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  // Integral values within the exactly-representable range print as plain
  // integers (epoch counters, channel counts, byte totals stay greppable).
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // BMP-only UTF-8 encoding; the telemetry writer never emits
          // surrogate pairs (it only escapes control characters).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number '" + tok + "'");
    }
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ == Type::kNull) return std::nan("");  // serialized NaN/Inf
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

std::int64_t Json::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  type_error("array or object", type_);
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray) type_error("array", type_);
  if (i >= arr_.size()) throw std::runtime_error("Json: array index out of range");
  return arr_[i];
}

const std::vector<Json>& Json::elements() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  obj_.emplace_back(key, Json());
  return obj_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) throw std::runtime_error("Json: missing key '" + key + "'");
  return *v;
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out.push_back(',');
        arr_[i].dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i != 0) out.push_back(',');
        append_escaped(out, obj_[i].first);
        out.push_back(':');
        obj_[i].second.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

Json Json::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace pt::telemetry
