// Minimal JSON document model for the telemetry subsystem: enough to emit
// and re-read JSONL epoch records, run manifests, and BENCH_* summaries
// without an external dependency.
//
// Design points:
//  - Objects preserve insertion order, so dump() output is deterministic
//    and schema fields appear where the writer put them (diff-friendly
//    JSONL lines).
//  - Numbers are doubles. Integers up to 2^53 round-trip exactly, which
//    covers every counter and FLOP total the system records; integral
//    values are printed without an exponent so records stay greppable.
//  - Non-finite numbers serialize as null (JSON has no NaN/Inf); parsing
//    null where a number is expected yields NaN.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pt::telemetry {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(std::int64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(std::uint64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json array() { Json j; j.type_ = Type::kArray; return j; }
  static Json object() { Json j; j.type_ = Type::kObject; return j; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  // Array interface.
  void push_back(Json v);
  std::size_t size() const;
  const Json& at(std::size_t i) const;
  const std::vector<Json>& elements() const;

  // Object interface (insertion-ordered).
  Json& operator[](const std::string& key);    ///< insert-or-reference
  const Json* find(const std::string& key) const;  ///< nullptr when absent
  const Json& at(const std::string& key) const;    ///< throws when absent
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  const std::vector<std::pair<std::string, Json>>& items() const;

  /// Compact, deterministic serialization (no whitespace).
  std::string dump() const;

  /// Strict parser for one JSON value; throws std::runtime_error with a
  /// byte offset on malformed input or trailing garbage.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace pt::telemetry
