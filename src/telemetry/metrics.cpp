#include "telemetry/metrics.h"

#include <atomic>
#include <cmath>
#include <limits>

namespace pt::telemetry {
namespace {

std::atomic<bool> g_enabled{false};

// Default buckets for histograms observed before define_histogram():
// decades from 1e-6 to 1e9 cover microsecond timings through byte totals.
std::vector<double> default_bounds() {
  std::vector<double> b;
  for (int e = -6; e <= 9; ++e) b.push_back(std::pow(10.0, e));
  return b;
}

// Stack of enclosing ScopedTimer names for the current thread; joined with
// '/' to form the hierarchical span path.
thread_local std::vector<std::string>* t_span_stack = nullptr;

std::vector<std::string>& span_stack() {
  // Leaked on thread exit by design: ScopedTimer destructors may run during
  // static destruction and must not touch a destroyed thread_local vector.
  if (t_span_stack == nullptr) t_span_stack = new std::vector<std::string>();
  return *t_span_stack;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

MetricsRegistry::MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

void MetricsRegistry::counter_add(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::gauge_set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::define_histogram(const std::string& name,
                                       std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramData& h = histograms_[name];
  h.bounds = std::move(bounds);
  h.counts.assign(h.bounds.size() + 1, 0);
  h.total = 0;
  h.sum = 0;
  h.min = 0;
  h.max = 0;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    HistogramData fresh;
    fresh.bounds = default_bounds();
    fresh.counts.assign(fresh.bounds.size() + 1, 0);
    it = histograms_.emplace(name, std::move(fresh)).first;
  }
  HistogramData& h = it->second;
  std::size_t bucket = h.bounds.size();  // overflow bucket
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    if (value <= h.bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++h.counts[bucket];
  if (h.total == 0) {
    h.min = value;
    h.max = value;
  } else {
    if (value < h.min) h.min = value;
    if (value > h.max) h.max = value;
  }
  ++h.total;
  h.sum += value;
}

void MetricsRegistry::record_span(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanStats& s = spans_[name];
  if (s.count == 0) {
    s.min_seconds = seconds;
    s.max_seconds = seconds;
  } else {
    if (seconds < s.min_seconds) s.min_seconds = seconds;
    if (seconds > s.max_seconds) s.max_seconds = seconds;
  }
  ++s.count;
  s.total_seconds += seconds;
}

void MetricsRegistry::event(const std::string& name,
                            const std::string& detail) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Event e;
    e.seq = next_seq_++;
    e.at_seconds = epoch_.seconds();
    e.name = name;
    e.detail = detail;
    events_.push_back(std::move(e));
  }
  // Echo outside the registry lock: util::logging has its own sink mutex
  // and a user-installed sink could legitimately read metrics back.
  log_debug("[telemetry] " + name + (detail.empty() ? "" : ": " + detail));
}

std::map<std::string, double> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_;
}

std::map<std::string, HistogramData> MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_;
}

std::map<std::string, SpanStats> MetricsRegistry::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<Event> MetricsRegistry::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

double MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  spans_.clear();
  events_.clear();
  next_seq_ = 0;
  epoch_.reset();
}

ScopedTimer::ScopedTimer(std::string name) : active_(enabled()) {
  if (!active_) return;
  span_stack().push_back(std::move(name));
  timer_.reset();  // exclude the push from the measured interval
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  const double elapsed = timer_.seconds();
  std::vector<std::string>& stack = span_stack();
  std::string path;
  for (const std::string& part : stack) {
    if (!path.empty()) path.push_back('/');
    path += part;
  }
  MetricsRegistry::global().record_span(path, elapsed);
  stack.pop_back();
}

void count(const std::string& name, double delta) {
  if (enabled()) MetricsRegistry::global().counter_add(name, delta);
}

void gauge(const std::string& name, double value) {
  if (enabled()) MetricsRegistry::global().gauge_set(name, value);
}

void observe(const std::string& name, double value) {
  if (enabled()) MetricsRegistry::global().observe(name, value);
}

void span(const std::string& name, double seconds) {
  if (enabled()) MetricsRegistry::global().record_span(name, seconds);
}

void event(const std::string& name, const std::string& detail) {
  if (enabled()) MetricsRegistry::global().event(name, detail);
}

}  // namespace pt::telemetry
