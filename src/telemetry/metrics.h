// Telemetry core: a process-wide metrics registry plus RAII scoped tracing
// (ISSUE 3 tentpole, part 1).
//
// Metric taxonomy (see DESIGN.md §8):
//  - counters:   monotonically increasing doubles ("dist/allreduce_bytes");
//  - gauges:     last-written value ("prune/channels_alive");
//  - histograms: fixed-bucket distributions of observed values;
//  - spans:      accumulated wall-time statistics per hierarchical span
//                name ("train/epoch/forward"), fed by ScopedTimer;
//  - events:     timestamped structured occurrences (reconfigurations,
//                guardian health events, rollbacks), echoed through
//                util::logging at debug level.
//
// Cost discipline: everything is gated on a single process-wide atomic
// flag. When telemetry is disabled (the default) every helper is one
// relaxed atomic load and a branch — no locks, no clock reads, no string
// work — so instrumented hot paths (per-layer forward/backward, the
// cluster step) stay at production speed. When enabled, the registry is a
// single mutex-guarded store, safe against concurrent writers (simulated
// dist replicas, exec pool workers).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/logging.h"

namespace pt::telemetry {

/// Process-wide telemetry switch; off by default.
bool enabled();
void set_enabled(bool on);

/// One fixed-bucket histogram. `bounds` are inclusive upper edges of the
/// first `bounds.size()` buckets; `counts` has one extra overflow bucket.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
  std::uint64_t total = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
};

/// Accumulated wall-time of one span name.
struct SpanStats {
  std::uint64_t count = 0;
  double total_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
};

/// One structured telemetry event.
struct Event {
  std::int64_t seq = 0;       ///< monotone per-registry sequence number
  double at_seconds = 0;      ///< seconds since registry creation
  std::string name;           ///< taxonomy path, e.g. "health/loss-spike"
  std::string detail;         ///< human-readable context
};

class MetricsRegistry {
 public:
  MetricsRegistry();

  /// The process-wide registry every instrumented subsystem writes to.
  static MetricsRegistry& global();

  void counter_add(const std::string& name, double delta = 1.0);
  void gauge_set(const std::string& name, double value);

  /// Declares a histogram with explicit bucket bounds (sorted ascending).
  /// Observing an undeclared name creates it with default decade buckets.
  void define_histogram(const std::string& name, std::vector<double> bounds);
  void observe(const std::string& name, double value);

  /// Accumulates `seconds` into span `name` (ScopedTimer's sink).
  void record_span(const std::string& name, double seconds);

  /// Records a structured event and echoes "<name>: <detail>" through
  /// util::logging at debug level (never raw stderr).
  void event(const std::string& name, const std::string& detail = "");

  // Point-in-time copies (thread-safe).
  std::map<std::string, double> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, HistogramData> histograms() const;
  std::map<std::string, SpanStats> spans() const;
  std::vector<Event> events() const;

  double counter(const std::string& name) const;  ///< 0 when absent
  double gauge(const std::string& name) const;    ///< 0 when absent

  /// Clears every metric, span, and event (tests, run boundaries).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramData> histograms_;
  std::map<std::string, SpanStats> spans_;
  std::vector<Event> events_;
  std::int64_t next_seq_ = 0;
  Timer epoch_;  ///< event timestamps are relative to registry creation
};

/// RAII span timer with hierarchical naming: nested ScopedTimers join
/// their names with '/', so
///   ScopedTimer a("train"); { ScopedTimer b("epoch"); }
/// records span "train/epoch". When telemetry is disabled construction is
/// a no-op (one atomic load); destruction records nothing.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  bool active_;
  Timer timer_;
};

// Enabled-gated convenience forwarders to MetricsRegistry::global(); one
// call site per instrumentation point keeps the hot paths readable.
void count(const std::string& name, double delta = 1.0);
void gauge(const std::string& name, double value);
void observe(const std::string& name, double value);
void span(const std::string& name, double seconds);
void event(const std::string& name, const std::string& detail = "");

}  // namespace pt::telemetry
