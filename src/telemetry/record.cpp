#include "telemetry/record.h"

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "cost/flops.h"
#include "util/fileio.h"

namespace pt::telemetry {
namespace {

Json span_to_json(const SpanStats& s) {
  Json j = Json::object();
  j["count"] = Json(static_cast<std::uint64_t>(s.count));
  j["total_s"] = Json(s.total_seconds);
  j["min_s"] = Json(s.min_seconds);
  j["max_s"] = Json(s.max_seconds);
  return j;
}

SpanStats span_from_json(const Json& j) {
  SpanStats s;
  s.count = static_cast<std::uint64_t>(j.at("count").as_int());
  s.total_seconds = j.at("total_s").as_number();
  s.min_seconds = j.at("min_s").as_number();
  s.max_seconds = j.at("max_s").as_number();
  return s;
}

Json map_to_json(const std::map<std::string, double>& m) {
  Json j = Json::object();
  for (const auto& [k, v] : m) j[k] = Json(v);
  return j;
}

std::map<std::string, double> map_from_json(const Json& j) {
  std::map<std::string, double> m;
  for (const auto& [k, v] : j.items()) m[k] = v.as_number();
  return m;
}

}  // namespace

Json EpochRecord::to_json() const {
  Json j = Json::object();
  j["schema"] = Json(kEpochSchema);
  j["schema_version"] = Json(kSchemaVersion);
  j["strategy"] = Json(strategy);
  j["epoch"] = Json(epoch);
  j["batch_size"] = Json(batch_size);
  j["lr"] = Json(lr);
  j["train_loss"] = Json(train_loss);
  j["train_acc"] = Json(train_acc);
  j["test_acc"] = Json(test_acc);
  j["lasso_loss"] = Json(lasso_loss);
  j["flops_per_sample_train"] = Json(flops_per_sample_train);
  j["flops_per_sample_inf"] = Json(flops_per_sample_inf);
  j["epoch_train_flops"] = Json(epoch_train_flops);
  j["epoch_bn_traffic"] = Json(epoch_bn_traffic);
  j["memory_bytes"] = Json(memory_bytes);
  j["comm_bytes_per_gpu"] = Json(comm_bytes_per_gpu);
  j["comm_time_modeled"] = Json(comm_time_modeled);
  j["gpu_time_modeled"] = Json(gpu_time_modeled);
  j["wall_seconds"] = Json(wall_seconds);
  j["channels_alive"] = Json(channels_alive);
  j["conv_layers"] = Json(conv_layers);

  Json rc = Json::object();
  rc["happened"] = Json(reconfig.happened);
  rc["channels_before"] = Json(reconfig.channels_before);
  rc["channels_after"] = Json(reconfig.channels_after);
  rc["convs_removed"] = Json(reconfig.convs_removed);
  rc["blocks_removed"] = Json(reconfig.blocks_removed);
  j["reconfig"] = std::move(rc);

  Json ls = Json::array();
  for (const LayerRecord& l : layers) {
    Json lj = Json::object();
    lj["node"] = Json(l.node);
    lj["name"] = Json(l.name);
    lj["type"] = Json(l.type);
    lj["fwd_flops"] = Json(l.fwd_flops);
    lj["bwd_flops"] = Json(l.bwd_flops);
    lj["fwd_seconds"] = Json(l.fwd_seconds);
    lj["bwd_seconds"] = Json(l.bwd_seconds);
    lj["fwd_calls"] = Json(l.fwd_calls);
    lj["bwd_calls"] = Json(l.bwd_calls);
    ls.push_back(std::move(lj));
  }
  j["layers"] = std::move(ls);

  Json sp = Json::array();
  for (const SparsityRecord& s : sparsity) {
    Json sj = Json::object();
    sj["name"] = Json(s.name);
    sj["channel_density"] = Json(s.channel_density);
    sj["weight_density"] = Json(s.weight_density);
    sp.push_back(std::move(sj));
  }
  j["sparsity"] = std::move(sp);

  j["counters"] = map_to_json(counters);
  j["gauges"] = map_to_json(gauges);
  Json spj = Json::object();
  for (const auto& [name, stats] : spans) spj[name] = span_to_json(stats);
  j["spans"] = std::move(spj);
  return j;
}

EpochRecord EpochRecord::from_json(const Json& j) {
  if (j.at("schema").as_string() != kEpochSchema) {
    throw std::runtime_error("EpochRecord: unexpected schema '" +
                             j.at("schema").as_string() + "'");
  }
  if (j.at("schema_version").as_int() > kSchemaVersion) {
    throw std::runtime_error("EpochRecord: schema version " +
                             std::to_string(j.at("schema_version").as_int()) +
                             " is newer than this reader (" +
                             std::to_string(kSchemaVersion) + ")");
  }
  EpochRecord r;
  // Additive field: absent in records written before the strategy API.
  if (const Json* s = j.find("strategy")) r.strategy = s->as_string();
  r.epoch = j.at("epoch").as_int();
  r.batch_size = j.at("batch_size").as_int();
  r.lr = j.at("lr").as_number();
  r.train_loss = j.at("train_loss").as_number();
  r.train_acc = j.at("train_acc").as_number();
  r.test_acc = j.at("test_acc").as_number();
  r.lasso_loss = j.at("lasso_loss").as_number();
  r.flops_per_sample_train = j.at("flops_per_sample_train").as_number();
  r.flops_per_sample_inf = j.at("flops_per_sample_inf").as_number();
  r.epoch_train_flops = j.at("epoch_train_flops").as_number();
  r.epoch_bn_traffic = j.at("epoch_bn_traffic").as_number();
  r.memory_bytes = j.at("memory_bytes").as_number();
  r.comm_bytes_per_gpu = j.at("comm_bytes_per_gpu").as_number();
  r.comm_time_modeled = j.at("comm_time_modeled").as_number();
  r.gpu_time_modeled = j.at("gpu_time_modeled").as_number();
  r.wall_seconds = j.at("wall_seconds").as_number();
  r.channels_alive = j.at("channels_alive").as_int();
  r.conv_layers = j.at("conv_layers").as_int();

  const Json& rc = j.at("reconfig");
  r.reconfig.happened = rc.at("happened").as_bool();
  r.reconfig.channels_before = rc.at("channels_before").as_int();
  r.reconfig.channels_after = rc.at("channels_after").as_int();
  r.reconfig.convs_removed = rc.at("convs_removed").as_int();
  r.reconfig.blocks_removed = rc.at("blocks_removed").as_int();

  for (const Json& lj : j.at("layers").elements()) {
    LayerRecord l;
    l.node = static_cast<int>(lj.at("node").as_int());
    l.name = lj.at("name").as_string();
    l.type = lj.at("type").as_string();
    l.fwd_flops = lj.at("fwd_flops").as_number();
    l.bwd_flops = lj.at("bwd_flops").as_number();
    l.fwd_seconds = lj.at("fwd_seconds").as_number();
    l.bwd_seconds = lj.at("bwd_seconds").as_number();
    l.fwd_calls = static_cast<std::uint64_t>(lj.at("fwd_calls").as_int());
    l.bwd_calls = static_cast<std::uint64_t>(lj.at("bwd_calls").as_int());
    r.layers.push_back(std::move(l));
  }
  for (const Json& sj : j.at("sparsity").elements()) {
    SparsityRecord s;
    s.name = sj.at("name").as_string();
    s.channel_density = sj.at("channel_density").as_number();
    s.weight_density = sj.at("weight_density").as_number();
    r.sparsity.push_back(std::move(s));
  }
  r.counters = map_from_json(j.at("counters"));
  r.gauges = map_from_json(j.at("gauges"));
  for (const auto& [name, sj] : j.at("spans").items()) {
    r.spans[name] = span_from_json(sj);
  }
  return r;
}

std::vector<LayerRecord> collect_layer_records(graph::Network& net,
                                               const Shape& input) {
  const cost::FlopsModel model(net, input);
  const std::vector<graph::NodeProfile>& prof = net.profile();
  std::vector<LayerRecord> out;
  out.reserve(model.layers().size());
  for (const cost::LayerFlops& lf : model.layers()) {
    LayerRecord r;
    r.node = lf.node;
    r.name = lf.name;
    r.type = lf.type;
    r.fwd_flops = lf.forward;
    r.bwd_flops = lf.backward;
    if (lf.node >= 0 && static_cast<std::size_t>(lf.node) < prof.size()) {
      const graph::NodeProfile& p = prof[static_cast<std::size_t>(lf.node)];
      r.fwd_seconds = p.forward_seconds;
      r.bwd_seconds = p.backward_seconds;
      r.fwd_calls = p.forward_calls;
      r.bwd_calls = p.backward_calls;
    }
    out.push_back(std::move(r));
  }
  return out;
}

Json RunManifest::to_json() const {
  Json j = Json::object();
  j["schema"] = Json(kManifestSchema);
  j["schema_version"] = Json(kSchemaVersion);
  j["run_name"] = Json(run_name);
  j["git"] = Json(git);
  j["created_unix"] = Json(created_unix);
  j["seed"] = Json(seed);
  j["config"] = config;
  return j;
}

RunManifest RunManifest::from_json(const Json& j) {
  if (j.at("schema").as_string() != kManifestSchema) {
    throw std::runtime_error("RunManifest: unexpected schema '" +
                             j.at("schema").as_string() + "'");
  }
  RunManifest m;
  m.run_name = j.at("run_name").as_string();
  m.git = j.at("git").as_string();
  m.created_unix = j.at("created_unix").as_int();
  m.seed = static_cast<std::uint64_t>(j.at("seed").as_int());
  m.config = j.at("config");
  return m;
}

std::string git_describe() {
  FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "";
  std::string out;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  const int rc = ::pclose(pipe);
  if (rc != 0) return "";
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

RunRecorder::RunRecorder(std::string dir, const RunManifest& manifest)
    : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
  const std::string text = manifest.to_json().dump() + "\n";
  atomic_write_file(dir_ + "/manifest.json", text.data(), text.size());
}

void RunRecorder::append(const EpochRecord& record) {
  atomic_append_line(dir_ + "/epochs.jsonl", record.to_json().dump());
}

std::vector<EpochRecord> RunRecorder::read_records(const std::string& dir) {
  const std::string path = dir + "/epochs.jsonl";
  if (!std::filesystem::exists(path)) return {};
  std::vector<EpochRecord> out;
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("read_records: cannot open " + path);
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    out.push_back(EpochRecord::from_json(Json::parse(line)));
  }
  return out;
}

RunManifest RunRecorder::read_manifest(const std::string& dir) {
  return RunManifest::from_json(
      Json::parse(read_file_text(dir + "/manifest.json")));
}

}  // namespace pt::telemetry
