// Per-epoch run records (ISSUE 3 tentpole, part 2).
//
// A run directory holds two files, both written crash-safely through
// util::fileio (write-temp-fsync-rename, the same discipline src/ckpt
// uses):
//
//   manifest.json  — one self-describing object per run: schema version,
//                    run name, creation time, git describe, seed, and the
//                    caller-provided config dump. Written once, before the
//                    first epoch.
//   epochs.jsonl   — one JSON object per line per epoch, appended
//                    atomically after each epoch. Every line carries
//                    `schema`/`schema_version`, the trainer's EpochStats
//                    mirror, the reconfiguration outcome, per-layer FLOPs
//                    and measured wall-time (from graph::NodeProfile),
//                    per-layer sparsity densities, and a snapshot of the
//                    cumulative telemetry counters/gauges/spans.
//
// Records round-trip: from_json(to_json(r)) == r field-for-field, and
// RunRecorder::read_records() re-reads a directory a previous process
// wrote (the bench_export path).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/network.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace pt::telemetry {

inline constexpr const char* kEpochSchema = "pt-telemetry-epoch";
inline constexpr const char* kManifestSchema = "pt-telemetry-manifest";
inline constexpr int kSchemaVersion = 1;

/// Analytical + measured cost of one layer for one epoch: FLOPs per sample
/// from cost::FlopsModel, wall-time and call counts from the network's
/// execution profile. Node ids are stable across reconfigurations.
struct LayerRecord {
  int node = -1;
  std::string name;
  std::string type;
  double fwd_flops = 0;      ///< inference FLOPs per sample (analytical)
  double bwd_flops = 0;      ///< additional backward FLOPs per sample
  double fwd_seconds = 0;    ///< measured forward wall-time this epoch
  double bwd_seconds = 0;    ///< measured backward wall-time this epoch
  std::uint64_t fwd_calls = 0;
  std::uint64_t bwd_calls = 0;
};

/// prune::LayerDensity mirror (Fig. 12 data, per epoch).
struct SparsityRecord {
  std::string name;
  double channel_density = 1.0;
  double weight_density = 1.0;
};

/// prune::ReconfigStats mirror plus a happened flag.
struct ReconfigRecord {
  bool happened = false;
  std::int64_t channels_before = 0;
  std::int64_t channels_after = 0;
  std::int64_t convs_removed = 0;
  std::int64_t blocks_removed = 0;
};

/// One epochs.jsonl line.
struct EpochRecord {
  // Which prune::Strategy produced the epoch ("" in records written before
  // the strategy field existed).
  std::string strategy;

  // core::EpochStats mirror (kept as plain fields so pt_telemetry does not
  // depend on pt_core — the dependency points the other way).
  std::int64_t epoch = 0;
  std::int64_t batch_size = 0;
  double lr = 0;
  double train_loss = 0;
  double train_acc = 0;
  double test_acc = 0;
  double lasso_loss = 0;
  double flops_per_sample_train = 0;
  double flops_per_sample_inf = 0;
  double epoch_train_flops = 0;
  double epoch_bn_traffic = 0;
  double memory_bytes = 0;
  double comm_bytes_per_gpu = 0;
  double comm_time_modeled = 0;
  double gpu_time_modeled = 0;
  double wall_seconds = 0;
  std::int64_t channels_alive = 0;
  std::int64_t conv_layers = 0;

  ReconfigRecord reconfig;
  std::vector<LayerRecord> layers;
  std::vector<SparsityRecord> sparsity;

  // Cumulative telemetry state at the end of the epoch.
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, SpanStats> spans;

  Json to_json() const;
  static EpochRecord from_json(const Json& j);
};

/// Merges a fresh cost::FlopsModel of `net` (at per-sample `input` shape)
/// with the network's accumulated execution profile, by node id. Calling
/// this after a reconfiguration reports the *current* (smaller) model's
/// analytical FLOPs — the per-layer analytical-vs-measured test and the
/// monotonicity acceptance check build on this.
std::vector<LayerRecord> collect_layer_records(graph::Network& net,
                                               const Shape& input);

/// Everything manifest.json records about a run.
struct RunManifest {
  std::string run_name;
  std::string git;           ///< `git describe` output, "" when unavailable
  std::int64_t created_unix = 0;
  std::uint64_t seed = 0;
  Json config = Json::object();  ///< caller-provided config dump

  Json to_json() const;
  static RunManifest from_json(const Json& j);
};

/// Best-effort `git describe --always --dirty` of the current directory;
/// returns "" when git or the repository is unavailable.
std::string git_describe();

/// Writes manifest.json on construction and appends one epochs.jsonl line
/// per append(). The directory is created when missing.
class RunRecorder {
 public:
  RunRecorder(std::string dir, const RunManifest& manifest);

  void append(const EpochRecord& record);

  const std::string& dir() const { return dir_; }

  /// Parses every line of `<dir>/epochs.jsonl`; returns {} when the file
  /// does not exist yet. Throws std::runtime_error on malformed lines.
  static std::vector<EpochRecord> read_records(const std::string& dir);
  /// Parses `<dir>/manifest.json`.
  static RunManifest read_manifest(const std::string& dir);

 private:
  std::string dir_;
};

}  // namespace pt::telemetry
