#include "tensor/im2col.h"

#include <cstring>

namespace pt {

void im2col(const ConvGeom& g, const float* input, float* col) {
  const std::int64_t ho = g.out_h();
  const std::int64_t wo = g.out_w();
  const std::int64_t hw = g.in_h * g.in_w;
  const std::int64_t cols = ho * wo;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const float* chan = input + c * hw;
    for (std::int64_t r = 0; r < g.kernel; ++r) {
      for (std::int64_t s = 0; s < g.kernel; ++s, ++row) {
        float* out = col + row * cols;
        for (std::int64_t oh = 0; oh < ho; ++oh) {
          const std::int64_t ih = oh * g.stride - g.pad + r;
          if (ih < 0 || ih >= g.in_h) {
            std::memset(out + oh * wo, 0, static_cast<std::size_t>(wo) * sizeof(float));
            continue;
          }
          const float* in_row = chan + ih * g.in_w;
          float* out_row = out + oh * wo;
          for (std::int64_t ow = 0; ow < wo; ++ow) {
            const std::int64_t iw = ow * g.stride - g.pad + s;
            out_row[ow] = (iw >= 0 && iw < g.in_w) ? in_row[iw] : 0.f;
          }
        }
      }
    }
  }
}

void col2im(const ConvGeom& g, const float* col, float* input_grad) {
  const std::int64_t ho = g.out_h();
  const std::int64_t wo = g.out_w();
  const std::int64_t hw = g.in_h * g.in_w;
  const std::int64_t cols = ho * wo;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    float* chan = input_grad + c * hw;
    for (std::int64_t r = 0; r < g.kernel; ++r) {
      for (std::int64_t s = 0; s < g.kernel; ++s, ++row) {
        const float* in = col + row * cols;
        for (std::int64_t oh = 0; oh < ho; ++oh) {
          const std::int64_t ih = oh * g.stride - g.pad + r;
          if (ih < 0 || ih >= g.in_h) continue;
          float* grad_row = chan + ih * g.in_w;
          const float* in_row = in + oh * wo;
          for (std::int64_t ow = 0; ow < wo; ++ow) {
            const std::int64_t iw = ow * g.stride - g.pad + s;
            if (iw >= 0 && iw < g.in_w) grad_row[iw] += in_row[ow];
          }
        }
      }
    }
  }
}

}  // namespace pt
