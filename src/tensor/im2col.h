// im2col / col2im lowering for convolution-as-GEMM.
//
// The forward convolution of one sample lowers the [C, H, W] input into a
// [C*R*S, Ho*Wo] column matrix so that conv becomes a GEMM with the
// [K, C*R*S] filter matrix. col2im is the exact adjoint, used to produce
// input gradients. (A unit test asserts the adjoint property
// <im2col(x), y> == <x, col2im(y)> which pins both down.)
#pragma once

#include <cstdint>

namespace pt {

/// Geometry of one 2-D convolution.
struct ConvGeom {
  std::int64_t in_c = 0;      ///< input channels C
  std::int64_t in_h = 0;      ///< input height H
  std::int64_t in_w = 0;      ///< input width W
  std::int64_t kernel = 1;    ///< square kernel extent R = S
  std::int64_t stride = 1;    ///< stride in both dims
  std::int64_t pad = 0;       ///< zero-padding in both dims

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the lowered column matrix: C*R*S.
  std::int64_t col_rows() const { return in_c * kernel * kernel; }
  /// Columns of the lowered column matrix: Ho*Wo.
  std::int64_t col_cols() const { return out_h() * out_w(); }
};

/// Lowers `input` ([C, H, W], contiguous) into `col` ([C*R*S, Ho*Wo]).
void im2col(const ConvGeom& g, const float* input, float* col);

/// Adjoint of im2col: accumulates `col` back into `input_grad` ([C, H, W]).
/// `input_grad` must be zeroed by the caller beforehand (accumulation
/// semantics let conv backward sum over batch).
void col2im(const ConvGeom& g, const float* col, float* input_grad);

}  // namespace pt
