#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace pt {
namespace {

// Cache-blocking parameters tuned for small-model training: K blocks fit L1,
// the B panel for one (kc, n) block fits L2.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockK = 256;

// Row blocks are the parallel grain: block b covers rows
// [b*kBlockM, min((b+1)*kBlockM, m)). The pool splits the *block* range
// statically, so each C row is written by exactly one chunk with the same
// serial inner loops regardless of the thread count — N-thread output is
// bitwise-identical to 1-thread.
std::int64_t row_blocks(std::int64_t m) { return (m + kBlockM - 1) / kBlockM; }

void gemm_nn_rows(std::int64_t i0, std::int64_t i1, std::int64_t n,
                  std::int64_t k, float alpha, const float* a, const float* b,
                  float* c) {
  for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::int64_t p1 = std::min(p0 + kBlockK, k);
    for (std::int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      for (std::int64_t p = p0; p < p1; ++p) {
        const float aip = alpha * a[i * k + p];
        if (aip == 0.f) continue;
        const float* brow = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
      }
    }
  }
}

void gemm_nt_rows(std::int64_t i0, std::int64_t i1, std::int64_t n,
                  std::int64_t k, float alpha, const float* a, const float* b,
                  float beta, float* c) {
  for (std::int64_t i = i0; i < i1; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const float* arow = a + i * k;
      const float* brow = b + j * k;
      float acc = 0.f;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      float& out = c[i * n + j];
      out = alpha * acc + (beta == 0.f ? 0.f : beta * out);
    }
  }
}

void gemm_tn_rows(std::int64_t i0, std::int64_t i1, std::int64_t m,
                  std::int64_t n, std::int64_t k, float alpha, const float* a,
                  const float* b, float* c) {
  // A is [K, M]; accumulate rank-1 updates per K row into the owned C rows.
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::int64_t i = i0; i < i1; ++i) {
      const float aip = alpha * arow[i];
      if (aip == 0.f) continue;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

}  // namespace

void gemm_nn(exec::ExecContext& ctx, std::int64_t m, std::int64_t n,
             std::int64_t k, float alpha, const float* a, const float* b,
             float beta, float* c) {
  if (beta == 0.f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  } else if (beta != 1.f) {
    scale(beta, {c, static_cast<std::size_t>(m * n)});
  }
  ctx.pool().parallel_for(
      row_blocks(m), [&](std::int64_t b0, std::int64_t b1, int) {
        for (std::int64_t blk = b0; blk < b1; ++blk) {
          const std::int64_t i0 = blk * kBlockM;
          gemm_nn_rows(i0, std::min(i0 + kBlockM, m), n, k, alpha, a, b, c);
        }
      });
}

void gemm_nt(exec::ExecContext& ctx, std::int64_t m, std::int64_t n,
             std::int64_t k, float alpha, const float* a, const float* b,
             float beta, float* c) {
  ctx.pool().parallel_for(
      row_blocks(m), [&](std::int64_t b0, std::int64_t b1, int) {
        for (std::int64_t blk = b0; blk < b1; ++blk) {
          const std::int64_t i0 = blk * kBlockM;
          gemm_nt_rows(i0, std::min(i0 + kBlockM, m), n, k, alpha, a, b, beta,
                       c);
        }
      });
}

void gemm_tn(exec::ExecContext& ctx, std::int64_t m, std::int64_t n,
             std::int64_t k, float alpha, const float* a, const float* b,
             float beta, float* c) {
  if (beta == 0.f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  } else if (beta != 1.f) {
    scale(beta, {c, static_cast<std::size_t>(m * n)});
  }
  ctx.pool().parallel_for(
      row_blocks(m), [&](std::int64_t b0, std::int64_t b1, int) {
        for (std::int64_t blk = b0; blk < b1; ++blk) {
          const std::int64_t i0 = blk * kBlockM;
          gemm_tn_rows(i0, std::min(i0 + kBlockM, m), m, n, k, alpha, a, b, c);
        }
      });
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float alpha, std::span<float> x) {
  for (float& v : x) v *= alpha;
}

void add(std::span<const float> a, std::span<const float> b, std::span<float> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

double sum(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += v;
  return acc;
}

double sum_sq(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * v;
  return acc;
}

float max_abs(std::span<const float> x) {
  float m = 0.f;
  for (float v : x) m = std::max(m, std::fabs(v));
  return m;
}

std::int64_t count_below(std::span<const float> x, float eps) {
  std::int64_t n = 0;
  for (float v : x) n += (std::fabs(v) <= eps) ? 1 : 0;
  return n;
}

void relu(std::span<const float> x, std::span<float> out) {
  assert(x.size() == out.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] > 0.f ? x[i] : 0.f;
}

void relu_backward(std::span<const float> x, std::span<const float> dy,
                   std::span<float> dx) {
  assert(x.size() == dy.size() && x.size() == dx.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) dx[i] = x[i] > 0.f ? dy[i] : 0.f;
}

}  // namespace pt
