// Dense compute kernels: GEMM, BLAS-1 style helpers, and reductions.
//
// All kernels are plain functions over raw pointers/spans so that the layer
// implementations can run them on sub-ranges without allocating views. GEMM
// is a cache-blocked triple loop; the context-taking overloads parallelize
// over row blocks through the exec::ExecContext thread pool with a *static*
// block partition, so N-thread results are bitwise-identical to 1-thread
// (each C row is produced by the same serial instruction sequence either
// way). Roughly 3-6 GFLOP/s per core, which is all this repo needs.
#pragma once

#include <cstdint>
#include <span>

#include "exec/context.h"
#include "tensor/tensor.h"

namespace pt {

// Context-taking GEMMs — the production hot path. Nested calls (a GEMM
// issued from inside a parallel_for chunk, e.g. conv2d's per-sample
// forward) run their blocks inline on the issuing thread.

/// C[M,N] = alpha * A[M,K] @ B[K,N] + beta * C.
void gemm_nn(exec::ExecContext& ctx, std::int64_t m, std::int64_t n,
             std::int64_t k, float alpha, const float* a, const float* b,
             float beta, float* c);

/// C[M,N] = alpha * A[M,K] @ B[N,K]^T + beta * C.
void gemm_nt(exec::ExecContext& ctx, std::int64_t m, std::int64_t n,
             std::int64_t k, float alpha, const float* a, const float* b,
             float beta, float* c);

/// C[M,N] = alpha * A[K,M]^T @ B[K,N] + beta * C.
void gemm_tn(exec::ExecContext& ctx, std::int64_t m, std::int64_t n,
             std::int64_t k, float alpha, const float* a, const float* b,
             float beta, float* c);

// There are no context-free GEMM overloads: every caller passes an
// exec::ExecContext (single-threaded callers use ExecContext::serial()).

/// y += alpha * x (sizes must match).
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void scale(float alpha, std::span<float> x);

/// out = a + b elementwise.
void add(std::span<const float> a, std::span<const float> b, std::span<float> out);

/// Sum of all elements.
double sum(std::span<const float> x);

/// Sum of squares.
double sum_sq(std::span<const float> x);

/// max |x_i| (0 for empty).
float max_abs(std::span<const float> x);

/// Number of elements with |x_i| <= eps.
std::int64_t count_below(std::span<const float> x, float eps);

/// out = max(x, 0).
void relu(std::span<const float> x, std::span<float> out);

/// dx = dy where x > 0 else 0.
void relu_backward(std::span<const float> x, std::span<const float> dy,
                   std::span<float> dx);

}  // namespace pt
