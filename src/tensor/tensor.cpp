#include "tensor/tensor.h"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace pt {

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) os << (i ? ", " : "") << dims_[i];
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(std::make_shared<std::vector<float>>(
          static_cast<std::size_t>(shape_.numel()), 0.f)) {
  if (shape_.numel() < 0) throw std::invalid_argument("negative tensor extent");
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.span()) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.span()) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::from_values(Shape shape, std::vector<float> values) {
  if (static_cast<std::int64_t>(values.size()) != shape.numel()) {
    throw std::invalid_argument("from_values: size mismatch");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::make_shared<std::vector<float>>(std::move(values));
  return t;
}

float& Tensor::at(std::int64_t i) {
  assert(shape_.rank() == 1 && i >= 0 && i < shape_[0]);
  return (*data_)[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
  assert(shape_.rank() == 2 && i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1]);
  return (*data_)[static_cast<std::size_t>(i * shape_[1] + j)];
}

float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) {
  assert(shape_.rank() == 3 && i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] &&
         k >= 0 && k < shape_[2]);
  return (*data_)[static_cast<std::size_t>((i * shape_[1] + j) * shape_[2] + k)];
}

float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) {
  assert(shape_.rank() == 4 && i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] &&
         k >= 0 && k < shape_[2] && l >= 0 && l < shape_[3]);
  return (*data_)[static_cast<std::size_t>(
      ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
}

Tensor Tensor::clone() const {
  if (!defined()) return {};
  Tensor t;
  t.shape_ = shape_;
  t.data_ = std::make_shared<std::vector<float>>(*data_);
  return t;
}

Tensor Tensor::reshape(Shape new_shape) const {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("reshape: numel mismatch " + shape_.to_string() +
                                " -> " + new_shape.to_string());
  }
  Tensor t = *this;  // shares storage
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::fill(float value) {
  for (float& v : span()) v = value;
}

}  // namespace pt
