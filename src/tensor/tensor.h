// Dense float32 tensor with shared, contiguous storage.
//
// This is the numeric substrate for the whole training engine. It is
// deliberately simple: contiguous row-major data, copy-on-nothing shared
// ownership (copies alias; use clone() for a deep copy), and shape metadata.
// All compute kernels live in ops.h / im2col.h and operate on raw spans.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace pt {

/// Tensor shape: an ordered list of extents. Rank up to 4 is used in
/// practice (N, C, H, W), but arbitrary rank is supported.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {}

  std::int64_t rank() const { return static_cast<std::int64_t>(dims_.size()); }
  std::int64_t operator[](std::int64_t i) const { return dims_[static_cast<std::size_t>(i)]; }
  std::int64_t& operator[](std::int64_t i) { return dims_[static_cast<std::size_t>(i)]; }

  /// Total element count (1 for rank-0).
  std::int64_t numel() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  const std::vector<std::int64_t>& dims() const { return dims_; }
  std::string to_string() const;

 private:
  std::vector<std::int64_t> dims_;
};

/// Contiguous float32 tensor. Copying shares storage (shallow); clone()
/// deep-copies. Not thread-safe for concurrent mutation of the same
/// storage; kernels parallelize internally over disjoint ranges.
class Tensor {
 public:
  /// Empty tensor (rank 0, no storage).
  Tensor() = default;

  /// Allocates zero-initialized storage of the given shape.
  explicit Tensor(Shape shape);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  /// I.i.d. N(mean, stddev) entries drawn from `rng`.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.f, float stddev = 1.f);
  /// I.i.d. U[lo, hi) entries drawn from `rng`.
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi);
  /// Wraps explicit values; `values.size()` must equal `shape.numel()`.
  static Tensor from_values(Shape shape, std::vector<float> values);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  bool defined() const { return data_ != nullptr; }

  float* data() { return data_ ? data_->data() : nullptr; }
  const float* data() const { return data_ ? data_->data() : nullptr; }
  std::span<float> span() { return {data(), static_cast<std::size_t>(numel())}; }
  std::span<const float> span() const {
    return {data(), static_cast<std::size_t>(numel())};
  }

  /// Element accessors with debug-mode bounds checks; rank must match.
  float& at(std::int64_t i);
  float& at(std::int64_t i, std::int64_t j);
  float& at(std::int64_t i, std::int64_t j, std::int64_t k);
  float& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l);
  float at(std::int64_t i) const { return const_cast<Tensor*>(this)->at(i); }
  float at(std::int64_t i, std::int64_t j) const {
    return const_cast<Tensor*>(this)->at(i, j);
  }
  float at(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return const_cast<Tensor*>(this)->at(i, j, k);
  }
  float at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) const {
    return const_cast<Tensor*>(this)->at(i, j, k, l);
  }

  /// Deep copy.
  Tensor clone() const;

  /// Returns a tensor sharing this storage with a new shape of equal numel.
  Tensor reshape(Shape new_shape) const;

  /// Sets every element to `value`.
  void fill(float value);

  /// True if the two tensors alias the same storage.
  bool shares_storage_with(const Tensor& other) const { return data_ == other.data_; }

 private:
  Shape shape_;
  std::shared_ptr<std::vector<float>> data_;
};

}  // namespace pt
