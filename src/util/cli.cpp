#include "util/cli.h"

#include <sstream>
#include <stdexcept>

namespace pt {

void CliFlags::define(const std::string& name, const std::string& default_value,
                      const std::string& help) {
  flags_[name] = Flag{default_value, help, false, {}};
}

void CliFlags::define_list(const std::string& name, const std::string& help) {
  flags_[name] = Flag{"", help, true, {}};
}

void CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) throw std::invalid_argument("unknown flag: --" + name);
    if (!has_value) {
      // Boolean-style `--flag`, or `--flag value` when a value follows that
      // is not itself a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else if (it->second.is_list) {
        throw std::invalid_argument("flag --" + name + " needs a value");
      } else {
        value = "true";
      }
    }
    if (it->second.is_list) {
      it->second.values.push_back(value);
    } else {
      it->second.value = value;
    }
  }
}

std::string CliFlags::get(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) throw std::invalid_argument("undefined flag: --" + name);
  if (it->second.is_list) {
    throw std::invalid_argument("flag --" + name +
                                " is repeatable; use get_list");
  }
  return it->second.value;
}

double CliFlags::get_double(const std::string& name) const {
  return std::stod(get(name));
}

long CliFlags::get_int(const std::string& name) const { return std::stol(get(name)); }

bool CliFlags::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

std::vector<std::string> CliFlags::get_list(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) throw std::invalid_argument("undefined flag: --" + name);
  if (!it->second.is_list) {
    throw std::invalid_argument("flag --" + name + " is not repeatable");
  }
  return it->second.values;
}

std::string CliFlags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    if (flag.is_list) {
      os << "  --" << name << " (repeatable)  " << flag.help << "\n";
    } else {
      os << "  --" << name << " (default: " << flag.value << ")  " << flag.help
         << "\n";
    }
  }
  return os.str();
}

}  // namespace pt
