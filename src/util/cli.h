// Tiny command-line flag parser shared by the bench/example executables.
//
// Supports `--name value`, `--name=value`, boolean `--name`, and repeatable
// list flags (`--param a=1 --param b=2` accumulates). Unknown flags raise,
// so typos in experiment scripts fail loudly.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace pt {

class CliFlags {
 public:
  /// Declares a flag with a default value; call before `parse`.
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Declares a repeatable flag: every `--name value` occurrence appends to
  /// the list read back with `get_list`. Defaults to empty.
  void define_list(const std::string& name, const std::string& help);

  /// Parses argv. Throws std::invalid_argument on unknown flags or missing
  /// values. `--help` sets `help_requested()`.
  void parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  double get_double(const std::string& name) const;
  long get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  /// All occurrences of a `define_list` flag, in argv order.
  std::vector<std::string> get_list(const std::string& name) const;

  bool help_requested() const { return help_requested_; }
  /// Renders a usage string listing all defined flags.
  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string help;
    bool is_list = false;
    std::vector<std::string> values;
  };
  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace pt
