#include "util/fileio.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>

namespace pt {

void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("atomic_write_file: cannot open " + tmp);
  }
  const char* p = static_cast<const char*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      throw std::runtime_error("atomic_write_file: write failed for " + tmp);
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  // Flush file data before the rename so a crash between rename and the
  // next page-cache writeback cannot surface a renamed-but-empty file.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("atomic_write_file: fsync failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("atomic_write_file: rename to " + path + " failed");
  }
}

void atomic_append_line(const std::string& path, const std::string& line) {
  std::string content;
  {
    std::ifstream f(path, std::ios::binary);
    if (f) {
      content.assign(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
    }
  }
  content += line;
  if (content.empty() || content.back() != '\n') content.push_back('\n');
  atomic_write_file(path, content.data(), content.size());
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("read_file_bytes: cannot open " + path);
  const std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0) {
    f.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!f) throw std::runtime_error("read_file_bytes: read failed for " + path);
  }
  return bytes;
}

std::string read_file_text(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("read_file_text: cannot open " + path);
  std::string text(std::istreambuf_iterator<char>(f),
                   std::istreambuf_iterator<char>{});
  if (f.bad()) throw std::runtime_error("read_file_text: read failed for " + path);
  return text;
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void atomic_write_file_crc32(const std::string& path,
                             std::vector<std::uint8_t> bytes) {
  const std::uint32_t crc = crc32(bytes.data(), bytes.size());
  const auto* cp = reinterpret_cast<const std::uint8_t*>(&crc);
  bytes.insert(bytes.end(), cp, cp + sizeof(crc));
  atomic_write_file(path, bytes.data(), bytes.size());
}

std::vector<std::uint8_t> read_file_bytes_crc32(const std::string& path) {
  std::vector<std::uint8_t> bytes = read_file_bytes(path);
  if (bytes.size() < sizeof(std::uint32_t)) {
    throw std::runtime_error("read_file_bytes_crc32: " + path +
                             " is too short for a CRC footer");
  }
  const std::size_t body = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + body, sizeof(stored));
  const std::uint32_t actual = crc32(bytes.data(), body);
  if (stored != actual) {
    throw std::runtime_error("read_file_bytes_crc32: CRC mismatch in " + path +
                             " (file is truncated or corrupted)");
  }
  bytes.resize(body);
  return bytes;
}

}  // namespace pt
