// Crash-safe file I/O primitives shared by snapshots and checkpoints.
//
// atomic_write_file() implements the write-temp-then-rename protocol: the
// payload is written to `<path>.tmp`, flushed to stable storage (fsync),
// and renamed over `path`. POSIX rename(2) is atomic, so a reader — or a
// process restarted after a crash mid-save — sees either the complete old
// file or the complete new file, never a torn mix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pt {

/// Atomically replaces `path` with `size` bytes of `data`. Throws
/// std::runtime_error on any I/O failure (the temp file is removed).
void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size);

/// Reads an entire file into memory. Throws std::runtime_error if the file
/// cannot be opened or read.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) of a byte range.
/// Used as the integrity footer of snapshot/checkpoint files.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace pt
