// Crash-safe file I/O primitives shared by snapshots and checkpoints.
//
// atomic_write_file() implements the write-temp-then-rename protocol: the
// payload is written to `<path>.tmp`, flushed to stable storage (fsync),
// and renamed over `path`. POSIX rename(2) is atomic, so a reader — or a
// process restarted after a crash mid-save — sees either the complete old
// file or the complete new file, never a torn mix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pt {

/// Atomically replaces `path` with `size` bytes of `data`. Throws
/// std::runtime_error on any I/O failure (the temp file is removed).
void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size);

/// Appends one line to a text file under the same temp+rename discipline:
/// the existing content plus `line` (a '\n' is added when missing) is
/// written to `<path>.tmp` and renamed over `path`, so a reader or a
/// crash-restarted process sees either the file without the line or with
/// the complete line — never a torn tail. Creates the file when absent.
/// This is the append protocol of the telemetry JSONL emitter.
void atomic_append_line(const std::string& path, const std::string& line);

/// Reads an entire file into memory. Throws std::runtime_error if the file
/// cannot be opened or read.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

/// Reads an entire file as text. Throws std::runtime_error on failure.
std::string read_file_text(const std::string& path);

/// Atomically writes `bytes` followed by a 4-byte CRC-32 footer covering
/// them — the integrity discipline shared by checkpoints and any other
/// consumer that must reject torn or bit-rotted files on load.
void atomic_write_file_crc32(const std::string& path,
                             std::vector<std::uint8_t> bytes);

/// Reads a file written by atomic_write_file_crc32: verifies the CRC-32
/// footer before returning the body (footer stripped). Throws
/// std::runtime_error when the file is too short or the CRC mismatches
/// (truncation / corruption).
std::vector<std::uint8_t> read_file_bytes_crc32(const std::string& path);

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) of a byte range.
/// Used as the integrity footer of snapshot/checkpoint files.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace pt
