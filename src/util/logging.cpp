#include "util/logging.h"

#include <cstdio>

namespace pt {
namespace {

LogLevel g_level = LogLevel::kInfo;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  static Timer t0;
  std::fprintf(stderr, "[%-5s %8.2fs] %s\n", level_name(level), t0.seconds(),
               msg.c_str());
}

}  // namespace pt
