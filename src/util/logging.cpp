#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace pt {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

// Single sink shared by every logger; guarded by one mutex so concurrent
// callers (dist replicas, exec pool workers) cannot interleave lines.
std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

std::function<void(const std::string&)>& sink_ref() {
  static std::function<void(const std::string&)> sink;
  return sink;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(std::function<void(const std::string& line)> sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_ref() = std::move(sink);
}

void log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  static Timer t0;  // process-relative timestamps
  char header[32];
  std::snprintf(header, sizeof(header), "[%-5s %8.2fs] ", level_name(level),
                t0.seconds());
  std::string line = header + msg;
  std::lock_guard<std::mutex> lock(sink_mutex());
  if (sink_ref()) {
    sink_ref()(line);
  } else {
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace pt
