// Lightweight leveled logging with a wall-clock timer.
//
// Benchmarks and examples narrate long-running training loops through this;
// quiet by default in tests (level defaults to kInfo, tests may lower it).
//
// The sink is a single mutex-guarded writer: each log line is formatted
// into one buffer and emitted under the lock, so concurrent callers (e.g.
// simulated dist::Cluster replicas, exec pool workers, telemetry event echo)
// never interleave characters within a line.
#pragma once

#include <chrono>
#include <functional>
#include <string>

namespace pt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually printed.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Prints `[level ts] msg` to the sink when `level >= log_level()`.
void log(LogLevel level, const std::string& msg);

/// Redirects fully formatted log lines (no trailing newline) to `sink`
/// instead of stderr; pass nullptr to restore stderr. The sink is invoked
/// under the same mutex that serializes normal logging. Used by tests and
/// by tools that capture the run narration.
void set_log_sink(std::function<void(const std::string& line)> sink);

inline void log_debug(const std::string& msg) { log(LogLevel::kDebug, msg); }
inline void log_info(const std::string& msg) { log(LogLevel::kInfo, msg); }
inline void log_warn(const std::string& msg) { log(LogLevel::kWarn, msg); }
inline void log_error(const std::string& msg) { log(LogLevel::kError, msg); }

/// Monotonic stopwatch; `seconds()` since construction or last `reset()`.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pt
