#include "util/rng.h"

#include <cmath>

namespace pt {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  s0_ = splitmix64(sm);
  s1_ = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t r = s0_ + s1_;
  s1_ ^= s0_;
  s0_ = rotl(s0_, 55) ^ s1_ ^ (s1_ << 14);
  s1_ = rotl(s1_, 36);
  return r;
}

double Rng::uniform() {
  // Use the top 53 bits for a uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; reject u1 == 0 to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = 0;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

Rng Rng::fork() {
  Rng child;
  child.reseed(next_u64());
  return child;
}

}  // namespace pt
