// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in this repository (weight init, synthetic data,
// mini-batch shuffling) draws from a pt::Rng seeded explicitly, so whole
// training runs are bit-reproducible across invocations.
#pragma once

#include <cstdint>

namespace pt {

/// Complete serializable state of an Rng: restoring it resumes the stream
/// exactly where it left off (used by checkpoint/resume).
struct RngState {
  std::uint64_t s0 = 0;
  std::uint64_t s1 = 0;
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// Counter-free splitmix64/xoshiro-style generator.
///
/// Small, fast, and statistically adequate for weight initialization and
/// data synthesis. Not cryptographic. Copyable: copying forks the stream
/// state, which is occasionally useful for replaying a sub-stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from `seed` via two splitmix64 steps, so
  /// nearby seeds yield decorrelated streams.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit draw (xoroshiro128+).
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (caches the second variate).
  double normal();

  /// Normal with the given mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Uniform integer in [0, n). `n` must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Derives an independent child stream; used to give each dataset /
  /// model / replica its own stream from one experiment seed.
  Rng fork();

  /// Captures the full generator state for serialization.
  RngState state() const {
    return {s0_, s1_, cached_normal_, has_cached_normal_};
  }

  /// Restores a state captured by state(); the stream continues bit-exactly.
  void set_state(const RngState& s) {
    s0_ = s.s0;
    s1_ = s.s1;
    cached_normal_ = s.cached_normal;
    has_cached_normal_ = s.has_cached_normal;
  }

 private:
  std::uint64_t s0_ = 0;
  std::uint64_t s1_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pt
