#include "util/table.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace pt {

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(fmt(v, precision));
  add_row(std::move(row));
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << quote(row[c]);
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(const std::string& csv_path) const {
  std::cout << to_text();
  if (!csv_path.empty()) {
    std::ofstream f(csv_path);
    if (!f) throw std::runtime_error("Table::print: cannot open " + csv_path);
    f << to_csv();
  }
}

}  // namespace pt
