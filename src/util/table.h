// Minimal table/CSV emitter used by the benchmark harnesses to print
// paper-style rows (aligned text on stdout, optional CSV to a file).
#pragma once

#include <string>
#include <vector>

namespace pt {

/// Collects rows of string cells and renders them either as an aligned
/// ASCII table (for terminals) or RFC-4180-ish CSV (for plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each double with `precision` digits.
  void add_row_numeric(const std::vector<double>& cells, int precision = 3);

  /// Renders the aligned ASCII form, including a rule under the header.
  std::string to_text() const;

  /// Renders CSV (header + rows). Cells containing commas/quotes are quoted.
  std::string to_csv() const;

  /// Prints `to_text()` to stdout; if `csv_path` is non-empty also writes
  /// `to_csv()` there (overwriting).
  void print(const std::string& csv_path = "") const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with fixed `precision` digits after the decimal point.
std::string fmt(double v, int precision = 3);

}  // namespace pt
