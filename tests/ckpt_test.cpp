// Checkpoint/resume subsystem tests: the named state-dict API, checkpoint
// round trips across reconfiguration, bitwise-deterministic resume of an
// interrupted PruneTrain run, corrupted-file rejection (CRC footer), atomic
// writes, and TrainConfig validation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/trainer.h"
#include "models/builders.h"
#include "util/fileio.h"

namespace pt {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory. The pid suffix keeps test_ckpt and
/// test_ckpt_asan (same tests, sanitized binary) from colliding when ctest
/// runs them concurrently.
fs::path scratch_dir(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("pt_ckpt_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

data::SyntheticSpec pruning_data() {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.classes = 8;
  spec.channels = 3;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 256;
  spec.test_samples = 128;
  spec.noise = 0.8f;
  spec.max_shift = 2;
  spec.seed = 5;
  return spec;
}

models::ModelConfig pruning_model() {
  models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = 8;
  cfg.width_mult = 0.5f;
  cfg.seed = 21;
  return cfg;
}

/// A short run that actually reconfigures before the resume point: boosted
/// lambda, reconfiguration every 2 epochs, one fine-tune epoch at the end.
core::TrainConfig pruning_cfg() {
  core::TrainConfig cfg;
  cfg.policy = core::PrunePolicy::kPruneTrain;
  cfg.epochs = 6;
  cfg.batch_size = 64;
  cfg.base_lr = 0.1f;
  cfg.weight_decay = 1e-4f;
  cfg.lr_milestones = {3, 5};
  cfg.lasso_ratio = 0.3f;
  // Proxy time compression (see TrainConfig docs), strong enough that the
  // first reconfiguration at the end of epoch 1 already removes channels.
  cfg.lasso_boost = 2000.f;
  cfg.reconfig_interval = 2;
  cfg.eval_interval = 2;
  cfg.fine_tune_epochs = 1;
  cfg.record_sparsity = true;
  return cfg;
}

void expect_stats_equal(const core::EpochStats& a, const core::EpochStats& b,
                        bool compare_wall) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.batch_size, b.batch_size);
  EXPECT_DOUBLE_EQ(a.lr, b.lr);
  EXPECT_DOUBLE_EQ(a.train_loss, b.train_loss);
  EXPECT_DOUBLE_EQ(a.train_acc, b.train_acc);
  EXPECT_DOUBLE_EQ(a.test_acc, b.test_acc);
  EXPECT_DOUBLE_EQ(a.lasso_loss, b.lasso_loss);
  EXPECT_DOUBLE_EQ(a.flops_per_sample_train, b.flops_per_sample_train);
  EXPECT_DOUBLE_EQ(a.flops_per_sample_inf, b.flops_per_sample_inf);
  EXPECT_DOUBLE_EQ(a.epoch_train_flops, b.epoch_train_flops);
  EXPECT_DOUBLE_EQ(a.epoch_bn_traffic, b.epoch_bn_traffic);
  EXPECT_DOUBLE_EQ(a.memory_bytes, b.memory_bytes);
  EXPECT_DOUBLE_EQ(a.comm_bytes_per_gpu, b.comm_bytes_per_gpu);
  EXPECT_DOUBLE_EQ(a.comm_time_modeled, b.comm_time_modeled);
  EXPECT_DOUBLE_EQ(a.gpu_time_modeled, b.gpu_time_modeled);
  // Wall-clock is real elapsed time: identical only when `b`'s entry is a
  // verbatim checkpointed copy of `a`'s, never for re-trained epochs.
  if (compare_wall) {
    EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
  }
  EXPECT_EQ(a.channels_alive, b.channels_alive);
  EXPECT_EQ(a.conv_layers, b.conv_layers);
  EXPECT_EQ(a.reconfigured, b.reconfigured);
}

// ---------------------------------------------------------------------------
// Named state-dict API (Network::state / Layer::state).

TEST(NetworkState, NamesRolesAndGrouping) {
  auto net = models::build_resnet_basic(8, pruning_model());
  const auto entries = net.state();
  ASSERT_FALSE(entries.empty());

  bool saw_stem_weight = false, saw_bn_buffer = false, saw_fc = false,
       saw_momentum = false;
  for (const auto& e : entries) {
    ASSERT_NE(e.tensor, nullptr) << e.name;
    if (e.name == "stem.conv.weight" && e.role == nn::StateRole::kParam) {
      saw_stem_weight = true;
    }
    if (e.name == "stem.bn.running_mean") {
      EXPECT_EQ(e.role, nn::StateRole::kBuffer);
      saw_bn_buffer = true;
    }
    if (e.name == "head.fc.weight" && e.role == nn::StateRole::kParam) {
      saw_fc = true;
    }
    if (e.role == nn::StateRole::kMomentum) saw_momentum = true;
  }
  EXPECT_TRUE(saw_stem_weight);
  EXPECT_TRUE(saw_bn_buffer);
  EXPECT_TRUE(saw_fc);
  EXPECT_TRUE(saw_momentum);

  // Grouping the entries recovers exactly the Param list the positional API
  // exposes, in the same order.
  const auto named = nn::group_params(entries);
  const auto params = net.params();
  ASSERT_EQ(named.size(), params.size());
  for (std::size_t i = 0; i < named.size(); ++i) {
    EXPECT_EQ(named[i].value, &params[i]->value) << named[i].name;
    EXPECT_EQ(named[i].grad, &params[i]->grad) << named[i].name;
    EXPECT_EQ(named[i].momentum, &params[i]->momentum) << named[i].name;
  }
}

TEST(NetworkState, RoleNames) {
  EXPECT_EQ(nn::to_string(nn::StateRole::kParam), "param");
  EXPECT_EQ(nn::to_string(nn::StateRole::kGrad), "grad");
  EXPECT_EQ(nn::to_string(nn::StateRole::kMomentum), "momentum");
  EXPECT_EQ(nn::to_string(nn::StateRole::kBuffer), "buffer");
}

// ---------------------------------------------------------------------------
// Checkpoint round trip.

TEST(Checkpoint, RoundTripRestoresReconfiguredNetworkExactly) {
  auto data = data::SyntheticImageDataset(pruning_data());
  auto net = models::build_resnet_basic(8, pruning_model());
  core::TrainConfig cfg = pruning_cfg();
  cfg.epochs = 4;  // two reconfigurations
  cfg.fine_tune_epochs = 0;
  core::PruneTrainer trainer(net, data, cfg);
  trainer.run();

  const fs::path dir = scratch_dir("roundtrip");
  const std::string path = (dir / "model.bin").string();
  ckpt::Checkpoint::capture(net).save(path);
  ckpt::Checkpoint loaded = ckpt::Checkpoint::load(path);
  graph::Network restored = loaded.restore_network();

  // Same node count (dead placeholders preserved → NetworkInfo stays valid)
  // and same structural annotations.
  ASSERT_EQ(restored.num_nodes(), net.num_nodes());
  EXPECT_EQ(restored.output(), net.output());
  EXPECT_EQ(restored.info.first_conv, net.info.first_conv);
  EXPECT_EQ(restored.info.classifier, net.info.classifier);
  ASSERT_EQ(restored.info.blocks.size(), net.info.blocks.size());
  for (std::size_t i = 0; i < net.info.blocks.size(); ++i) {
    EXPECT_EQ(restored.info.blocks[i].removed, net.info.blocks[i].removed);
    EXPECT_EQ(restored.info.blocks[i].add_node, net.info.blocks[i].add_node);
  }

  // Every named tensor (params, momentum, BN stats) is bit-exact.
  const auto a = net.state();
  const auto b = restored.state();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].role, b[i].role);
    if (a[i].role == nn::StateRole::kGrad) continue;  // transient, not saved
    const auto sa = a[i].tensor->span();
    const auto sb = b[i].tensor->span();
    ASSERT_EQ(sa.size(), sb.size()) << a[i].name;
    for (std::size_t k = 0; k < sa.size(); ++k) {
      ASSERT_EQ(sa[k], sb[k]) << a[i].name << "[" << k << "]";
    }
  }

  // And the restored model computes the same function, bit for bit.
  Tensor out_a = net.forward(data.test_images(), false);
  Tensor out_b = restored.forward(data.test_images(), false);
  const auto spa = out_a.span();
  const auto spb = out_b.span();
  ASSERT_EQ(spa.size(), spb.size());
  for (std::size_t k = 0; k < spa.size(); ++k) ASSERT_EQ(spa[k], spb[k]);

  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Crash-safe resume (the tentpole): resuming from the mid-run checkpoint
// reproduces the uninterrupted run bitwise, across reconfigurations, the
// LR schedule, the final prune, and the fine-tune phase.

TEST(Resume, BitwiseIdenticalToUninterruptedRun) {
  auto data = data::SyntheticImageDataset(pruning_data());
  const fs::path dir = scratch_dir("resume");

  core::TrainConfig cfg = pruning_cfg();
  cfg.checkpoint_dir = (dir / "ckpts").string();
  auto net_full = models::build_resnet_basic(8, pruning_model());
  core::PruneTrainer full(net_full, data, cfg);
  const auto r_full = full.run();
  ASSERT_EQ(r_full.epochs.size(), 7u);  // 6 main + 1 fine-tune

  // The model reconfigured before the resume point, so the checkpoint
  // carries a genuinely shrunk topology, not the dense one.
  EXPECT_GT(r_full.lambda, 0.f);
  EXPECT_LT(r_full.epochs[2].channels_alive, r_full.epochs[0].channels_alive);

  // One checkpoint per epoch, plus the rolling latest.
  for (std::int64_t e = 1; e <= 7; ++e) {
    EXPECT_TRUE(fs::exists(fs::path(cfg.checkpoint_dir) /
                           ("ckpt-epoch-" + std::to_string(e) + ".bin")));
  }
  EXPECT_TRUE(fs::exists(fs::path(cfg.checkpoint_dir) / "ckpt-latest.bin"));

  // Resume from epoch 3 into a freshly built (dense) network and trainer.
  core::TrainConfig rcfg = pruning_cfg();
  rcfg.resume_from = (fs::path(cfg.checkpoint_dir) / "ckpt-epoch-3.bin").string();
  auto net_res = models::build_resnet_basic(8, pruning_model());
  core::PruneTrainer resumed(net_res, data, rcfg);
  const auto r_res = resumed.run();

  ASSERT_EQ(r_res.epochs.size(), r_full.epochs.size());
  for (std::size_t e = 0; e < r_full.epochs.size(); ++e) {
    // Epochs [0,3) are the checkpointed copies (verbatim, wall-clock
    // included); epochs [3,7) were re-trained and must match bitwise in
    // every field except real elapsed time.
    expect_stats_equal(r_full.epochs[e], r_res.epochs[e], e < 3);
  }
  EXPECT_DOUBLE_EQ(r_res.final_test_acc, r_full.final_test_acc);
  EXPECT_DOUBLE_EQ(r_res.final_inference_flops, r_full.final_inference_flops);
  EXPECT_DOUBLE_EQ(r_res.total_train_flops, r_full.total_train_flops);
  EXPECT_DOUBLE_EQ(r_res.total_bn_traffic, r_full.total_bn_traffic);
  EXPECT_DOUBLE_EQ(r_res.total_comm_bytes, r_full.total_comm_bytes);
  EXPECT_DOUBLE_EQ(r_res.total_gpu_time_modeled, r_full.total_gpu_time_modeled);
  EXPECT_EQ(r_res.final_channels, r_full.final_channels);
  EXPECT_EQ(r_res.layers_removed, r_full.layers_removed);
  EXPECT_FLOAT_EQ(r_res.lambda, r_full.lambda);

  // The sparsity monitor's recorded trajectories also carry across the
  // checkpoint boundary.
  ASSERT_NE(full.sparsity_monitor(), nullptr);
  ASSERT_NE(resumed.sparsity_monitor(), nullptr);
  const auto& hf = full.sparsity_monitor()->history();
  const auto& hr = resumed.sparsity_monitor()->history();
  ASSERT_EQ(hf.size(), hr.size());
  for (std::size_t i = 0; i < hf.size(); ++i) {
    EXPECT_EQ(hf[i].node, hr[i].node);
    EXPECT_EQ(hf[i].name, hr[i].name);
    EXPECT_EQ(hf[i].epochs, hr[i].epochs);
    EXPECT_EQ(hf[i].max_abs, hr[i].max_abs);
  }

  // Resuming from the *last* checkpoint (taken during fine-tuning, after
  // the final prune) re-runs nothing and must not repeat the post-training
  // reconfiguration or the fine-tune LR decay.
  core::TrainConfig lcfg = pruning_cfg();
  lcfg.resume_from = (fs::path(cfg.checkpoint_dir) / "ckpt-latest.bin").string();
  auto net_last = models::build_resnet_basic(8, pruning_model());
  core::PruneTrainer from_last(net_last, data, lcfg);
  const auto r_last = from_last.run();
  ASSERT_EQ(r_last.epochs.size(), r_full.epochs.size());
  for (std::size_t e = 0; e < r_full.epochs.size(); ++e) {
    expect_stats_equal(r_full.epochs[e], r_last.epochs[e], true);
  }
  EXPECT_DOUBLE_EQ(r_last.final_test_acc, r_full.final_test_acc);
  EXPECT_EQ(r_last.final_channels, r_full.final_channels);
  EXPECT_EQ(r_last.layers_removed, r_full.layers_removed);

  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Corruption rejection: the CRC-32 footer catches bit flips and truncation
// before any field is parsed.

class CheckpointFile : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = scratch_dir("corrupt");
    auto net = models::build_resnet_basic(8, pruning_model());
    path_ = (dir_ / "good.bin").string();
    ckpt::Checkpoint::capture(net).save(path_);
    bytes_ = read_file_bytes(path_);
    ASSERT_GT(bytes_.size(), 16u);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write_variant(const std::string& name,
                            const std::vector<std::uint8_t>& bytes) {
    const std::string p = (dir_ / name).string();
    std::ofstream os(p, std::ios::binary);
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    return p;
  }

  fs::path dir_;
  std::string path_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(CheckpointFile, LoadsIntactFile) {
  EXPECT_NO_THROW(ckpt::Checkpoint::load(path_));
}

TEST_F(CheckpointFile, RejectsBitFlip) {
  auto bad = bytes_;
  bad[bad.size() / 2] ^= 0x40;  // one bit, mid-payload
  EXPECT_THROW(ckpt::Checkpoint::load(write_variant("flip.bin", bad)),
               std::runtime_error);
}

TEST_F(CheckpointFile, RejectsTruncation) {
  auto bad = bytes_;
  bad.resize(bad.size() / 2);
  EXPECT_THROW(ckpt::Checkpoint::load(write_variant("trunc.bin", bad)),
               std::runtime_error);
  EXPECT_THROW(ckpt::Checkpoint::load(write_variant("empty.bin", {})),
               std::runtime_error);
}

TEST_F(CheckpointFile, RejectsBadMagic) {
  auto bad = bytes_;
  bad[0] = 'X';
  EXPECT_THROW(ckpt::Checkpoint::load(write_variant("magic.bin", bad)),
               std::runtime_error);
}

TEST_F(CheckpointFile, RejectsTrailingGarbage) {
  auto bad = bytes_;
  bad.push_back(0);
  EXPECT_THROW(ckpt::Checkpoint::load(write_variant("trail.bin", bad)),
               std::runtime_error);
}

TEST_F(CheckpointFile, RejectsMissingFile) {
  EXPECT_THROW(ckpt::Checkpoint::load((dir_ / "nope.bin").string()),
               std::runtime_error);
}

TEST_F(CheckpointFile, AtomicSaveLeavesNoTempFile) {
  EXPECT_TRUE(fs::exists(path_));
  EXPECT_FALSE(fs::exists(path_ + ".tmp"));
}

// ---------------------------------------------------------------------------
// TrainConfig::validate (satellite): bad configs fail fast in the trainer
// constructor with the offending field named.

TEST(TrainConfigValidate, AcceptsDefaults) {
  EXPECT_NO_THROW(core::TrainConfig{}.validate());
  EXPECT_NO_THROW(pruning_cfg().validate());
}

TEST(TrainConfigValidate, RejectsBadFields) {
  const auto expect_rejects = [](auto mutate, const std::string& field) {
    core::TrainConfig cfg;
    mutate(cfg);
    try {
      cfg.validate();
      FAIL() << field << " should have been rejected";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  expect_rejects([](auto& c) { c.epochs = 0; }, "epochs");
  expect_rejects([](auto& c) { c.epochs = -3; }, "epochs");
  expect_rejects([](auto& c) { c.batch_size = 0; }, "batch_size");
  expect_rejects([](auto& c) { c.base_lr = 0.f; }, "base_lr");
  expect_rejects([](auto& c) { c.base_lr = -0.1f; }, "base_lr");
  expect_rejects([](auto& c) { c.reconfig_interval = 0; }, "reconfig_interval");
  expect_rejects([](auto& c) { c.eval_interval = 0; }, "eval_interval");
  expect_rejects([](auto& c) { c.checkpoint_interval = 0; },
                 "checkpoint_interval");
  expect_rejects([](auto& c) { c.lasso_ratio = 0.f; }, "lasso_ratio");
  expect_rejects([](auto& c) { c.lasso_ratio = 1.f; }, "lasso_ratio");
  expect_rejects([](auto& c) { c.lasso_ratio = -0.2f; }, "lasso_ratio");
  expect_rejects([](auto& c) { c.fine_tune_epochs = -1; }, "fine_tune_epochs");
}

TEST(TrainConfigValidate, TrainerConstructorValidates) {
  auto data = data::SyntheticImageDataset(pruning_data());
  auto net = models::build_resnet_basic(8, pruning_model());
  core::TrainConfig cfg = pruning_cfg();
  cfg.batch_size = -1;
  EXPECT_THROW(core::PruneTrainer(net, data, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace pt
