// Gradient-codec tests (ISSUE 9): the registry contract (mirroring the
// strategy registry), per-codec wire semantics, and a conformance suite
// parameterized over every registered codec name — round-trip shape,
// bitwise 1-vs-4-thread exchanges, state round-trip, elastic kill/rejoin
// determinism under compression, and trainer-level mid-phase resume with
// residual state. The twobit-vs-dense convergence ablation keeps the
// compressed path honest: error feedback must track the dense trajectory,
// not just shrink bytes.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "dist/allreduce.h"
#include "dist/cluster.h"
#include "dist/codec.h"
#include "dist/codec_zoo.h"
#include "dist/elastic.h"
#include "models/builders.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pool.h"

namespace pt::dist {
namespace {

namespace fs = std::filesystem;

/// BN-free model (shard statistics cannot diverge from full-batch math).
graph::Network make_bnfree_net(std::uint64_t seed) {
  graph::Network net;
  Rng rng(seed);
  const int input = net.add_input();
  auto c1 = std::make_shared<nn::Conv2d>(2, 6, 3, 1, 1, rng);
  const int n1 = net.add_layer(c1, input);
  auto r1 = std::make_shared<nn::ReLU>();
  const int n2 = net.add_layer(r1, n1);
  auto gap = std::make_shared<nn::GlobalAvgPool>();
  const int n3 = net.add_layer(gap, n2);
  auto fc = std::make_shared<nn::Linear>(6, 3, rng);
  net.set_output(net.add_layer(fc, n3));
  return net;
}

data::Batch make_batch(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  data::Batch b;
  b.images = Tensor::randn({n, 2, 5, 5}, rng);
  for (std::int64_t i = 0; i < n; ++i) {
    b.labels.push_back(static_cast<std::int64_t>(rng.uniform_int(3)));
  }
  return b;
}

/// Deterministic per-replica gradients without a forward/backward pass.
void fill_grads(graph::Network& net, std::uint64_t seed) {
  Rng rng(seed);
  for (nn::Param* p : net.params()) {
    Tensor r = Tensor::randn({p->grad.numel()}, rng);
    std::copy(r.data(), r.data() + r.numel(), p->grad.data());
  }
}

void expect_grads_bitwise_equal(graph::Network& a, graph::Network& b) {
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->grad.numel(), pb[i]->grad.numel());
    for (std::int64_t q = 0; q < pa[i]->grad.numel(); ++q) {
      ASSERT_EQ(pa[i]->grad.data()[q], pb[i]->grad.data()[q])
          << "param " << i << " elem " << q;
    }
  }
}

void expect_params_bitwise_equal(graph::Network& a, graph::Network& b) {
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel());
    for (std::int64_t q = 0; q < pa[i]->value.numel(); ++q) {
      ASSERT_EQ(pa[i]->value.data()[q], pb[i]->value.data()[q])
          << "param " << i << " elem " << q;
    }
  }
}

void expect_state_equal(const CodecState& a, const CodecState& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    ASSERT_EQ(a[i].f32.size(), b[i].f32.size());
    for (std::size_t j = 0; j < a[i].f32.size(); ++j) {
      EXPECT_EQ(a[i].f32[j], b[i].f32[j]) << a[i].name << "[" << j << "]";
    }
    EXPECT_EQ(a[i].i64, b[i].i64);
  }
}

fs::path scratch_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("pt_codec_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Registry contract.

TEST(CodecRegistry, ListsBuiltinZoo) {
  const auto names = CodecRegistry::global().names();
  auto has = [&](const std::string& n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("dense"));
  EXPECT_TRUE(has("twobit"));
  EXPECT_TRUE(has("live_channel"));

  const std::string help = CodecRegistry::global().help();
  EXPECT_NE(help.find("dense"), std::string::npos);
  EXPECT_NE(help.find("twobit"), std::string::npos);
  EXPECT_NE(help.find("live_channel"), std::string::npos);
  EXPECT_NE(help.find("threshold_scale"), std::string::npos);
}

TEST(CodecRegistry, UnknownCodecAndParamsFailLoudly) {
  auto& reg = CodecRegistry::global();
  try {
    reg.create("nope");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown gradient codec"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("dense"), std::string::npos);
  }
  try {
    reg.create("dense", {{"threshold_scale", "2.0"}});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("has no parameter"),
              std::string::npos);
  }
  EXPECT_THROW(reg.create("twobit", {{"threshold_scale", "abc"}}),
               std::invalid_argument);
  EXPECT_NO_THROW(reg.create("twobit", {{"threshold_scale", "1.5"}}));
}

TEST(CodecRegistry, FactoriesReportCostKinds) {
  auto& reg = CodecRegistry::global();
  EXPECT_EQ(reg.create("dense")->cost_kind(), cost::CommCodec::kDense);
  EXPECT_EQ(reg.create("twobit")->cost_kind(), cost::CommCodec::kTwoBit);
  EXPECT_EQ(reg.create("live_channel")->cost_kind(),
            cost::CommCodec::kLiveChannel);
}

// ---------------------------------------------------------------------------
// Conformance suite over every registered codec.

class CodecConformance : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<GradientCodec> make() {
    return CodecRegistry::global().create(GetParam());
  }
};

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecConformance,
    ::testing::ValuesIn(CodecRegistry::global().names()));

TEST_P(CodecConformance, EncodeDecodeRoundTripsShapeAndStaysFinite) {
  graph::Network net = make_bnfree_net(7);
  fill_grads(net, 100);
  auto codec = make();
  codec->bind(net, 1);
  auto params = net.params();
  auto& ctx = exec::ExecContext::serial();
  for (std::size_t t = 0; t < params.size(); ++t) {
    const std::int64_t n = params[t]->grad.numel();
    const WireTensor wire =
        codec->encode(0, t, params[t]->grad.data(), n, ctx);
    EXPECT_EQ(wire.count, n);
    EXPECT_GT(wire.wire_bytes, 0.0);
    // No codec may exceed the dense wire volume by more than header slack.
    EXPECT_LE(wire.wire_bytes, static_cast<double>(n) * 4.0 + 64.0);
    std::vector<float> out(static_cast<std::size_t>(n),
                           std::numeric_limits<float>::quiet_NaN());
    codec->decode(wire, t, out.data(), ctx);
    for (float v : out) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_P(CodecConformance, ExchangeIsBitwiseIdenticalAcrossThreadCounts) {
  auto run = [&](exec::ExecContext& ctx, graph::Network& a,
                 graph::Network& b) {
    fill_grads(a, 100);
    fill_grads(b, 101);
    auto codec = make();
    codec->bind(a, 2);
    std::vector<graph::Network*> nets{&a, &b};
    // Two rounds so stateful codecs exercise residual carry-over.
    exchange_gradients(*codec, nets, {3.0, 1.0}, ctx);
    fill_grads(a, 102);
    fill_grads(b, 103);
    exchange_gradients(*codec, nets, {1.0, 1.0}, ctx);
    return codec->state();
  };

  graph::Network a1 = make_bnfree_net(7), b1 = make_bnfree_net(7);
  graph::Network a4 = make_bnfree_net(7), b4 = make_bnfree_net(7);
  exec::ExecContext four(4);
  const CodecState s1 = run(exec::ExecContext::serial(), a1, b1);
  const CodecState s4 = run(four, a4, b4);

  expect_grads_bitwise_equal(a1, a4);
  expect_grads_bitwise_equal(b1, b4);
  expect_state_equal(s1, s4);
}

TEST_P(CodecConformance, StateRoundTripReproducesFutureExchangesBitwise) {
  graph::Network a = make_bnfree_net(9), b = make_bnfree_net(9);
  graph::Network a2 = make_bnfree_net(9), b2 = make_bnfree_net(9);
  auto& ctx = exec::ExecContext::serial();

  auto original = make();
  original->bind(a, 2);
  fill_grads(a, 200);
  fill_grads(b, 201);
  std::vector<graph::Network*> nets{&a, &b};
  exchange_gradients(*original, nets, {1.0, 1.0}, ctx);

  // Clone via the serialization contract, then run one more exchange on
  // both instances from identical inputs: outputs and state must match
  // bitwise, or resume/rollback replay would diverge.
  auto clone = make();
  clone->bind(a2, 2);
  clone->load_state(original->state());

  fill_grads(a, 202);
  fill_grads(b, 203);
  fill_grads(a2, 202);
  fill_grads(b2, 203);
  std::vector<graph::Network*> nets2{&a2, &b2};
  exchange_gradients(*original, nets, {2.0, 1.0}, ctx);
  exchange_gradients(*clone, nets2, {2.0, 1.0}, ctx);

  expect_grads_bitwise_equal(a, a2);
  expect_grads_bitwise_equal(b, b2);
  expect_state_equal(original->state(), clone->state());
}

TEST_P(CodecConformance, ClusterStepsAreBitwiseIdenticalAcrossThreadCounts) {
  auto build = [&]() {
    std::vector<graph::Network> nets;
    for (int i = 0; i < 2; ++i) nets.push_back(make_bnfree_net(42));
    cost::CommSpec spec;
    spec.gpus = 2;
    Cluster c(std::move(nets), spec);
    c.set_codec(CodecRegistry::global().create(GetParam()));
    return c;
  };
  Cluster one = build();
  Cluster four = build();
  exec::ExecContext ctx4(4);
  optim::SGD opt_a(0.05f, 0.9f);
  optim::SGD opt_b(0.05f, 0.9f);
  for (int step = 0; step < 4; ++step) {
    data::Batch batch = make_batch(9 + step, 500 + step);
    const auto ra = one.step(exec::ExecContext::serial(), batch, opt_a);
    const auto rb = four.step(ctx4, batch, opt_b);
    EXPECT_DOUBLE_EQ(ra.loss, rb.loss);
    EXPECT_EQ(ra.correct, rb.correct);
  }
  for (int r = 0; r < 2; ++r) {
    expect_params_bitwise_equal(one.replica(r), four.replica(r));
  }
}

TEST_P(CodecConformance, ElasticKillRejoinIsDeterministicUnderCompression) {
  auto build = [&]() {
    std::vector<graph::Network> nets;
    for (int i = 0; i < 3; ++i) nets.push_back(make_bnfree_net(42));
    cost::CommSpec spec;
    spec.gpus = 3;
    MembershipConfig mc;
    mc.min_live_fraction = 0.3;
    ElasticCluster c(std::move(nets), spec, mc);
    c.set_codec(CodecRegistry::global().create(GetParam()));
    c.schedule_departure(1, 2);
    c.schedule_rejoin(1, 5);
    return c;
  };
  ElasticCluster one = build();
  ElasticCluster four = build();
  exec::ExecContext ctx4(4);
  optim::SGD opt_a(0.05f, 0.9f);
  optim::SGD opt_b(0.05f, 0.9f);
  for (int step = 0; step < 9; ++step) {
    data::Batch batch = make_batch(10, 700 + step);
    const auto ra = one.step(exec::ExecContext::serial(), batch, opt_a);
    const auto rb = four.step(ctx4, batch, opt_b);
    EXPECT_EQ(ra.live_replicas, rb.live_replicas);
    EXPECT_DOUBLE_EQ(ra.loss, rb.loss);
  }
  for (int r = 0; r < 3; ++r) {
    expect_params_bitwise_equal(one.replica(r), four.replica(r));
  }
  // The rejoiner is back and bit-identical to the survivors (its
  // per-replica codec state was reset at the resync fence, identically in
  // both runs).
  expect_params_bitwise_equal(one.replica(0), one.replica(1));
  expect_params_bitwise_equal(one.replica(0), one.replica(2));
}

// ---------------------------------------------------------------------------
// Exchange semantics through the shared path.

TEST(ExchangeGradients, DenseIsBitwiseTheReferenceWeightedAverage) {
  // The dense codec must reproduce the pre-codec exchange exactly: a
  // per-element double accumulation over replicas in rank order.
  graph::Network a = make_bnfree_net(11), b = make_bnfree_net(11);
  fill_grads(a, 300);
  fill_grads(b, 301);

  // Hand-rolled reference before the exchange overwrites the inputs.
  auto pa = a.params();
  auto pb = b.params();
  std::vector<std::vector<float>> expected;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    std::vector<float> avg(static_cast<std::size_t>(pa[i]->grad.numel()));
    for (std::int64_t q = 0; q < pa[i]->grad.numel(); ++q) {
      double acc = 0;
      acc += 3.0 * static_cast<double>(pa[i]->grad.data()[q]);
      acc += 1.0 * static_cast<double>(pb[i]->grad.data()[q]);
      avg[static_cast<std::size_t>(q)] = static_cast<float>(acc / 4.0);
    }
    expected.push_back(std::move(avg));
  }

  DenseCodec codec;
  codec.bind(a, 2);
  std::vector<graph::Network*> nets{&a, &b};
  const ExchangeStats stats =
      exchange_gradients(codec, nets, {3.0, 1.0}, exec::ExecContext::serial());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t q = 0; q < pa[i]->grad.numel(); ++q) {
      ASSERT_EQ(pa[i]->grad.data()[q], expected[i][static_cast<std::size_t>(q)]);
      ASSERT_EQ(pb[i]->grad.data()[q], expected[i][static_cast<std::size_t>(q)]);
    }
  }
  // Dense ships the full FP32 payload plus an 8-byte header per tensor.
  EXPECT_DOUBLE_EQ(stats.wire_bytes,
                   stats.dense_bytes + 8.0 * static_cast<double>(pa.size()));
}

TEST(ExchangeGradients, UnboundOrStaleCodecFailsLoudly) {
  graph::Network a = make_bnfree_net(12), b = make_bnfree_net(12);
  std::vector<graph::Network*> nets{&a, &b};
  DenseCodec codec;  // never bound
  EXPECT_THROW(
      exchange_gradients(codec, nets, {1.0, 1.0}, exec::ExecContext::serial()),
      std::logic_error);
}

// ---------------------------------------------------------------------------
// twobit specifics.

TEST(TwoBitCodec, ResidualCarriesTheQuantizationError) {
  graph::Network net = make_bnfree_net(13);
  fill_grads(net, 400);
  TwoBitCodec codec;
  codec.bind(net, 1);
  auto params = net.params();
  auto& ctx = exec::ExecContext::serial();
  const std::int64_t n = params[0]->grad.numel();
  const std::vector<float> grad(params[0]->grad.data(),
                                params[0]->grad.data() + n);

  const WireTensor wire = codec.encode(0, 0, params[0]->grad.data(), n, ctx);
  std::vector<float> decoded(static_cast<std::size_t>(n));
  codec.decode(wire, 0, decoded.data(), ctx);

  // Every decoded value is one of {-s, 0, +s}; the residual is exactly the
  // error the next step will re-feed.
  const auto& res = codec.residual(0, 0);
  ASSERT_EQ(res.size(), static_cast<std::size_t>(n));
  for (std::int64_t q = 0; q < n; ++q) {
    const float d = decoded[static_cast<std::size_t>(q)];
    EXPECT_TRUE(d == 0.f || d == wire.scale || d == -wire.scale);
    EXPECT_FLOAT_EQ(res[static_cast<std::size_t>(q)],
                    grad[static_cast<std::size_t>(q)] - d);
  }
  // ~16x: 2 bits per element plus a scale word and a small header.
  EXPECT_LT(wire.wire_bytes, static_cast<double>(n) * 4.0 / 8.0);
}

TEST(TwoBitCodec, ResetReplicaDropsItsResidual) {
  graph::Network net = make_bnfree_net(13);
  fill_grads(net, 401);
  TwoBitCodec codec;
  codec.bind(net, 2);
  auto params = net.params();
  auto& ctx = exec::ExecContext::serial();
  codec.encode(1, 0, params[0]->grad.data(), params[0]->grad.numel(), ctx);
  bool any_nonzero = false;
  for (float v : codec.residual(1, 0)) any_nonzero |= (v != 0.f);
  EXPECT_TRUE(any_nonzero);
  codec.reset_replica(1);
  for (float v : codec.residual(1, 0)) EXPECT_EQ(v, 0.f);
}

TEST(TwoBitCodec, RejectsForeignStateItems) {
  TwoBitCodec codec;
  CodecStateItem item;
  item.name = "bogus/state";
  item.f32 = {1.f};
  EXPECT_THROW(codec.load_state({item}), std::invalid_argument);
}

TEST(TwoBitCodec, ConvergenceTracksDenseWithinTolerance) {
  // The ablation that keeps compression honest: 2-replica training with
  // twobit + error feedback must follow the dense loss trajectory, not
  // just shrink bytes.
  auto run = [&](const std::string& codec_name) {
    std::vector<graph::Network> nets;
    for (int i = 0; i < 2; ++i) nets.push_back(make_bnfree_net(21));
    cost::CommSpec spec;
    spec.gpus = 2;
    Cluster c(std::move(nets), spec);
    c.set_codec(CodecRegistry::global().create(codec_name));
    optim::SGD opt(0.05f, 0.9f);
    double first = 0, last = 0;
    for (int step = 0; step < 40; ++step) {
      const auto r = c.step(make_batch(16, 900 + step), opt);
      if (step == 0) first = r.loss;
      last = r.loss;
    }
    return std::pair<double, double>(first, last);
  };
  const auto [dense_first, dense_last] = run("dense");
  const auto [twobit_first, twobit_last] = run("twobit");
  EXPECT_DOUBLE_EQ(dense_first, twobit_first);  // divergence starts at step 1
  EXPECT_LT(dense_last, dense_first);
  EXPECT_LT(twobit_last, twobit_first);  // it learns
  // Within tolerance of the dense trajectory.
  EXPECT_LT(std::abs(twobit_last - dense_last) / dense_last, 0.5);
}

// ---------------------------------------------------------------------------
// live_channel specifics.

TEST(LiveChannelCodec, TransmitsOnlyLiveRowsAndZeroFillsDeadOnes) {
  graph::Network net = make_bnfree_net(14);
  auto params = net.params();
  // params[0] is the conv weight [6, 2, 3, 3]; kill channels 1 and 4.
  Tensor& w = params[0]->value;
  const std::int64_t row_len = w.numel() / 6;
  for (std::int64_t c : {1, 4}) {
    std::fill(w.data() + c * row_len, w.data() + (c + 1) * row_len, 0.f);
  }
  LiveChannelCodec codec;
  codec.bind(net, 1);
  EXPECT_EQ(codec.live_rows(0).size(), 4u);
  EXPECT_LT(codec.live_fraction(), 1.0);

  fill_grads(net, 500);
  auto& ctx = exec::ExecContext::serial();
  const std::int64_t n = params[0]->grad.numel();
  const WireTensor wire = codec.encode(0, 0, params[0]->grad.data(), n, ctx);
  EXPECT_EQ(wire.rows.size(), 4u);
  EXPECT_LT(wire.wire_bytes, static_cast<double>(n) * 4.0);

  std::vector<float> out(static_cast<std::size_t>(n), -1.f);
  codec.decode(wire, 0, out.data(), ctx);
  for (std::int64_t c : {1, 4}) {
    for (std::int64_t q = c * row_len; q < (c + 1) * row_len; ++q) {
      EXPECT_EQ(out[static_cast<std::size_t>(q)], 0.f) << "dead row " << c;
    }
  }
  // Live rows pass through bit-for-bit.
  for (std::int64_t c : {0, 2, 3, 5}) {
    for (std::int64_t q = c * row_len; q < (c + 1) * row_len; ++q) {
      EXPECT_EQ(out[static_cast<std::size_t>(q)],
                params[0]->grad.data()[q]);
    }
  }
}

TEST(LiveChannelCodec, RebindRecompactsAfterMoreChannelsDie) {
  graph::Network net = make_bnfree_net(15);
  LiveChannelCodec codec;
  codec.bind(net, 1);
  EXPECT_EQ(codec.live_rows(0).size(), 6u);
  const double full = codec.live_fraction();

  auto params = net.params();
  Tensor& w = params[0]->value;
  const std::int64_t row_len = w.numel() / 6;
  std::fill(w.data() + 2 * row_len, w.data() + 3 * row_len, 0.f);
  codec.bind(net, 1);  // the post-reconfiguration rebind
  EXPECT_EQ(codec.live_rows(0).size(), 5u);
  EXPECT_LT(codec.live_fraction(), full);
}

TEST(LiveChannelCodec, FullyLiveMaskMatchesDenseExchangeBitwise) {
  // With nothing pruned, compaction is the identity: the live_channel
  // exchange must equal the dense exchange bit for bit.
  graph::Network a = make_bnfree_net(16), b = make_bnfree_net(16);
  graph::Network c = make_bnfree_net(16), d = make_bnfree_net(16);
  auto& ctx = exec::ExecContext::serial();
  fill_grads(a, 600);
  fill_grads(b, 601);
  fill_grads(c, 600);
  fill_grads(d, 601);

  LiveChannelCodec live;
  live.bind(a, 2);
  std::vector<graph::Network*> nets_live{&a, &b};
  exchange_gradients(live, nets_live, {1.0, 2.0}, ctx);

  DenseCodec dense;
  dense.bind(c, 2);
  std::vector<graph::Network*> nets_dense{&c, &d};
  exchange_gradients(dense, nets_dense, {1.0, 2.0}, ctx);

  expect_grads_bitwise_equal(a, c);
  expect_grads_bitwise_equal(b, d);
}

// ---------------------------------------------------------------------------
// Cluster accounting at compressed volume.

TEST(Cluster, UpdateBytesShrinkWithTheCodec) {
  auto build = [&](const std::string& name) {
    std::vector<graph::Network> nets;
    for (int i = 0; i < 2; ++i) nets.push_back(make_bnfree_net(42));
    cost::CommSpec spec;
    spec.gpus = 2;
    Cluster c(std::move(nets), spec);
    c.set_codec(CodecRegistry::global().create(name));
    return c;
  };
  Cluster dense = build("dense");
  Cluster twobit = build("twobit");
  EXPECT_GT(dense.update_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(twobit.update_bytes(), dense.update_bytes() * 2.0 / 32.0);
}

// ---------------------------------------------------------------------------
// Trainer-level: checkpointed codec state, resume, and mismatch rejection.

data::SyntheticSpec codec_data() {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.classes = 8;
  spec.channels = 3;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 256;
  spec.test_samples = 128;
  spec.noise = 0.8f;
  spec.max_shift = 2;
  spec.seed = 5;
  return spec;
}

graph::Network codec_net() {
  models::ModelConfig mc;
  mc.image_h = 8;
  mc.image_w = 8;
  mc.classes = 8;
  mc.width_mult = 0.5f;
  mc.seed = 21;
  return models::build_resnet_basic(8, mc);
}

core::TrainConfig codec_cfg(const std::string& dir, const std::string& codec) {
  core::TrainConfig cfg;
  cfg.policy = core::PrunePolicy::kPruneTrain;
  cfg.epochs = 4;
  cfg.batch_size = 64;
  cfg.base_lr = 0.1f;
  cfg.weight_decay = 1e-4f;
  cfg.lr_milestones = {3};
  cfg.lasso_ratio = 0.3f;
  cfg.lasso_boost = 2000.f;  // proxy time compression; prunes by epoch 2
  cfg.reconfig_interval = 2;
  cfg.eval_interval = 2;
  cfg.checkpoint_dir = dir;
  cfg.replicas = 2;
  cfg.codec = codec;
  return cfg;
}

class CodecTrainer : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecTrainer,
    ::testing::ValuesIn(CodecRegistry::global().names()));

TEST_P(CodecTrainer, MidPhaseResumeReplaysBitwise) {
  // The acceptance test for the codec checkpoint section: resuming from a
  // mid-phase checkpoint — residuals, live masks and all — must land on
  // the same bits as the uninterrupted run. The run straddles a
  // reconfiguration, so the resumed codec also re-binds over surgery.
  auto data = data::SyntheticImageDataset(codec_data());
  const fs::path dir_a = scratch_dir("resume_a_" + GetParam());
  const fs::path dir_b = scratch_dir("resume_b_" + GetParam());

  graph::Network net_full = codec_net();
  core::TrainConfig cfg = codec_cfg(dir_a.string(), GetParam());
  core::PruneTrainer full(net_full, data, cfg);
  const auto result_full = full.run();

  graph::Network net_resumed = codec_net();
  core::TrainConfig cfg_b = codec_cfg(dir_b.string(), GetParam());
  cfg_b.resume_from = (dir_a / "ckpt-epoch-2.bin").string();
  core::PruneTrainer resumed(net_resumed, data, cfg_b);
  const auto result_resumed = resumed.run();

  ASSERT_EQ(result_full.epochs.size(), result_resumed.epochs.size());
  EXPECT_DOUBLE_EQ(result_full.epochs.back().train_loss,
                   result_resumed.epochs.back().train_loss);
  EXPECT_DOUBLE_EQ(result_full.final_test_acc, result_resumed.final_test_acc);
  expect_params_bitwise_equal(net_full, net_resumed);
  fs::remove_all(dir_a);
  fs::remove_all(dir_b);
}

TEST(CodecTrainerMismatch, ResumeWithADifferentCodecFailsLoudly) {
  auto data = data::SyntheticImageDataset(codec_data());
  const fs::path dir = scratch_dir("mismatch");
  {
    graph::Network net = codec_net();
    core::TrainConfig cfg = codec_cfg(dir.string(), "twobit");
    cfg.epochs = 2;
    core::PruneTrainer trainer(net, data, cfg);
    trainer.run();
  }
  graph::Network net = codec_net();
  core::TrainConfig cfg = codec_cfg(dir.string(), "dense");
  cfg.epochs = 2;
  cfg.resume_from = (dir / "ckpt-latest.bin").string();
  try {
    core::PruneTrainer trainer(net, data, cfg);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("codec"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("twobit"), std::string::npos);
  }
  fs::remove_all(dir);
}

TEST(CodecTrainerMismatch, CheckpointCarriesTheCodecSection) {
  auto data = data::SyntheticImageDataset(codec_data());
  const fs::path dir = scratch_dir("section");
  {
    graph::Network net = codec_net();
    core::TrainConfig cfg = codec_cfg(dir.string(), "twobit");
    cfg.epochs = 2;
    core::PruneTrainer trainer(net, data, cfg);
    trainer.run();
  }
  ckpt::Checkpoint ck =
      ckpt::Checkpoint::load((dir / "ckpt-latest.bin").string());
  const std::vector<std::uint8_t>* section = ck.section("codec");
  ASSERT_NE(section, nullptr);
  ckpt::ByteReader r(*section);
  EXPECT_EQ(r.get_string(), "twobit");
  EXPECT_GT(r.get<std::uint64_t>(), 0u);  // residual items present
  fs::remove_all(dir);
}

}  // namespace
}  // namespace pt::dist
